#include "exec/query_context.h"

#include <chrono>

namespace dex {

namespace {

uint64_t WallNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void CancelToken::Cancel(Status reason) {
  if (reason.ok()) reason = Status::Aborted("query cancelled");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
    reason_ = std::move(reason);
  }
  cancelled_.store(true, std::memory_order_release);
}

Status CancelToken::status() const {
  if (!cancelled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

bool MemoryBudget::TryReserve(uint64_t bytes) {
  const uint64_t limit = limit_.load(std::memory_order_relaxed);
  uint64_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (limit != 0 && used + bytes > limit) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  // Best-effort peak: racy double-update is harmless (monotone max).
  const uint64_t now = used + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::Release(uint64_t bytes) {
  // Saturating: releasing more than is reserved clamps to zero instead of
  // wrapping `used_` to ~2^64, which would make every subsequent TryReserve
  // under a non-zero limit fail forever. A caller double-release is still a
  // bug, but an accounting hiccup must not poison the whole budget.
  uint64_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = used >= bytes ? used - bytes : 0;
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

QueryContext::QueryContext(Limits limits, MemoryBudget* budget,
                           CancelToken* external)
    : limits_(limits),
      token_(external != nullptr ? external : &own_token_),
      memory_(budget != nullptr ? budget : &own_budget_) {}

void QueryContext::Start(uint64_t sim_now_nanos) {
  sim_start_ = sim_now_nanos;
  wall_start_ = WallNowNanos();
}

uint64_t QueryContext::wall_elapsed_nanos() const {
  return WallNowNanos() - wall_start_;
}

bool QueryContext::DeadlineExpired(uint64_t sim_now_nanos) const {
  if (limits_.sim_deadline_nanos != 0 &&
      sim_now_nanos - sim_start_ >= limits_.sim_deadline_nanos) {
    return true;
  }
  if (limits_.wall_deadline_nanos != 0 &&
      wall_elapsed_nanos() >= limits_.wall_deadline_nanos) {
    return true;
  }
  return false;
}

Status QueryContext::DeadlineStatus(uint64_t sim_now_nanos) const {
  const uint64_t sim_elapsed = sim_now_nanos - sim_start_;
  if (limits_.sim_deadline_nanos != 0 &&
      sim_elapsed >= limits_.sim_deadline_nanos) {
    return Status::DeadlineExceeded(
        "query exceeded its simulated-time deadline of " +
        std::to_string(limits_.sim_deadline_nanos) + " ns (elapsed " +
        std::to_string(sim_elapsed) + " ns)");
  }
  return Status::DeadlineExceeded(
      "query exceeded its wall-clock deadline of " +
      std::to_string(limits_.wall_deadline_nanos) + " ns (elapsed " +
      std::to_string(wall_elapsed_nanos()) + " ns)");
}

}  // namespace dex
