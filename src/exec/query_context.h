#ifndef DEX_EXEC_QUERY_CONTEXT_H_
#define DEX_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace dex {

/// \brief What to do when a query hits its deadline or memory budget.
///
/// Mirrors `OnMountError` (mounter.h): a small policy enum consulted at the
/// point of failure instead of hard-coded behavior.
enum class OnResourceExhausted {
  /// Fail the whole query with DeadlineExceeded / ResourceExhausted. All
  /// partial tables are rolled back (they are never published to the
  /// catalog, so they die with the query; budget reservations are released).
  kFailQuery,
  /// Stop admitting new mounts, finish what is in flight, and return the
  /// rows from files already ingested, with completeness accounting in
  /// `TwoStageStats` (`is_partial`, skip counters, cutoff timestamps).
  kPartialResults,
};

/// \brief Cooperative cancellation flag shared between a query's driver and
/// its workers.
///
/// `Cancel` is sticky and first-reason-wins: the first caller's status (e.g.
/// Aborted for a user ^C, DeadlineExceeded for a watchdog) is what every
/// subsequent `status()` reports. Checking is one relaxed-ish atomic load,
/// cheap enough to poll once per batch.
class CancelToken {
 public:
  /// Requests cancellation. `reason` must be non-OK; the first reason wins.
  void Cancel(Status reason = Status::Aborted("query cancelled"));

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// OK while not cancelled; afterwards the first `Cancel` reason.
  Status status() const;

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  Status reason_;  // guarded by mu_, set once before cancelled_ flips
};

/// \brief A byte budget with atomic reservation/release.
///
/// A limit of 0 means unlimited — reservations always succeed but usage and
/// the high-water mark are still tracked, so an ungoverned run can report
/// how much a governed run would have needed. Shared database-wide: the
/// cache manager reserves for entries that outlive a query, the two-stage
/// executor reserves for the partial tables of the query in flight.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Attempts to reserve `bytes`; false iff a non-zero limit would be
  /// exceeded (the reservation is not applied in that case).
  bool TryReserve(uint64_t bytes);

  void Release(uint64_t bytes);

  /// Changes the limit (shell `.memlimit`). Existing reservations are kept
  /// even if they now exceed the limit; only new reservations are refused.
  void set_limit(uint64_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }

  uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> rejections_{0};
};

/// \brief Per-query resource-governance state: deadline (dual wall/sim
/// clocks), cancellation token, memory budget.
///
/// Created by `Database` for every lazy query and plumbed through
/// `TwoStageExecutor` → `TaskGroup` tasks → `Mounter` retry loops → the
/// volcano operators (via `ExecContext::interrupt_fn`, checked per batch).
///
/// Deadlines are *relative* budgets armed by `Start`: the sim deadline
/// counts nanoseconds on the `SimDisk` simulated clock from the query's
/// start, the wall deadline counts std::chrono::steady_clock nanoseconds.
/// Sim-clock deadlines are deterministic (same cutoff at any worker count);
/// wall-clock deadlines inherently are not, and are intended for real
/// interactive sessions rather than reproducible experiments.
class QueryContext {
 public:
  struct Limits {
    uint64_t sim_deadline_nanos = 0;   // 0 = no simulated-time deadline
    uint64_t wall_deadline_nanos = 0;  // 0 = no wall-clock deadline
  };

  /// `budget` and `external` may be null and are not owned; a null budget
  /// falls back to an internal unlimited one, a null token to an internal
  /// never-externally-cancelled one.
  explicit QueryContext(Limits limits = Limits{0, 0},
                        MemoryBudget* budget = nullptr,
                        CancelToken* external = nullptr);

  /// Arms the clocks. `sim_now_nanos` is the simulated clock at query start
  /// (`SimDisk::stats().sim_nanos`); the wall clock is read internally.
  void Start(uint64_t sim_now_nanos);

  /// Attaches this query's own sim-time counter (the sink of a
  /// `SimDisk::QueryTimeScope` installed on the coordinating thread). Once
  /// attached, `sim_now(...)` measures the query's *own* charges instead of
  /// the shared global clock — under concurrent queries the global clock
  /// advances with everyone's I/O, which would make deadlines depend on what
  /// the neighbors are doing. The counter must outlive this context.
  void AttachSimCounter(const uint64_t* query_sim_nanos) {
    sim_counter_ = query_sim_nanos;
  }

  /// The query's position on its deadline timeline: the attached per-query
  /// counter when one is present (deterministic under concurrency), else the
  /// caller-supplied global clock reading (the legacy single-query behavior,
  /// kept for contexts constructed outside Database).
  uint64_t sim_now(uint64_t global_sim_nanos) const {
    return sim_counter_ != nullptr ? sim_start_ + *sim_counter_
                                   : global_sim_nanos;
  }

  /// True when any deadline or a finite memory budget (shared or per-query)
  /// is configured — i.e. stage-2 admission must be governed (and therefore
  /// serialized, see DESIGN.md: governed queries trade parallel mount
  /// speedup for a deterministic admission timeline).
  bool has_limits() const {
    return has_deadline() || memory_->limit() != 0 || query_memory_limit_ != 0;
  }
  bool has_deadline() const {
    return limits_.sim_deadline_nanos != 0 || limits_.wall_deadline_nanos != 0;
  }

  CancelToken* cancel() { return token_; }
  const CancelToken* cancel() const { return token_; }
  MemoryBudget* memory() { return memory_; }

  /// Per-query memory cap (0 = none), layered *on top of* the shared budget:
  /// an admission must fit under both. Unlike the shared budget, exhaustion
  /// here is private to this query — cache eviction cannot help, and other
  /// queries are unaffected. Set from QueryOptions::memory_budget_bytes.
  void set_query_memory_limit(uint64_t bytes) { query_memory_limit_ = bytes; }
  uint64_t query_memory_limit() const { return query_memory_limit_; }

  /// The query's effective limit for diagnostics: the tighter of the
  /// per-query cap and the shared budget's limit (0 = unlimited).
  uint64_t effective_memory_limit() const {
    const uint64_t shared = memory_->limit();
    if (query_memory_limit_ == 0) return shared;
    if (shared == 0) return query_memory_limit_;
    return query_memory_limit_ < shared ? query_memory_limit_ : shared;
  }

  /// Non-OK iff the token was cancelled (returns its reason). Deadline
  /// expiry is *not* an interrupt by itself: under kPartialResults it only
  /// stops mount admission; under kFailQuery the executor turns expiry into
  /// a cancellation so in-flight operators stop too.
  Status CheckInterrupt() const {
    if (!token_->cancelled()) return Status::OK();
    return token_->status();
  }

  /// True when either armed deadline has passed. The sim clock is supplied
  /// by the caller (global `SimDisk::stats().sim_nanos`) so this stays a
  /// pure function of the deterministic simulated timeline.
  bool DeadlineExpired(uint64_t sim_now_nanos) const;

  /// A DeadlineExceeded status describing which clock expired.
  Status DeadlineStatus(uint64_t sim_now_nanos) const;

  uint64_t sim_start_nanos() const { return sim_start_; }

  /// Wall nanoseconds elapsed since Start.
  uint64_t wall_elapsed_nanos() const;

  const Limits& limits() const { return limits_; }

 private:
  Limits limits_;
  CancelToken own_token_;
  CancelToken* token_;
  MemoryBudget own_budget_;  // unlimited; used when no shared budget given
  MemoryBudget* memory_;
  uint64_t query_memory_limit_ = 0;       // 0 = no per-query cap
  const uint64_t* sim_counter_ = nullptr; // per-query sim charges (tee sink)
  uint64_t sim_start_ = 0;
  uint64_t wall_start_ = 0;
};

}  // namespace dex

#endif  // DEX_EXEC_QUERY_CONTEXT_H_
