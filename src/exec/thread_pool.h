#ifndef DEX_EXEC_THREAD_POOL_H_
#define DEX_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dex {

/// \brief A fixed-size worker pool executing submitted tasks in priority
/// classes, FIFO within a class.
///
/// This is the substrate of the stage-2 parallel-mount subsystem: the
/// two-stage executor turns each file of interest into one task (read →
/// salvage/decode → partial-table build) and runs them on a pool sized by
/// `TwoStageOptions::num_threads`. The pool itself is workload-agnostic —
/// tasks are plain callables, completion is future-based, and higher-level
/// semantics (error aggregation, cancellation, barriers) live in TaskGroup.
///
/// Under concurrent serving (src/serve) the pool is shared across queries,
/// and a long stage-2 ingest must not starve an interactive metadata-only
/// query. Tasks therefore carry one of three priority classes; workers pick
/// from the highest non-empty class, except that every fourth pick services
/// the *lowest* non-empty class so background work always makes progress
/// (deterministic anti-starvation, no clocks involved).
///
/// Lifetime: the destructor drains the queues (already-submitted work still
/// runs) and joins every worker. Submitting to a pool that is shutting down
/// degrades gracefully by running the task inline on the caller's thread.
class ThreadPool {
 public:
  /// Priority classes, lowest to highest. Kept as plain ints so callers
  /// (QueryOptions::priority) can pass them through without a cast chain.
  static constexpr int kPriorityBackground = 0;   // bulk ingest, maintenance
  static constexpr int kPriorityNormal = 1;       // default queries
  static constexpr int kPriorityInteractive = 2;  // latency-sensitive
  static constexpr int kNumPriorities = 3;

  /// The hardware's concurrency, never less than 1 (the standard permits
  /// hardware_concurrency() to return 0 when unknown).
  static size_t DefaultConcurrency();

  /// Creates `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` and returns a future that completes with its result.
  /// Exceptions thrown by `fn` are captured in the future (std::future
  /// semantics) — they never escape a worker thread. `priority` is clamped
  /// to a valid class.
  template <typename Fn, typename R = std::invoke_result_t<std::decay_t<Fn>>>
  std::future<R> Submit(Fn&& fn, int priority = kPriorityNormal) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); }, priority);
    return future;
  }

  /// Stops accepting queued work, finishes what was already submitted, and
  /// joins every worker. Idempotent; also called by the destructor.
  void Shutdown();

 private:
  void Enqueue(std::function<void()> fn, int priority);
  void WorkerLoop();
  // Requires mu_; -1 when all queues are empty.
  int PickClassLocked();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queues_[kNumPriorities];  // guarded by mu_
  uint64_t picks_ = 0;  // guarded by mu_; drives the anti-starvation cadence
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dex

#endif  // DEX_EXEC_THREAD_POOL_H_
