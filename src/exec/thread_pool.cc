#include "exec/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dex {

size_t ThreadPool::DefaultConcurrency() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Lane ids are 1-based; 0 is the coordinating (main) thread. Traces use
    // them to give each worker its own timeline row.
    threads_.emplace_back([this, i] {
      obs::SetCurrentThreadLane(static_cast<int>(i) + 1);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> fn, int priority) {
  const int cls =
      std::clamp(priority, kPriorityBackground, kPriorityInteractive);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_) {
      queues_[cls].push_back(std::move(fn));
      lock.unlock();
      cv_.notify_one();
      return;
    }
  }
  // The pool is shutting down: run inline so the caller's future still
  // completes instead of dangling forever.
  fn();
}

int ThreadPool::PickClassLocked() {
  // Every fourth pick services the lowest non-empty class instead of the
  // highest, so a steady interactive stream cannot starve background ingest
  // (roughly a 3:1 weighting, deterministic — driven by a pick counter, not
  // by time).
  const bool low_turn = (picks_ % 4 == 3);
  if (low_turn) {
    for (int c = 0; c < kNumPriorities; ++c) {
      if (!queues_[c].empty()) return c;
    }
  } else {
    for (int c = kNumPriorities - 1; c >= 0; --c) {
      if (!queues_[c].empty()) return c;
    }
  }
  return -1;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    int cls = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return shutdown_ || PickClassLocked() >= 0;
      });
      cls = PickClassLocked();
      if (cls < 0) return;  // shutdown and drained
      ++picks_;
      fn = std::move(queues_[cls].front());
      queues_[cls].pop_front();
    }
    // Per-priority-class execution counter, published outside the pool
    // lock. The total per class equals the tasks submitted under it —
    // independent of pool size or pick interleaving — so the labeled
    // totals stay deterministic.
    obs::MetricLabels labels;
    labels.priority = cls;
    obs::MetricsRegistry::Global().AddCounter("pool.tasks_executed", labels, 1);
    fn();
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Idempotent; a second caller must not try to join again.
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace dex
