#include "exec/task_group.h"

#include <algorithm>

namespace dex {

TaskGroup::~TaskGroup() {
  try {
    (void)Wait();
  } catch (...) {
    // A destructor must not throw; the exception was already the caller's
    // to collect via an explicit Wait().
  }
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  const size_t index = spawned_++;
  auto run = [this, index, fn = std::move(fn)] {
    if (cancelled_.load(std::memory_order_relaxed)) {
      Finish(index, Status::OK(), nullptr, /*skipped=*/true);
      return;
    }
    Status status;
    std::exception_ptr exception;
    try {
      status = fn();
    } catch (...) {
      exception = std::current_exception();
    }
    if (exception != nullptr || !status.ok()) {
      // First failure cancels the rest of the group (cooperatively).
      cancelled_.store(true, std::memory_order_relaxed);
    }
    Finish(index, std::move(status), exception, /*skipped=*/false);
  };
  if (pool_ != nullptr) {
    // The future is intentionally discarded: completion is tracked by the
    // group's own barrier, and `run` never throws.
    (void)pool_->Submit(std::move(run));
  } else {
    run();
  }
}

void TaskGroup::Finish(size_t index, Status status,
                       std::exception_ptr exception, bool skipped) {
  std::lock_guard<std::mutex> lock(mu_);
  ++finished_;
  if (skipped) {
    ++skipped_;
  } else if (exception != nullptr) {
    exceptions_.emplace_back(index, exception);
  } else if (!status.ok()) {
    errors_.emplace_back(index, std::move(status));
  }
  // Notify while holding mu_: once Wait() observes completion the group may
  // be destroyed immediately, so the notify must not outlive the lock —
  // otherwise a straggler could broadcast on a dead condition variable.
  cv_.notify_all();
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return finished_ == spawned_; });
  if (!exceptions_.empty()) {
    auto first = std::min_element(
        exceptions_.begin(), exceptions_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr e = first->second;
    exceptions_.clear();  // rethrow once; a repeat Wait reports the rest
    lock.unlock();
    std::rethrow_exception(e);
  }
  if (!errors_.empty()) {
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return first->second;
  }
  if (user_cancelled_.load(std::memory_order_relaxed)) {
    return Status::Aborted("task group cancelled");
  }
  return Status::OK();
}

}  // namespace dex
