#include "exec/task_group.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dex {

TaskGroup::~TaskGroup() {
  // Barrier without Wait(): a destructor must not throw, and Wait() rethrows
  // captured exceptions. Failures nobody observed through an explicit Wait()
  // would otherwise vanish here — log them and count them so cancellation
  // bugs do not hide behind an early-return caller.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return finished_ == spawned_; });
  if (waited_ || (errors_.empty() && exceptions_.empty())) return;
  for (const auto& [index, status] : errors_) {
    DEX_LOG(Warning) << "TaskGroup destroyed without Wait(); dropping error "
                        "from task #"
                     << index << ": " << status.ToString();
  }
  for (const auto& [index, exception] : exceptions_) {
    (void)exception;
    DEX_LOG(Warning) << "TaskGroup destroyed without Wait(); dropping "
                        "exception from task #"
                     << index;
  }
  obs::MetricsRegistry::Global().AddCounter(
      "task_group.errors_dropped", errors_.size() + exceptions_.size());
}

void TaskGroup::Cancel(Status reason) {
  if (reason.ok()) reason = Status::Aborted("task group cancelled");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancel_reason_.ok()) cancel_reason_ = std::move(reason);
  }
  user_cancelled_.store(true, std::memory_order_relaxed);
  cancelled_.store(true, std::memory_order_relaxed);
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  const size_t index = spawned_++;
  // Trace context is captured here, on the spawning thread: the order key
  // (allocated in spawn order, the determinism anchor for span/event
  // streams) and the spawner's open span, which becomes the task's parent.
  // Every task body therefore inherits distributed parentage without the
  // call site threading ids through its lambda.
  const uint64_t trace_order = obs::Tracer::AllocOrder();
  const uint64_t trace_parent = obs::Tracer::CurrentSpanId();
  auto run = [this, index, trace_order, trace_parent, fn = std::move(fn)] {
    obs::TaskTraceScope trace_scope(trace_order, trace_parent);
    if (cancelled_.load(std::memory_order_relaxed)) {
      Finish(index, Status::OK(), nullptr, /*skipped=*/true);
      return;
    }
    Status status;
    std::exception_ptr exception;
    try {
      status = fn();
    } catch (...) {
      exception = std::current_exception();
    }
    if (exception != nullptr || !status.ok()) {
      // First failure cancels the rest of the group (cooperatively).
      cancelled_.store(true, std::memory_order_relaxed);
    }
    Finish(index, std::move(status), exception, /*skipped=*/false);
  };
  if (pool_ != nullptr) {
    // The future is intentionally discarded: completion is tracked by the
    // group's own barrier, and `run` never throws.
    (void)pool_->Submit(std::move(run), priority_);
  } else {
    run();
  }
}

void TaskGroup::Finish(size_t index, Status status,
                       std::exception_ptr exception, bool skipped) {
  std::lock_guard<std::mutex> lock(mu_);
  ++finished_;
  if (skipped) {
    ++skipped_;
  } else if (exception != nullptr) {
    exceptions_.emplace_back(index, exception);
  } else if (!status.ok()) {
    errors_.emplace_back(index, std::move(status));
  }
  // Notify while holding mu_: once Wait() observes completion the group may
  // be destroyed immediately, so the notify must not outlive the lock —
  // otherwise a straggler could broadcast on a dead condition variable.
  cv_.notify_all();
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return finished_ == spawned_; });
  waited_ = true;
  if (!exceptions_.empty()) {
    auto first = std::min_element(
        exceptions_.begin(), exceptions_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr e = first->second;
    exceptions_.clear();  // rethrow once; a repeat Wait reports the rest
    lock.unlock();
    std::rethrow_exception(e);
  }
  if (!errors_.empty()) {
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return first->second;
  }
  if (user_cancelled_.load(std::memory_order_relaxed)) {
    return cancel_reason_.ok() ? Status::Aborted("task group cancelled")
                               : cancel_reason_;
  }
  return Status::OK();
}

}  // namespace dex
