#ifndef DEX_EXEC_SIM_SCHEDULE_H_
#define DEX_EXEC_SIM_SCHEDULE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dex {

/// \brief Deterministic aggregate of a wave of per-task simulated stall
/// times (the buckets `SimDisk::TaskTimeScope` filled).
struct SimSchedule {
  uint64_t serial_sum = 0;  // what the wave would cost end to end on 1 lane
  uint64_t makespan = 0;    // longest lane under list scheduling (critical path)
};

/// \brief Greedy list scheduling of per-task simulated stall times onto
/// `lanes` worker lanes, in task order: each task lands on the currently
/// least-loaded lane. The result is a pure function of (task_nanos, lanes),
/// independent of how the OS interleaved the real worker threads — which is
/// what makes a parallel wave's simulated time reproducible. Shared by the
/// stage-2 premount wave and the stage-1 metadata scan.
inline SimSchedule ListScheduleSimTimes(const std::vector<uint64_t>& task_nanos,
                                        size_t lanes) {
  std::vector<uint64_t> lane(std::max<size_t>(1, lanes), 0);
  SimSchedule out;
  for (const uint64_t nanos : task_nanos) {
    out.serial_sum += nanos;
    *std::min_element(lane.begin(), lane.end()) += nanos;
  }
  out.makespan = *std::max_element(lane.begin(), lane.end());
  return out;
}

}  // namespace dex

#endif  // DEX_EXEC_SIM_SCHEDULE_H_
