#ifndef DEX_EXEC_TASK_GROUP_H_
#define DEX_EXEC_TASK_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace dex {

/// \brief A batch of Status-returning tasks with a completion barrier,
/// deterministic error aggregation, and cancellation.
///
/// Usage:
/// ```
///   TaskGroup group(pool);              // pool == nullptr runs inline
///   for (auto& work : tasks) group.Spawn([&] { return DoWork(work); });
///   DEX_RETURN_NOT_OK(group.Wait());    // barrier
/// ```
///
/// Semantics:
///  - Wait() blocks until every spawned task finished or was skipped, then
///    reports the error of the *lowest spawn index* that failed — so the
///    reported status does not depend on thread interleaving.
///  - The first failing task cancels the group: tasks that have not started
///    yet are skipped (their Status is never produced). Tasks already
///    running are not interrupted — cooperative cancellation only.
///  - Exceptions thrown by a task are captured and rethrown from Wait()
///    (again lowest-index-first), after the barrier.
///  - Cancel() may also be called externally, optionally with a reason
///    (e.g. Status::DeadlineExceeded from a query deadline vs the default
///    Status::Aborted); Wait() then returns that reason unless some task
///    already failed with a real error. The first reason wins.
///
/// A TaskGroup is single-use: spawn, wait, discard.
class TaskGroup {
 public:
  /// `pool` may be null: tasks then run inline during Spawn (the degenerate
  /// sequential mode used for num_threads == 1). `priority` is the pool
  /// class every spawned task is submitted under (see ThreadPool) — a
  /// query-level attribute, so it is fixed per group rather than per task.
  explicit TaskGroup(ThreadPool* pool,
                     int priority = ThreadPool::kPriorityNormal)
      : pool_(pool), priority_(priority) {}

  /// Waits for stragglers. Errors nobody collected via an explicit Wait()
  /// cannot be propagated from a destructor; they are logged at Warning
  /// level and counted in the `task_group.errors_dropped` metric instead of
  /// vanishing silently. Still: call Wait() explicitly on every success path.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`. If the group is already cancelled the task is skipped.
  /// Trace context propagates automatically: Spawn captures a deterministic
  /// order key and the spawning thread's open span, and runs `fn` under an
  /// `obs::TaskTraceScope` so every span/flight-event the task emits sorts
  /// in spawn order and parents under the spawning span.
  void Spawn(std::function<Status()> fn);

  /// Barrier: blocks until all tasks finished/skipped. Rethrows the first
  /// (by spawn index) captured exception, else returns the first error
  /// status, else the Cancel() reason if the group was cancelled
  /// externally, else OK.
  Status Wait();

  /// Requests cancellation: tasks not yet started are skipped. `reason`
  /// (non-OK) is what Wait() reports when no task failed on its own —
  /// pass Status::DeadlineExceeded / Status::ResourceExhausted so callers
  /// learn *why* the group stopped. The first reason wins.
  void Cancel(Status reason);
  void Cancel() { Cancel(Status::Aborted("task group cancelled")); }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  size_t tasks_spawned() const { return spawned_; }

  /// Tasks skipped because cancellation happened before they started.
  size_t tasks_skipped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return skipped_;
  }

 private:
  void Finish(size_t index, Status status, std::exception_ptr exception,
              bool skipped);

  ThreadPool* pool_;
  int priority_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> user_cancelled_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t spawned_ = 0;   // only mutated by the spawning thread
  size_t finished_ = 0;  // guarded by mu_
  size_t skipped_ = 0;   // guarded by mu_
  bool waited_ = false;  // guarded by mu_; true once an explicit Wait ran
  Status cancel_reason_;            // guarded by mu_; first Cancel() reason
  std::vector<std::pair<size_t, Status>> errors_;                  // guarded by mu_
  std::vector<std::pair<size_t, std::exception_ptr>> exceptions_;  // guarded by mu_
};

}  // namespace dex

#endif  // DEX_EXEC_TASK_GROUP_H_
