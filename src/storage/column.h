#ifndef DEX_STORAGE_COLUMN_H_
#define DEX_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace dex {

/// \brief Shared dictionary for string columns.
///
/// String columns store int32 codes plus a dictionary. Dictionaries are
/// shared between a column and slices copied from it (the file URI column of
/// the actual-data table would otherwise dominate memory, exactly like
/// MonetDB's string heaps in the paper's Table 1).
class StringDict {
 public:
  /// Returns the code for `s`, interning it if new.
  int32_t Intern(const std::string& s);
  /// Returns the code for `s` or -1 if absent (lookup without mutation).
  int32_t Find(const std::string& s) const;
  const std::string& At(int32_t code) const { return values_[code]; }
  size_t size() const { return values_.size(); }
  uint64_t ByteSize() const { return byte_size_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int32_t> index_;
  uint64_t byte_size_ = 0;
};

/// \brief A typed, append-only column vector.
///
/// Used both as full table storage and as the chunk unit flowing between
/// physical operators. Int64/timestamp/bool share an int64 buffer; strings
/// are dictionary-encoded.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  void Reserve(size_t n);

  // -- Appends (type must match the physical representation) -----------
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);
  Status AppendValue(const Value& v);

  /// Copies row `row` of `src` (same type) to the end of this column.
  void AppendFrom(const Column& src, size_t row);
  /// Copies rows [start, start+count) of `src`.
  void AppendRange(const Column& src, size_t start, size_t count);
  /// Copies the selected rows of `src` in order.
  void AppendGather(const Column& src, const std::vector<uint32_t>& rows);

  // -- Element access ----------------------------------------------------
  int64_t GetInt64(size_t row) const { return i64_[row]; }
  double GetDouble(size_t row) const { return f64_[row]; }
  const std::string& GetString(size_t row) const {
    return dict_->At(codes_[row]);
  }
  int32_t GetStringCode(size_t row) const { return codes_[row]; }
  Value GetValue(size_t row) const;
  /// Numeric view of any non-string cell (ints widen to double).
  double GetNumeric(size_t row) const {
    return type_ == DataType::kDouble ? f64_[row]
                                      : static_cast<double>(i64_[row]);
  }

  // -- Bulk access for vectorized operators ------------------------------
  const int64_t* data_i64() const { return i64_.data(); }
  const double* data_f64() const { return f64_.data(); }
  const int32_t* codes() const { return codes_.data(); }
  const std::shared_ptr<StringDict>& dict() const { return dict_; }

  /// Estimated in-memory footprint in bytes (codes + owned share of dict).
  uint64_t ByteSize() const;

  void Clear();

 private:
  void EnsureOwnDict();

  DataType type_;
  size_t size_ = 0;
  std::vector<int64_t> i64_;   // int64/timestamp/bool payload
  std::vector<double> f64_;    // double payload
  std::vector<int32_t> codes_; // string payload (dictionary codes)
  std::shared_ptr<StringDict> dict_;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace dex

#endif  // DEX_STORAGE_COLUMN_H_
