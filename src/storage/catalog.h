#ifndef DEX_STORAGE_CATALOG_H_
#define DEX_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/sim_disk.h"
#include "storage/hash_index.h"
#include "storage/table.h"

namespace dex {

/// \brief The paper's table taxonomy: T = M (metadata tables) ∪ A (actual
/// data tables). The two-stage plan splitter keys off this classification.
enum class TableKind {
  kMetadata,  // in M: loaded eagerly, queried in stage 1
  kActual,    // in A: resolved lazily via mount/cache-scan in stage 2
};

/// \brief Registry of the database's tables and their indexes.
///
/// Each table is backed by a storage object on the SimDisk so that cold
/// query runs charge the cost of faulting its pages in (the paper's "foreign
/// key indexes have to be brought into main memory to compute the joins").
///
/// Concurrency: a Catalog instance is *not* internally synchronized. The
/// serving layer treats catalogs as copy-on-write snapshot epochs (see
/// core/catalog_epoch.h): in-flight queries read a pinned, effectively
/// immutable instance while Refresh mutates a private `Clone()` and then
/// publishes it atomically. Tables, indexes, and storage objects are shared
/// between clones — which is why `ReplaceTable` must never mutate a storage
/// object a sibling clone might still be charging reads against.
class Catalog {
 public:
  explicit Catalog(SimDisk* disk) : disk_(disk) {}

  struct Entry {
    TablePtr table;
    TableKind kind;
    ObjectId storage = kInvalidObjectId;
    // shared_ptr (not unique_ptr) so snapshot clones share built indexes;
    // a HashIndex is immutable after Build.
    std::vector<std::shared_ptr<HashIndex>> indexes;
    std::vector<ObjectId> index_storage;
  };

  /// Registers `table`; fails if the name exists.
  Status AddTable(TablePtr table, TableKind kind);

  /// Swaps in a rebuilt table under an existing name (same schema width and
  /// types). Indexes over the old table are dropped — they referenced its
  /// rows. The replacement gets a *fresh* storage object (fully written, so
  /// the swap charges the same write cost as before); the old table's
  /// storage and index objects are intentionally left registered because a
  /// snapshot clone may still be charging reads against them. Used by
  /// Database::Refresh() to adopt rescanned metadata.
  Status ReplaceTable(TablePtr table);

  /// A shallow snapshot copy: shares the (immutable) tables, indexes, and
  /// storage objects of this catalog. Mutating the clone via ReplaceTable /
  /// AddTable / BuildIndex never alters this instance.
  std::unique_ptr<Catalog> Clone() const;

  Result<TablePtr> GetTable(const std::string& name) const;
  Result<TableKind> GetKind(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Re-registers the table's storage object to reflect its current size
  /// (call after bulk loads).
  Status SyncStorageSize(const std::string& name);

  /// Builds and registers a hash index over `key_columns` of `table_name`.
  Status BuildIndex(const std::string& table_name,
                    const std::vector<std::string>& key_columns,
                    const std::string& index_name);

  /// Index lookup by exact key-column set; nullptr when absent.
  const HashIndex* FindIndex(const std::string& table_name,
                             const std::vector<size_t>& key_columns) const;

  /// Charges SimDisk reads for the table's pages (a scan of a persistent
  /// table). Intermediates with no storage object charge nothing.
  Status ChargeTableScan(const std::string& name) const;
  /// Charges SimDisk reads for all pages of the table's indexes.
  Status ChargeIndexRead(const std::string& name) const;

  /// Charges point reads for the given row ids of a persistent table (an
  /// index-assisted fetch touches only the pages holding those rows).
  Status ChargeRowsRead(const std::string& name,
                        const std::vector<uint32_t>& rows) const;

  uint64_t TotalTableBytes(TableKind kind) const;
  uint64_t TotalIndexBytes() const;

  std::vector<std::string> TableNames() const;
  SimDisk* disk() const { return disk_; }

 private:
  SimDisk* disk_;
  std::map<std::string, Entry> entries_;
};

}  // namespace dex

#endif  // DEX_STORAGE_CATALOG_H_
