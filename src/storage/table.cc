#include "storage/table.h"

#include <algorithm>

#include "common/logging.h"

namespace dex {

Table::Table(std::string name, SchemaPtr schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  DEX_CHECK(schema_ != nullptr);
  columns_.reserve(schema_->num_fields());
  for (const Field& f : schema_->fields()) {
    columns_.push_back(std::make_shared<Column>(f.type));
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, table '" + name_ +
        "' has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    DEX_RETURN_NOT_OK(columns_[i]->AppendValue(values[i]).WithContext(
        "column '" + schema_->field(i).name + "'"));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("column count mismatch appending '" +
                                   other.name_ + "' to '" + name_ + "'");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->type() != other.columns_[i]->type()) {
      return Status::InvalidArgument("type mismatch in column " +
                                     std::to_string(i));
    }
    columns_[i]->AppendRange(*other.columns_[i], 0, other.num_rows());
  }
  num_rows_ += other.num_rows();
  return Status::OK();
}

Status Table::CommitAppendedRows(size_t n) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->size() != num_rows_ + n) {
      return Status::Internal("column " + std::to_string(i) + " of '" + name_ +
                              "' has " + std::to_string(columns_[i]->size()) +
                              " rows, expected " + std::to_string(num_rows_ + n));
    }
  }
  num_rows_ += n;
  return Status::OK();
}

uint64_t Table::ByteSize() const {
  uint64_t total = 0;
  for (const ColumnPtr& c : columns_) total += c->ByteSize();
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const Field& f : schema_->fields()) header.push_back(f.QualifiedName());
  cells.push_back(header);
  const size_t shown = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < columns_.size(); ++c) {
      row.push_back(GetValue(r, c).ToString());
    }
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(header.size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += '\n';
    }
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace dex
