#ifndef DEX_STORAGE_TABLE_H_
#define DEX_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace dex {

/// \brief A named columnar table: a schema plus one Column per field.
///
/// Tables serve three roles in the system: eagerly loaded base tables (Ei),
/// metadata tables (always loaded), and materialized intermediate results
/// (e.g. the stage-1 result read back through the result-scan access path).
class Table {
 public:
  Table(std::string name, SchemaPtr schema);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return columns_[i].get(); }

  /// Appends one row given as values in schema order.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends all rows of `other` (schemas must be type-compatible).
  Status AppendTable(const Table& other);

  /// Declare that `n` rows were appended directly through mutable_column
  /// bulk APIs (all columns must have size() == num_rows() + n).
  Status CommitAppendedRows(size_t n);

  Value GetValue(size_t row, size_t col) const {
    return columns_[col]->GetValue(row);
  }

  /// Sum of column footprints in bytes (the "MonetDB size" of Table 1).
  uint64_t ByteSize() const;

  /// Renders at most `max_rows` rows as an aligned ASCII table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  SchemaPtr schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace dex

#endif  // DEX_STORAGE_TABLE_H_
