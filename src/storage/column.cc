#include "storage/column.h"

#include "common/logging.h"

namespace dex {

int32_t StringDict::Intern(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(values_.size());
  values_.push_back(s);
  index_.emplace(s, code);
  byte_size_ += s.size() + sizeof(int32_t) + 16;  // rough heap overhead
  return code;
}

int32_t StringDict::Find(const std::string& s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

Column::Column(DataType type) : type_(type) {
  if (type_ == DataType::kString) dict_ = std::make_shared<StringDict>();
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kDouble:
      f64_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
    default:
      i64_.reserve(n);
  }
}

void Column::AppendInt64(int64_t v) {
  DEX_CHECK(IsIntegerBacked(type_));
  i64_.push_back(v);
  ++size_;
}

void Column::AppendDouble(double v) {
  DEX_CHECK(type_ == DataType::kDouble);
  f64_.push_back(v);
  ++size_;
}

void Column::EnsureOwnDict() {
  if (dict_.use_count() > 1) {
    // Clone-on-write: another column shares this dictionary.
    auto fresh = std::make_shared<StringDict>();
    for (int32_t& code : codes_) {
      code = fresh->Intern(dict_->At(code));
    }
    dict_ = std::move(fresh);
  }
}

void Column::AppendString(const std::string& v) {
  DEX_CHECK(type_ == DataType::kString);
  EnsureOwnDict();
  codes_.push_back(dict_->Intern(v));
  ++size_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    return Status::InvalidArgument("NULL values are not supported in columns");
  }
  switch (type_) {
    case DataType::kDouble: {
      DEX_ASSIGN_OR_RETURN(double d, v.AsDouble());
      AppendDouble(d);
      return Status::OK();
    }
    case DataType::kString:
      if (v.type() != DataType::kString) {
        return Status::InvalidArgument("cannot append " + v.ToString() +
                                       " to a STRING column");
      }
      AppendString(v.str());
      return Status::OK();
    default: {
      DEX_ASSIGN_OR_RETURN(int64_t i, v.AsInt64());
      AppendInt64(i);
      return Status::OK();
    }
  }
}

void Column::AppendFrom(const Column& src, size_t row) {
  DEX_CHECK(src.type_ == type_);
  switch (type_) {
    case DataType::kDouble:
      f64_.push_back(src.f64_[row]);
      break;
    case DataType::kString:
      if (dict_ == src.dict_) {
        codes_.push_back(src.codes_[row]);
      } else if (codes_.empty() && size_ == 0) {
        // Adopt the source dictionary for cheap slicing.
        dict_ = src.dict_;
        codes_.push_back(src.codes_[row]);
      } else {
        EnsureOwnDict();
        codes_.push_back(dict_->Intern(src.dict_->At(src.codes_[row])));
      }
      break;
    default:
      i64_.push_back(src.i64_[row]);
  }
  ++size_;
}

void Column::AppendRange(const Column& src, size_t start, size_t count) {
  DEX_CHECK(src.type_ == type_);
  DEX_CHECK_LE(start + count, src.size_);
  switch (type_) {
    case DataType::kDouble:
      f64_.insert(f64_.end(), src.f64_.begin() + start,
                  src.f64_.begin() + start + count);
      break;
    case DataType::kString:
      if (size_ == 0) dict_ = src.dict_;
      if (dict_ == src.dict_) {
        codes_.insert(codes_.end(), src.codes_.begin() + start,
                      src.codes_.begin() + start + count);
      } else {
        EnsureOwnDict();
        for (size_t i = start; i < start + count; ++i) {
          codes_.push_back(dict_->Intern(src.dict_->At(src.codes_[i])));
        }
      }
      break;
    default:
      i64_.insert(i64_.end(), src.i64_.begin() + start,
                  src.i64_.begin() + start + count);
  }
  size_ += count;
}

void Column::AppendGather(const Column& src, const std::vector<uint32_t>& rows) {
  DEX_CHECK(src.type_ == type_);
  switch (type_) {
    case DataType::kDouble:
      for (uint32_t r : rows) f64_.push_back(src.f64_[r]);
      break;
    case DataType::kString:
      if (size_ == 0) dict_ = src.dict_;
      if (dict_ == src.dict_) {
        for (uint32_t r : rows) codes_.push_back(src.codes_[r]);
      } else {
        EnsureOwnDict();
        for (uint32_t r : rows) {
          codes_.push_back(dict_->Intern(src.dict_->At(src.codes_[r])));
        }
      }
      break;
    default:
      for (uint32_t r : rows) i64_.push_back(src.i64_[r]);
  }
  size_ += rows.size();
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(i64_[row]);
    case DataType::kDouble:
      return Value::Double(f64_[row]);
    case DataType::kString:
      return Value::String(GetString(row));
    case DataType::kTimestamp:
      return Value::Timestamp(i64_[row]);
    case DataType::kBool:
      return Value::Bool(i64_[row] != 0);
  }
  return Value::Null();
}

uint64_t Column::ByteSize() const {
  switch (type_) {
    case DataType::kDouble:
      return f64_.size() * sizeof(double);
    case DataType::kString: {
      uint64_t bytes = codes_.size() * sizeof(int32_t);
      // Attribute the dictionary to its (possibly shared) owners once each.
      if (dict_) bytes += dict_->ByteSize() / dict_.use_count();
      return bytes;
    }
    default:
      return i64_.size() * sizeof(int64_t);
  }
}

void Column::Clear() {
  i64_.clear();
  f64_.clear();
  codes_.clear();
  if (type_ == DataType::kString) dict_ = std::make_shared<StringDict>();
  size_ = 0;
}

}  // namespace dex
