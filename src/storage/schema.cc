#include "storage/schema.h"

#include "common/string_utils.h"

namespace dex {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  const int idx = FindFieldIndex(name);
  if (idx >= 0) return static_cast<size_t>(idx);
  // Distinguish "not found" from "ambiguous" for a useful error message.
  const auto parts = Split(name, '.');
  if (parts.size() == 1) {
    int hits = 0;
    for (const Field& f : fields_) {
      if (f.name == name) ++hits;
    }
    if (hits > 1) {
      return Status::InvalidArgument("ambiguous column name '" + name + "'");
    }
  }
  return Status::NotFound("no column named '" + name + "' in schema " + ToString());
}

int Schema::FindFieldIndex(const std::string& name) const {
  const auto parts = Split(name, '.');
  if (parts.size() == 2) {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].qualifier == parts[0] && fields_[i].name == parts[1]) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  int found = -1;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      if (found >= 0) return -1;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  return found;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].QualifiedName();
    out += " ";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

std::shared_ptr<Schema> Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields();
  fields.insert(fields.end(), right.fields().begin(), right.fields().end());
  return std::make_shared<Schema>(std::move(fields));
}

}  // namespace dex
