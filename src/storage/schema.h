#ifndef DEX_STORAGE_SCHEMA_H_
#define DEX_STORAGE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace dex {

/// \brief A named, typed column slot.
///
/// `qualifier` is the owning table (or alias) used for name resolution; join
/// outputs carry fields from both inputs, each keeping its qualifier.
struct Field {
  std::string name;
  DataType type;
  std::string qualifier;  // may be empty for computed columns

  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// \brief An ordered list of fields describing a table or an operator output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Resolves `name`, optionally qualified as "table.column". Returns the
  /// field index. Unqualified names must be unambiguous.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Like FieldIndex but returns -1 instead of an error when absent/ambiguous.
  int FindFieldIndex(const std::string& name) const;

  /// "F(uri STRING, station STRING, ...)"-style rendering.
  std::string ToString() const;

  /// Concatenation for join outputs (left fields then right fields).
  static std::shared_ptr<Schema> Concat(const Schema& left, const Schema& right);

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace dex

#endif  // DEX_STORAGE_SCHEMA_H_
