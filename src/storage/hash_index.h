#ifndef DEX_STORAGE_HASH_INDEX_H_
#define DEX_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace dex {

/// \brief A hash index over one or two key columns of a table.
///
/// Used by the eager-ingestion (Ei) baseline: the paper builds primary and
/// foreign key indexes after loading ("building the primary and foreign key
/// indexes take four times longer than actual loading").
///
/// Representation: a flat array of (key hash, row id) pairs sorted by hash —
/// 12 bytes per entry, cache-friendly probes via binary search, no per-node
/// allocation. Probes verify candidates against the base columns, so string
/// keys work across dictionaries and hash collisions are harmless.
class HashIndex {
 public:
  /// Builds the index over `table` on `key_columns` (indices into the
  /// table's schema). The table must outlive the index.
  static Result<std::unique_ptr<HashIndex>> Build(
      const Table* table, std::vector<size_t> key_columns, std::string name);

  /// Appends row ids matching the key to `out`. `key` has one Value per key
  /// column.
  Status Probe(const std::vector<Value>& key, std::vector<uint32_t>* out) const;

  /// Hash of a key column cell, combined across key columns; exposed so the
  /// executor can probe with values taken directly from batch columns.
  uint64_t HashRow(const Table& t, size_t row) const;

  /// In-memory footprint (the "+keys" column of Table 1).
  uint64_t ByteSize() const;

  const std::string& name() const { return name_; }
  size_t num_entries() const { return hashes_.size(); }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

 private:
  HashIndex(const Table* table, std::vector<size_t> key_columns, std::string name)
      : table_(table), key_columns_(std::move(key_columns)), name_(std::move(name)) {}

  uint64_t HashKey(const std::vector<Value>& key) const;
  bool RowMatches(uint32_t row, const std::vector<Value>& key) const;

  const Table* table_;
  std::vector<size_t> key_columns_;
  std::string name_;
  // Parallel arrays sorted by hash.
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> rows_;
};

}  // namespace dex

#endif  // DEX_STORAGE_HASH_INDEX_H_
