#include "storage/catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace dex {

Status Catalog::AddTable(TablePtr table, TableKind kind) {
  DEX_CHECK(table != nullptr);
  const std::string& name = table->name();
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  Entry entry;
  entry.kind = kind;
  entry.storage = disk_->Register("table:" + name, table->ByteSize());
  entry.table = std::move(table);
  entries_.emplace(name, std::move(entry));
  return Status::OK();
}

Status Catalog::ReplaceTable(TablePtr table) {
  DEX_CHECK(table != nullptr);
  auto it = entries_.find(table->name());
  if (it == entries_.end()) {
    return Status::NotFound("no table '" + table->name() + "' to replace");
  }
  Entry& entry = it->second;
  const Schema& old_schema = *entry.table->schema();
  const Schema& new_schema = *table->schema();
  if (old_schema.num_fields() != new_schema.num_fields()) {
    return Status::InvalidArgument("replacement for '" + table->name() +
                                   "' has a different schema width");
  }
  for (size_t i = 0; i < old_schema.num_fields(); ++i) {
    if (old_schema.field(i).type != new_schema.field(i).type) {
      return Status::InvalidArgument("replacement for '" + table->name() +
                                     "' changes column types");
    }
  }
  // Drop references only — do not Unregister: a snapshot clone of this
  // catalog (an older epoch still serving a query) may share the old table's
  // storage and index objects and still charge reads against them. The stale
  // objects stay registered on the SimDisk until process exit; their pages
  // age out of the buffer pool through ordinary LRU pressure.
  entry.indexes.clear();
  entry.index_storage.clear();
  entry.table = std::move(table);
  entry.storage = disk_->Register("table:" + it->first, 0);
  return SyncStorageSize(it->first);
}

std::unique_ptr<Catalog> Catalog::Clone() const {
  auto clone = std::make_unique<Catalog>(disk_);
  for (const auto& [name, entry] : entries_) {
    Entry copy;
    copy.table = entry.table;
    copy.kind = entry.kind;
    copy.storage = entry.storage;
    copy.indexes = entry.indexes;
    copy.index_storage = entry.index_storage;
    clone->entries_.emplace(name, std::move(copy));
  }
  return clone;
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no table '" + name + "'");
  return it->second.table;
}

Result<TableKind> Catalog::GetKind(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no table '" + name + "'");
  return it->second.kind;
}

bool Catalog::HasTable(const std::string& name) const {
  return entries_.count(name) > 0;
}

Status Catalog::SyncStorageSize(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no table '" + name + "'");
  // Register the freshly written size as persisted bytes.
  const uint64_t size = it->second.table->ByteSize();
  DEX_RETURN_NOT_OK(disk_->Resize(it->second.storage, size));
  DEX_RETURN_NOT_OK(disk_->Write(it->second.storage, 0, size));
  return Status::OK();
}

Status Catalog::BuildIndex(const std::string& table_name,
                           const std::vector<std::string>& key_columns,
                           const std::string& index_name) {
  auto it = entries_.find(table_name);
  if (it == entries_.end()) {
    return Status::NotFound("no table '" + table_name + "'");
  }
  Entry& entry = it->second;
  std::vector<size_t> cols;
  for (const std::string& c : key_columns) {
    DEX_ASSIGN_OR_RETURN(size_t idx, entry.table->schema()->FieldIndex(c));
    cols.push_back(idx);
  }
  // Building the index reads the key columns and writes the index pages —
  // this is where Ei pays the paper's "4x longer than actual loading".
  DEX_RETURN_NOT_OK(disk_->Read(entry.storage, 0,
                                std::min(entry.table->ByteSize(),
                                         disk_->ObjectSize(entry.storage).ValueOr(0))));
  DEX_ASSIGN_OR_RETURN(auto index,
                       HashIndex::Build(entry.table.get(), cols, index_name));
  const ObjectId storage = disk_->Register("index:" + index_name, 0);
  DEX_RETURN_NOT_OK(disk_->Write(storage, 0, index->ByteSize()));
  entry.indexes.push_back(std::move(index));
  entry.index_storage.push_back(storage);
  return Status::OK();
}

const HashIndex* Catalog::FindIndex(const std::string& table_name,
                                    const std::vector<size_t>& key_columns) const {
  auto it = entries_.find(table_name);
  if (it == entries_.end()) return nullptr;
  for (const auto& index : it->second.indexes) {
    if (index->key_columns() == key_columns) return index.get();
  }
  return nullptr;
}

Status Catalog::ChargeTableScan(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no table '" + name + "'");
  if (it->second.storage == kInvalidObjectId) return Status::OK();
  return disk_->ReadAll(it->second.storage);
}

Status Catalog::ChargeIndexRead(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no table '" + name + "'");
  for (ObjectId id : it->second.index_storage) {
    DEX_RETURN_NOT_OK(disk_->ReadAll(id));
  }
  return Status::OK();
}

Status Catalog::ChargeRowsRead(const std::string& name,
                               const std::vector<uint32_t>& rows) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no table '" + name + "'");
  const Entry& entry = it->second;
  if (entry.storage == kInvalidObjectId || rows.empty()) return Status::OK();
  const uint64_t table_bytes = disk_->ObjectSize(entry.storage).ValueOr(0);
  const size_t num_rows = entry.table->num_rows();
  if (num_rows == 0 || table_bytes == 0) return Status::OK();
  const uint64_t width = std::max<uint64_t>(1, table_bytes / num_rows);
  for (uint32_t row : rows) {
    const uint64_t offset = std::min<uint64_t>(row * width, table_bytes - 1);
    const uint64_t len = std::min<uint64_t>(width, table_bytes - offset);
    DEX_RETURN_NOT_OK(disk_->Read(entry.storage, offset, len));
  }
  return Status::OK();
}

uint64_t Catalog::TotalTableBytes(TableKind kind) const {
  uint64_t total = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind == kind) total += entry.table->ByteSize();
  }
  return total;
}

uint64_t Catalog::TotalIndexBytes() const {
  uint64_t total = 0;
  for (const auto& [name, entry] : entries_) {
    for (const auto& index : entry.indexes) total += index->ByteSize();
  }
  return total;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace dex
