#include "storage/hash_index.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/logging.h"

namespace dex {

namespace {

inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

uint64_t HashCell(const Column& col, size_t row) {
  switch (col.type()) {
    case DataType::kDouble:
      return std::hash<double>{}(col.GetDouble(row));
    case DataType::kString:
      return std::hash<std::string>{}(col.GetString(row));
    default:
      return std::hash<int64_t>{}(col.GetInt64(row));
  }
}

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case DataType::kDouble:
      return std::hash<double>{}(v.dbl());
    case DataType::kString:
      return std::hash<std::string>{}(v.str());
    default:
      return std::hash<int64_t>{}(v.int64());
  }
}

}  // namespace

Result<std::unique_ptr<HashIndex>> HashIndex::Build(
    const Table* table, std::vector<size_t> key_columns, std::string name) {
  if (table == nullptr || key_columns.empty()) {
    return Status::InvalidArgument("HashIndex needs a table and >=1 key column");
  }
  for (size_t c : key_columns) {
    if (c >= table->num_columns()) {
      return Status::InvalidArgument("key column " + std::to_string(c) +
                                     " out of range for '" + table->name() + "'");
    }
  }
  std::unique_ptr<HashIndex> index(
      new HashIndex(table, std::move(key_columns), std::move(name)));
  const size_t n = table->num_rows();
  index->hashes_.resize(n);
  index->rows_.resize(n);
  for (size_t row = 0; row < n; ++row) {
    index->hashes_[row] = index->HashRow(*table, row);
    index->rows_[row] = static_cast<uint32_t>(row);
  }
  // Sort both arrays by hash (indirect sort on a permutation, then apply).
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return index->hashes_[a] < index->hashes_[b];
  });
  std::vector<uint64_t> sorted_hashes(n);
  std::vector<uint32_t> sorted_rows(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_hashes[i] = index->hashes_[perm[i]];
    sorted_rows[i] = index->rows_[perm[i]];
  }
  index->hashes_ = std::move(sorted_hashes);
  index->rows_ = std::move(sorted_rows);
  return index;
}

uint64_t HashIndex::HashRow(const Table& t, size_t row) const {
  uint64_t h = 0;
  for (size_t c : key_columns_) {
    h = HashCombine(h, HashCell(*t.column(c), row));
  }
  return h;
}

uint64_t HashIndex::HashKey(const std::vector<Value>& key) const {
  uint64_t h = 0;
  for (const Value& v : key) {
    h = HashCombine(h, HashValue(v));
  }
  return h;
}

bool HashIndex::RowMatches(uint32_t row, const std::vector<Value>& key) const {
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (!table_->GetValue(row, key_columns_[i]).Equals(key[i])) return false;
  }
  return true;
}

Status HashIndex::Probe(const std::vector<Value>& key,
                        std::vector<uint32_t>* out) const {
  if (key.size() != key_columns_.size()) {
    return Status::InvalidArgument("probe key arity mismatch for index '" +
                                   name_ + "'");
  }
  const uint64_t h = HashKey(key);
  auto begin = std::lower_bound(hashes_.begin(), hashes_.end(), h);
  for (auto it = begin; it != hashes_.end() && *it == h; ++it) {
    const uint32_t row = rows_[it - hashes_.begin()];
    if (RowMatches(row, key)) out->push_back(row);
  }
  return Status::OK();
}

uint64_t HashIndex::ByteSize() const {
  return hashes_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
}

}  // namespace dex
