#include "shard/sharded_repository.h"

#include <algorithm>
#include <set>

#include "common/fnv.h"
#include "obs/flight_recorder.h"

namespace dex {

ShardedRepository::ShardedRepository(SimDisk* disk, const Options& options)
    : options_([&] {
        Options o = options;
        o.num_shards = std::max(1, o.num_shards);
        return o;
      }()) {
  network_ = std::make_unique<SimNetwork>(disk, options_.net);
  for (int s = 0; s < options_.num_shards; ++s) {
    network_->AddLink("shard-" + std::to_string(s));
  }
  file_counts_.assign(static_cast<size_t>(options_.num_shards), 0);
}

int ShardedRepository::ClampShardCount(int requested) const {
  if (requested <= 0) return options_.num_shards;
  return std::min(requested, options_.num_shards);
}

std::string ShardedRepository::StationKeyOf(const std::string& uri) {
  const size_t file_sep = uri.find_last_of('/');
  if (file_sep == std::string::npos || file_sep == 0) return "";
  const size_t dir_sep = uri.find_last_of('/', file_sep - 1);
  const size_t begin = (dir_sep == std::string::npos) ? 0 : dir_sep + 1;
  return uri.substr(begin, file_sep - begin);
}

void ShardedRepository::AssignCatalog(const std::vector<std::string>& uris) {
  // Sorted-set rebuild keeps the station→range map a pure function of the
  // catalog contents, independent of enumeration order.
  std::set<std::string> stations;
  for (const std::string& uri : uris) {
    std::string key = StationKeyOf(uri);
    if (!key.empty()) stations.insert(std::move(key));
  }
  std::lock_guard<std::mutex> lock(mu_);
  stations_.assign(stations.begin(), stations.end());
  file_counts_.assign(static_cast<size_t>(options_.num_shards), 0);
  for (const std::string& uri : uris) {
    ++file_counts_[static_cast<size_t>(
        ShardOfLocked(uri, options_.num_shards))];
  }
}

int ShardedRepository::ShardOf(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ShardOfLocked(uri, options_.num_shards);
}

int ShardedRepository::ShardOf(const std::string& uri, int n) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ShardOfLocked(uri, n);
}

int ShardedRepository::ShardOfLocked(const std::string& uri, int n) const {
  if (n <= 1) return 0;
  const uint64_t un = static_cast<uint64_t>(n);
  if (options_.policy == Policy::kStationRange && !stations_.empty()) {
    const std::string key = StationKeyOf(uri);
    if (!key.empty()) {
      auto it = std::lower_bound(stations_.begin(), stations_.end(), key);
      if (it != stations_.end() && *it == key) {
        const uint64_t idx =
            static_cast<uint64_t>(it - stations_.begin());
        // Contiguous chunks of the sorted station list: station idx of S
        // stations lands on shard floor(idx * n / S).
        return static_cast<int>(idx * un / stations_.size());
      }
    }
    // No station directory (or a station unseen by AssignCatalog): fall
    // through to the stateless hash so the file still has a stable owner.
  }
  return static_cast<int>(Fnv1aString(uri) % un);
}

SimNetwork::LinkId ShardedRepository::LinkOf(int shard) const {
  return static_cast<SimNetwork::LinkId>(shard);
}

Status ShardedRepository::KillShard(int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return Status::InvalidArgument("no such shard " + std::to_string(shard));
  }
  const Status st = network_->FailLink(LinkOf(shard));
  if (st.ok()) {
    obs::FlightEvent e;
    e.kind = "shard_kill";
    e.shard = shard;
    e.detail = "link shard-" + std::to_string(shard) + " failed";
    obs::FlightRecorder::Global().Record(std::move(e));
  }
  return st;
}

Status ShardedRepository::HealShard(int shard) {
  if (shard < 0 || shard >= options_.num_shards) {
    return Status::InvalidArgument("no such shard " + std::to_string(shard));
  }
  const Status st = network_->HealLink(LinkOf(shard));
  if (st.ok()) {
    obs::FlightEvent e;
    e.kind = "shard_heal";
    e.shard = shard;
    e.detail = "link shard-" + std::to_string(shard) + " healed";
    obs::FlightRecorder::Global().Record(std::move(e));
  }
  return st;
}

bool ShardedRepository::IsShardAlive(int shard) const {
  if (shard < 0 || shard >= options_.num_shards) return false;
  return !network_->IsFailed(LinkOf(shard));
}

bool ShardedRepository::HasDeadShards() const {
  for (int s = 0; s < options_.num_shards; ++s) {
    if (!IsShardAlive(s)) return true;
  }
  return false;
}

std::vector<ShardedRepository::SliceStats> ShardedRepository::StatusRows()
    const {
  std::vector<SliceStats> rows;
  rows.reserve(static_cast<size_t>(options_.num_shards));
  std::vector<size_t> counts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counts = file_counts_;
  }
  for (int s = 0; s < options_.num_shards; ++s) {
    SliceStats row;
    row.shard = s;
    row.files = counts[static_cast<size_t>(s)];
    Result<SimNetwork::LinkStats> link = network_->link_stats(LinkOf(s));
    if (link.ok()) {
      row.alive = !link->failed;
      row.net_messages = link->messages;
      row.net_bytes = link->bytes;
      row.net_sim_nanos = link->sim_nanos;
      row.net_resends = link->resends;
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace dex
