#ifndef DEX_SHARD_SHARDED_REPOSITORY_H_
#define DEX_SHARD_SHARDED_REPOSITORY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/sim_disk.h"
#include "net/sim_network.h"

namespace dex {

/// \brief Partitions the file catalog across N virtual shards and owns the
/// simulated interconnect between the coordinator and those shards.
///
/// Each shard models one storage node: it owns a disjoint slice of the
/// repository's files and is reached over its own SimNetwork link. The
/// partition is a pure function of the file set and the policy — never of
/// thread timing — so every query, at every worker count, sees the same
/// file→shard map:
///
///  - kHash: shard = FNV-1a(uri) mod n. Stateless and stable under catalog
///    growth (a new file lands on its hash shard without moving others).
///  - kStationRange: distinct station keys (the parent directory of
///    `root/<station>/NET.STA.CHA.day.mseed`) are sorted and chunked into n
///    contiguous ranges, so one station's files — the unit most queries
///    filter on — co-locate on one shard. Files with no station directory
///    fall back to the hash policy.
///
/// The station table is (re)built by AssignCatalog, which the stage-1 scan
/// calls right after enumeration — both at Open and on every Refresh — so
/// the map is in sync with the catalog slice an epoch publishes.
///
/// Queries may re-partition on the fly: ShardOf(uri, n) answers for any
/// n ≤ the configured shard count (QueryOptions::num_shards), reusing the
/// same station table. Killing a shard fails its link; planning then routes
/// that shard's files to the partial-results path (files_skipped_shard)
/// instead of letting every transfer fail mid-flight.
class ShardedRepository {
 public:
  enum class Policy {
    kHash,
    kStationRange,
  };

  struct Options {
    /// Number of virtual shards the catalog is partitioned into (≥ 1).
    /// 1 means "unsharded": everything on one node, no network charges.
    int num_shards = 1;
    Policy policy = Policy::kHash;
    /// Interconnect model shared by all shard links (per-shard fault
    /// streams are derived inside SimNetwork from net.fault_seed).
    SimNetwork::Options net;
  };

  /// One row of `.shards` / shard observability: the shard's slice of the
  /// catalog plus what its link has charged so far.
  struct SliceStats {
    int shard = 0;
    size_t files = 0;       // catalog files owned under the configured count
    bool alive = true;
    uint64_t net_messages = 0;
    uint64_t net_bytes = 0;
    uint64_t net_sim_nanos = 0;
    uint64_t net_resends = 0;
  };

  /// `disk` is the simulated clock the interconnect charges into; must
  /// outlive the repository. One link per configured shard is registered
  /// up front ("shard-0" … "shard-N-1").
  ShardedRepository(SimDisk* disk, const Options& options);

  ShardedRepository(const ShardedRepository&) = delete;
  ShardedRepository& operator=(const ShardedRepository&) = delete;

  int num_shards() const { return options_.num_shards; }
  const Options& options() const { return options_; }
  SimNetwork* network() { return network_.get(); }

  /// True when sharding is actually in play (N > 1). With one shard the
  /// executors keep their classic single-node cost model.
  bool enabled() const { return options_.num_shards > 1; }

  /// Clamps a per-query shard-count request into [1, num_shards]; 0 (the
  /// QueryOptions default) means "use the configured count".
  int ClampShardCount(int requested) const;

  /// Rebuilds the partition tables from the enumerated catalog. Called by
  /// the stage-1 scan after EnumerateFiles, before any assignment is read,
  /// so Open/Refresh and the queries they publish to agree on the map.
  void AssignCatalog(const std::vector<std::string>& uris);

  /// Shard owning `uri` under the configured shard count.
  int ShardOf(const std::string& uri) const;
  /// Shard owning `uri` if the catalog were split into `n` shards
  /// (per-query re-partition; `n` must already be clamped).
  int ShardOf(const std::string& uri, int n) const;

  /// The network link a shard is reached over (link ids are registered in
  /// shard order, so this is the identity map — kept explicit so callers
  /// never bake that assumption in).
  SimNetwork::LinkId LinkOf(int shard) const;

  /// Dead-shard controls: a killed shard's link refuses every transfer and
  /// planning skips its files (deterministic partial results).
  Status KillShard(int shard);
  Status HealShard(int shard);
  bool IsShardAlive(int shard) const;
  bool HasDeadShards() const;

  /// One row per configured shard, for `.shards` and metrics publication.
  std::vector<SliceStats> StatusRows() const;

  /// The station key used by kStationRange: the parent-directory name of
  /// `uri`, or "" when the uri has no directory component.
  static std::string StationKeyOf(const std::string& uri);

 private:
  int ShardOfLocked(const std::string& uri, int n) const;

  const Options options_;
  std::unique_ptr<SimNetwork> network_;
  mutable std::mutex mu_;
  std::vector<std::string> stations_;   // sorted distinct station keys
  std::vector<size_t> file_counts_;     // per shard, configured count
};

}  // namespace dex

#endif  // DEX_SHARD_SHARDED_REPOSITORY_H_
