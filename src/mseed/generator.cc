#include "mseed/generator.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "common/time_utils.h"
#include "io/file_io.h"
#include "mseed/writer.h"

namespace dex::mseed {

namespace {

// Plausible European station codes; ISK (Istanbul) first, as in the paper.
const char* kStations[] = {"ISK", "ANK", "IZM", "ATH", "SOF", "BUC",
                           "VIE", "AMS", "PAR", "ROM", "MAD", "OSL",
                           "HEL", "WAR", "PRG", "BER"};
// SEED channel naming: B=broadband H=high-freq L=long-period; BHE first.
const char* kChannels[] = {"BHE", "BHN", "BHZ", "HHE", "HHN", "HHZ",
                           "LHE", "LHN", "LHZ", "EHE", "EHN", "EHZ"};

}  // namespace

std::vector<std::string> GeneratorStationCodes(int n) {
  std::vector<std::string> out;
  const int available = static_cast<int>(sizeof(kStations) / sizeof(kStations[0]));
  for (int i = 0; i < n; ++i) {
    if (i < available) {
      out.push_back(kStations[i]);
    } else {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "S%03d", i);
      out.push_back(buf);
    }
  }
  return out;
}

std::vector<std::string> GeneratorChannelCodes(int n) {
  std::vector<std::string> out;
  const int available = static_cast<int>(sizeof(kChannels) / sizeof(kChannels[0]));
  for (int i = 0; i < n; ++i) {
    if (i < available) {
      out.push_back(kChannels[i]);
    } else {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "C%02dZ", i);
      out.push_back(buf);
    }
  }
  return out;
}

std::vector<int32_t> SynthesizeWaveform(uint64_t seed, size_t num_samples,
                                        bool with_event) {
  Random rng(seed);
  std::vector<int32_t> samples(num_samples);
  // Microseism background: two slow oscillations plus Gaussian noise. Small
  // deltas keep Steim1 at ~1 byte/sample, matching the paper's "highly
  // compressed" time series.
  const double f1 = 0.05 + rng.NextDouble() * 0.1;
  const double f2 = 0.2 + rng.NextDouble() * 0.3;
  const double a1 = 20.0 + rng.NextDouble() * 30.0;
  const double a2 = 5.0 + rng.NextDouble() * 10.0;
  const double phase1 = rng.NextDouble() * 6.283185307;
  const double phase2 = rng.NextDouble() * 6.283185307;

  // Optional event: exponentially decaying high-amplitude oscillation.
  const size_t event_start = with_event ? rng.Uniform(num_samples) : 0;
  const double event_amp = 2000.0 + rng.NextDouble() * 6000.0;
  const double event_freq = 1.5 + rng.NextDouble() * 3.0;
  const double event_decay = 0.002 + rng.NextDouble() * 0.01;

  for (size_t i = 0; i < num_samples; ++i) {
    double v = a1 * std::sin(f1 * static_cast<double>(i) + phase1) +
               a2 * std::sin(f2 * static_cast<double>(i) + phase2) +
               rng.NextGaussian() * 3.0;
    if (with_event && i >= event_start) {
      const double t = static_cast<double>(i - event_start);
      v += event_amp * std::exp(-event_decay * t) * std::sin(event_freq * t);
    }
    samples[i] = static_cast<int32_t>(v);
  }
  return samples;
}

Result<GeneratedRepo> GenerateRepository(const std::string& root,
                                         const GeneratorOptions& options) {
  if (options.num_stations < 1 || options.channels_per_station < 1 ||
      options.num_days < 1 || options.records_per_file < 1 ||
      options.sample_rate_hz <= 0.0) {
    return Status::InvalidArgument("generator options out of range");
  }
  DEX_ASSIGN_OR_RETURN(int64_t day0_ms, ParseIso8601(options.start_day));

  const auto stations = GeneratorStationCodes(options.num_stations);
  const auto channels = GeneratorChannelCodes(options.channels_per_station);
  const int64_t record_span_ms = kMillisPerDay / options.records_per_file;
  const size_t samples_per_record = static_cast<size_t>(
      static_cast<double>(record_span_ms) / 1000.0 * options.sample_rate_hz);
  if (samples_per_record == 0) {
    return Status::InvalidArgument(
        "sample_rate_hz too low for records_per_file: empty records");
  }

  GeneratedRepo repo;
  repo.root = root;
  Random rng(options.seed);

  for (int day = 0; day < options.num_days; ++day) {
    const int64_t day_start = day0_ms + day * kMillisPerDay;
    for (const std::string& station : stations) {
      for (const std::string& channel : channels) {
        std::vector<RecordData> records;
        for (int r = 0; r < options.records_per_file; ++r) {
          if (rng.NextBool(options.gap_probability)) continue;  // data gap
          RecordData rec;
          rec.network = options.network;
          rec.station = station;
          rec.channel = channel;
          rec.location = "00";
          rec.start_time_ms = day_start + r * record_span_ms;
          rec.sample_rate_hz = options.sample_rate_hz;
          rec.encoding = options.encoding;
          rec.samples = SynthesizeWaveform(
              rng.Next(), samples_per_record,
              rng.NextBool(options.event_probability));
          repo.total_samples += rec.samples.size();
          records.push_back(std::move(rec));
        }
        // ORFEUS-pond-style layout: <root>/<station>/<NET>.<STA>.<CHA>.<year>.<day>.mseed
        char name[128];
        std::snprintf(name, sizeof(name), "%s/%s/%s.%s.%s.%03d.mseed",
                      root.c_str(), station.c_str(), options.network.c_str(),
                      station.c_str(), channel.c_str(), day);
        const std::string image = SerializeFile(records);
        DEX_RETURN_NOT_OK(WriteStringToFile(name, image));
        repo.total_bytes += image.size();
        repo.total_records += records.size();
        repo.files.push_back(name);
      }
    }
  }
  return repo;
}

}  // namespace dex::mseed
