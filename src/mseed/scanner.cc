#include "mseed/scanner.h"

#include "io/file_io.h"
#include "mseed/reader.h"

namespace dex::mseed {

Result<ScanResult> ScanFile(const std::string& uri) {
  ScanResult out;
  DEX_ASSIGN_OR_RETURN(uint64_t size, FileSize(uri));
  DEX_ASSIGN_OR_RETURN(int64_t mtime, FileMtimeMillis(uri));
  DEX_ASSIGN_OR_RETURN(std::vector<RecordInfo> infos, Reader::ScanHeaders(uri));

  FileMeta fm;
  fm.uri = uri;
  fm.size_bytes = size;
  fm.mtime_ms = mtime;
  fm.num_records = static_cast<uint32_t>(infos.size());
  if (!infos.empty()) {
    fm.network = infos[0].header.network;
    fm.station = infos[0].header.station;
    fm.channel = infos[0].header.channel;
    fm.location = infos[0].header.location;
  }
  out.files.push_back(fm);
  out.total_bytes = size;

  for (size_t i = 0; i < infos.size(); ++i) {
    const RecordInfo& info = infos[i];
    RecordMeta rm;
    rm.uri = uri;
    rm.record_id = static_cast<int64_t>(i);
    rm.start_time_ms = info.header.start_time_ms;
    rm.end_time_ms = info.header.EndTimeMs();
    rm.sample_rate_hz = info.header.sample_rate_hz;
    rm.num_samples = info.header.num_samples;
    rm.data_offset = info.data_offset;
    rm.data_bytes = info.header.data_bytes;
    out.records.push_back(std::move(rm));
  }
  return out;
}

}  // namespace dex::mseed
