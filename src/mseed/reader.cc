#include "mseed/reader.h"

#include "io/file_io.h"
#include "mseed/steim.h"
#include "mseed/steim2.h"

namespace dex::mseed {

Result<std::vector<RecordInfo>> Reader::ScanHeadersInMemory(
    const std::string& file_image) {
  std::vector<RecordInfo> out;
  uint64_t offset = 0;
  while (offset < file_image.size()) {
    auto header = RecordHeader::Parse(file_image, offset);
    DEX_RETURN_NOT_OK(header.status());
    RecordInfo info;
    info.header = *header;
    info.header_offset = offset;
    info.data_offset = offset + RecordHeader::kSerializedBytes;
    if (info.data_offset + info.header.data_bytes > file_image.size()) {
      return Status::Corruption("record payload runs past end of file at offset " +
                                std::to_string(offset));
    }
    offset = info.data_offset + info.header.data_bytes;
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::vector<RecordInfo>> Reader::ScanHeaders(const std::string& path) {
  // Header scanning reads the whole byte stream but decodes nothing; for the
  // file sizes involved this is dominated by the open anyway, and it keeps
  // the corruption checks exhaustive.
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &image));
  return ScanHeadersInMemory(image);
}

Result<std::vector<DecodedRecord>> Reader::ReadAllRecords(const std::string& path) {
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &image));
  DEX_ASSIGN_OR_RETURN(std::vector<RecordInfo> infos, ScanHeadersInMemory(image));
  std::vector<DecodedRecord> out;
  out.reserve(infos.size());
  for (const RecordInfo& info : infos) {
    DecodedRecord rec;
    rec.header = info.header;
    const std::string payload =
        image.substr(info.data_offset, info.header.data_bytes);
    if (info.header.encoding == 2) {
      DEX_ASSIGN_OR_RETURN(rec.samples,
                           Steim2::Decode(payload, info.header.num_samples));
    } else {
      DEX_ASSIGN_OR_RETURN(rec.samples,
                           Steim1::Decode(payload, info.header.num_samples));
    }
    out.push_back(std::move(rec));
  }
  return out;
}

Result<DecodedRecord> Reader::ReadRecord(const std::string& path,
                                         const RecordInfo& info) {
  std::string payload;
  DEX_RETURN_NOT_OK(
      ReadFileRange(path, info.data_offset, info.header.data_bytes, &payload));
  DecodedRecord rec;
  rec.header = info.header;
  if (info.header.encoding == 2) {
    DEX_ASSIGN_OR_RETURN(rec.samples,
                         Steim2::Decode(payload, info.header.num_samples));
  } else {
    DEX_ASSIGN_OR_RETURN(rec.samples,
                         Steim1::Decode(payload, info.header.num_samples));
  }
  return rec;
}

}  // namespace dex::mseed
