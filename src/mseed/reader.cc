#include "mseed/reader.h"

#include <cstring>

#include "io/file_io.h"
#include "mseed/steim.h"
#include "mseed/steim2.h"

namespace dex::mseed {

namespace {

// Record boundaries are 64-byte aligned: the header is 64 bytes and Steim
// payloads are whole 64-byte frames. Resynchronization only needs to probe
// aligned offsets.
constexpr size_t kBoundaryBytes = 64;

// Keep heavily damaged files from flooding the report; the skip counters
// stay exact even when warnings are suppressed.
constexpr size_t kMaxSalvageWarnings = 16;

Result<std::vector<int32_t>> DecodePayload(const RecordHeader& header,
                                           const std::string& payload) {
  if (header.encoding == 2) return Steim2::Decode(payload, header.num_samples);
  return Steim1::Decode(payload, header.num_samples);
}

/// Decodes one record under the pruner's plan (plan = full decode when
/// `pruner` is null). A selective decode that fails its zone-map
/// verification degrades to a full decode; only a failing *full* decode
/// propagates as an error (the caller's corruption policy applies).
Result<DecodedRecord> DecodePlanned(const RecordHeader& header,
                                    const std::string& payload, size_t index,
                                    RecordPruner* pruner,
                                    PruneStats* prune_stats) {
  DecodedRecord rec;
  rec.header = header;
  RecordDecodePlan plan;
  if (pruner != nullptr) plan = pruner->Plan(index, header);
  if (plan.skip_record) {
    rec.sparse = true;
    if (prune_stats != nullptr) ++prune_stats->records_skipped;
    return rec;
  }
  if (plan.frames != nullptr && header.encoding == 1) {
    rec.sparse = true;
    Status st = Steim1::DecodeSelected(payload, header.num_samples,
                                       *plan.frames, plan.keep,
                                       &rec.sample_index, &rec.samples);
    if (st.ok()) {
      if (prune_stats != nullptr) {
        for (bool k : plan.keep) {
          if (k) {
            ++prune_stats->frames_decoded;
          } else {
            ++prune_stats->frames_skipped;
          }
        }
      }
      return rec;
    }
    // The zone map disagreed with the bytes (stale or damaged): degrade to a
    // full decode and re-harvest authoritative stats. Cost, never wrong rows.
    rec.sparse = false;
    rec.sample_index.clear();
    rec.samples.clear();
    if (prune_stats != nullptr) ++prune_stats->fallbacks;
    plan.harvest = true;
  }
  Result<std::vector<int32_t>> samples =
      (header.encoding != 2 && plan.harvest)
          ? Steim1::DecodeWithStats(payload, header.num_samples,
                                    &rec.frame_stats)
          : DecodePayload(header, payload);
  DEX_RETURN_NOT_OK(samples.status());
  rec.samples = std::move(*samples);
  return rec;
}

// Corruption messages must be actionable from a quarantine warning: qualify
// the codec's payload-relative message with the source URI and the record's
// byte offset in that file.
Status WithRecordContext(const Status& st, const std::string& uri,
                         size_t record_index, uint64_t header_offset) {
  return st.WithContext("record " + std::to_string(record_index) +
                        " at offset " + std::to_string(header_offset) +
                        " of '" + uri + "'");
}

}  // namespace

Result<std::vector<RecordInfo>> Reader::ScanHeadersInMemory(
    const std::string& file_image) {
  std::vector<RecordInfo> out;
  uint64_t offset = 0;
  while (offset < file_image.size()) {
    auto header = RecordHeader::Parse(file_image, offset);
    DEX_RETURN_NOT_OK(header.status());
    RecordInfo info;
    info.header = *header;
    info.header_offset = offset;
    info.data_offset = offset + RecordHeader::kSerializedBytes;
    if (info.data_offset + info.header.data_bytes > file_image.size()) {
      return Status::Corruption("record payload runs past end of file at offset " +
                                std::to_string(offset));
    }
    offset = info.data_offset + info.header.data_bytes;
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::vector<RecordInfo>> Reader::ScanHeaders(const std::string& path) {
  // Header scanning reads the whole byte stream but decodes nothing; for the
  // file sizes involved this is dominated by the open anyway, and it keeps
  // the corruption checks exhaustive.
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &image));
  auto infos = ScanHeadersInMemory(image);
  if (!infos.ok()) return infos.status().WithContext("scanning '" + path + "'");
  return infos;
}

Result<std::vector<DecodedRecord>> Reader::ReadAllRecords(
    const std::string& path, RecordPruner* pruner, PruneStats* prune_stats) {
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &image));
  auto scan = ScanHeadersInMemory(image);
  if (!scan.ok()) return scan.status().WithContext("scanning '" + path + "'");
  const std::vector<RecordInfo>& infos = *scan;
  std::vector<DecodedRecord> out;
  out.reserve(infos.size());
  for (size_t i = 0; i < infos.size(); ++i) {
    const RecordInfo& info = infos[i];
    const std::string payload =
        image.substr(info.data_offset, info.header.data_bytes);
    auto rec = DecodePlanned(info.header, payload, i, pruner, prune_stats);
    if (!rec.ok()) {
      return WithRecordContext(rec.status(), path, i, info.header_offset);
    }
    out.push_back(std::move(*rec));
  }
  return out;
}

std::vector<DecodedRecord> Reader::SalvageInMemory(const std::string& file_image,
                                                   const std::string& uri,
                                                   SalvageReport* report,
                                                   RecordPruner* pruner,
                                                   PruneStats* prune_stats) {
  SalvageReport scratch;
  SalvageReport& rep = report != nullptr ? *report : scratch;
  rep = SalvageReport{};

  std::vector<DecodedRecord> out;
  const size_t n = file_image.size();
  size_t offset = 0;
  bool corruption_seen = false;

  auto warn = [&rep](std::string msg) {
    if (rep.warnings.size() < kMaxSalvageWarnings) {
      rep.warnings.push_back(std::move(msg));
    }
  };

  // Next plausible record boundary strictly after `from`: a 64-byte aligned
  // offset whose bytes carry the header magic, parse as a header, and whose
  // payload fits in the file.
  auto resync = [&](size_t from) -> size_t {
    size_t o = (from / kBoundaryBytes + 1) * kBoundaryBytes;
    for (; o + RecordHeader::kSerializedBytes <= n; o += kBoundaryBytes) {
      if (std::memcmp(file_image.data() + o, RecordHeader::kMagic, 4) != 0) {
        continue;
      }
      auto h = RecordHeader::Parse(file_image, o);
      if (!h.ok()) continue;
      if (o + RecordHeader::kSerializedBytes + h->data_bytes > n) continue;
      return o;
    }
    return std::string::npos;
  };

  while (offset + RecordHeader::kSerializedBytes <= n) {
    auto header = RecordHeader::Parse(file_image, offset);
    const bool payload_fits =
        header.ok() &&
        offset + RecordHeader::kSerializedBytes + header->data_bytes <= n;
    if (payload_fits) {
      const std::string payload = file_image.substr(
          offset + RecordHeader::kSerializedBytes, header->data_bytes);
      auto rec = DecodePlanned(*header, payload, out.size(), pruner,
                               prune_stats);
      if (rec.ok()) {
        out.push_back(std::move(*rec));
        if (corruption_seen) {
          ++rep.records_salvaged;
        } else {
          ++rep.records_ok;
        }
        offset += RecordHeader::kSerializedBytes + header->data_bytes;
        continue;
      }
      // The header is intact, so the next record boundary is still known:
      // drop only this record's payload and keep going.
      corruption_seen = true;
      ++rep.records_skipped;
      rep.bytes_skipped += RecordHeader::kSerializedBytes + header->data_bytes;
      warn(WithRecordContext(rec.status(), uri, out.size(), offset)
               .ToString());
      offset += RecordHeader::kSerializedBytes + header->data_bytes;
      continue;
    }
    // Corrupt header — or a header whose declared payload runs past EOF
    // (possibly a mangled length field): scan forward for the next boundary.
    corruption_seen = true;
    ++rep.records_skipped;
    const Status why =
        header.ok() ? Status::Corruption("record payload runs past end of file")
                    : header.status();
    const size_t next = resync(offset);
    if (next == std::string::npos) {
      rep.bytes_skipped += n - offset;
      warn(WithRecordContext(why, uri, out.size(), offset).ToString() +
           "; no further record boundary found, dropping " +
           std::to_string(n - offset) + " bytes");
      return out;
    }
    rep.bytes_skipped += next - offset;
    warn(WithRecordContext(why, uri, out.size(), offset).ToString() +
         "; resynchronized at offset " + std::to_string(next));
    offset = next;
  }
  if (offset < n) {
    // Trailing fragment shorter than a header: a truncated tail.
    ++rep.records_skipped;
    rep.bytes_skipped += n - offset;
    warn("truncated record header at offset " + std::to_string(offset) +
         " of '" + uri + "' (" + std::to_string(n - offset) +
         " trailing bytes)");
  }
  return out;
}

Result<std::vector<DecodedRecord>> Reader::ReadAllRecordsSalvage(
    const std::string& path, SalvageReport* report, RecordPruner* pruner,
    PruneStats* prune_stats) {
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &image));
  return SalvageInMemory(image, path, report, pruner, prune_stats);
}

Result<DecodedRecord> Reader::ReadRecord(const std::string& path,
                                         const RecordInfo& info) {
  std::string payload;
  DEX_RETURN_NOT_OK(
      ReadFileRange(path, info.data_offset, info.header.data_bytes, &payload));
  DecodedRecord rec;
  rec.header = info.header;
  auto samples = DecodePayload(info.header, payload);
  if (!samples.ok()) {
    return samples.status().WithContext(
        "record at offset " + std::to_string(info.header_offset) + " of '" +
        path + "'");
  }
  rec.samples = std::move(*samples);
  return rec;
}

}  // namespace dex::mseed
