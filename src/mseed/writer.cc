#include "mseed/writer.h"

#include "io/file_io.h"
#include "mseed/steim.h"
#include "mseed/steim2.h"

namespace dex::mseed {

std::string SerializeFile(const std::vector<RecordData>& records) {
  std::string out;
  for (const RecordData& rec : records) {
    uint8_t encoding = rec.encoding;
    std::string payload;
    if (encoding == 2) {
      auto encoded = Steim2::Encode(rec.samples);
      if (encoded.ok()) {
        payload = std::move(*encoded);
      } else {
        encoding = 1;  // differences out of Steim2 range: fall back
      }
    }
    if (encoding == 1) {
      payload = Steim1::Encode(rec.samples);
    }
    RecordHeader h;
    h.network = rec.network;
    h.station = rec.station;
    h.channel = rec.channel;
    h.location = rec.location;
    h.start_time_ms = rec.start_time_ms;
    h.sample_rate_hz = rec.sample_rate_hz;
    h.num_samples = static_cast<uint32_t>(rec.samples.size());
    h.data_bytes = static_cast<uint32_t>(payload.size());
    h.encoding = encoding;
    h.AppendTo(&out);
    out += payload;
  }
  return out;
}

Status WriteFile(const std::string& path, const std::vector<RecordData>& records) {
  return WriteStringToFile(path, SerializeFile(records));
}

}  // namespace dex::mseed
