#ifndef DEX_MSEED_SCANNER_H_
#define DEX_MSEED_SCANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/record.h"

namespace dex::mseed {

/// \brief File-level metadata (one row of the paper's table F per file).
struct FileMeta {
  std::string uri;       // the file's path; primary key of F
  std::string network;
  std::string station;
  std::string channel;
  std::string location;
  uint64_t size_bytes = 0;
  int64_t mtime_ms = 0;
  uint32_t num_records = 0;
};

/// \brief Record-level metadata (one row of table R per record).
struct RecordMeta {
  std::string uri;
  int64_t record_id = 0;  // index of the record within its file
  int64_t start_time_ms = 0;
  int64_t end_time_ms = 0;
  double sample_rate_hz = 0.0;
  uint32_t num_samples = 0;
  uint64_t data_offset = 0;   // byte offset of the Steim payload (for mounts)
  uint32_t data_bytes = 0;
};

/// \brief The scanner's output: everything the metadata stage needs.
struct ScanResult {
  std::vector<FileMeta> files;
  std::vector<RecordMeta> records;
  uint64_t total_bytes = 0;
};

/// \brief Scans a single file — the "load only metadata up-front" step of
/// ALi, at the granularity the parallel stage-1 scanner dispatches.
///
/// Only headers are parsed; no waveform is decompressed. Files whose station
/// differs between records keep the first record's identification at file
/// level (matching how a file-per-channel repository behaves). Repository
/// walks live behind FormatAdapter::ScanRepository (core/format_adapter).
Result<ScanResult> ScanFile(const std::string& uri);

}  // namespace dex::mseed

#endif  // DEX_MSEED_SCANNER_H_
