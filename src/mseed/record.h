#ifndef DEX_MSEED_RECORD_H_
#define DEX_MSEED_RECORD_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace dex::mseed {

/// \brief Fixed-size header preceding each record's Steim1 payload.
///
/// Modeled on the miniSEED fixed data header: SEED channel identifier
/// (network, station, channel, location), start time, sample rate and sample
/// count. A record is "the sensor readings over a consecutive time interval,
/// i.e., a time series" (paper §3). Serialized little-endian, 64 bytes.
struct RecordHeader {
  static constexpr size_t kSerializedBytes = 64;
  static constexpr char kMagic[4] = {'D', 'S', 'E', '1'};

  std::string network;   // up to 8 chars
  std::string station;   // up to 8 chars
  std::string channel;   // up to 8 chars
  std::string location;  // up to 8 chars
  int64_t start_time_ms = 0;   // epoch millis of the first sample
  double sample_rate_hz = 0.0;
  uint32_t num_samples = 0;
  uint32_t data_bytes = 0;     // length of the compressed payload that follows
  uint8_t encoding = 1;        // 1 = Steim1, 2 = Steim2

  /// Epoch millis of the last sample.
  int64_t EndTimeMs() const {
    if (num_samples == 0 || sample_rate_hz <= 0.0) return start_time_ms;
    return start_time_ms +
           static_cast<int64_t>((num_samples - 1) * 1000.0 / sample_rate_hz);
  }

  /// Appends the 64-byte serialized header to `out`.
  void AppendTo(std::string* out) const;

  /// Parses a header at `data[offset..]`.
  static Result<RecordHeader> Parse(const std::string& data, size_t offset);
};

/// \brief Location of one record inside a file: header plus byte offsets.
struct RecordInfo {
  RecordHeader header;
  uint64_t header_offset = 0;  // where the 64-byte header starts
  uint64_t data_offset = 0;    // where the Steim1 payload starts
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_RECORD_H_
