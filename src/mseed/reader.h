#ifndef DEX_MSEED_READER_H_
#define DEX_MSEED_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/record.h"
#include "mseed/steim.h"

namespace dex::mseed {

/// \brief Decoded record: header plus raw integer samples.
///
/// A record may be decoded *sparsely* when a zone map proved that whole
/// Steim frames (or the whole record) cannot satisfy the query's predicate:
/// `sparse` is then true, `samples[i]` is the value of sample index
/// `sample_index[i]`, and skipped frames contribute no entries. A skipped
/// record keeps its slot (header intact, zero samples) so record ids stay
/// positional. `frame_stats` carries per-frame zone statistics harvested
/// during a full Steim1 decode when the caller asked for them.
struct DecodedRecord {
  RecordHeader header;
  std::vector<int32_t> samples;
  bool sparse = false;
  std::vector<uint32_t> sample_index;  // parallel to samples when sparse
  std::vector<Steim1::FrameStat> frame_stats;
};

/// \brief Per-record decode instruction, produced by a caller-supplied
/// planner before the payload is touched.
struct RecordDecodePlan {
  /// Drop the whole record before decode (zone map excludes every sample).
  /// The record keeps its positional slot with zero samples.
  bool skip_record = false;
  /// Harvest per-frame stats during a full Steim1 decode (free: same pass).
  bool harvest = false;
  /// Frame-selective decode (Steim1 only): when non-null, only frames with
  /// `keep[f]` set are unpacked, resuming from the recorded entry values.
  /// Must outlive the read call. Ignored when `skip_record` is set.
  const std::vector<Steim1::FrameStat>* frames = nullptr;
  std::vector<bool> keep;
};

/// \brief Decides, per record, how much of its payload must be decoded.
/// `index` is the record's position in the file (its record id). Called on
/// the reading thread; implementations must be safe for concurrent mounts
/// of different files.
class RecordPruner {
 public:
  virtual ~RecordPruner() = default;
  virtual RecordDecodePlan Plan(size_t index, const RecordHeader& header) = 0;
};

/// \brief What zone-map pruning did (and failed to do) during one read.
struct PruneStats {
  uint64_t records_skipped = 0;  // whole records dropped before decode
  uint64_t frames_skipped = 0;   // frames skipped in selective decodes
  uint64_t frames_decoded = 0;   // frames unpacked in selective decodes
  uint64_t fallbacks = 0;        // selective decode failed → full decode
};

/// \brief What a salvaging read recovered from (and lost to) a damaged file.
///
/// `records_salvaged` counts records decoded *after* the first corruption
/// event in the file — data a strict reader would have thrown away.
/// `records_skipped` counts corrupt regions that had to be dropped (an
/// undecodable payload, or a run of bytes skipped while resynchronizing).
struct SalvageReport {
  uint64_t records_ok = 0;
  uint64_t records_salvaged = 0;
  uint64_t records_skipped = 0;
  uint64_t bytes_skipped = 0;
  std::vector<std::string> warnings;  // one per corruption event

  bool clean() const { return records_skipped == 0 && records_salvaged == 0; }
};

/// \brief Reads mSEED-style files.
///
/// Two access granularities mirror the paper's metadata/actual-data split:
/// `ScanHeaders` touches only the 64-byte headers (record-level metadata,
/// cheap — what the repository scanner and ALi's first stage rely on), while
/// `ReadAllRecords`/`ReadRecord` decompress actual data (expensive — what
/// `mount` pays during the second stage).
class Reader {
 public:
  /// Parses the record headers of `path` without decoding any samples.
  static Result<std::vector<RecordInfo>> ScanHeaders(const std::string& path);

  /// Same, over an in-memory file image.
  static Result<std::vector<RecordInfo>> ScanHeadersInMemory(
      const std::string& file_image);

  /// Reads and decodes every record in the file. Strict: the first corrupt
  /// byte fails the whole file. `pruner`, when non-null, is consulted per
  /// record and may skip it, restrict it to selected frames, or request
  /// frame-stat harvest; a selective decode that fails its zone-map
  /// verification degrades to a full decode (counted in `prune_stats`),
  /// never to an error.
  static Result<std::vector<DecodedRecord>> ReadAllRecords(
      const std::string& path, RecordPruner* pruner = nullptr,
      PruneStats* prune_stats = nullptr);

  /// Fault-tolerant variant: on a corrupt record, resynchronizes to the next
  /// plausible record boundary and keeps decoding. Record boundaries are
  /// 64-byte aligned (the header is 64 bytes and Steim payloads are whole
  /// 64-byte frames), so resynchronization scans forward over aligned
  /// offsets for a valid header magic + parseable header. Returns an error
  /// only when the file's bytes cannot be read at all; a fully corrupt file
  /// yields an empty record list plus a report describing what was lost.
  /// `pruner` as in ReadAllRecords.
  static Result<std::vector<DecodedRecord>> ReadAllRecordsSalvage(
      const std::string& path, SalvageReport* report,
      RecordPruner* pruner = nullptr, PruneStats* prune_stats = nullptr);

  /// Same, over an in-memory file image. `uri` labels warnings.
  static std::vector<DecodedRecord> SalvageInMemory(
      const std::string& file_image, const std::string& uri,
      SalvageReport* report, RecordPruner* pruner = nullptr,
      PruneStats* prune_stats = nullptr);

  /// Reads and decodes one record located by a prior ScanHeaders.
  static Result<DecodedRecord> ReadRecord(const std::string& path,
                                          const RecordInfo& info);
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_READER_H_
