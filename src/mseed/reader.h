#ifndef DEX_MSEED_READER_H_
#define DEX_MSEED_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/record.h"

namespace dex::mseed {

/// \brief Decoded record: header plus raw integer samples.
struct DecodedRecord {
  RecordHeader header;
  std::vector<int32_t> samples;
};

/// \brief What a salvaging read recovered from (and lost to) a damaged file.
///
/// `records_salvaged` counts records decoded *after* the first corruption
/// event in the file — data a strict reader would have thrown away.
/// `records_skipped` counts corrupt regions that had to be dropped (an
/// undecodable payload, or a run of bytes skipped while resynchronizing).
struct SalvageReport {
  uint64_t records_ok = 0;
  uint64_t records_salvaged = 0;
  uint64_t records_skipped = 0;
  uint64_t bytes_skipped = 0;
  std::vector<std::string> warnings;  // one per corruption event

  bool clean() const { return records_skipped == 0 && records_salvaged == 0; }
};

/// \brief Reads mSEED-style files.
///
/// Two access granularities mirror the paper's metadata/actual-data split:
/// `ScanHeaders` touches only the 64-byte headers (record-level metadata,
/// cheap — what the repository scanner and ALi's first stage rely on), while
/// `ReadAllRecords`/`ReadRecord` decompress actual data (expensive — what
/// `mount` pays during the second stage).
class Reader {
 public:
  /// Parses the record headers of `path` without decoding any samples.
  static Result<std::vector<RecordInfo>> ScanHeaders(const std::string& path);

  /// Same, over an in-memory file image.
  static Result<std::vector<RecordInfo>> ScanHeadersInMemory(
      const std::string& file_image);

  /// Reads and decodes every record in the file. Strict: the first corrupt
  /// byte fails the whole file.
  static Result<std::vector<DecodedRecord>> ReadAllRecords(const std::string& path);

  /// Fault-tolerant variant: on a corrupt record, resynchronizes to the next
  /// plausible record boundary and keeps decoding. Record boundaries are
  /// 64-byte aligned (the header is 64 bytes and Steim payloads are whole
  /// 64-byte frames), so resynchronization scans forward over aligned
  /// offsets for a valid header magic + parseable header. Returns an error
  /// only when the file's bytes cannot be read at all; a fully corrupt file
  /// yields an empty record list plus a report describing what was lost.
  static Result<std::vector<DecodedRecord>> ReadAllRecordsSalvage(
      const std::string& path, SalvageReport* report);

  /// Same, over an in-memory file image. `uri` labels warnings.
  static std::vector<DecodedRecord> SalvageInMemory(const std::string& file_image,
                                                    const std::string& uri,
                                                    SalvageReport* report);

  /// Reads and decodes one record located by a prior ScanHeaders.
  static Result<DecodedRecord> ReadRecord(const std::string& path,
                                          const RecordInfo& info);
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_READER_H_
