#ifndef DEX_MSEED_READER_H_
#define DEX_MSEED_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/record.h"

namespace dex::mseed {

/// \brief Decoded record: header plus raw integer samples.
struct DecodedRecord {
  RecordHeader header;
  std::vector<int32_t> samples;
};

/// \brief Reads mSEED-style files.
///
/// Two access granularities mirror the paper's metadata/actual-data split:
/// `ScanHeaders` touches only the 64-byte headers (record-level metadata,
/// cheap — what the repository scanner and ALi's first stage rely on), while
/// `ReadAllRecords`/`ReadRecord` decompress actual data (expensive — what
/// `mount` pays during the second stage).
class Reader {
 public:
  /// Parses the record headers of `path` without decoding any samples.
  static Result<std::vector<RecordInfo>> ScanHeaders(const std::string& path);

  /// Same, over an in-memory file image.
  static Result<std::vector<RecordInfo>> ScanHeadersInMemory(
      const std::string& file_image);

  /// Reads and decodes every record in the file.
  static Result<std::vector<DecodedRecord>> ReadAllRecords(const std::string& path);

  /// Reads and decodes one record located by a prior ScanHeaders.
  static Result<DecodedRecord> ReadRecord(const std::string& path,
                                          const RecordInfo& info);
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_READER_H_
