#ifndef DEX_MSEED_STEIM2_H_
#define DEX_MSEED_STEIM2_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dex::mseed {

/// \brief Steim2 waveform compression, the denser successor of Steim1 and
/// the dominant encoding in real miniSEED archives.
///
/// Same 64-byte frame layout as Steim1 (word 0 = sixteen 2-bit nibbles,
/// frame 0 carries X0/XN in words 1–2), but data words pack differences at
/// seven granularities selected by the nibble plus a 2-bit "dnib" stored in
/// the data word's top bits:
///
///   nibble 01            : four  8-bit differences            (as Steim1)
///   nibble 10, dnib 01   : one  30-bit difference
///   nibble 10, dnib 10   : two  15-bit differences
///   nibble 10, dnib 11   : three 10-bit differences
///   nibble 11, dnib 00   : five  6-bit differences
///   nibble 11, dnib 01   : six   5-bit differences
///   nibble 11, dnib 10   : seven 4-bit differences
///
/// Differences are two's-complement within their bit width; Steim2 cannot
/// represent |d| >= 2^29, which practically never occurs in seismic data
/// (Encode falls back to clamping an impossible diff is NOT done — such
/// inputs return InvalidArgument from Encode via MaxRepresentable checks).
class Steim2 {
 public:
  static constexpr size_t kFrameBytes = 64;

  /// Compresses `samples`. Fails if any first difference needs 30+ bits
  /// (out of Steim2's range).
  static Result<std::string> Encode(const std::vector<int32_t>& samples);

  /// Decompresses exactly `num_samples` samples, verifying the reverse
  /// integration constant.
  static Result<std::vector<int32_t>> Decode(const std::string& data,
                                             size_t num_samples);
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_STEIM2_H_
