#ifndef DEX_MSEED_WRITER_H_
#define DEX_MSEED_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mseed/record.h"

namespace dex::mseed {

/// \brief One record to be written: identification plus raw samples.
struct RecordData {
  std::string network;
  std::string station;
  std::string channel;
  std::string location;
  int64_t start_time_ms = 0;
  double sample_rate_hz = 0.0;
  uint8_t encoding = 1;  // 1 = Steim1, 2 = Steim2
  std::vector<int32_t> samples;
};

/// \brief Serializes records into the in-memory file image, compressing each
/// record with its chosen encoding. Records whose samples exceed Steim2's
/// 30-bit difference range fall back to Steim1 transparently.
std::string SerializeFile(const std::vector<RecordData>& records);

/// \brief Writes records to `path`, creating parent directories.
Status WriteFile(const std::string& path, const std::vector<RecordData>& records);

}  // namespace dex::mseed

#endif  // DEX_MSEED_WRITER_H_
