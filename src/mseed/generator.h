#ifndef DEX_MSEED_GENERATOR_H_
#define DEX_MSEED_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dex::mseed {

/// \brief Options for the synthetic seismic repository.
///
/// The layout mirrors the ORFEUS "pond" the paper sampled: one file per
/// (station, channel, day), each holding several records of a continuous
/// waveform. Station "ISK" (Istanbul) and channel "BHE" always exist so the
/// paper's Query 1 / Query 2 predicates are satisfiable. All randomness is
/// seeded, so a (seed, options) pair regenerates the identical repository.
struct GeneratorOptions {
  uint64_t seed = 42;
  std::string network = "OR";
  int num_stations = 8;            // first is always "ISK"
  int channels_per_station = 3;    // first is always "BHE"
  int num_days = 16;               // starting at start_day
  std::string start_day = "2010-01-01";
  int records_per_file = 4;        // records partition the day evenly
  double sample_rate_hz = 1.0;     // samples per second
  double event_probability = 0.15; // chance of a seismic "event" per record
  double gap_probability = 0.02;   // chance a record is missing (data gap)
  uint8_t encoding = 1;            // waveform compression: 1=Steim1, 2=Steim2
};

/// \brief Summary of what was generated.
struct GeneratedRepo {
  std::string root;
  std::vector<std::string> files;
  uint64_t total_bytes = 0;
  uint64_t total_records = 0;
  uint64_t total_samples = 0;
};

/// \brief Well-known station/channel codes used by the generator, exposed so
/// tests and benchmarks can phrase selective predicates.
std::vector<std::string> GeneratorStationCodes(int n);
std::vector<std::string> GeneratorChannelCodes(int n);

/// \brief Generates the repository under `root` (created if needed).
Result<GeneratedRepo> GenerateRepository(const std::string& root,
                                         const GeneratorOptions& options);

/// \brief Synthesizes one record's waveform: low-amplitude microseism noise
/// plus, optionally, a decaying seismic event. Exposed for codec tests.
std::vector<int32_t> SynthesizeWaveform(uint64_t seed, size_t num_samples,
                                        bool with_event);

}  // namespace dex::mseed

#endif  // DEX_MSEED_GENERATOR_H_
