#include "mseed/steim2.h"

#include <cstdlib>

namespace dex::mseed {

namespace {

constexpr int kWordsPerFrame = 16;

void PutWordBE(std::string* out, size_t pos, uint32_t w) {
  (*out)[pos] = static_cast<char>((w >> 24) & 0xff);
  (*out)[pos + 1] = static_cast<char>((w >> 16) & 0xff);
  (*out)[pos + 2] = static_cast<char>((w >> 8) & 0xff);
  (*out)[pos + 3] = static_cast<char>(w & 0xff);
}

uint32_t GetWordBE(const std::string& data, size_t pos) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(data[pos])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 3]));
}

/// True if d fits a signed `bits`-bit field.
bool Fits(int64_t d, int bits) {
  const int64_t lim = 1LL << (bits - 1);
  return d >= -lim && d < lim;
}

/// Sign-extends the low `bits` of v.
int32_t SignExtend(uint32_t v, int bits) {
  const uint32_t mask = (bits == 32) ? 0xffffffffu : ((1u << bits) - 1);
  v &= mask;
  const uint32_t sign = 1u << (bits - 1);
  if (v & sign) v |= ~mask;
  return static_cast<int32_t>(v);
}

/// One packing shape: n diffs of b bits each, selected by (nibble, dnib).
struct Packing {
  int count;
  int bits;
  uint32_t nibble;
  uint32_t dnib;     // 0xff = no dnib (nibble 01)
};

// Ordered densest-first; the encoder greedily picks the first shape whose
// next `count` differences all fit.
constexpr Packing kPackings[] = {
    {7, 4, 3, 2}, {6, 5, 3, 1}, {5, 6, 3, 0}, {4, 8, 1, 0xff},
    {3, 10, 2, 3}, {2, 15, 2, 2}, {1, 30, 2, 1},
};

}  // namespace

Result<std::string> Steim2::Encode(const std::vector<int32_t>& samples) {
  std::string out;
  if (samples.empty()) return out;

  std::vector<int64_t> diffs(samples.size());
  diffs[0] = samples[0];  // encoded but unused (X0 is authoritative)
  for (size_t i = 1; i < samples.size(); ++i) {
    diffs[i] = static_cast<int64_t>(samples[i]) - samples[i - 1];
  }
  // d[0] only needs to be *encodable*; clamp it into range (the decoder
  // reconstructs sample 0 from X0, never from d[0]).
  if (!Fits(diffs[0], 30)) diffs[0] = 0;
  for (size_t i = 1; i < diffs.size(); ++i) {
    if (!Fits(diffs[i], 30)) {
      return Status::InvalidArgument(
          "Steim2 cannot represent a difference of " + std::to_string(diffs[i]) +
          " at sample " + std::to_string(i) + " (needs 30+ bits)");
    }
  }

  size_t next = 0;
  bool first_frame = true;
  while (next < diffs.size()) {
    const size_t frame_pos = out.size();
    out.append(kFrameBytes, '\0');
    uint32_t nibbles = 0;
    int word = first_frame ? 3 : 1;
    if (first_frame) {
      PutWordBE(&out, frame_pos + 4, static_cast<uint32_t>(samples.front()));
      PutWordBE(&out, frame_pos + 8, static_cast<uint32_t>(samples.back()));
    }
    for (; word < kWordsPerFrame && next < diffs.size(); ++word) {
      const size_t remaining = diffs.size() - next;
      const Packing* chosen = nullptr;
      for (const Packing& p : kPackings) {
        if (remaining < static_cast<size_t>(p.count)) continue;
        bool ok = true;
        for (int k = 0; k < p.count; ++k) {
          if (!Fits(diffs[next + k], p.bits)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          chosen = &p;
          break;
        }
      }
      if (chosen == nullptr) {
        // Tail shorter than every shape that fits: pad with the widest
        // shape that can hold a single diff.
        static constexpr Packing kSingle = {1, 30, 2, 1};
        chosen = &kSingle;
      }
      uint32_t w = 0;
      const uint32_t mask =
          chosen->bits == 32 ? 0xffffffffu : ((1u << chosen->bits) - 1);
      for (int k = 0; k < chosen->count; ++k) {
        w = (w << chosen->bits) |
            (static_cast<uint32_t>(diffs[next + k]) & mask);
      }
      if (chosen->dnib != 0xff) {
        w |= chosen->dnib << 30;
      }
      nibbles |= chosen->nibble << (2 * (15 - word));
      PutWordBE(&out, frame_pos + 4 * static_cast<size_t>(word), w);
      next += static_cast<size_t>(chosen->count);
    }
    PutWordBE(&out, frame_pos, nibbles);
    first_frame = false;
  }
  return out;
}

Result<std::vector<int32_t>> Steim2::Decode(const std::string& data,
                                            size_t num_samples) {
  if (num_samples == 0) return std::vector<int32_t>{};
  if (data.size() < kFrameBytes || data.size() % kFrameBytes != 0) {
    return Status::Corruption("Steim2 payload is not a multiple of 64 bytes");
  }
  const int32_t x0 = static_cast<int32_t>(GetWordBE(data, 4));
  const int32_t xn = static_cast<int32_t>(GetWordBE(data, 8));

  std::vector<int32_t> diffs;
  diffs.reserve(num_samples);
  const size_t num_frames = data.size() / kFrameBytes;
  for (size_t f = 0; f < num_frames && diffs.size() < num_samples; ++f) {
    const size_t frame_pos = f * kFrameBytes;
    const uint32_t nibbles = GetWordBE(data, frame_pos);
    const int start_word = (f == 0) ? 3 : 1;
    for (int word = start_word;
         word < kWordsPerFrame && diffs.size() < num_samples; ++word) {
      const uint32_t nibble = (nibbles >> (2 * (15 - word))) & 0x3;
      const uint32_t w = GetWordBE(data, frame_pos + 4 * static_cast<size_t>(word));
      int count = 0, bits = 0;
      switch (nibble) {
        case 0:  // non-data (padding)
          continue;
        case 1:
          count = 4;
          bits = 8;
          break;
        case 2:
          switch (w >> 30) {
            case 1:
              count = 1;
              bits = 30;
              break;
            case 2:
              count = 2;
              bits = 15;
              break;
            case 3:
              count = 3;
              bits = 10;
              break;
            default:
              return Status::Corruption("Steim2: invalid dnib 00 for nibble 10");
          }
          break;
        case 3:
          switch (w >> 30) {
            case 0:
              count = 5;
              bits = 6;
              break;
            case 1:
              count = 6;
              bits = 5;
              break;
            case 2:
              count = 7;
              bits = 4;
              break;
            default:
              return Status::Corruption("Steim2: invalid dnib 11 for nibble 11");
          }
          break;
      }
      for (int k = count - 1; k >= 0 && diffs.size() < num_samples; --k) {
        // Diffs are packed left-to-right; extract from the high end down.
        const int shift = k * bits;
        diffs.push_back(SignExtend(w >> shift, bits));
      }
    }
  }
  if (diffs.size() < num_samples) {
    return Status::Corruption("Steim2 payload ran out of differences (" +
                              std::to_string(diffs.size()) + " < " +
                              std::to_string(num_samples) + ")");
  }

  std::vector<int32_t> samples(num_samples);
  samples[0] = x0;
  for (size_t i = 1; i < num_samples; ++i) {
    samples[i] = static_cast<int32_t>(static_cast<uint32_t>(samples[i - 1]) +
                                      static_cast<uint32_t>(diffs[i]));
  }
  if (samples.back() != xn) {
    return Status::Corruption(
        "Steim2 reverse integration constant mismatch (got " +
        std::to_string(samples.back()) + ", frame says " + std::to_string(xn) +
        ")");
  }
  return samples;
}

}  // namespace dex::mseed
