#include "mseed/record.h"

#include <cstring>

namespace dex::mseed {

namespace {

void AppendFixedString(std::string* out, const std::string& s, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    out->push_back(i < s.size() ? s[i] : '\0');
  }
}

std::string ReadFixedString(const std::string& data, size_t pos, size_t width) {
  size_t len = 0;
  while (len < width && data[pos + len] != '\0') ++len;
  return data.substr(pos, len);
}

template <typename T>
void AppendLE(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T ReadLE(const std::string& data, size_t pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  return v;
}

}  // namespace

void RecordHeader::AppendTo(std::string* out) const {
  const size_t start = out->size();
  out->append(kMagic, 4);
  AppendFixedString(out, network, 8);
  AppendFixedString(out, station, 8);
  AppendFixedString(out, channel, 8);
  AppendFixedString(out, location, 8);
  AppendLE(out, start_time_ms);
  AppendLE(out, sample_rate_hz);
  AppendLE(out, num_samples);
  AppendLE(out, data_bytes);
  out->push_back(static_cast<char>(encoding));
  // Pad to the fixed size.
  out->append(kSerializedBytes - (out->size() - start), '\0');
}

Result<RecordHeader> RecordHeader::Parse(const std::string& data, size_t offset) {
  if (offset + kSerializedBytes > data.size()) {
    return Status::Corruption("truncated record header at offset " +
                              std::to_string(offset));
  }
  if (std::memcmp(data.data() + offset, kMagic, 4) != 0) {
    return Status::Corruption("bad record magic at offset " +
                              std::to_string(offset));
  }
  RecordHeader h;
  size_t pos = offset + 4;
  h.network = ReadFixedString(data, pos, 8);
  pos += 8;
  h.station = ReadFixedString(data, pos, 8);
  pos += 8;
  h.channel = ReadFixedString(data, pos, 8);
  pos += 8;
  h.location = ReadFixedString(data, pos, 8);
  pos += 8;
  h.start_time_ms = ReadLE<int64_t>(data, pos);
  pos += 8;
  h.sample_rate_hz = ReadLE<double>(data, pos);
  pos += 8;
  h.num_samples = ReadLE<uint32_t>(data, pos);
  pos += 4;
  h.data_bytes = ReadLE<uint32_t>(data, pos);
  pos += 4;
  h.encoding = static_cast<uint8_t>(data[pos]);
  if (h.sample_rate_hz < 0.0 || h.sample_rate_hz > 1e6) {
    return Status::Corruption("implausible sample rate in record header");
  }
  if (h.encoding != 1 && h.encoding != 2) {
    return Status::Corruption("unknown waveform encoding " +
                              std::to_string(h.encoding));
  }
  return h;
}

}  // namespace dex::mseed
