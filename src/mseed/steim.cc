#include "mseed/steim.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace dex::mseed {

namespace {

constexpr int kWordsPerFrame = 16;

// 2-bit nibble codes.
constexpr uint32_t kNibbleSpecial = 0;  // non-data word (w0, X0, XN)
constexpr uint32_t kNibble8 = 1;        // four 8-bit differences
constexpr uint32_t kNibble16 = 2;       // two 16-bit differences
constexpr uint32_t kNibble32 = 3;       // one 32-bit difference

void PutWordBE(std::string* out, size_t pos, uint32_t w) {
  (*out)[pos] = static_cast<char>((w >> 24) & 0xff);
  (*out)[pos + 1] = static_cast<char>((w >> 16) & 0xff);
  (*out)[pos + 2] = static_cast<char>((w >> 8) & 0xff);
  (*out)[pos + 3] = static_cast<char>(w & 0xff);
}

uint32_t GetWordBE(const std::string& data, size_t pos) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(data[pos])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 3]));
}

bool FitsIn8(int32_t d) { return d >= -128 && d <= 127; }
bool FitsIn16(int32_t d) { return d >= -32768 && d <= 32767; }

}  // namespace

size_t Steim1::MaxEncodedBytes(size_t n) {
  // Worst case: one 32-bit difference per data word, 13 data words in the
  // first frame, 15 in the rest.
  if (n == 0) return kFrameBytes;
  const size_t data_words = n;
  const size_t first_frame_words = 13;
  if (data_words <= first_frame_words) return kFrameBytes;
  const size_t rest = data_words - first_frame_words;
  const size_t extra_frames = (rest + 14) / 15;
  return (1 + extra_frames) * kFrameBytes;
}

std::string Steim1::Encode(const std::vector<int32_t>& samples) {
  std::string out;
  if (samples.empty()) return out;

  // Differences; d[0] is unused by the decoder (X0 is absolute) but still
  // encoded, as libmseed does.
  std::vector<int32_t> diffs(samples.size());
  diffs[0] = samples[0];
  for (size_t i = 1; i < samples.size(); ++i) {
    diffs[i] = static_cast<int32_t>(static_cast<uint32_t>(samples[i]) -
                                    static_cast<uint32_t>(samples[i - 1]));
  }

  size_t next = 0;  // next difference to encode
  bool first_frame = true;
  while (next < diffs.size()) {
    const size_t frame_pos = out.size();
    out.append(kFrameBytes, '\0');
    uint32_t nibbles = 0;
    int word = first_frame ? 3 : 1;  // skip w0 (+ X0/XN in frame 0)
    if (first_frame) {
      PutWordBE(&out, frame_pos + 4, static_cast<uint32_t>(samples.front()));
      PutWordBE(&out, frame_pos + 8, static_cast<uint32_t>(samples.back()));
    }
    for (; word < kWordsPerFrame && next < diffs.size(); ++word) {
      const size_t remaining = diffs.size() - next;
      uint32_t code;
      uint32_t w = 0;
      if (remaining >= 4 && FitsIn8(diffs[next]) && FitsIn8(diffs[next + 1]) &&
          FitsIn8(diffs[next + 2]) && FitsIn8(diffs[next + 3])) {
        code = kNibble8;
        for (int k = 0; k < 4; ++k) {
          w = (w << 8) | (static_cast<uint32_t>(diffs[next + k]) & 0xff);
        }
        next += 4;
      } else if (remaining >= 2 && FitsIn16(diffs[next]) &&
                 FitsIn16(diffs[next + 1])) {
        code = kNibble16;
        w = ((static_cast<uint32_t>(diffs[next]) & 0xffff) << 16) |
            (static_cast<uint32_t>(diffs[next + 1]) & 0xffff);
        next += 2;
      } else {
        code = kNibble32;
        w = static_cast<uint32_t>(diffs[next]);
        next += 1;
      }
      nibbles |= code << (2 * (15 - word));
      PutWordBE(&out, frame_pos + 4 * static_cast<size_t>(word), w);
    }
    PutWordBE(&out, frame_pos, nibbles);
    first_frame = false;
  }
  return out;
}

namespace {

/// Shared decode core: unpacks differences frame by frame. When
/// `frame_counts` is non-null it receives how many differences each frame
/// produced (one entry per frame, including trailing all-padding frames).
Result<std::vector<int32_t>> UnpackDiffs(const std::string& data,
                                         size_t num_samples,
                                         std::vector<uint32_t>* frame_counts) {
  std::vector<int32_t> diffs;
  diffs.reserve(num_samples);
  const size_t num_frames = data.size() / Steim1::kFrameBytes;
  if (frame_counts != nullptr) {
    frame_counts->assign(num_frames, 0);
  }
  for (size_t f = 0; f < num_frames && diffs.size() < num_samples; ++f) {
    const size_t frame_pos = f * Steim1::kFrameBytes;
    const uint32_t nibbles = GetWordBE(data, frame_pos);
    const int start_word = (f == 0) ? 3 : 1;
    const size_t before = diffs.size();
    for (int word = start_word; word < kWordsPerFrame && diffs.size() < num_samples;
         ++word) {
      const uint32_t code = (nibbles >> (2 * (15 - word))) & 0x3;
      const uint32_t w = GetWordBE(data, frame_pos + 4 * static_cast<size_t>(word));
      switch (code) {
        case kNibble8:
          for (int k = 3; k >= 0 && diffs.size() < num_samples; --k) {
            diffs.push_back(static_cast<int8_t>((w >> (8 * k)) & 0xff));
          }
          break;
        case kNibble16:
          for (int k = 1; k >= 0 && diffs.size() < num_samples; --k) {
            diffs.push_back(static_cast<int16_t>((w >> (16 * k)) & 0xffff));
          }
          break;
        case kNibble32:
          diffs.push_back(static_cast<int32_t>(w));
          break;
        case kNibbleSpecial:
          // Padding at the tail of the last frame.
          break;
      }
    }
    if (frame_counts != nullptr) {
      (*frame_counts)[f] = static_cast<uint32_t>(diffs.size() - before);
    }
  }
  if (diffs.size() < num_samples) {
    return Status::Corruption("Steim1 payload ran out of differences (" +
                              std::to_string(diffs.size()) + " < " +
                              std::to_string(num_samples) + ")");
  }
  return diffs;
}

Status CheckFrameAlignment(const std::string& data) {
  if (data.size() < Steim1::kFrameBytes ||
      data.size() % Steim1::kFrameBytes != 0) {
    return Status::Corruption("Steim1 payload is not a multiple of 64 bytes");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<int32_t>> Steim1::Decode(const std::string& data,
                                            size_t num_samples) {
  return DecodeWithStats(data, num_samples, nullptr);
}

Result<std::vector<int32_t>> Steim1::DecodeWithStats(
    const std::string& data, size_t num_samples,
    std::vector<FrameStat>* stats) {
  if (stats != nullptr) stats->clear();
  if (num_samples == 0) return std::vector<int32_t>{};
  DEX_RETURN_NOT_OK(CheckFrameAlignment(data));
  const int32_t x0 = static_cast<int32_t>(GetWordBE(data, 4));
  const int32_t xn = static_cast<int32_t>(GetWordBE(data, 8));

  std::vector<uint32_t> frame_counts;
  DEX_ASSIGN_OR_RETURN(
      std::vector<int32_t> diffs,
      UnpackDiffs(data, num_samples, stats != nullptr ? &frame_counts : nullptr));

  std::vector<int32_t> samples(num_samples);
  samples[0] = x0;
  for (size_t i = 1; i < num_samples; ++i) {
    samples[i] = static_cast<int32_t>(static_cast<uint32_t>(samples[i - 1]) +
                                      static_cast<uint32_t>(diffs[i]));
  }
  if (samples.back() != xn) {
    return Status::Corruption(
        "Steim1 reverse integration constant mismatch (got " +
        std::to_string(samples.back()) + ", frame says " + std::to_string(xn) + ")");
  }
  if (stats != nullptr) {
    stats->reserve(frame_counts.size());
    size_t next = 0;  // first sample index of the current frame
    for (size_t f = 0; f < frame_counts.size(); ++f) {
      FrameStat fs;
      fs.first_sample = static_cast<uint32_t>(next);
      fs.count = frame_counts[f];
      fs.entry = (next == 0) ? x0 : samples[next - 1];
      if (fs.count > 0) {
        fs.min = fs.max = samples[next];
        for (size_t i = next + 1; i < next + fs.count; ++i) {
          fs.min = std::min(fs.min, samples[i]);
          fs.max = std::max(fs.max, samples[i]);
        }
      } else {
        // An all-padding trailing frame: carry the entry value so the
        // selective decoder's exit check still chains through it.
        fs.min = fs.max = fs.entry;
      }
      next += fs.count;
      stats->push_back(fs);
    }
  }
  return samples;
}

Status Steim1::DecodeSelected(const std::string& data, size_t num_samples,
                              const std::vector<FrameStat>& stats,
                              const std::vector<bool>& keep,
                              std::vector<uint32_t>* indices,
                              std::vector<int32_t>* values) {
  if (num_samples == 0) return Status::OK();
  DEX_RETURN_NOT_OK(CheckFrameAlignment(data));
  const size_t num_frames = data.size() / kFrameBytes;
  if (stats.size() != num_frames || keep.size() != num_frames) {
    return Status::Corruption("Steim1 zone map covers " +
                              std::to_string(stats.size()) + " frames, payload has " +
                              std::to_string(num_frames));
  }
  // The recorded frame spans must tile [0, num_samples) exactly; a stale map
  // (file rewritten to the same byte length) trips here or on the per-frame
  // entry/exit checks below.
  size_t expected_first = 0;
  for (size_t f = 0; f < num_frames; ++f) {
    if (stats[f].first_sample != expected_first) {
      return Status::Corruption("Steim1 zone map frame spans do not tile");
    }
    expected_first += stats[f].count;
  }
  if (expected_first != num_samples) {
    return Status::Corruption("Steim1 zone map sample count mismatch (" +
                              std::to_string(expected_first) + " vs " +
                              std::to_string(num_samples) + ")");
  }
  const int32_t x0 = static_cast<int32_t>(GetWordBE(data, 4));
  const int32_t xn = static_cast<int32_t>(GetWordBE(data, 8));
  if (stats[0].entry != x0) {
    return Status::Corruption("Steim1 zone map entry constant mismatch");
  }

  for (size_t f = 0; f < num_frames; ++f) {
    if (!keep[f] || stats[f].count == 0) continue;
    const int32_t exit_expected = (f + 1 < num_frames) ? stats[f + 1].entry : xn;
    const size_t frame_pos = f * kFrameBytes;
    const uint32_t nibbles = GetWordBE(data, frame_pos);
    const int start_word = (f == 0) ? 3 : 1;
    int32_t v = stats[f].entry;
    uint32_t produced = 0;
    uint32_t index = stats[f].first_sample;
    const uint32_t want = stats[f].count;
    auto emit = [&](int32_t diff) {
      if (produced >= want) return;
      if (index == 0) {
        // Sample 0 is X0 itself; its encoded difference is ignored.
        v = x0;
      } else {
        v = static_cast<int32_t>(static_cast<uint32_t>(v) +
                                 static_cast<uint32_t>(diff));
      }
      indices->push_back(index);
      values->push_back(v);
      ++index;
      ++produced;
    };
    for (int word = start_word; word < kWordsPerFrame && produced < want; ++word) {
      const uint32_t code = (nibbles >> (2 * (15 - word))) & 0x3;
      const uint32_t w = GetWordBE(data, frame_pos + 4 * static_cast<size_t>(word));
      switch (code) {
        case kNibble8:
          for (int k = 3; k >= 0; --k) {
            emit(static_cast<int8_t>((w >> (8 * k)) & 0xff));
          }
          break;
        case kNibble16:
          for (int k = 1; k >= 0; --k) {
            emit(static_cast<int16_t>((w >> (16 * k)) & 0xffff));
          }
          break;
        case kNibble32:
          emit(static_cast<int32_t>(w));
          break;
        case kNibbleSpecial:
          break;
      }
    }
    if (produced != want) {
      return Status::Corruption("Steim1 frame " + std::to_string(f) +
                                " yielded " + std::to_string(produced) +
                                " samples, zone map says " + std::to_string(want));
    }
    if (v != exit_expected) {
      return Status::Corruption("Steim1 frame " + std::to_string(f) +
                                " exit value " + std::to_string(v) +
                                " does not match the recorded entry of frame " +
                                std::to_string(f + 1));
    }
  }
  return Status::OK();
}

}  // namespace dex::mseed
