#ifndef DEX_MSEED_STEIM_H_
#define DEX_MSEED_STEIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dex::mseed {

/// \brief Steim1 waveform compression, as used by SEED/miniSEED.
///
/// Frames are 64 bytes = 16 big-endian 32-bit words. Word 0 packs sixteen
/// 2-bit nibbles describing each word: 00 = non-data, 01 = four 8-bit
/// differences, 10 = two 16-bit differences, 11 = one 32-bit difference.
/// In the first frame, words 1 and 2 hold X0 (forward integration constant,
/// the first sample) and XN (reverse integration constant, the last sample);
/// XN lets the decoder verify integrity.
///
/// This is the "highly compressed" actual data of the paper's Table 1: the
/// eager-ingestion baseline pays decompression + materialization for the
/// whole repository, ALi only for files of interest.
class Steim1 {
 public:
  static constexpr size_t kFrameBytes = 64;

  /// \brief Per-frame zone-map statistics, harvested for free during a full
  /// decode (the decoder touches every sample anyway — the paper's
  /// derived-metadata argument applied one level down).
  ///
  /// `entry` is the accumulated sample value *entering* the frame: the value
  /// of the last sample produced before it (for frame 0, X0 — which is also
  /// sample 0 itself). Because Steim1 is differential, `entry` is exactly
  /// what a later selective decode needs to resume at this frame without
  /// unpacking any frame before it.
  struct FrameStat {
    uint32_t first_sample = 0;  // index of the first sample this frame yields
    uint32_t count = 0;         // samples produced by this frame
    int32_t min = 0;            // min sample value produced by this frame
    int32_t max = 0;            // max sample value produced by this frame
    int32_t entry = 0;          // accumulated value entering this frame
  };

  /// Compresses `samples` into a sequence of 64-byte frames.
  static std::string Encode(const std::vector<int32_t>& samples);

  /// Decompresses exactly `num_samples` samples from `data`. Fails with
  /// Corruption if the frames are malformed or the reverse integration
  /// constant does not match.
  static Result<std::vector<int32_t>> Decode(const std::string& data,
                                             size_t num_samples);

  /// Like Decode, but additionally fills one FrameStat per 64-byte frame —
  /// the same pass, no extra traversal. `stats` is cleared first.
  static Result<std::vector<int32_t>> DecodeWithStats(
      const std::string& data, size_t num_samples,
      std::vector<FrameStat>* stats);

  /// Selective decode: unpacks only the frames with `keep[f]` set, resuming
  /// each from `stats[f].entry`, and appends (sample index, value) pairs to
  /// `indices`/`values` in sample order. Skipped frames cost nothing — not
  /// even a word fetch beyond their nibble header.
  ///
  /// Self-verifying against stale zone maps: every decoded frame's exit
  /// value must equal the next frame's recorded `entry` (the last frame's
  /// must equal XN), and every frame must yield exactly `stats[f].count`
  /// samples. Any mismatch returns Corruption so the caller degrades to a
  /// full decode — a wrong persisted zone map can cost time, never rows.
  static Status DecodeSelected(const std::string& data, size_t num_samples,
                               const std::vector<FrameStat>& stats,
                               const std::vector<bool>& keep,
                               std::vector<uint32_t>* indices,
                               std::vector<int32_t>* values);

  /// Upper bound on the encoded size for `n` samples (for sizing buffers).
  static size_t MaxEncodedBytes(size_t n);
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_STEIM_H_
