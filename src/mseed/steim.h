#ifndef DEX_MSEED_STEIM_H_
#define DEX_MSEED_STEIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dex::mseed {

/// \brief Steim1 waveform compression, as used by SEED/miniSEED.
///
/// Frames are 64 bytes = 16 big-endian 32-bit words. Word 0 packs sixteen
/// 2-bit nibbles describing each word: 00 = non-data, 01 = four 8-bit
/// differences, 10 = two 16-bit differences, 11 = one 32-bit difference.
/// In the first frame, words 1 and 2 hold X0 (forward integration constant,
/// the first sample) and XN (reverse integration constant, the last sample);
/// XN lets the decoder verify integrity.
///
/// This is the "highly compressed" actual data of the paper's Table 1: the
/// eager-ingestion baseline pays decompression + materialization for the
/// whole repository, ALi only for files of interest.
class Steim1 {
 public:
  static constexpr size_t kFrameBytes = 64;

  /// Compresses `samples` into a sequence of 64-byte frames.
  static std::string Encode(const std::vector<int32_t>& samples);

  /// Decompresses exactly `num_samples` samples from `data`. Fails with
  /// Corruption if the frames are malformed or the reverse integration
  /// constant does not match.
  static Result<std::vector<int32_t>> Decode(const std::string& data,
                                             size_t num_samples);

  /// Upper bound on the encoded size for `n` samples (for sizing buffers).
  static size_t MaxEncodedBytes(size_t n);
};

}  // namespace dex::mseed

#endif  // DEX_MSEED_STEIM_H_
