#ifndef DEX_IO_COLUMNAR_FILE_H_
#define DEX_IO_COLUMNAR_FILE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace dex {

/// \brief Compact, checksummed on-disk serialization of one cached partial
/// table — the unit of the persistent columnar cache.
///
/// Layout (all integers little-endian):
///
///   magic        8 bytes  "DXCOL001" (bumping the version renames the magic,
///                         so older engines reject newer files and vice versa)
///   header       source uri, pushed-down predicate repr + time window,
///                source file size/mtime (the staleness ladder inputs),
///                in-memory table footprint, table name, schema, row count
///   hdr checksum u64 FNV-1a of everything above (a torn header is caught
///                before any frame is trusted)
///   frames       one per column: encoding id, payload length, payload,
///                u64 FNV-1a frame checksum of the payload
///   footer       u64 FNV-1a of every byte above + "DXCOLEND"
///
/// Frame encodings keep the file compact relative to the decoded in-memory
/// footprint: constant runs collapse to one value (the uri column of a
/// per-file partial table is always constant), int64-backed columns with a
/// constant stride (sample_time at a fixed rate, record_id runs) collapse to
/// (base, stride), and string columns store the dictionary once plus codes.
///
/// Decode validates magic → header checksum → schema plausibility → every
/// frame checksum → footer checksum, and returns Status::Corruption on the
/// first violation — it never crashes and never returns partially decoded
/// rows. Any truncation, bit flip, or torn prefix therefore maps to a clean
/// "not trustworthy" signal the persistent cache turns into
/// quarantine-and-delete.
struct ColumnarFileMeta {
  std::string source_uri;       // repository file this table was mounted from
  std::string predicate_repr;   // selection applied before caching ("" = none)
  bool window_pure = false;     // predicate is a pure sample_time window
  double window_lo = 0;
  double window_hi = 0;
  uint64_t source_size_bytes = 0;  // source file size at persist time
  int64_t source_mtime_ms = 0;     // source file mtime at persist time
  uint64_t table_byte_size = 0;    // Table::ByteSize() at persist time
};

/// Serializes `table` + `meta` into the self-validating byte format above.
std::string EncodeColumnarFile(const Table& table, const ColumnarFileMeta& meta);

/// Parses and fully validates an encoded file. On success returns the decoded
/// table and fills `meta` (if non-null). Any integrity violation — bad magic,
/// version mismatch, truncation, checksum failure, implausible structure —
/// returns Status::Corruption.
Result<TablePtr> DecodeColumnarFile(const std::string& bytes,
                                    ColumnarFileMeta* meta);

/// Cheap header-only peek: validates magic + header checksum and fills
/// `meta` without touching the frames. Used by recovery to report what a
/// corrupt-beyond-the-header file claimed to be.
Status PeekColumnarMeta(const std::string& bytes, ColumnarFileMeta* meta);

}  // namespace dex

#endif  // DEX_IO_COLUMNAR_FILE_H_
