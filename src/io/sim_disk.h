#ifndef DEX_IO_SIM_DISK_H_
#define DEX_IO_SIM_DISK_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/fault_injector.h"
#include "io/io_stats.h"

namespace dex {

/// Identifies a persistent byte range ("storage object") on the simulated
/// disk: a repository file, a loaded column, or an index.
using ObjectId = uint32_t;
constexpr ObjectId kInvalidObjectId = 0;

/// \brief A simulated spinning-disk storage medium with a page-granular
/// LRU buffer pool.
///
/// This is the reproduction substitute for the paper's physical testbed
/// (7200rpm disk, 16 GB RAM): every persistent byte in the system — mSEED
/// repository files, eagerly loaded tables, and indexes — is *registered* as
/// a storage object and *accessed* through `Read`. A read that misses the
/// buffer pool charges simulated seek + transfer time; a hit is free. This
/// makes the paper's "cold" (restart, buffers flushed) and "hot" (buffers
/// pre-loaded) runs deterministic: cold = `FlushAll()`, hot = run twice.
///
/// The class does not hold data — contents live in the real structures that
/// own them (std::vector columns, real files). It accounts only for *where
/// the bytes would have been* and what moving them would cost.
class SimDisk {
 public:
  struct Options {
    double seek_millis = 8.0;          // average seek+rotational latency
    double read_mb_per_sec = 120.0;    // sequential read bandwidth
    double write_mb_per_sec = 100.0;   // sequential write bandwidth
    uint64_t buffer_pool_bytes = 4ull << 30;  // RAM available for caching
    uint64_t page_bytes = 256 * 1024;  // buffer pool page size
    /// I/O fault injection (seeded, deterministic). Only objects registered
    /// as fault-injectable (repository files) are affected.
    FaultInjector::Options faults;
  };

  SimDisk() : SimDisk(Options{}) {}
  explicit SimDisk(const Options& options);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Registers a new object of `size` bytes. Registration itself does not
  /// charge I/O (use Write for that). `name` is for diagnostics only.
  /// `fault_injectable` marks objects the fault injector may fail — the
  /// repository's files, as opposed to catalog tables and indexes whose
  /// durability is the database's own responsibility.
  ObjectId Register(const std::string& name, uint64_t size,
                    bool fault_injectable = false);

  /// Grows/shrinks an object (e.g. a column being appended to).
  Status Resize(ObjectId id, uint64_t new_size);

  /// Forgets the object and evicts its cached pages.
  Status Unregister(ObjectId id);

  /// Simulates reading [offset, offset+length) of `id`. Misses charge
  /// simulated time and pull pages into the buffer pool.
  Status Read(ObjectId id, uint64_t offset, uint64_t length);

  /// Convenience: read the whole object.
  Status ReadAll(ObjectId id);

  /// Simulates writing [offset, offset+length), growing the object if
  /// needed; written pages become resident (write-back caching).
  Status Write(ObjectId id, uint64_t offset, uint64_t length);

  /// Evicts everything: the next reads are cold. Equivalent to the paper's
  /// "right after restarting the server with all buffers flushed".
  void FlushAll();

  /// Pre-loads all pages of `id` without charging time (test/bench helper
  /// for constructing a hot state directly).
  Status Prefault(ObjectId id);

  /// Charges `nanos` of simulated wall time without moving any bytes (e.g.
  /// retry backoff in the fault-tolerant mount path).
  void ChargeDelay(uint64_t nanos) { stats_.sim_nanos += nanos; }

  Result<uint64_t> ObjectSize(ObjectId id) const;
  Result<std::string> ObjectName(ObjectId id) const;

  /// Fraction of the object's pages currently resident, in [0, 1].
  Result<double> ResidentFraction(ObjectId id) const;

  const IoStats& stats() const { return stats_; }
  uint64_t buffer_pool_used_bytes() const { return resident_pages_ * options_.page_bytes; }
  const Options& options() const { return options_; }

  /// The disk's fault injector (always present; inert unless configured via
  /// Options::faults or FailObject).
  FaultInjector* fault_injector() { return &injector_; }
  const FaultInjector& fault_injector() const { return injector_; }

 private:
  struct Object {
    std::string name;
    uint64_t size = 0;
    bool live = false;
    bool fault_injectable = false;
  };

  // Page key: object id in the high bits, page number in the low 40 bits.
  static uint64_t PageKey(ObjectId id, uint64_t page) {
    return (static_cast<uint64_t>(id) << 40) | page;
  }

  bool IsResident(uint64_t key) const { return lru_map_.count(key) > 0; }
  void Touch(uint64_t key);
  void Insert(uint64_t key);
  void EvictIfNeeded();
  void ChargeTransfer(uint64_t bytes, double mb_per_sec);
  void ChargeSeek();
  Status CheckLive(ObjectId id) const;

  Options options_;
  std::vector<Object> objects_;  // index = ObjectId (0 unused)
  // LRU: front = most recent.
  std::list<uint64_t> lru_list_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_map_;
  uint64_t resident_pages_ = 0;
  uint64_t max_pages_ = 0;
  IoStats stats_;
  FaultInjector injector_;
};

}  // namespace dex

#endif  // DEX_IO_SIM_DISK_H_
