#ifndef DEX_IO_SIM_DISK_H_
#define DEX_IO_SIM_DISK_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/fault_injector.h"
#include "io/io_stats.h"

namespace dex {

/// Identifies a persistent byte range ("storage object") on the simulated
/// disk: a repository file, a loaded column, or an index.
using ObjectId = uint32_t;
constexpr ObjectId kInvalidObjectId = 0;

/// \brief A simulated spinning-disk storage medium with a page-granular
/// LRU buffer pool.
///
/// This is the reproduction substitute for the paper's physical testbed
/// (7200rpm disk, 16 GB RAM): every persistent byte in the system — mSEED
/// repository files, eagerly loaded tables, and indexes — is *registered* as
/// a storage object and *accessed* through `Read`. A read that misses the
/// buffer pool charges simulated seek + transfer time; a hit is free. This
/// makes the paper's "cold" (restart, buffers flushed) and "hot" (buffers
/// pre-loaded) runs deterministic: cold = `FlushAll()`, hot = run twice.
///
/// The class does not hold data — contents live in the real structures that
/// own them (std::vector columns, real files). It accounts only for *where
/// the bytes would have been* and what moving them would cost.
///
/// All methods are thread-safe (one internal mutex). Concurrent *time*
/// accounting additionally supports per-task attribution: a worker thread
/// that installs a `TaskTimeScope` has all simulated stall time it incurs
/// accumulated into its own sink instead of the global `stats().sim_nanos`.
/// The parallel mount path uses this to compute a deterministic critical
/// path (makespan over worker lanes) that it then charges back via
/// `ChargeDelay` — simulated elapsed time stays independent of how the OS
/// actually interleaved the worker threads.
class SimDisk {
 public:
  struct Options {
    double seek_millis = 8.0;          // average seek+rotational latency
    double read_mb_per_sec = 120.0;    // sequential read bandwidth
    double write_mb_per_sec = 100.0;   // sequential write bandwidth
    uint64_t buffer_pool_bytes = 4ull << 30;  // RAM available for caching
    uint64_t page_bytes = 256 * 1024;  // buffer pool page size
    /// I/O fault injection (seeded, deterministic). Only objects registered
    /// as fault-injectable (repository files) are affected.
    FaultInjector::Options faults;
  };

  /// \brief RAII redirection of this thread's simulated-time charges.
  ///
  /// While alive, any `sim_nanos` the current thread would add to the global
  /// stats goes to `*sink` instead (byte/seek/fault counters still go to the
  /// shared stats — those are order-independent sums). Scopes nest; the
  /// previous sink is restored on destruction. The sink must outlive the
  /// scope and is only written by this thread, so no synchronisation is
  /// needed to read it after the owning task finished.
  class TaskTimeScope {
   public:
    explicit TaskTimeScope(uint64_t* sink) : prev_(tls_sim_nanos_sink_) {
      tls_sim_nanos_sink_ = sink;
    }
    ~TaskTimeScope() { tls_sim_nanos_sink_ = prev_; }

    TaskTimeScope(const TaskTimeScope&) = delete;
    TaskTimeScope& operator=(const TaskTimeScope&) = delete;

   private:
    uint64_t* prev_;
  };

  /// \brief RAII per-query attribution of this thread's *global* sim charges.
  ///
  /// While alive, every nanosecond the current thread adds to the global
  /// `stats().sim_nanos` is *also* added to `*sink` — a tee, not a redirect.
  /// Charges that a TaskTimeScope routes into a task bucket are excluded (the
  /// coordinator later folds them back in via ChargeDelay of the aggregated
  /// schedule, at which point they do hit the query sink), so the sink ends
  /// up equal to exactly what this query advanced the global clock by. The
  /// serving layer installs one per query on the coordinating thread, which
  /// makes per-query `sim_io_nanos` independent of what other concurrent
  /// queries charge — the global start/end diff is not.
  class QueryTimeScope {
   public:
    explicit QueryTimeScope(uint64_t* sink) : prev_(tls_query_sink_) {
      tls_query_sink_ = sink;
    }
    ~QueryTimeScope() { tls_query_sink_ = prev_; }

    QueryTimeScope(const QueryTimeScope&) = delete;
    QueryTimeScope& operator=(const QueryTimeScope&) = delete;

   private:
    uint64_t* prev_;
  };

  SimDisk() : SimDisk(Options{}) {}
  explicit SimDisk(const Options& options);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Registers a new object of `size` bytes. Registration itself does not
  /// charge I/O (use Write for that). `name` is for diagnostics only.
  /// `fault_injectable` marks objects the fault injector may fail — the
  /// repository's files, as opposed to catalog tables and indexes whose
  /// durability is the database's own responsibility.
  ObjectId Register(const std::string& name, uint64_t size,
                    bool fault_injectable = false);

  /// Grows/shrinks an object (e.g. a column being appended to).
  Status Resize(ObjectId id, uint64_t new_size);

  /// Forgets the object and evicts its cached pages.
  Status Unregister(ObjectId id);

  /// Simulates reading [offset, offset+length) of `id`. Misses charge
  /// simulated time and pull pages into the buffer pool.
  Status Read(ObjectId id, uint64_t offset, uint64_t length);

  /// Convenience: read the whole object.
  Status ReadAll(ObjectId id);

  /// Simulates writing [offset, offset+length), growing the object if
  /// needed; written pages become resident (write-back caching).
  Status Write(ObjectId id, uint64_t offset, uint64_t length);

  /// Evicts everything: the next reads are cold. Equivalent to the paper's
  /// "right after restarting the server with all buffers flushed".
  void FlushAll();

  /// Pre-loads all pages of `id` without charging time (test/bench helper
  /// for constructing a hot state directly).
  Status Prefault(ObjectId id);

  /// Charges `nanos` of simulated wall time without moving any bytes (e.g.
  /// retry backoff in the fault-tolerant mount path, or the aggregated
  /// critical path of a parallel mount wave).
  void ChargeDelay(uint64_t nanos);

  Result<uint64_t> ObjectSize(ObjectId id) const;
  Result<std::string> ObjectName(ObjectId id) const;

  /// Fraction of the object's pages currently resident, in [0, 1].
  Result<double> ResidentFraction(ObjectId id) const;

  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  uint64_t buffer_pool_used_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resident_pages_ * options_.page_bytes;
  }
  const Options& options() const { return options_; }

  /// The disk's fault injector (always present; inert unless configured via
  /// Options::faults or FailObject).
  FaultInjector* fault_injector() { return &injector_; }
  const FaultInjector& fault_injector() const { return injector_; }

 private:
  struct Object {
    std::string name;
    uint64_t size = 0;
    bool live = false;
    bool fault_injectable = false;
  };

  // Page key: object id in the high bits, page number in the low 40 bits.
  static uint64_t PageKey(ObjectId id, uint64_t page) {
    return (static_cast<uint64_t>(id) << 40) | page;
  }

  // All helpers below require mu_ to be held.
  bool IsResident(uint64_t key) const { return lru_map_.count(key) > 0; }
  void Touch(uint64_t key);
  void Insert(uint64_t key);
  void EvictIfNeeded();
  void ChargeTime(uint64_t nanos);
  void ChargeTransfer(uint64_t bytes, double mb_per_sec);
  void ChargeSeek();
  Status CheckLive(ObjectId id) const;
  Status ResizeLocked(ObjectId id, uint64_t new_size);
  Status ReadLocked(ObjectId id, uint64_t offset, uint64_t length);

  // Where this thread's sim-time charges land (null = global stats).
  static thread_local uint64_t* tls_sim_nanos_sink_;
  // Per-query tee for charges that land on the global clock (null = none).
  static thread_local uint64_t* tls_query_sink_;

  const Options options_;
  mutable std::mutex mu_;
  std::vector<Object> objects_;  // index = ObjectId (0 unused)
  // LRU: front = most recent.
  std::list<uint64_t> lru_list_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_map_;
  uint64_t resident_pages_ = 0;
  uint64_t max_pages_ = 0;
  IoStats stats_;
  FaultInjector injector_;
};

}  // namespace dex

#endif  // DEX_IO_SIM_DISK_H_
