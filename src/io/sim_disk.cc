#include "io/sim_disk.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_utils.h"
#include "obs/trace.h"

namespace dex {

std::string IoStats::ToString() const {
  std::string out = "disk_read=" + FormatBytes(disk_bytes_read) +
                    " cached_read=" + FormatBytes(cached_bytes_read) +
                    " written=" + FormatBytes(bytes_written) + " seeks=" +
                    std::to_string(seeks) + " sim_time=" +
                    std::to_string(sim_nanos / 1000000.0) + "ms";
  if (read_faults > 0) out += " faults=" + std::to_string(read_faults);
  return out;
}

thread_local uint64_t* SimDisk::tls_sim_nanos_sink_ = nullptr;
thread_local uint64_t* SimDisk::tls_query_sink_ = nullptr;

SimDisk::SimDisk(const Options& options)
    : options_(options), injector_(options.faults) {
  DEX_CHECK_GT(options_.page_bytes, 0u);
  objects_.emplace_back();  // slot 0 = kInvalidObjectId
  max_pages_ = std::max<uint64_t>(1, options_.buffer_pool_bytes / options_.page_bytes);
}

ObjectId SimDisk::Register(const std::string& name, uint64_t size,
                           bool fault_injectable) {
  std::lock_guard<std::mutex> lock(mu_);
  Object obj;
  obj.name = name;
  obj.size = size;
  obj.live = true;
  obj.fault_injectable = fault_injectable;
  objects_.push_back(std::move(obj));
  return static_cast<ObjectId>(objects_.size() - 1);
}

Status SimDisk::CheckLive(ObjectId id) const {
  if (id == kInvalidObjectId || id >= objects_.size() || !objects_[id].live) {
    return Status::NotFound("unknown storage object id " + std::to_string(id));
  }
  return Status::OK();
}

Status SimDisk::ResizeLocked(ObjectId id, uint64_t new_size) {
  DEX_RETURN_NOT_OK(CheckLive(id));
  const uint64_t old_pages =
      (objects_[id].size + options_.page_bytes - 1) / options_.page_bytes;
  const uint64_t new_pages = (new_size + options_.page_bytes - 1) / options_.page_bytes;
  // Shrinking: drop now-out-of-range pages.
  for (uint64_t p = new_pages; p < old_pages; ++p) {
    auto it = lru_map_.find(PageKey(id, p));
    if (it != lru_map_.end()) {
      lru_list_.erase(it->second);
      lru_map_.erase(it);
      --resident_pages_;
    }
  }
  objects_[id].size = new_size;
  return Status::OK();
}

Status SimDisk::Resize(ObjectId id, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  return ResizeLocked(id, new_size);
}

Status SimDisk::Unregister(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(ResizeLocked(id, 0));
  objects_[id].live = false;
  return Status::OK();
}

void SimDisk::Touch(uint64_t key) {
  auto it = lru_map_.find(key);
  DEX_CHECK(it != lru_map_.end());
  lru_list_.splice(lru_list_.begin(), lru_list_, it->second);
}

void SimDisk::Insert(uint64_t key) {
  lru_list_.push_front(key);
  lru_map_[key] = lru_list_.begin();
  ++resident_pages_;
  EvictIfNeeded();
}

void SimDisk::EvictIfNeeded() {
  while (resident_pages_ > max_pages_) {
    const uint64_t victim = lru_list_.back();
    lru_list_.pop_back();
    lru_map_.erase(victim);
    --resident_pages_;
  }
}

void SimDisk::ChargeTime(uint64_t nanos) {
  // A task scope routes this thread's stall time to the task's own bucket;
  // the parallel mount path later charges the aggregated critical path back
  // through ChargeDelay on the coordinating thread.
  if (tls_sim_nanos_sink_ != nullptr) {
    *tls_sim_nanos_sink_ += nanos;
  } else {
    stats_.sim_nanos += nanos;
    // Per-query tee: mirrors exactly what this thread advanced the global
    // clock by. Task-bucketed charges above are excluded — the coordinator
    // folds their aggregate back in through ChargeDelay, which passes here.
    if (tls_query_sink_ != nullptr) *tls_query_sink_ += nanos;
  }
  // Observability mirror (thread-local; never feeds back into accounting):
  // lets open trace spans attribute this stall to their sim clock.
  obs::AddSimCharge(nanos);
}

void SimDisk::ChargeTransfer(uint64_t bytes, double mb_per_sec) {
  // nanos = bytes / (MB/s * 1e6 B/s) * 1e9.
  ChargeTime(static_cast<uint64_t>(
      static_cast<double>(bytes) / (mb_per_sec * 1e6) * 1e9));
}

void SimDisk::ChargeSeek() {
  stats_.seeks += 1;
  ChargeTime(static_cast<uint64_t>(options_.seek_millis * 1e6));
}

void SimDisk::ChargeDelay(uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  ChargeTime(nanos);
}

Status SimDisk::ReadLocked(ObjectId id, uint64_t offset, uint64_t length) {
  DEX_RETURN_NOT_OK(CheckLive(id));
  if (length == 0) return Status::OK();
  const Object& obj = objects_[id];
  if (offset + length > obj.size) {
    return Status::InvalidArgument("read past end of '" + obj.name + "' (" +
                                   std::to_string(offset + length) + " > " +
                                   std::to_string(obj.size) + ")");
  }
  const uint64_t first = offset / options_.page_bytes;
  const uint64_t last = (offset + length - 1) / options_.page_bytes;

  // Fault injection point: a read that would touch the physical medium (at
  // least one page miss) may fail or stall. Permanently failed objects fail
  // every read — their bytes cannot be delivered regardless of caching.
  if (obj.fault_injectable) {
    const bool permanently_failed = injector_.IsFailed(id);
    bool would_miss = permanently_failed;
    for (uint64_t p = first; p <= last && !would_miss; ++p) {
      would_miss = !IsResident(PageKey(id, p));
    }
    if (would_miss &&
        (injector_.options().active() || injector_.has_permanent_faults())) {
      const FaultInjector::ReadFault fault = injector_.OnDiskRead(id);
      ChargeTime(fault.extra_latency_nanos);
      if (fault.fail) {
        // The failed attempt still paid for positioning the head; no pages
        // become resident.
        ChargeSeek();
        ++stats_.read_faults;
        if (fault.permanent) {
          return Status::IOError("permanent I/O failure reading '" + obj.name +
                                 "'");
        }
        return Status::IOError("transient read error on '" + obj.name + "'");
      }
    }
  }

  bool in_miss_run = false;
  uint64_t miss_pages = 0;
  for (uint64_t p = first; p <= last; ++p) {
    const uint64_t key = PageKey(id, p);
    if (IsResident(key)) {
      Touch(key);
      in_miss_run = false;
    } else {
      if (!in_miss_run) {
        ChargeSeek();
        in_miss_run = true;
      }
      ++miss_pages;
      Insert(key);
    }
  }
  const uint64_t miss_bytes = miss_pages * options_.page_bytes;
  const uint64_t total_pages = last - first + 1;
  stats_.disk_bytes_read += miss_bytes;
  stats_.cached_bytes_read += (total_pages - miss_pages) * options_.page_bytes;
  ChargeTransfer(miss_bytes, options_.read_mb_per_sec);
  return Status::OK();
}

Status SimDisk::Read(ObjectId id, uint64_t offset, uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadLocked(id, offset, length);
}

Status SimDisk::ReadAll(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(CheckLive(id));
  return ReadLocked(id, 0, objects_[id].size);
}

Status SimDisk::Write(ObjectId id, uint64_t offset, uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(CheckLive(id));
  if (length == 0) return Status::OK();
  Object& obj = objects_[id];
  obj.size = std::max(obj.size, offset + length);
  const uint64_t first = offset / options_.page_bytes;
  const uint64_t last = (offset + length - 1) / options_.page_bytes;
  for (uint64_t p = first; p <= last; ++p) {
    const uint64_t key = PageKey(id, p);
    if (IsResident(key)) {
      Touch(key);
    } else {
      Insert(key);
    }
  }
  stats_.bytes_written += length;
  ChargeTransfer(length, options_.write_mb_per_sec);
  return Status::OK();
}

void SimDisk::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_list_.clear();
  lru_map_.clear();
  resident_pages_ = 0;
}

Status SimDisk::Prefault(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(CheckLive(id));
  const Object& obj = objects_[id];
  const uint64_t pages = (obj.size + options_.page_bytes - 1) / options_.page_bytes;
  for (uint64_t p = 0; p < pages; ++p) {
    const uint64_t key = PageKey(id, p);
    if (!IsResident(key)) Insert(key);
  }
  return Status::OK();
}

Result<uint64_t> SimDisk::ObjectSize(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(CheckLive(id));
  return objects_[id].size;
}

Result<std::string> SimDisk::ObjectName(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(CheckLive(id));
  return objects_[id].name;
}

Result<double> SimDisk::ResidentFraction(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_RETURN_NOT_OK(CheckLive(id));
  const Object& obj = objects_[id];
  const uint64_t pages = (obj.size + options_.page_bytes - 1) / options_.page_bytes;
  if (pages == 0) return 1.0;
  uint64_t resident = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (IsResident(PageKey(id, p))) ++resident;
  }
  return static_cast<double>(resident) / static_cast<double>(pages);
}

}  // namespace dex
