#include "io/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/string_utils.h"

namespace dex {

namespace fs = std::filesystem;

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    return Status::IOError("short read on '" + path + "'");
  }
  return Status::OK();
}

Status ReadFileRange(const std::string& path, uint64_t offset, uint64_t length,
                     std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  in.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  out->resize(length);
  if (length > 0 && !in.read(out->data(), static_cast<std::streamoff>(length))) {
    return Status::IOError("short range read on '" + path + "'");
  }
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) return Status::IOError("mkdir failed for '" + path + "': " + ec.message());
  }
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) return Status::IOError("cannot open '" + path + "' for writing");
  outf.write(data.data(), static_cast<std::streamoff>(data.size()));
  if (!outf) return Status::IOError("short write on '" + path + "'");
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("mkdir failed for '" + path + "': " + ec.message());
    }
  }
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      if (n < 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return Status::IOError("short write on '" + tmp + "'");
      }
      off += static_cast<size_t>(n);
    }
    // Seal the bytes before the rename makes them reachable: rename is
    // atomic, but only an fsynced temp file guarantees the *contents* are
    // durable when the new name appears.
    if (::fsync(fd) != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("fsync failed on '" + tmp + "'");
    }
    ::close(fd);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  // Persist the directory entry too (best-effort: some filesystems refuse
  // O_RDONLY fsync on directories; the rename itself is still atomic).
  const std::string dir = p.has_parent_path() ? p.parent_path().string() : ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size('" + path + "'): " + ec.message());
  return size;
}

Result<int64_t> FileMtimeMillis(const std::string& path) {
  // POSIX stat gives the mtime against the Unix epoch directly and
  // deterministically (std::filesystem's file_clock has an
  // implementation-defined epoch and no clock_cast on this toolchain).
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("stat('" + path + "') failed");
  }
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000 +
         st.st_mtim.tv_nsec / 1000000;
}

Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                           const std::string& extension) {
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) {
    return Status::NotFound("directory '" + dir + "' does not exist");
  }
  std::vector<std::string> out;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) return Status::IOError("walking '" + dir + "': " + ec.message());
    if (it->is_regular_file() &&
        (extension.empty() || EndsWith(it->path().string(), extension))) {
      out.push_back(it->path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status RemoveDirRecursive(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::IOError("remove_all('" + dir + "'): " + ec.message());
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

}  // namespace dex
