#ifndef DEX_IO_FILE_IO_H_
#define DEX_IO_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dex {

/// Real-filesystem helpers used by the mSEED reader/writer and the
/// repository generator. All paths are plain std::filesystem paths.

/// \brief Reads an entire file into `out`.
Status ReadFileToString(const std::string& path, std::string* out);

/// \brief Reads `length` bytes at `offset` into `out` (resized to fit).
Status ReadFileRange(const std::string& path, uint64_t offset, uint64_t length,
                     std::string* out);

/// \brief Creates/overwrites `path` with `data`, creating parent directories.
Status WriteStringToFile(const std::string& path, const std::string& data);

/// \brief Crash-safe replace: writes `data` to `path + ".tmp"`, fsyncs the
/// file (and its directory), then renames over `path`. A crash at any point
/// leaves either the old complete file or the new complete file — never a
/// torn mix. Used for the persistent cache's manifest and entry files.
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// \brief Size of a regular file in bytes.
Result<uint64_t> FileSize(const std::string& path);

/// \brief Last-modification time in epoch millis (used for cache
/// invalidation of mounted files).
Result<int64_t> FileMtimeMillis(const std::string& path);

/// \brief Recursively lists regular files under `dir` with the given
/// extension (e.g. ".mseed"), sorted lexicographically.
Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                           const std::string& extension);

/// \brief Recursively deletes `dir` if it exists (test/bench scratch areas).
Status RemoveDirRecursive(const std::string& dir);

bool FileExists(const std::string& path);

}  // namespace dex

#endif  // DEX_IO_FILE_IO_H_
