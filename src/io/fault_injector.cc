#include "io/fault_injector.h"

#include <cmath>

namespace dex {

namespace {

// Derives a well-mixed per-object stream seed from the injector seed. The
// golden-ratio multiplier keeps adjacent ObjectIds from producing correlated
// streams (Random's own SplitMix init then finishes the scrambling).
uint64_t StreamSeed(uint64_t seed, uint32_t object) {
  return seed ^ (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(object) + 1));
}

// Distinct stream families (repository reads / cache writes / cache reads)
// decorrelate via fixed salts folded into the injector seed.
constexpr uint64_t kCacheWriteSalt = 0xA5A5A5A5A5A5A5A5ull;
constexpr uint64_t kCacheReadSalt = 0x5A5A5A5A5A5A5A5Aull;

Random& StreamFor(std::unordered_map<uint32_t, Random>* streams, uint64_t seed,
                  uint32_t key) {
  auto it = streams->find(key);
  if (it == streams->end()) {
    it = streams->emplace(key, Random(StreamSeed(seed, key))).first;
  }
  return it->second;
}

}  // namespace

FaultInjector::ReadFault FaultInjector::OnDiskRead(uint32_t object) {
  std::lock_guard<std::mutex> lock(mu_);
  ReadFault out;
  ++stats_.reads_seen;
  if (permanent_.count(object) > 0) {
    out.fail = true;
    out.permanent = true;
    ++stats_.permanent_faults;
    return out;
  }
  auto it = streams_.find(object);
  if (it == streams_.end()) {
    it = streams_.emplace(object, Random(StreamSeed(options_.seed, object)))
             .first;
  }
  Random& rng = it->second;
  if (options_.transient_error_rate > 0.0 &&
      rng.NextBool(options_.transient_error_rate)) {
    out.fail = true;
    ++stats_.transient_faults;
  }
  if (options_.latency_spike_rate > 0.0 &&
      rng.NextBool(options_.latency_spike_rate)) {
    // Exponentially distributed spike around the configured mean; clamp the
    // uniform draw away from 1.0 so the log stays finite.
    const double u = std::min(rng.NextDouble(), 0.999999);
    const double spike_ms = -options_.latency_spike_millis * std::log(1.0 - u);
    out.extra_latency_nanos = static_cast<uint64_t>(spike_ms * 1e6);
    ++stats_.latency_spikes;
    stats_.spike_nanos += out.extra_latency_nanos;
  }
  return out;
}

FaultInjector::CacheWriteFault FaultInjector::OnCacheWrite(
    uint32_t stream, uint64_t total_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  CacheWriteFault out;
  ++stats_.cache_writes_seen;
  if (!options_.cache_faults_active() || total_bytes == 0) return out;
  Random& rng = StreamFor(&cache_write_streams_,
                          options_.seed ^ kCacheWriteSalt, stream);
  if (options_.torn_write_rate > 0.0 &&
      rng.NextBool(options_.torn_write_rate)) {
    out.torn = true;
    // A torn write keeps a strict prefix: at least the first byte (so the
    // file exists and recovery must actually look at it), never the whole.
    out.keep_bytes = total_bytes > 1 ? 1 + rng.Uniform(total_bytes - 1) : 0;
    ++stats_.torn_writes;
  }
  const uint64_t kept = out.torn ? out.keep_bytes : total_bytes;
  if (kept > 0 && options_.bit_flip_rate > 0.0 &&
      rng.NextBool(options_.bit_flip_rate)) {
    out.bit_flip = true;
    out.flip_offset = rng.Uniform(kept);
    out.flip_mask = static_cast<uint8_t>(1u << rng.Uniform(8));
    ++stats_.bit_flips;
  }
  return out;
}

FaultInjector::CacheReadFault FaultInjector::OnCacheRead(uint32_t stream,
                                                         uint64_t total_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  CacheReadFault out;
  ++stats_.cache_reads_seen;
  if (!options_.cache_faults_active() || total_bytes == 0) return out;
  Random& rng = StreamFor(&cache_read_streams_,
                          options_.seed ^ kCacheReadSalt, stream);
  if (options_.short_read_rate > 0.0 &&
      rng.NextBool(options_.short_read_rate)) {
    out.short_read = true;
    out.keep_bytes = rng.Uniform(total_bytes);  // strict prefix, may be empty
    ++stats_.short_reads;
  }
  return out;
}

}  // namespace dex
