#include "io/fault_injector.h"

#include <cmath>

namespace dex {

FaultInjector::ReadFault FaultInjector::OnDiskRead(uint32_t object) {
  ReadFault out;
  ++stats_.reads_seen;
  if (permanent_.count(object) > 0) {
    out.fail = true;
    out.permanent = true;
    ++stats_.permanent_faults;
    return out;
  }
  if (options_.transient_error_rate > 0.0 &&
      rng_.NextBool(options_.transient_error_rate)) {
    out.fail = true;
    ++stats_.transient_faults;
  }
  if (options_.latency_spike_rate > 0.0 &&
      rng_.NextBool(options_.latency_spike_rate)) {
    // Exponentially distributed spike around the configured mean; clamp the
    // uniform draw away from 1.0 so the log stays finite.
    const double u = std::min(rng_.NextDouble(), 0.999999);
    const double spike_ms = -options_.latency_spike_millis * std::log(1.0 - u);
    out.extra_latency_nanos = static_cast<uint64_t>(spike_ms * 1e6);
    ++stats_.latency_spikes;
    stats_.spike_nanos += out.extra_latency_nanos;
  }
  return out;
}

}  // namespace dex
