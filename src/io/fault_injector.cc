#include "io/fault_injector.h"

#include <cmath>

namespace dex {

namespace {

// Derives a well-mixed per-object stream seed from the injector seed. The
// golden-ratio multiplier keeps adjacent ObjectIds from producing correlated
// streams (Random's own SplitMix init then finishes the scrambling).
uint64_t StreamSeed(uint64_t seed, uint32_t object) {
  return seed ^ (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(object) + 1));
}

}  // namespace

FaultInjector::ReadFault FaultInjector::OnDiskRead(uint32_t object) {
  std::lock_guard<std::mutex> lock(mu_);
  ReadFault out;
  ++stats_.reads_seen;
  if (permanent_.count(object) > 0) {
    out.fail = true;
    out.permanent = true;
    ++stats_.permanent_faults;
    return out;
  }
  auto it = streams_.find(object);
  if (it == streams_.end()) {
    it = streams_.emplace(object, Random(StreamSeed(options_.seed, object)))
             .first;
  }
  Random& rng = it->second;
  if (options_.transient_error_rate > 0.0 &&
      rng.NextBool(options_.transient_error_rate)) {
    out.fail = true;
    ++stats_.transient_faults;
  }
  if (options_.latency_spike_rate > 0.0 &&
      rng.NextBool(options_.latency_spike_rate)) {
    // Exponentially distributed spike around the configured mean; clamp the
    // uniform draw away from 1.0 so the log stays finite.
    const double u = std::min(rng.NextDouble(), 0.999999);
    const double spike_ms = -options_.latency_spike_millis * std::log(1.0 - u);
    out.extra_latency_nanos = static_cast<uint64_t>(spike_ms * 1e6);
    ++stats_.latency_spikes;
    stats_.spike_nanos += out.extra_latency_nanos;
  }
  return out;
}

}  // namespace dex
