#ifndef DEX_IO_FAULT_INJECTOR_H_
#define DEX_IO_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace dex {

/// \brief Deterministic, seed-driven I/O fault injection for the simulated
/// storage medium.
///
/// Real scientific repositories sit on flaky spinning disks and NFS mounts:
/// reads fail transiently, individual files go permanently bad, and latency
/// spikes dwarf the average seek. `SimDisk` consults an injector on every
/// read of a fault-injectable object (repository files; catalog storage is
/// exempt) so every failure scenario in tests and benchmarks is reproducible
/// from a seed:
///
///  - *transient* faults: each disk-touching read fails with probability
///    `transient_error_rate`; an immediate retry draws a fresh outcome —
///    this is what the Mounter's retry/backoff loop absorbs;
///  - *permanent* faults: objects in the failure set fail every read until
///    healed — this is what drives file quarantine;
///  - *latency spikes*: with probability `latency_spike_rate` a read is
///    charged an extra exponentially distributed simulated delay.
///
/// Each object draws from its own PRNG stream, derived from (seed, object).
/// The fate of the k-th read of an object therefore depends only on the
/// seed, the object, and k — not on reads of *other* objects. This is what
/// keeps fault schedules replayable when the parallel mount path interleaves
/// reads of many files in a thread-dependent order.
///
/// All methods are thread-safe.
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 0;
    /// Probability that a read which touches the disk fails with kIOError.
    double transient_error_rate = 0.0;
    /// Probability of an injected latency spike on a disk-touching read.
    double latency_spike_rate = 0.0;
    /// Mean of the exponentially distributed spike duration.
    double latency_spike_millis = 50.0;

    // -- Persistence (cache-file) fault modes -----------------------------
    // These target the persistent cache's own durable writes/reads, not
    // repository reads. Draws come from per-file streams keyed by an
    // FNV-derived stream id, so the fate of the k-th write of a given cache
    // file depends only on (seed, file, k) — order-independent across
    // thread interleavings, exactly like the per-object read streams.
    /// Probability a cache-file write persists only a prefix (crash between
    /// write and fsync on a metadata-reordering filesystem).
    double torn_write_rate = 0.0;
    /// Probability a cache-file write lands with one seeded bit flipped
    /// (silent media corruption surfacing on the next read).
    double bit_flip_rate = 0.0;
    /// Probability a cache-file read observes only a prefix of the file.
    double short_read_rate = 0.0;

    bool active() const {
      return transient_error_rate > 0.0 || latency_spike_rate > 0.0;
    }
    bool cache_faults_active() const {
      return torn_write_rate > 0.0 || bit_flip_rate > 0.0 ||
             short_read_rate > 0.0;
    }
  };

  struct Stats {
    uint64_t reads_seen = 0;        // injectable disk reads evaluated
    uint64_t transient_faults = 0;  // reads failed transiently
    uint64_t permanent_faults = 0;  // reads failed against the failure set
    uint64_t latency_spikes = 0;
    uint64_t spike_nanos = 0;       // total injected delay
    uint64_t cache_writes_seen = 0; // cache-file writes evaluated
    uint64_t torn_writes = 0;       // writes persisted as a prefix
    uint64_t bit_flips = 0;         // writes persisted with a flipped bit
    uint64_t cache_reads_seen = 0;  // cache-file reads evaluated
    uint64_t short_reads = 0;       // reads returned a prefix
  };

  /// Outcome of one read attempt. `extra_latency_nanos` is charged by the
  /// caller whether or not the read also fails.
  struct ReadFault {
    bool fail = false;
    bool permanent = false;
    uint64_t extra_latency_nanos = 0;
  };

  /// Outcome of one cache-file write of `total_bytes`. When `torn`, only
  /// `keep_bytes` land on disk; when `bit_flip`, bit `flip_mask` of byte
  /// `flip_offset` (of whatever was kept) is inverted before it lands.
  struct CacheWriteFault {
    bool torn = false;
    uint64_t keep_bytes = 0;
    bool bit_flip = false;
    uint64_t flip_offset = 0;
    uint8_t flip_mask = 0;
  };

  /// Outcome of one cache-file read of `total_bytes`: when `short_read`,
  /// only `keep_bytes` are returned to the reader.
  struct CacheReadFault {
    bool short_read = false;
    uint64_t keep_bytes = 0;
  };

  FaultInjector() : FaultInjector(Options{}) {}
  explicit FaultInjector(const Options& options) : options_(options) {}

  /// Adds `object` (a SimDisk ObjectId) to the permanent failure set.
  void FailObject(uint32_t object) {
    std::lock_guard<std::mutex> lock(mu_);
    permanent_.insert(object);
  }

  /// Removes `object` from the permanent failure set (the file was repaired
  /// or the medium recovered).
  void HealObject(uint32_t object) {
    std::lock_guard<std::mutex> lock(mu_);
    permanent_.erase(object);
  }

  bool IsFailed(uint32_t object) const {
    std::lock_guard<std::mutex> lock(mu_);
    return permanent_.count(object) > 0;
  }

  bool has_permanent_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !permanent_.empty();
  }

  /// Draws the fate of one disk-touching read of `object`. Deterministic in
  /// (seed, object, number of prior OnDiskRead calls for `object`).
  ReadFault OnDiskRead(uint32_t object);

  /// Draws the fate of one cache-file write of `total_bytes` under `stream`
  /// (an FNV-derived per-file id; see PersistentCache). Deterministic in
  /// (seed, stream, number of prior OnCacheWrite calls for `stream`).
  CacheWriteFault OnCacheWrite(uint32_t stream, uint64_t total_bytes);

  /// Draws the fate of one cache-file read of `total_bytes` under `stream`.
  /// Deterministic in (seed, stream, prior OnCacheRead calls for `stream`).
  CacheReadFault OnCacheRead(uint32_t stream, uint64_t total_bytes);

  const Options& options() const { return options_; }
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  const Options options_;
  mutable std::mutex mu_;
  // Lazily created per-object PRNG streams; guarded by mu_.
  std::unordered_map<uint32_t, Random> streams_;
  // Separate stream families for cache-file writes and reads: the same
  // stream id must not share draws with repository-read streams (or with
  // each other), or adding a fault mode would perturb the other's schedule.
  std::unordered_map<uint32_t, Random> cache_write_streams_;
  std::unordered_map<uint32_t, Random> cache_read_streams_;
  std::unordered_set<uint32_t> permanent_;
  Stats stats_;
};

}  // namespace dex

#endif  // DEX_IO_FAULT_INJECTOR_H_
