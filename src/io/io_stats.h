#ifndef DEX_IO_IO_STATS_H_
#define DEX_IO_IO_STATS_H_

#include <cstdint>
#include <string>

namespace dex {

/// \brief Counters accumulated by the simulated storage medium.
///
/// `sim_nanos` is the simulated I/O stall time; benchmarks add it to measured
/// CPU time to obtain the reported query time (see DESIGN.md §2 on the
/// cold/hot substitution).
struct IoStats {
  uint64_t disk_bytes_read = 0;    // bytes that missed the buffer pool
  uint64_t cached_bytes_read = 0;  // bytes served from the buffer pool
  uint64_t bytes_written = 0;
  uint64_t seeks = 0;              // contiguous miss runs
  uint64_t sim_nanos = 0;          // simulated elapsed I/O time
  uint64_t read_faults = 0;        // injected read failures (see FaultInjector)

  IoStats& operator+=(const IoStats& o) {
    disk_bytes_read += o.disk_bytes_read;
    cached_bytes_read += o.cached_bytes_read;
    bytes_written += o.bytes_written;
    seeks += o.seeks;
    sim_nanos += o.sim_nanos;
    read_faults += o.read_faults;
    return *this;
  }

  /// Component-wise difference (for snapshot/diff measurement windows).
  IoStats Since(const IoStats& earlier) const {
    IoStats d;
    d.disk_bytes_read = disk_bytes_read - earlier.disk_bytes_read;
    d.cached_bytes_read = cached_bytes_read - earlier.cached_bytes_read;
    d.bytes_written = bytes_written - earlier.bytes_written;
    d.seeks = seeks - earlier.seeks;
    d.sim_nanos = sim_nanos - earlier.sim_nanos;
    d.read_faults = read_faults - earlier.read_faults;
    return d;
  }

  std::string ToString() const;
};

}  // namespace dex

#endif  // DEX_IO_IO_STATS_H_
