#include "io/columnar_file.h"

#include <cstring>

#include "common/fnv.h"
#include "storage/schema.h"

namespace dex {

namespace {

constexpr char kMagic[8] = {'D', 'X', 'C', 'O', 'L', '0', '0', '1'};
constexpr char kEndMark[8] = {'D', 'X', 'C', 'O', 'L', 'E', 'N', 'D'};

// Frame encodings. The ids are part of the on-disk format; add new ones at
// the end and bump the magic if an existing id changes meaning.
constexpr uint64_t kEncConstI64 = 0;   // all values equal: one i64
constexpr uint64_t kEncStrideI64 = 1;  // arithmetic progression: base, stride
constexpr uint64_t kEncRawI64 = 2;     // n * 8 bytes
constexpr uint64_t kEncConstF64 = 3;   // all values equal: one f64
constexpr uint64_t kEncRawF64 = 4;     // n * 8 bytes
constexpr uint64_t kEncString = 5;     // dictionary + (const code | raw codes)

// Structural sanity bounds: a corrupt length field must fail fast instead of
// driving a multi-gigabyte allocation.
constexpr uint64_t kMaxFields = 4096;
constexpr uint64_t kMaxRows = 1ull << 40;

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  Status Need(size_t n) const {
    if (pos_ > data_.size() || n > data_.size() - pos_) {
      return Status::Corruption("columnar file truncated at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<uint64_t> U64() {
    DEX_RETURN_NOT_OK(Need(8));
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<int64_t> I64() {
    DEX_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    DEX_RETURN_NOT_OK(Need(8));
    double v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    DEX_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > data_.size()) {
      return Status::Corruption("implausible string length in columnar file");
    }
    DEX_RETURN_NOT_OK(Need(n));
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  Status Skip(size_t n) {
    DEX_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::OK();
  }
  size_t pos() const { return pos_; }
  const char* Here() const { return data_.data() + pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

void EncodeI64Frame(const Column& col, size_t n, uint64_t* encoding,
                    std::string* payload) {
  const int64_t* v = col.data_i64();
  bool constant = true;
  for (size_t i = 1; i < n && constant; ++i) constant = v[i] == v[0];
  if (n > 0 && constant) {
    *encoding = kEncConstI64;
    PutI64(payload, v[0]);
    return;
  }
  if (n >= 2) {
    const int64_t stride = v[1] - v[0];
    bool arithmetic = true;
    for (size_t i = 2; i < n && arithmetic; ++i) {
      arithmetic = v[i] - v[i - 1] == stride;
    }
    if (arithmetic) {
      *encoding = kEncStrideI64;
      PutI64(payload, v[0]);
      PutI64(payload, stride);
      return;
    }
  }
  *encoding = kEncRawI64;
  payload->append(reinterpret_cast<const char*>(v), n * sizeof(int64_t));
}

void EncodeF64Frame(const Column& col, size_t n, uint64_t* encoding,
                    std::string* payload) {
  const double* v = col.data_f64();
  bool constant = n > 0;
  for (size_t i = 1; i < n && constant; ++i) {
    // Bit-compare: NaNs and signed zeros must round-trip exactly.
    constant = std::memcmp(&v[i], &v[0], sizeof(double)) == 0;
  }
  if (constant) {
    *encoding = kEncConstF64;
    PutF64(payload, v[0]);
    return;
  }
  *encoding = kEncRawF64;
  payload->append(reinterpret_cast<const char*>(v), n * sizeof(double));
}

void EncodeStringFrame(const Column& col, size_t n, std::string* payload) {
  const auto& dict = *col.dict();
  PutU64(payload, dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    PutStr(payload, dict.At(static_cast<int32_t>(i)));
  }
  const int32_t* codes = col.codes();
  bool constant = n > 0;
  for (size_t i = 1; i < n && constant; ++i) constant = codes[i] == codes[0];
  PutU64(payload, constant ? 1 : 0);
  if (constant) {
    PutI64(payload, codes[0]);
  } else {
    payload->append(reinterpret_cast<const char*>(codes),
                    n * sizeof(int32_t));
  }
}

Status DecodeI64Frame(uint64_t encoding, const std::string& payload, size_t n,
                      Column* col) {
  Cursor cur(payload);
  if (encoding == kEncConstI64) {
    DEX_ASSIGN_OR_RETURN(int64_t v, cur.I64());
    for (size_t i = 0; i < n; ++i) col->AppendInt64(v);
  } else if (encoding == kEncStrideI64) {
    DEX_ASSIGN_OR_RETURN(int64_t base, cur.I64());
    DEX_ASSIGN_OR_RETURN(int64_t stride, cur.I64());
    int64_t v = base;
    for (size_t i = 0; i < n; ++i, v += stride) col->AppendInt64(v);
  } else if (encoding == kEncRawI64) {
    if (payload.size() != n * sizeof(int64_t)) {
      return Status::Corruption("raw int64 frame size mismatch");
    }
    col->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      int64_t v;
      std::memcpy(&v, payload.data() + i * sizeof(int64_t), sizeof(int64_t));
      col->AppendInt64(v);
    }
  } else {
    return Status::Corruption("unknown int64 frame encoding " +
                              std::to_string(encoding));
  }
  return Status::OK();
}

Status DecodeF64Frame(uint64_t encoding, const std::string& payload, size_t n,
                      Column* col) {
  Cursor cur(payload);
  if (encoding == kEncConstF64) {
    DEX_ASSIGN_OR_RETURN(double v, cur.F64());
    for (size_t i = 0; i < n; ++i) col->AppendDouble(v);
  } else if (encoding == kEncRawF64) {
    if (payload.size() != n * sizeof(double)) {
      return Status::Corruption("raw double frame size mismatch");
    }
    col->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      double v;
      std::memcpy(&v, payload.data() + i * sizeof(double), sizeof(double));
      col->AppendDouble(v);
    }
  } else {
    return Status::Corruption("unknown double frame encoding " +
                              std::to_string(encoding));
  }
  return Status::OK();
}

Status DecodeStringFrame(const std::string& payload, size_t n, Column* col) {
  Cursor cur(payload);
  DEX_ASSIGN_OR_RETURN(uint64_t dict_n, cur.U64());
  if (dict_n > payload.size()) {
    return Status::Corruption("implausible dictionary size");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_n);
  for (uint64_t i = 0; i < dict_n; ++i) {
    DEX_ASSIGN_OR_RETURN(std::string s, cur.Str());
    dict.push_back(std::move(s));
  }
  DEX_ASSIGN_OR_RETURN(uint64_t constant, cur.U64());
  if (constant > 1) return Status::Corruption("bad string frame const flag");
  auto check_code = [&](int64_t code) -> Status {
    if (code < 0 || static_cast<uint64_t>(code) >= dict_n) {
      return Status::Corruption("string code out of dictionary range");
    }
    return Status::OK();
  };
  if (constant == 1) {
    DEX_ASSIGN_OR_RETURN(int64_t code, cur.I64());
    if (n > 0) DEX_RETURN_NOT_OK(check_code(code));
    for (size_t i = 0; i < n; ++i) col->AppendString(dict[code]);
  } else {
    DEX_RETURN_NOT_OK(cur.Need(n * sizeof(int32_t)));
    col->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      int32_t code;
      std::memcpy(&code, cur.Here() + i * sizeof(int32_t), sizeof(int32_t));
      DEX_RETURN_NOT_OK(check_code(code));
      col->AppendString(dict[code]);
    }
  }
  return Status::OK();
}

/// Validates magic + header checksum and parses the header. On success the
/// cursor is positioned at the first frame and `meta`/`table_name`/`schema`/
/// `num_rows` are filled.
Status ParseValidatedHeader(const std::string& bytes, Cursor* cur,
                            ColumnarFileMeta* meta, std::string* table_name,
                            SchemaPtr* schema, uint64_t* num_rows) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad columnar file magic/version");
  }
  DEX_RETURN_NOT_OK(cur->Skip(sizeof(kMagic)));
  ColumnarFileMeta m;
  DEX_ASSIGN_OR_RETURN(m.source_uri, cur->Str());
  DEX_ASSIGN_OR_RETURN(m.predicate_repr, cur->Str());
  DEX_ASSIGN_OR_RETURN(uint64_t pure, cur->U64());
  if (pure > 1) return Status::Corruption("bad window flag");
  m.window_pure = pure == 1;
  DEX_ASSIGN_OR_RETURN(m.window_lo, cur->F64());
  DEX_ASSIGN_OR_RETURN(m.window_hi, cur->F64());
  DEX_ASSIGN_OR_RETURN(m.source_size_bytes, cur->U64());
  DEX_ASSIGN_OR_RETURN(m.source_mtime_ms, cur->I64());
  DEX_ASSIGN_OR_RETURN(m.table_byte_size, cur->U64());
  DEX_ASSIGN_OR_RETURN(*table_name, cur->Str());
  DEX_ASSIGN_OR_RETURN(uint64_t num_fields, cur->U64());
  if (num_fields > kMaxFields) {
    return Status::Corruption("implausible field count");
  }
  auto s = std::make_shared<Schema>();
  for (uint64_t i = 0; i < num_fields; ++i) {
    Field f;
    DEX_ASSIGN_OR_RETURN(f.name, cur->Str());
    DEX_ASSIGN_OR_RETURN(uint64_t type, cur->U64());
    if (type > static_cast<uint64_t>(DataType::kBool)) {
      return Status::Corruption("unknown column type " + std::to_string(type));
    }
    f.type = static_cast<DataType>(type);
    DEX_ASSIGN_OR_RETURN(f.qualifier, cur->Str());
    s->AddField(f);
  }
  DEX_ASSIGN_OR_RETURN(*num_rows, cur->U64());
  if (*num_rows > kMaxRows) return Status::Corruption("implausible row count");
  const uint64_t want = Fnv1a(bytes.data(), cur->pos());
  DEX_ASSIGN_OR_RETURN(uint64_t got, cur->U64());
  if (want != got) {
    return Status::Corruption("columnar header checksum mismatch");
  }
  *schema = std::move(s);
  if (meta != nullptr) *meta = std::move(m);
  return Status::OK();
}

}  // namespace

std::string EncodeColumnarFile(const Table& table,
                               const ColumnarFileMeta& meta) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutStr(&out, meta.source_uri);
  PutStr(&out, meta.predicate_repr);
  PutU64(&out, meta.window_pure ? 1 : 0);
  PutF64(&out, meta.window_lo);
  PutF64(&out, meta.window_hi);
  PutU64(&out, meta.source_size_bytes);
  PutI64(&out, meta.source_mtime_ms);
  PutU64(&out, meta.table_byte_size != 0 ? meta.table_byte_size
                                         : table.ByteSize());
  PutStr(&out, table.name());
  PutU64(&out, table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Field& f = table.schema()->field(i);
    PutStr(&out, f.name);
    PutU64(&out, static_cast<uint64_t>(f.type));
    PutStr(&out, f.qualifier);
  }
  PutU64(&out, table.num_rows());
  PutU64(&out, Fnv1a(out.data(), out.size()));  // header checksum

  const size_t n = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    uint64_t encoding = 0;
    std::string payload;
    switch (col.type()) {
      case DataType::kDouble:
        EncodeF64Frame(col, n, &encoding, &payload);
        break;
      case DataType::kString:
        encoding = kEncString;
        EncodeStringFrame(col, n, &payload);
        break;
      default:  // int64-backed: kInt64, kTimestamp, kBool
        EncodeI64Frame(col, n, &encoding, &payload);
        break;
    }
    PutU64(&out, encoding);
    PutU64(&out, payload.size());
    out.append(payload);
    PutU64(&out, Fnv1a(payload.data(), payload.size()));  // frame checksum
  }

  PutU64(&out, Fnv1a(out.data(), out.size()));  // whole-file checksum
  out.append(kEndMark, sizeof(kEndMark));
  return out;
}

Status PeekColumnarMeta(const std::string& bytes, ColumnarFileMeta* meta) {
  Cursor cur(bytes);
  std::string table_name;
  SchemaPtr schema;
  uint64_t num_rows = 0;
  return ParseValidatedHeader(bytes, &cur, meta, &table_name, &schema,
                              &num_rows);
}

Result<TablePtr> DecodeColumnarFile(const std::string& bytes,
                                    ColumnarFileMeta* meta) {
  Cursor cur(bytes);
  std::string table_name;
  SchemaPtr schema;
  uint64_t num_rows = 0;
  DEX_RETURN_NOT_OK(
      ParseValidatedHeader(bytes, &cur, meta, &table_name, &schema, &num_rows));

  // Validate every frame checksum before materializing anything: a decode
  // must be all-or-nothing, never partially trusted rows.
  auto table = std::make_shared<Table>(table_name, schema);
  for (size_t c = 0; c < static_cast<size_t>(schema->num_fields()); ++c) {
    DEX_ASSIGN_OR_RETURN(uint64_t encoding, cur.U64());
    DEX_ASSIGN_OR_RETURN(uint64_t payload_bytes, cur.U64());
    if (payload_bytes > bytes.size()) {
      return Status::Corruption("implausible frame length");
    }
    DEX_RETURN_NOT_OK(cur.Need(payload_bytes));
    const std::string payload = bytes.substr(cur.pos(), payload_bytes);
    DEX_RETURN_NOT_OK(cur.Skip(payload_bytes));
    DEX_ASSIGN_OR_RETURN(uint64_t got, cur.U64());
    if (got != Fnv1a(payload.data(), payload.size())) {
      return Status::Corruption("frame checksum mismatch in column '" +
                                schema->field(c).name + "'");
    }
    Column* col = table->mutable_column(c);
    switch (schema->field(c).type) {
      case DataType::kDouble:
        DEX_RETURN_NOT_OK(DecodeF64Frame(encoding, payload, num_rows, col));
        break;
      case DataType::kString:
        if (encoding != kEncString) {
          return Status::Corruption("string column with non-string encoding");
        }
        DEX_RETURN_NOT_OK(DecodeStringFrame(payload, num_rows, col));
        break;
      default:
        DEX_RETURN_NOT_OK(DecodeI64Frame(encoding, payload, num_rows, col));
        break;
    }
  }

  const uint64_t want = Fnv1a(bytes.data(), cur.pos());
  DEX_ASSIGN_OR_RETURN(uint64_t got, cur.U64());
  if (want != got) {
    return Status::Corruption("columnar file footer checksum mismatch");
  }
  DEX_RETURN_NOT_OK(cur.Need(sizeof(kEndMark)));
  if (std::memcmp(cur.Here(), kEndMark, sizeof(kEndMark)) != 0 ||
      cur.pos() + sizeof(kEndMark) != bytes.size()) {
    return Status::Corruption("columnar file end marker missing or trailing bytes");
  }
  DEX_RETURN_NOT_OK(table->CommitAppendedRows(num_rows));
  return table;
}

}  // namespace dex
