#ifndef DEX_SQL_AST_H_
#define DEX_SQL_AST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/expr.h"
#include "engine/logical_plan.h"

namespace dex::sql {

/// \brief One SELECT-list entry. Aggregates appear only at the top level of
/// a select item (the subset the paper's workload needs).
struct SelectItem {
  bool is_aggregate = false;
  AggFunc agg_fn = AggFunc::kCount;
  bool agg_star = false;  // COUNT(*)
  ExprPtr expr;           // scalar expr, or the aggregate argument
  std::string alias;      // from AS, may be empty
};

struct TableRef {
  std::string name;
};

struct JoinClause {
  TableRef table;
  ExprPtr on;
};

/// \brief Parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;  // SELECT DISTINCT
  bool select_star = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;  // nullptr when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // nullptr when absent; may contain aggregate placeholders
  // Argument expressions of aggregates that appear inside HAVING, keyed by
  // their ToString rendering (placeholders reference them by key).
  std::vector<std::pair<std::string, ExprPtr>> having_aggregate_args;
  std::vector<std::pair<ExprPtr, bool>> order_by;  // expr, ascending
  int64_t limit = -1;                              // -1 = no limit
};

}  // namespace dex::sql

#endif  // DEX_SQL_AST_H_
