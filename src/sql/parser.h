#ifndef DEX_SQL_PARSER_H_
#define DEX_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace dex::sql {

/// \brief Parses one SELECT statement (optionally ';'-terminated).
///
/// Grammar subset:
///   SELECT (* | item (',' item)*)
///   FROM ident (JOIN ident ON expr)*
///   [WHERE expr] [GROUP BY expr (',' expr)*]
///   [ORDER BY expr [ASC|DESC] (',' ...)*] [LIMIT int]
/// Expressions: OR/AND/NOT, comparisons (= <> != < <= > >=), + - * /,
/// parentheses, literals, [table.]column refs. Aggregates (COUNT/SUM/AVG/
/// MIN/MAX) are allowed as top-level select items only.
Result<SelectStmt> ParseSelect(const std::string& sql);

}  // namespace dex::sql

#endif  // DEX_SQL_PARSER_H_
