#include "sql/binder.h"

#include <algorithm>

#include "sql/parser.h"

namespace dex::sql {

namespace {

/// Display name for an unaliased select item.
std::string DisplayName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.is_aggregate) {
    std::string inner = item.agg_star ? "*" : item.expr->ToString();
    return std::string(AggFuncToString(item.agg_fn)) + "(" + inner + ")";
  }
  if (item.expr->kind() == ExprKind::kColumnRef) {
    // Unqualified output name for plain column selections.
    const std::string& name = item.expr->column_name();
    const size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
  }
  return item.expr->ToString();
}

/// Rebuilds `e`, replacing "#AGG#FN#arg" placeholders with references to the
/// matching aggregate output (adding hidden aggregate specs as needed).
Result<ExprPtr> ResolveHavingExpr(
    const ExprPtr& e, const SelectStmt& stmt, std::vector<AggSpec>* aggs,
    int* agg_ordinal) {
  if (e->kind() == ExprKind::kColumnRef) {
    const std::string& name = e->column_name();
    if (name.rfind("#AGG#", 0) != 0) return e;
    const size_t fn_end = name.find('#', 5);
    if (fn_end == std::string::npos) {
      return Status::Internal("malformed aggregate placeholder " + name);
    }
    const std::string fn_name = name.substr(5, fn_end - 5);
    const std::string arg_repr = name.substr(fn_end + 1);
    AggFunc fn;
    if (fn_name == "COUNT") fn = AggFunc::kCount;
    else if (fn_name == "SUM") fn = AggFunc::kSum;
    else if (fn_name == "AVG") fn = AggFunc::kAvg;
    else if (fn_name == "MIN") fn = AggFunc::kMin;
    else if (fn_name == "MAX") fn = AggFunc::kMax;
    else return Status::Internal("unknown aggregate in HAVING: " + fn_name);
    // Reuse an identical aggregate if the select list already computes it.
    for (const AggSpec& spec : *aggs) {
      const std::string repr = spec.arg == nullptr ? "*" : spec.arg->ToString();
      if (spec.fn == fn && repr == arg_repr) {
        return Expr::ColumnRef(spec.name);
      }
    }
    AggSpec spec;
    spec.fn = fn;
    if (arg_repr != "*") {
      for (const auto& [repr, arg] : stmt.having_aggregate_args) {
        if (repr == arg_repr) {
          spec.arg = arg;
          break;
        }
      }
      if (spec.arg == nullptr) {
        return Status::Internal("lost aggregate argument for HAVING: " +
                                arg_repr);
      }
    }
    spec.name = "agg_" + std::to_string((*agg_ordinal)++);
    const std::string out_name = spec.name;
    aggs->push_back(std::move(spec));
    return Expr::ColumnRef(out_name);
  }
  if (e->children().empty()) return e;
  std::vector<ExprPtr> kids;
  for (const ExprPtr& c : e->children()) {
    DEX_ASSIGN_OR_RETURN(ExprPtr k, ResolveHavingExpr(c, stmt, aggs, agg_ordinal));
    kids.push_back(std::move(k));
  }
  switch (e->kind()) {
    case ExprKind::kComparison:
      return Expr::Compare(e->compare_op(), kids[0], kids[1]);
    case ExprKind::kAnd:
      return Expr::And(kids[0], kids[1]);
    case ExprKind::kOr:
      return Expr::Or(kids[0], kids[1]);
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    case ExprKind::kArithmetic:
      return Expr::Arith(e->arith_op(), kids[0], kids[1]);
    case ExprKind::kLike:
      return Expr::Like(kids[0], e->like_pattern());
    default:
      return e;
  }
}

}  // namespace

Result<PlanPtr> BindSelect(const SelectStmt& stmt, const Catalog& catalog) {
  if (!catalog.HasTable(stmt.from.name)) {
    return Status::NotFound("unknown table '" + stmt.from.name + "'");
  }
  PlanPtr plan = MakeScan(stmt.from.name);
  for (const JoinClause& join : stmt.joins) {
    if (!catalog.HasTable(join.table.name)) {
      return Status::NotFound("unknown table '" + join.table.name + "'");
    }
    plan = MakeJoin(join.on, std::move(plan), MakeScan(join.table.name));
  }
  if (stmt.where != nullptr) {
    plan = MakeFilter(stmt.where, std::move(plan));
  }

  const bool has_aggregates =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.is_aggregate; });

  if (has_aggregates) {
    if (stmt.select_star) {
      return Status::InvalidArgument("SELECT * cannot be combined with GROUP BY");
    }
    if (stmt.distinct) {
      return Status::NotImplemented(
          "SELECT DISTINCT with aggregates is not supported");
    }
    // Aggregate output: group keys first, then one field per aggregate item
    // with a collision-free generated name; a final Project restores the
    // select-list order and display names.
    std::vector<AggSpec> aggs;
    std::vector<ExprPtr> out_exprs;
    std::vector<std::string> out_names;
    int agg_ordinal = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.is_aggregate) {
        AggSpec spec;
        spec.fn = item.agg_fn;
        spec.arg = item.agg_star ? nullptr : item.expr;
        if (item.agg_star) spec.fn = AggFunc::kCount;
        spec.name = "agg_" + std::to_string(agg_ordinal++);
        out_exprs.push_back(Expr::ColumnRef(spec.name));
        out_names.push_back(DisplayName(item));
        aggs.push_back(std::move(spec));
      } else {
        // Must match a GROUP BY expression.
        const std::string repr = item.expr->ToString();
        bool found = false;
        for (const ExprPtr& g : stmt.group_by) {
          if (g->ToString() == repr) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument("column " + repr +
                                         " must appear in GROUP BY");
        }
        out_exprs.push_back(item.expr);
        out_names.push_back(DisplayName(item));
      }
    }
    if (stmt.items.empty()) {
      return Status::InvalidArgument("empty select list");
    }
    ExprPtr having;
    if (stmt.having != nullptr) {
      DEX_ASSIGN_OR_RETURN(
          having, ResolveHavingExpr(stmt.having, stmt, &aggs, &agg_ordinal));
    }
    plan = MakeAggregate(stmt.group_by, std::move(aggs), std::move(plan));
    if (having != nullptr) {
      plan = MakeFilter(std::move(having), std::move(plan));
    }
    plan = MakeProject(std::move(out_exprs), std::move(out_names), std::move(plan));
  } else if (stmt.having != nullptr) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  } else if (!stmt.select_star) {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      exprs.push_back(item.expr);
      names.push_back(DisplayName(item));
    }
    if (stmt.distinct) {
      // SELECT DISTINCT a, b ... ≡ group by every select expression.
      plan = MakeAggregate(exprs, {}, std::move(plan));
    }
    plan = MakeProject(std::move(exprs), std::move(names), std::move(plan));
  } else if (stmt.distinct) {
    return Status::NotImplemented("SELECT DISTINCT * is not supported");
  }

  if (!stmt.order_by.empty()) {
    // ORDER BY refers to the output of the select list, whose fields carry
    // display names without qualifiers; remap matching expressions.
    std::vector<SortKey> keys;
    for (const auto& [expr, asc] : stmt.order_by) {
      ExprPtr key = expr;
      if (!stmt.select_star) {
        const std::string repr = expr->ToString();
        for (const SelectItem& item : stmt.items) {
          const bool matches_expr =
              !item.is_aggregate && item.expr->ToString() == repr;
          const bool matches_alias = !item.alias.empty() && item.alias == repr;
          if (matches_expr || matches_alias) {
            key = Expr::ColumnRef(DisplayName(item));
            break;
          }
        }
      }
      keys.push_back({std::move(key), asc});
    }
    plan = MakeSort(std::move(keys), std::move(plan));
  }
  if (stmt.limit >= 0) {
    plan = MakeLimit(stmt.limit, std::move(plan));
  }
  DEX_RETURN_NOT_OK(AnalyzePlan(plan, catalog));
  return plan;
}

Result<PlanPtr> PlanQuery(const std::string& sql, const Catalog& catalog) {
  DEX_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  return BindSelect(stmt, catalog);
}

}  // namespace dex::sql
