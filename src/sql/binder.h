#ifndef DEX_SQL_BINDER_H_
#define DEX_SQL_BINDER_H_

#include <string>

#include "common/result.h"
#include "engine/logical_plan.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace dex::sql {

/// \brief Translates a parsed SELECT into an analyzed logical plan.
///
/// Produces the same initial relational plan regardless of ingestion mode —
/// a cornerstone of the paper's design: "the queries are the same as in the
/// case where the database is eagerly loaded ... and the same initial
/// relational query plan is produced for the same query."
Result<PlanPtr> BindSelect(const SelectStmt& stmt, const Catalog& catalog);

/// \brief Convenience: parse + bind + analyze.
Result<PlanPtr> PlanQuery(const std::string& sql, const Catalog& catalog);

}  // namespace dex::sql

#endif  // DEX_SQL_BINDER_H_
