#include "sql/lexer.h"

#include <cctype>

#include "common/string_utils.h"

namespace dex::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // Line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      const std::string text = input.substr(start, i - start);
      out.push_back({TokenType::kIdent, text, ToUpper(text), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      const std::string text = input.substr(start, i - start);
      out.push_back({is_float ? TokenType::kFloat : TokenType::kInt, text, text,
                     start});
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      out.push_back({TokenType::kString, value, value, start});
      continue;
    }
    // Multi-char operators first.
    auto push_symbol = [&](const std::string& sym) {
      out.push_back({TokenType::kSymbol, sym, sym, start});
      i += sym.size();
    };
    if (c == '<' && i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
      push_symbol(input.substr(i, 2));
      continue;
    }
    if (c == '>' && i + 1 < n && input[i + 1] == '=') {
      push_symbol(">=");
      continue;
    }
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      push_symbol("!=");
      continue;
    }
    if (std::string("()*,.;=<>+-/").find(c) != std::string::npos) {
      push_symbol(std::string(1, c));
      continue;
    }
    return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(i));
  }
  out.push_back({TokenType::kEnd, "", "", n});
  return out;
}

}  // namespace dex::sql
