#include "sql/parser.h"

#include "sql/lexer.h"

namespace dex::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> Parse() {
    SelectStmt stmt;
    DEX_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (PeekKeyword("DISTINCT")) {
      Advance();
      stmt.distinct = true;
    }
    if (PeekSymbol("*")) {
      Advance();
      stmt.select_star = true;
    } else {
      DEX_RETURN_NOT_OK(ParseSelectItem(&stmt));
      while (PeekSymbol(",")) {
        Advance();
        DEX_RETURN_NOT_OK(ParseSelectItem(&stmt));
      }
    }
    DEX_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DEX_ASSIGN_OR_RETURN(stmt.from.name, ExpectIdent());
    while (PeekKeyword("JOIN")) {
      Advance();
      JoinClause join;
      DEX_ASSIGN_OR_RETURN(join.table.name, ExpectIdent());
      DEX_RETURN_NOT_OK(ExpectKeyword("ON"));
      DEX_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      DEX_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      DEX_RETURN_NOT_OK(ExpectKeyword("BY"));
      DEX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.group_by.push_back(std::move(e));
      while (PeekSymbol(",")) {
        Advance();
        DEX_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
        stmt.group_by.push_back(std::move(next));
      }
    }
    if (PeekKeyword("HAVING")) {
      Advance();
      in_having_ = true;
      auto having = ParseExpr();
      in_having_ = false;
      DEX_RETURN_NOT_OK(having.status());
      stmt.having = *having;
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      DEX_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        DEX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool ascending = true;
        if (PeekKeyword("ASC")) {
          Advance();
        } else if (PeekKeyword("DESC")) {
          Advance();
          ascending = false;
        }
        stmt.order_by.emplace_back(std::move(e), ascending);
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Current().type != TokenType::kInt) {
        return Error("expected integer after LIMIT");
      }
      stmt.limit = std::stoll(Current().text);
      Advance();
    }
    if (PeekSymbol(";")) Advance();
    if (Current().type != TokenType::kEnd) {
      return Error("unexpected trailing input '" + Current().text + "'");
    }
    stmt.having_aggregate_args = having_aggregate_args_;
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("SQL parse error at offset " +
                                   std::to_string(Current().position) + ": " +
                                   msg);
  }

  bool PeekSymbol(const std::string& s) const {
    return Current().type == TokenType::kSymbol && Current().text == s;
  }
  bool PeekKeyword(const std::string& kw) const {
    return Current().type == TokenType::kIdent && Current().upper == kw;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return Error("expected " + kw);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Current().type != TokenType::kIdent) {
      return Error("expected identifier, got '" + Current().text + "'");
    }
    std::string name = Current().text;
    Advance();
    return name;
  }

  Status ExpectSymbol(const std::string& s) {
    if (!PeekSymbol(s)) return Error("expected '" + s + "'");
    Advance();
    return Status::OK();
  }

  static bool IsAggName(const std::string& upper, AggFunc* fn) {
    if (upper == "COUNT") *fn = AggFunc::kCount;
    else if (upper == "SUM") *fn = AggFunc::kSum;
    else if (upper == "AVG") *fn = AggFunc::kAvg;
    else if (upper == "MIN") *fn = AggFunc::kMin;
    else if (upper == "MAX") *fn = AggFunc::kMax;
    else return false;
    return true;
  }

  Status ParseSelectItem(SelectStmt* stmt) {
    SelectItem item;
    AggFunc fn;
    if (Current().type == TokenType::kIdent && IsAggName(Current().upper, &fn) &&
        tokens_[pos_ + 1].type == TokenType::kSymbol &&
        tokens_[pos_ + 1].text == "(") {
      item.is_aggregate = true;
      item.agg_fn = fn;
      Advance();  // fn name
      Advance();  // (
      if (PeekSymbol("*")) {
        if (fn != AggFunc::kCount) return Error("only COUNT accepts *");
        item.agg_star = true;
        Advance();
      } else {
        DEX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      DEX_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      DEX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (PeekKeyword("AS")) {
      Advance();
      DEX_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    }
    stmt->items.push_back(std::move(item));
    return Status::OK();
  }

  // expr := or
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DEX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      DEX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DEX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      DEX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      DEX_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Not(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DEX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // Postfix predicate forms: [NOT] BETWEEN / IN / LIKE.
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (tokens_[pos_ + 1].upper == "BETWEEN" ||
         tokens_[pos_ + 1].upper == "IN" || tokens_[pos_ + 1].upper == "LIKE")) {
      negated = true;
      Advance();
    }
    if (PeekKeyword("BETWEEN")) {
      Advance();
      DEX_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      DEX_RETURN_NOT_OK(ExpectKeyword("AND"));
      DEX_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr range = Expr::And(Expr::Compare(CompareOp::kGe, lhs, lo),
                                Expr::Compare(CompareOp::kLe, lhs, hi));
      return negated ? Expr::Not(std::move(range)) : range;
    }
    if (PeekKeyword("IN")) {
      Advance();
      DEX_RETURN_NOT_OK(ExpectSymbol("("));
      ExprPtr any;
      while (true) {
        DEX_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        ExprPtr eq = Expr::Compare(CompareOp::kEq, lhs, std::move(v));
        any = any == nullptr ? eq : Expr::Or(std::move(any), std::move(eq));
        if (!PeekSymbol(",")) break;
        Advance();
      }
      DEX_RETURN_NOT_OK(ExpectSymbol(")"));
      return negated ? Expr::Not(std::move(any)) : any;
    }
    if (PeekKeyword("LIKE")) {
      Advance();
      if (Current().type != TokenType::kString) {
        return Error("LIKE expects a string literal pattern");
      }
      ExprPtr like = Expr::Like(lhs, Current().text);
      Advance();
      return negated ? Expr::Not(std::move(like)) : like;
    }
    if (negated) return Error("dangling NOT before predicate");
    CompareOp op;
    if (PeekSymbol("=")) op = CompareOp::kEq;
    else if (PeekSymbol("<>") || PeekSymbol("!=")) op = CompareOp::kNe;
    else if (PeekSymbol("<=")) op = CompareOp::kLe;
    else if (PeekSymbol("<")) op = CompareOp::kLt;
    else if (PeekSymbol(">=")) op = CompareOp::kGe;
    else if (PeekSymbol(">")) op = CompareOp::kGt;
    else return lhs;
    Advance();
    DEX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    DEX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      const ArithOp op = PeekSymbol("+") ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      DEX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    DEX_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      const ArithOp op = PeekSymbol("*") ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      DEX_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Current();
    switch (t.type) {
      case TokenType::kInt: {
        Advance();
        return Expr::Lit(Value::Int64(std::stoll(t.text)));
      }
      case TokenType::kFloat: {
        Advance();
        return Expr::Lit(Value::Double(std::stod(t.text)));
      }
      case TokenType::kString: {
        Advance();
        return Expr::Lit(Value::String(t.text));
      }
      case TokenType::kIdent: {
        if (t.upper == "TRUE" || t.upper == "FALSE") {
          Advance();
          return Expr::Lit(Value::Bool(t.upper == "TRUE"));
        }
        AggFunc having_fn;
        if (in_having_ && IsAggName(t.upper, &having_fn) &&
            tokens_[pos_ + 1].type == TokenType::kSymbol &&
            tokens_[pos_ + 1].text == "(") {
          // Aggregates inside HAVING become placeholders the binder resolves
          // against (or adds to) the aggregate operator's output.
          Advance();  // fn
          Advance();  // (
          std::string arg_repr = "*";
          if (PeekSymbol("*")) {
            if (having_fn != AggFunc::kCount) {
              return Error("only COUNT accepts *");
            }
            Advance();
          } else {
            DEX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            arg_repr = arg->ToString();
            having_aggregate_args_.emplace_back(arg_repr, arg);
          }
          DEX_RETURN_NOT_OK(ExpectSymbol(")"));
          return Expr::ColumnRef(std::string("#AGG#") +
                                 AggFuncToString(having_fn) + "#" + arg_repr);
        }
        std::string name = t.text;
        Advance();
        if (PeekSymbol(".")) {
          Advance();
          DEX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          name += "." + col;
        }
        return Expr::ColumnRef(std::move(name));
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          DEX_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          DEX_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        if (t.text == "-") {
          Advance();
          DEX_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
          return Expr::Arith(ArithOp::kSub, Expr::Lit(Value::Int64(0)),
                             std::move(operand));
        }
        break;
      default:
        break;
    }
    return Error("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool in_having_ = false;

 public:
  /// Argument expressions for aggregate placeholders in HAVING, keyed by
  /// their rendering (consumed by the binder).
  std::vector<std::pair<std::string, ExprPtr>> having_aggregate_args_;
};

}  // namespace

Result<SelectStmt> ParseSelect(const std::string& sql) {
  DEX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace dex::sql
