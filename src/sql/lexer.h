#ifndef DEX_SQL_LEXER_H_
#define DEX_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dex::sql {

enum class TokenType {
  kIdent,    // table/column names and keywords (keywords resolved by parser)
  kInt,      // 123
  kFloat,    // 1.5
  kString,   // 'text'
  kSymbol,   // ( ) , . ; * = <> < <= > >= + - /
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   // raw text; idents uppercased copy in `upper`
  std::string upper;  // uppercase of text for keyword matching
  size_t position;    // byte offset in the input (for error messages)
};

/// \brief Tokenizes a SQL string. SQL keywords are case-insensitive; string
/// literals use single quotes with '' as the escape.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace dex::sql

#endif  // DEX_SQL_LEXER_H_
