#ifndef DEX_CSVF_CSV_FORMAT_H_
#define DEX_CSVF_CSV_FORMAT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/reader.h"
#include "mseed/scanner.h"
#include "mseed/writer.h"

namespace dex::csvf {

/// \brief A plain-text time-series format, the second concrete format behind
/// the FormatAdapter interface (paper §5 "Generalization": different
/// scientific domains use different formats; mapping them to tables should
/// not require writing database-kernel code each time).
///
/// File layout: one or more records, each introduced by a metadata line
///
///   # network=OR station=ISK channel=BHE location=00
///       start=2010-01-12T00:00:00.000 rate=40 samples=5000   (one line)
///
/// followed by one integer sample per line. Unlike mSEED there is no
/// compact binary header and no compression: scanning metadata costs a full
/// pass over the text, which the format benchmarks quantify.
inline constexpr const char* kCsvExtension = ".tscsv";

/// \brief Serializes records into the text format.
std::string SerializeCsvFile(const std::vector<mseed::RecordData>& records);

/// \brief Writes records to `path`, creating parent directories.
Status WriteCsvFile(const std::string& path,
                    const std::vector<mseed::RecordData>& records);

/// \brief Parses every record (headers + samples) of a CSV file image.
Result<std::vector<mseed::DecodedRecord>> ParseCsvFile(
    const std::string& file_image);

/// \brief Reads and fully parses one file.
Result<std::vector<mseed::DecodedRecord>> ReadCsvFile(const std::string& uri);

/// \brief Extracts file- and record-level metadata for one file. The whole
/// text must be read, but samples are not materialized as doubles.
/// Repository walks live behind FormatAdapter::ScanRepository.
Result<mseed::ScanResult> ScanCsvFile(const std::string& uri);

/// \brief Converts an mSEED repository into an equivalent CSV repository
/// (same directory structure, .tscsv extension). Used by tests and benches
/// to compare formats on identical data.
Status ConvertMseedRepository(const std::string& mseed_root,
                              const std::string& csv_root);

}  // namespace dex::csvf

#endif  // DEX_CSVF_CSV_FORMAT_H_
