#include "csvf/csv_format.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_utils.h"
#include "common/time_utils.h"
#include "io/file_io.h"
#include "mseed/reader.h"

namespace dex::csvf {

namespace {

/// Parses the key=value pairs of a '#' metadata line.
Result<mseed::RecordHeader> ParseHeaderLine(const std::string& line,
                                            size_t line_no) {
  mseed::RecordHeader h;
  bool have_start = false, have_rate = false, have_samples = false;
  for (const std::string& tok : Split(Trim(line.substr(1)), ' ')) {
    if (tok.empty()) continue;
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("bad metadata token '" + tok + "' at line " +
                                std::to_string(line_no));
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "network") {
      h.network = value;
    } else if (key == "station") {
      h.station = value;
    } else if (key == "channel") {
      h.channel = value;
    } else if (key == "location") {
      h.location = value;
    } else if (key == "start") {
      DEX_ASSIGN_OR_RETURN(h.start_time_ms, ParseIso8601(value));
      have_start = true;
    } else if (key == "rate") {
      h.sample_rate_hz = std::atof(value.c_str());
      have_rate = true;
    } else if (key == "samples") {
      h.num_samples = static_cast<uint32_t>(std::atoll(value.c_str()));
      have_samples = true;
    } else {
      return Status::Corruption("unknown metadata key '" + key + "' at line " +
                                std::to_string(line_no));
    }
  }
  if (!have_start || !have_rate || !have_samples) {
    return Status::Corruption("metadata line " + std::to_string(line_no) +
                              " missing start=/rate=/samples=");
  }
  if (h.sample_rate_hz <= 0.0) {
    return Status::Corruption("non-positive rate at line " +
                              std::to_string(line_no));
  }
  return h;
}

/// Walks the file image invoking callbacks per record header and sample.
/// Sample parsing is optional (metadata scans skip the atoi).
template <typename OnHeader, typename OnSample>
Status WalkCsv(const std::string& image, bool parse_samples, OnHeader on_header,
               OnSample on_sample) {
  size_t pos = 0;
  size_t line_no = 0;
  uint32_t expected = 0;
  uint32_t seen = 0;
  bool in_record = false;
  while (pos < image.size()) {
    size_t eol = image.find('\n', pos);
    if (eol == std::string::npos) eol = image.size();
    ++line_no;
    if (eol > pos) {  // skip blank lines
      if (image[pos] == '#') {
        if (in_record && seen != expected) {
          return Status::Corruption("record ended with " + std::to_string(seen) +
                                    " of " + std::to_string(expected) +
                                    " samples before line " +
                                    std::to_string(line_no));
        }
        const std::string line = image.substr(pos, eol - pos);
        DEX_ASSIGN_OR_RETURN(mseed::RecordHeader h,
                             ParseHeaderLine(line, line_no));
        expected = h.num_samples;
        seen = 0;
        in_record = true;
        DEX_RETURN_NOT_OK(on_header(h));
      } else {
        if (!in_record) {
          return Status::Corruption("sample before any metadata line at line " +
                                    std::to_string(line_no));
        }
        ++seen;
        if (seen > expected) {
          return Status::Corruption("more samples than declared at line " +
                                    std::to_string(line_no));
        }
        if (parse_samples) {
          char* end = nullptr;
          const long v = std::strtol(image.c_str() + pos, &end, 10);
          if (end == image.c_str() + pos) {
            return Status::Corruption("unparsable sample at line " +
                                      std::to_string(line_no));
          }
          DEX_RETURN_NOT_OK(on_sample(static_cast<int32_t>(v)));
        }
      }
    }
    pos = eol + 1;
  }
  if (in_record && seen != expected) {
    return Status::Corruption("file truncated: " + std::to_string(seen) +
                              " of " + std::to_string(expected) +
                              " samples in the last record");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeCsvFile(const std::vector<mseed::RecordData>& records) {
  std::string out;
  for (const mseed::RecordData& rec : records) {
    char header[256];
    std::snprintf(header, sizeof(header),
                  "# network=%s station=%s channel=%s location=%s start=%s "
                  "rate=%g samples=%zu\n",
                  rec.network.c_str(), rec.station.c_str(), rec.channel.c_str(),
                  rec.location.c_str(),
                  FormatIso8601(rec.start_time_ms).c_str(), rec.sample_rate_hz,
                  rec.samples.size());
    out += header;
    for (int32_t s : rec.samples) {
      out += std::to_string(s);
      out += '\n';
    }
  }
  return out;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<mseed::RecordData>& records) {
  return WriteStringToFile(path, SerializeCsvFile(records));
}

Result<std::vector<mseed::DecodedRecord>> ParseCsvFile(
    const std::string& file_image) {
  std::vector<mseed::DecodedRecord> records;
  DEX_RETURN_NOT_OK(WalkCsv(
      file_image, /*parse_samples=*/true,
      [&](const mseed::RecordHeader& h) {
        records.push_back({h, {}});
        records.back().samples.reserve(h.num_samples);
        return Status::OK();
      },
      [&](int32_t v) {
        records.back().samples.push_back(v);
        return Status::OK();
      }));
  return records;
}

Result<std::vector<mseed::DecodedRecord>> ReadCsvFile(const std::string& uri) {
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(uri, &image));
  auto records = ParseCsvFile(image);
  if (!records.ok()) return records.status().WithContext("parsing '" + uri + "'");
  return records;
}

Result<mseed::ScanResult> ScanCsvFile(const std::string& uri) {
  std::string image;
  DEX_RETURN_NOT_OK(ReadFileToString(uri, &image));
  DEX_ASSIGN_OR_RETURN(int64_t mtime, FileMtimeMillis(uri));

  mseed::ScanResult out;
  mseed::FileMeta fm;
  fm.uri = uri;
  fm.size_bytes = image.size();
  fm.mtime_ms = mtime;
  Status walk = WalkCsv(
      image, /*parse_samples=*/false,
      [&](const mseed::RecordHeader& h) {
        if (out.records.empty()) {
          fm.network = h.network;
          fm.station = h.station;
          fm.channel = h.channel;
          fm.location = h.location;
        }
        mseed::RecordMeta rm;
        rm.uri = uri;
        rm.record_id = static_cast<int64_t>(out.records.size());
        rm.start_time_ms = h.start_time_ms;
        rm.end_time_ms = h.EndTimeMs();
        rm.sample_rate_hz = h.sample_rate_hz;
        rm.num_samples = h.num_samples;
        out.records.push_back(std::move(rm));
        return Status::OK();
      },
      [](int32_t) { return Status::OK(); });
  if (!walk.ok()) return walk.WithContext("scanning '" + uri + "'");
  fm.num_records = static_cast<uint32_t>(out.records.size());
  out.files.push_back(std::move(fm));
  out.total_bytes = image.size();
  return out;
}

Status ConvertMseedRepository(const std::string& mseed_root,
                              const std::string& csv_root) {
  DEX_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                       ListFiles(mseed_root, ".mseed"));
  for (const std::string& path : paths) {
    DEX_ASSIGN_OR_RETURN(std::vector<mseed::DecodedRecord> records,
                         mseed::Reader::ReadAllRecords(path));
    std::vector<mseed::RecordData> data;
    data.reserve(records.size());
    for (mseed::DecodedRecord& rec : records) {
      mseed::RecordData rd;
      rd.network = rec.header.network;
      rd.station = rec.header.station;
      rd.channel = rec.header.channel;
      rd.location = rec.header.location;
      rd.start_time_ms = rec.header.start_time_ms;
      rd.sample_rate_hz = rec.header.sample_rate_hz;
      rd.samples = std::move(rec.samples);
      data.push_back(std::move(rd));
    }
    // Mirror the relative path, swapping the extension.
    std::string rel = path.substr(mseed_root.size());
    rel = rel.substr(0, rel.size() - 6) + kCsvExtension;  // strip ".mseed"
    DEX_RETURN_NOT_OK(WriteCsvFile(csv_root + rel, data));
  }
  return Status::OK();
}

}  // namespace dex::csvf
