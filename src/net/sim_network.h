#ifndef DEX_NET_SIM_NETWORK_H_
#define DEX_NET_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "io/sim_disk.h"

namespace dex {

/// \brief A simulated shard-interconnect, modeled on SimDisk.
///
/// Every message between the coordinator and a shard travels over that
/// shard's *link* and is charged simulated time: a fixed per-message latency
/// plus the payload over the link's bandwidth, plus — when the seeded fault
/// model is armed — deterministic resend backoff for transiently lost
/// messages. Nothing physically moves; like SimDisk, the class accounts for
/// what moving the bytes *would* cost.
///
/// Time is charged through `SimDisk::ChargeDelay`, so the network shares the
/// disk's simulated clock and inherits its whole attribution machinery for
/// free: a transfer issued under a `SimDisk::TaskTimeScope` lands in that
/// task's bucket (this is how the sharded scatter/gather path aggregates
/// per-shard network cost into a deterministic critical path), and a
/// coordinator-side transfer is teed into the owning query's
/// `QueryTimeScope` counter like any other I/O stall.
///
/// Fault model: each link draws from its own PRNG stream, derived from
/// (fault_seed, link). The fate of the k-th transfer on a link depends only
/// on the seed, the link, and k — the same per-object-stream idiom as
/// FaultInjector — so fault schedules replay bit-identically as long as each
/// link's transfers are issued in a deterministic order. The sharded
/// executor guarantees that by performing all transfers on the coordinator
/// thread at merge barriers, in shard/file order. A *failed* link (a dead
/// shard) refuses every transfer until healed.
///
/// All methods are thread-safe; the simulated-time charge happens outside
/// the network's own lock.
class SimNetwork {
 public:
  using LinkId = uint32_t;

  struct Options {
    /// Per-message one-way latency (request or response alike).
    double latency_micros = 50.0;
    /// Link throughput for the message payload.
    double bandwidth_mb_per_sec = 1000.0;
    /// Seed of the per-link fault streams (shared by all links; each link's
    /// stream is derived from (seed, link)).
    uint64_t fault_seed = 0;
    /// Probability that one transfer is transiently lost and must be resent.
    /// Every resend charges `resend_backoff_micros` plus a full re-send of
    /// the message. Deterministic per (seed, link, transfer index).
    double transient_loss_rate = 0.0;
    double resend_backoff_micros = 200.0;
    /// Resends attempted before the transfer is declared failed.
    int max_resends = 4;
  };

  struct LinkStats {
    uint64_t messages = 0;   // transfers attempted (incl. failed ones)
    uint64_t bytes = 0;      // payload bytes of successful transfers
    uint64_t sim_nanos = 0;  // simulated time this link charged
    uint64_t resends = 0;    // transient losses absorbed
    bool failed = false;     // link is currently down (dead shard)
  };

  /// `disk` is the simulated clock the network charges into; must outlive
  /// the network.
  SimNetwork(SimDisk* disk, const Options& options)
      : disk_(disk), options_(options) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a new link (e.g. "shard-3"). Link ids are dense, in
  /// registration order.
  LinkId AddLink(const std::string& name);

  size_t num_links() const;

  /// Moves `bytes` of payload over `link` and charges the simulated cost
  /// (latency + transfer + deterministic resends) to the shared clock.
  /// Returns the nanoseconds charged. Fails with kIOError on a failed
  /// link or when the loss stream exhausts `max_resends` (the latter still
  /// charges the time the attempts took).
  Result<uint64_t> Transfer(LinkId link, uint64_t bytes);

  /// The fault-free cost of one message of `bytes` (planning helper; charges
  /// nothing, consumes no fault stream).
  uint64_t MessageCost(uint64_t bytes) const;

  /// Marks the link down: every Transfer fails until HealLink. This is the
  /// dead-shard scenario — the shard's files degrade to the partial-results
  /// path with `files_skipped_shard` accounting.
  Status FailLink(LinkId link);
  Status HealLink(LinkId link);
  bool IsFailed(LinkId link) const;

  Result<LinkStats> link_stats(LinkId link) const;
  Result<std::string> link_name(LinkId link) const;
  const Options& options() const { return options_; }

 private:
  struct Link {
    std::string name;
    LinkStats stats;
    std::unique_ptr<Random> stream;  // per-link fault stream
  };

  SimDisk* disk_;
  const Options options_;
  mutable std::mutex mu_;
  std::vector<Link> links_;
};

}  // namespace dex

#endif  // DEX_NET_SIM_NETWORK_H_
