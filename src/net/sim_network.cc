#include "net/sim_network.h"

#include <algorithm>

#include "obs/trace.h"

namespace dex {

namespace {

/// Decorrelates per-link streams the same way FaultInjector decorrelates
/// per-object streams: nearby (seed, link) pairs must not produce nearby
/// stream states (Random's SplitMix seeding finishes the job).
uint64_t LinkStreamSeed(uint64_t seed, SimNetwork::LinkId link) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(link) + 1));
}

}  // namespace

SimNetwork::LinkId SimNetwork::AddLink(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Link link;
  link.name = name;
  link.stream = std::make_unique<Random>(
      LinkStreamSeed(options_.fault_seed,
                     static_cast<LinkId>(links_.size())));
  links_.push_back(std::move(link));
  return static_cast<LinkId>(links_.size() - 1);
}

size_t SimNetwork::num_links() const {
  std::lock_guard<std::mutex> lock(mu_);
  return links_.size();
}

uint64_t SimNetwork::MessageCost(uint64_t bytes) const {
  const uint64_t latency =
      static_cast<uint64_t>(options_.latency_micros * 1e3);
  const double mb_per_sec = std::max(options_.bandwidth_mb_per_sec, 1e-9);
  const uint64_t transfer = static_cast<uint64_t>(
      static_cast<double>(bytes) / (mb_per_sec * 1e6) * 1e9);
  return latency + transfer;
}

Result<uint64_t> SimNetwork::Transfer(LinkId link, uint64_t bytes) {
  uint64_t nanos = 0;
  uint64_t resends_this_transfer = 0;
  std::string link_name;
  Status failure = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (link >= links_.size()) {
      return Status::InvalidArgument("unknown network link " +
                                     std::to_string(link));
    }
    Link& l = links_[link];
    link_name = l.name;
    ++l.stats.messages;
    if (l.stats.failed) {
      return Status::IOError("network link '" + l.name +
                                 "' is down (dead shard)");
    }
    const uint64_t message = MessageCost(bytes);
    nanos = message;
    if (options_.transient_loss_rate > 0.0) {
      // Each (re)send draws its own fate from this link's stream; the loop
      // consumes a deterministic number of draws per transfer.
      int resends = 0;
      while (l.stream->NextBool(options_.transient_loss_rate)) {
        if (resends >= options_.max_resends) {
          failure = Status::IOError(
              "transfer on link '" + l.name + "' lost " +
              std::to_string(resends + 1) + " times (resend budget exhausted)");
          break;
        }
        ++resends;
        ++l.stats.resends;
        nanos += static_cast<uint64_t>(options_.resend_backoff_micros * 1e3) +
                 message;
      }
      resends_this_transfer = static_cast<uint64_t>(resends);
    }
    l.stats.sim_nanos += nanos;
    if (failure.ok()) l.stats.bytes += bytes;
  }
  // The transfer appears as a link-span in the distributed trace, parented
  // under whatever span (gather barrier, scan wave, task) issued it —
  // inherited through TaskTraceScope, so cross-shard hops show up as
  // children of the query's span tree. The span wraps the charge so its
  // sim duration is exactly this hop's cost.
  {
    obs::TraceSpan span("net_transfer", "net");
    if (span.active()) {
      span.AddArg("link", link_name);
      span.AddArg("bytes", bytes);
      span.AddArg("nanos", nanos);
      if (resends_this_transfer > 0) span.AddArg("resends", resends_this_transfer);
      if (!failure.ok()) span.AddArg("error", failure.ToString());
    }
    // Charged outside the network lock, like every SimDisk charge: lands in
    // the current TaskTimeScope bucket (sharded wave aggregation) or on the
    // global clock with the per-query tee applied.
    if (nanos > 0) disk_->ChargeDelay(nanos);
  }
  if (!failure.ok()) return failure;
  return nanos;
}

Status SimNetwork::FailLink(LinkId link) {
  std::lock_guard<std::mutex> lock(mu_);
  if (link >= links_.size()) {
    return Status::InvalidArgument("unknown network link " +
                                   std::to_string(link));
  }
  links_[link].stats.failed = true;
  return Status::OK();
}

Status SimNetwork::HealLink(LinkId link) {
  std::lock_guard<std::mutex> lock(mu_);
  if (link >= links_.size()) {
    return Status::InvalidArgument("unknown network link " +
                                   std::to_string(link));
  }
  links_[link].stats.failed = false;
  return Status::OK();
}

bool SimNetwork::IsFailed(LinkId link) const {
  std::lock_guard<std::mutex> lock(mu_);
  return link < links_.size() && links_[link].stats.failed;
}

Result<SimNetwork::LinkStats> SimNetwork::link_stats(LinkId link) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (link >= links_.size()) {
    return Status::InvalidArgument("unknown network link " +
                                   std::to_string(link));
  }
  return links_[link].stats;
}

Result<std::string> SimNetwork::link_name(LinkId link) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (link >= links_.size()) {
    return Status::InvalidArgument("unknown network link " +
                                   std::to_string(link));
  }
  return links_[link].name;
}

}  // namespace dex
