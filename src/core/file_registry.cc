#include "core/file_registry.h"

#include "obs/flight_recorder.h"

namespace dex {

SchemaPtr MakeQuarantineSchema() {
  auto s = std::make_shared<Schema>();
  const std::string q = kQuarantineTableName;
  s->AddField({"uri", DataType::kString, q});
  s->AddField({"reason", DataType::kString, q});
  s->AddField({"transient_errors", DataType::kInt64, q});
  s->AddField({"failed_reads", DataType::kInt64, q});
  return s;
}

Status FileRegistry::Add(const std::string& uri, uint64_t size_bytes,
                         int64_t mtime_ms) {
  std::lock_guard<std::mutex> lock(entries_mu_);
  if (entries_.count(uri) > 0) {
    return Status::AlreadyExists("file '" + uri + "' already registered");
  }
  Entry e;
  e.object = disk_->Register("file:" + uri, size_bytes, /*fault_injectable=*/true);
  e.size_bytes = size_bytes;
  e.mtime_ms = mtime_ms;
  entries_.emplace(uri, e);
  total_bytes_ += size_bytes;
  return Status::OK();
}

Status FileRegistry::Update(const std::string& uri, uint64_t size_bytes,
                            int64_t mtime_ms) {
  {
    std::lock_guard<std::mutex> lock(entries_mu_);
    auto it = entries_.find(uri);
    if (it == entries_.end()) {
      return Status::NotFound("file '" + uri + "' is not registered");
    }
    total_bytes_ += size_bytes - it->second.size_bytes;
    DEX_RETURN_NOT_OK(disk_->Resize(it->second.object, size_bytes));
    it->second.size_bytes = size_bytes;
    it->second.mtime_ms = mtime_ms;
  }
  // The file changed on disk: give it a fresh chance (the operator may have
  // replaced a broken file with a repaired copy). Outside entries_mu_ —
  // health has its own lock.
  Unquarantine(uri);
  return Status::OK();
}

Result<FileRegistry::Entry> FileRegistry::Get(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(entries_mu_);
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    return Status::NotFound("file '" + uri + "' is not in the repository");
  }
  return it->second;
}

Status FileRegistry::ChargeFileRead(const std::string& uri) const {
  DEX_ASSIGN_OR_RETURN(Entry e, Get(uri));
  return disk_->ReadAll(e.object);
}

void FileRegistry::RecordTransientError(const std::string& uri,
                                        const std::string& error) {
  std::lock_guard<std::mutex> lock(health_mu_);
  Health& h = health_[uri];
  ++h.transient_errors;
  h.last_error = error;
  ++health_version_;
}

void FileRegistry::Quarantine(const std::string& uri, const std::string& reason) {
  bool newly_quarantined = false;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    Health& h = health_[uri];
    ++h.failed_reads;
    h.last_error = reason;
    if (!h.quarantined) {
      h.quarantined = true;
      ++num_quarantined_;
      newly_quarantined = true;
    }
    ++health_version_;
  }
  // Recorded (and auto-dumped) outside health_mu_: the recorder's clock
  // callback reads SimDisk stats, and nesting that under the health lock
  // would create a cross-module lock order for every quarantine caller.
  if (newly_quarantined) {
    obs::FlightEvent e;
    e.kind = "quarantine";
    e.detail = uri + ": " + reason;
    obs::FlightRecorder::Global().Record(std::move(e));
    obs::FlightRecorder::Global().AutoDump("quarantine: " + uri);
  }
}

void FileRegistry::Unquarantine(const std::string& uri) {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(uri);
  if (it == health_.end() || !it->second.quarantined) return;
  it->second.quarantined = false;
  it->second.failed_reads = 0;
  --num_quarantined_;
  ++health_version_;
}

bool FileRegistry::IsQuarantined(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(uri);
  return it != health_.end() && it->second.quarantined;
}

Result<TablePtr> FileRegistry::BuildQuarantineTable() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto table = std::make_shared<Table>(kQuarantineTableName,
                                       MakeQuarantineSchema());
  for (const auto& [uri, h] : health_) {
    if (!h.quarantined) continue;
    DEX_RETURN_NOT_OK(table->AppendRow(
        {Value::String(uri), Value::String(h.last_error),
         Value::Int64(static_cast<int64_t>(h.transient_errors)),
         Value::Int64(static_cast<int64_t>(h.failed_reads))}));
  }
  return table;
}

std::vector<std::string> FileRegistry::AllUris() const {
  std::vector<std::string> out;
  // Lock order: entries before health (the only place both are held).
  std::lock_guard<std::mutex> entries_lock(entries_mu_);
  out.reserve(entries_.size());
  std::lock_guard<std::mutex> lock(health_mu_);
  for (const auto& [uri, entry] : entries_) {
    auto it = health_.find(uri);
    const bool quarantined = it != health_.end() && it->second.quarantined;
    if (!quarantined) out.push_back(uri);
  }
  return out;
}

}  // namespace dex
