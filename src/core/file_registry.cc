#include "core/file_registry.h"

namespace dex {

Status FileRegistry::Add(const std::string& uri, uint64_t size_bytes,
                         int64_t mtime_ms) {
  if (entries_.count(uri) > 0) {
    return Status::AlreadyExists("file '" + uri + "' already registered");
  }
  Entry e;
  e.object = disk_->Register("file:" + uri, size_bytes);
  e.size_bytes = size_bytes;
  e.mtime_ms = mtime_ms;
  entries_.emplace(uri, e);
  total_bytes_ += size_bytes;
  return Status::OK();
}

Status FileRegistry::Update(const std::string& uri, uint64_t size_bytes,
                            int64_t mtime_ms) {
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    return Status::NotFound("file '" + uri + "' is not registered");
  }
  total_bytes_ += size_bytes - it->second.size_bytes;
  DEX_RETURN_NOT_OK(disk_->Resize(it->second.object, size_bytes));
  it->second.size_bytes = size_bytes;
  it->second.mtime_ms = mtime_ms;
  return Status::OK();
}

Result<FileRegistry::Entry> FileRegistry::Get(const std::string& uri) const {
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    return Status::NotFound("file '" + uri + "' is not in the repository");
  }
  return it->second;
}

Status FileRegistry::ChargeFileRead(const std::string& uri) const {
  DEX_ASSIGN_OR_RETURN(Entry e, Get(uri));
  return disk_->ReadAll(e.object);
}

std::vector<std::string> FileRegistry::AllUris() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [uri, entry] : entries_) out.push_back(uri);
  return out;
}

}  // namespace dex
