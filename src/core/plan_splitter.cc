#include "core/plan_splitter.h"

#include <algorithm>

#include "common/logging.h"

namespace dex {

namespace {

bool IsUnary(PlanKind kind) {
  switch (kind) {
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kStageBreak:
      return true;
    default:
      return false;
  }
}

/// A relation unit: one non-join subtree participating in the join zone.
struct JoinUnit {
  PlanPtr plan;
  bool metadata_only = false;
};

/// Flattens a tree of Join nodes into units plus the pool of join conjuncts.
void FlattenJoins(const PlanPtr& plan, std::vector<JoinUnit>* units,
                  std::vector<ExprPtr>* conjuncts, const Catalog& catalog) {
  if (plan->kind == PlanKind::kJoin) {
    Expr::SplitConjuncts(plan->predicate, conjuncts);
    FlattenJoins(plan->children[0], units, conjuncts, catalog);
    FlattenJoins(plan->children[1], units, conjuncts, catalog);
    return;
  }
  JoinUnit unit;
  unit.plan = plan;
  std::vector<std::string> tables;
  CollectTableNames(plan, &tables);
  unit.metadata_only = !tables.empty();
  for (const std::string& t : tables) {
    auto kind = catalog.GetKind(t);
    if (!kind.ok() || *kind != TableKind::kMetadata) {
      unit.metadata_only = false;
      break;
    }
  }
  units->push_back(std::move(unit));
}

/// Removes trivially-true literals from a conjunct list.
bool IsTrueLiteral(const ExprPtr& e) {
  return e->kind() == ExprKind::kLiteral &&
         e->literal().type() == DataType::kBool && e->literal().boolean();
}

/// Builds a right-deep join chain over `units` in order, consuming every
/// conjunct from `pool` as soon as all of its columns are available.
/// `accumulated` (may be null) becomes the innermost right side.
PlanPtr ComposeChain(const std::vector<JoinUnit>& units, PlanPtr accumulated,
                     SchemaPtr accumulated_schema, std::vector<ExprPtr>* pool,
                     std::vector<bool>* used) {
  PlanPtr acc = std::move(accumulated);
  SchemaPtr acc_schema = std::move(accumulated_schema);
  // Right-deep: the last unit is innermost, so iterate in reverse.
  for (auto it = units.rbegin(); it != units.rend(); ++it) {
    if (acc == nullptr) {
      acc = it->plan;
      acc_schema = it->plan->output_schema;
      continue;
    }
    SchemaPtr combined = Schema::Concat(*it->plan->output_schema, *acc_schema);
    std::vector<ExprPtr> applicable;
    for (size_t i = 0; i < pool->size(); ++i) {
      if ((*used)[i]) continue;
      if ((*pool)[i]->AllColumnsIn(*combined)) {
        applicable.push_back((*pool)[i]);
        (*used)[i] = true;
      }
    }
    acc = MakeJoin(Expr::AndAll(applicable), it->plan, std::move(acc));
    // Later composition steps (and the StageBreak marker) need this node's
    // schema before the final AnalyzePlan pass runs.
    acc->output_schema = combined;
    acc_schema = std::move(combined);
  }
  return acc;
}

}  // namespace

Result<SplitResult> SplitPlan(const PlanPtr& plan, const Catalog& catalog) {
  SplitResult result;

  // Classify what the query touches.
  std::vector<std::string> tables;
  CollectTableNames(plan, &tables);
  for (const std::string& t : tables) {
    DEX_ASSIGN_OR_RETURN(TableKind kind, catalog.GetKind(t));
    if (kind == TableKind::kMetadata) {
      result.references_metadata = true;
    } else {
      result.references_actual = true;
    }
  }
  if (!result.references_actual || !result.references_metadata) {
    result.plan = plan;  // no split needed
    return result;
  }

  // Descend through the unary spine to the join zone.
  std::vector<PlanPtr> spine;
  PlanPtr node = plan;
  while (IsUnary(node->kind)) {
    spine.push_back(node);
    node = node->children[0];
  }
  if (node->kind != PlanKind::kJoin) {
    // Mixed tables but no join (e.g. a union) — leave unsplit; the two-stage
    // executor falls back to mounting all files for the actual scans.
    result.plan = plan;
    return result;
  }

  std::vector<JoinUnit> units;
  std::vector<ExprPtr> pool;
  FlattenJoins(node, &units, &pool, catalog);
  // Drop TRUE fillers so they don't count as unusable conjuncts.
  pool.erase(std::remove_if(pool.begin(), pool.end(), IsTrueLiteral), pool.end());

  std::vector<JoinUnit> metadata_units, actual_units;
  for (JoinUnit& u : units) {
    (u.metadata_only ? metadata_units : actual_units).push_back(u);
  }
  if (metadata_units.empty() || actual_units.empty()) {
    result.plan = plan;
    return result;
  }

  std::vector<bool> used(pool.size(), false);
  // m1 ⋈ (m2 ⋈ (... ⋈ mx)) — the metadata branch.
  PlanPtr metadata_chain =
      ComposeChain(metadata_units, nullptr, nullptr, &pool, &used);
  result.qf = metadata_chain;
  PlanPtr marked = MakeStageBreak(metadata_chain);
  marked->output_schema = metadata_chain->output_schema;

  // a1 ⋈ (a2 ⋈ (... (ay ⋈ Q_f))).
  PlanPtr rebuilt = ComposeChain(actual_units, marked,
                                 metadata_chain->output_schema, &pool, &used);

  // Any conjunct never placed (should not happen after pushdown) becomes a
  // final filter so no predicate is silently dropped.
  std::vector<ExprPtr> leftovers;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (!used[i]) leftovers.push_back(pool[i]);
  }
  if (!leftovers.empty()) {
    rebuilt = MakeFilter(Expr::AndAll(leftovers), std::move(rebuilt));
  }

  // Reattach the unary spine above the rebuilt join zone.
  PlanPtr top = rebuilt;
  for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
    auto copy = std::make_shared<LogicalPlan>(**it);
    copy->children = {top};
    top = copy;
  }
  DEX_RETURN_NOT_OK(AnalyzePlan(top, catalog));
  result.plan = top;
  return result;
}

}  // namespace dex
