#ifndef DEX_CORE_STAGE1_SCAN_H_
#define DEX_CORE_STAGE1_SCAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/file_registry.h"
#include "core/format_adapter.h"
#include "core/mounter.h"
#include "core/stats_collector.h"
#include "exec/query_context.h"
#include "exec/thread_pool.h"
#include "shard/sharded_repository.h"

namespace dex {

/// \brief Knobs for one stage-1 metadata scan (Open()/Refresh()).
struct Stage1Options {
  /// Worker threads for per-file header parses. 0 = hardware concurrency;
  /// 1 = serial. Any value yields bit-identical catalogs, quarantine
  /// decisions, and simulated time (see DESIGN.md §8.9).
  size_t num_threads = 1;

  /// What to do with a file whose header parse fails (corrupt): kFail aborts
  /// the whole scan; kSkipFile/kSalvage quarantine the file and keep going —
  /// at metadata granularity the two degrade identically, there is nothing
  /// record-level to salvage from an unparseable header.
  OnMountError on_error = OnMountError::kSalvage;

  /// Retry/backoff for transiently failing header reads; backoff is charged
  /// as simulated I/O, mirroring the stage-2 mount path.
  MountRetryPolicy retry;

  /// Optional governance. With a deadline armed the scan serializes on the
  /// simulated clock (same trade as governed stage-2 admission) and stops
  /// admitting header parses on expiry: files not yet scanned keep their
  /// stale baseline metadata when they have one, and are counted in
  /// `files_skipped_deadline` either way. A cancel token is honored in both
  /// modes. The deadline is measured on the context's per-query timeline
  /// (QueryContext::sim_now), so concurrent queries charging the shared
  /// clock cannot shift this scan's cutoff.
  QueryContext* qctx = nullptr;

  /// Worker-pool priority class for the scan's header-parse tasks (only
  /// meaningful on a shared pool; a private pool runs one scan at a time).
  int priority = ThreadPool::kPriorityNormal;

  /// The sharded repository, when the database is sharded. The scanner
  /// always re-assigns the enumerated catalog (keeping the partition map in
  /// sync with what the epoch publishes); with more than one shard the scan
  /// additionally runs scatter/gather — every parsed header ships its bytes
  /// back over its shard's link (charged, deterministic fault streams) and
  /// files owned by a *dead* shard are skipped in the pre-pass: they keep
  /// their stale baseline rows when they have one and are counted in
  /// `files_skipped_shard` (`is_partial` set), like a deadline cutoff.
  /// Governed (deadline-armed) scans skip the net charges: they serialize
  /// on the simulated clock and model a coordinator-local scan.
  ShardedRepository* shards = nullptr;
};

/// \brief What one stage-1 scan did. Every field is a pure function of the
/// repository state and the options — not of the worker count.
struct Stage1Stats {
  size_t files_enumerated = 0;  // files the format adapter listed
  size_t files_scanned = 0;     // headers physically parsed this scan
  size_t files_reused = 0;      // metadata served from the baseline
  size_t files_added = 0;       // scanned files the registry did not know
  size_t files_changed = 0;     // scanned files whose size/mtime differed
  size_t files_removed = 0;     // baseline files gone from disk
  size_t files_quarantined = 0; // corrupt header or permanent read failure
  size_t files_skipped_deadline = 0;
  bool is_partial = false;      // a deadline or dead shard left work undone
  size_t workers = 1;           // resolved worker-lane count
  uint64_t read_retries = 0;    // transient header-read failures absorbed

  // -- Sharded scan -------------------------------------------------------
  size_t num_shards = 1;          // effective shard count (1 = unsharded)
  size_t files_skipped_shard = 0; // scan candidates on dead shards
  /// Simulated interconnect time charged shipping parsed headers to the
  /// coordinator (0 when unsharded or governed).
  uint64_t net_sim_nanos = 0;

  /// Simulated stall time of the scan's header reads. The *serial sum* is
  /// what is charged to the global clock — worker-count-invariant, equal to
  /// the legacy serial scan's charge — while the critical path is reported
  /// here as what a medium with that much overlap would have stalled
  /// (bench_refresh's speedup = serial/parallel). Unsharded, the critical
  /// path is the makespan over `workers` lanes; sharded, it is the slowest
  /// shard (that shard's summed parse time + its link time): each shard is
  /// one serial storage node.
  uint64_t serial_sim_nanos = 0;
  uint64_t parallel_sim_nanos = 0;

  /// Degradation notices (quarantines), bounded; merged in enumeration
  /// order so the list is deterministic at any worker count.
  std::vector<std::string> warnings;
  uint64_t warnings_dropped = 0;
};

/// \brief Parallel stage-1 metadata scan: the enumerate-then-ScanFile driver
/// behind Database::Open and Database::Refresh.
///
/// The coordinator enumerates files (sorted), stats each one against an
/// optional baseline (metadata snapshot at Open, the current catalog at
/// Refresh), registers new files with the simulated disk *before* any task
/// runs — so object ids, and with them the per-object PRNG fault streams,
/// are a pure function of the enumeration — and dispatches one ScanFile task
/// per changed/new file on a worker pool. Per-task simulated stall time goes
/// into `SimDisk::TaskTimeScope` buckets and is aggregated by deterministic
/// list scheduling (exec/sim_schedule.h); results are merged in enumeration
/// order. The catalog, RefreshStats, quarantine decisions, and sim_io_nanos
/// are therefore bit-identical at any worker count.
class Stage1Scanner {
 public:
  /// `shared_pool`, when non-null, runs the scan's tasks on the database-wide
  /// pool (with Stage1Options::priority) instead of a private one, so a
  /// Refresh competes for workers with in-flight queries rather than
  /// oversubscribing the machine. The deterministic time model is unaffected.
  /// `collectors` receive the stage-1 event stream of every Scan() call
  /// (see core/stats_collector.h for the delivery contract).
  Stage1Scanner(FormatAdapter* format, FileRegistry* registry,
                ThreadPool* shared_pool = nullptr,
                StatsCollectorSet collectors = {})
      : format_(format),
        registry_(registry),
        shared_pool_(shared_pool),
        collectors_(std::move(collectors)) {}

  /// Scans `root`. `baseline`, when non-null, lets unchanged files (same
  /// size and mtime) skip the header parse and reuse their old metadata.
  /// Returns the merged repository metadata in enumeration order. Collector
  /// events (ScanStarted / FileScanned per catalog-entering file /
  /// ScanFinished) are delivered from this thread, in enumeration order.
  Result<mseed::ScanResult> Scan(const std::string& root,
                                 const mseed::ScanResult* baseline,
                                 const Stage1Options& options,
                                 Stage1Stats* stats);

 private:
  /// The shared pool when one was injected, else a cached private pool
  /// (re)built to `workers` threads when needed.
  ThreadPool* Pool(size_t workers);

  FormatAdapter* format_;
  FileRegistry* registry_;
  ThreadPool* shared_pool_;  // not owned; may be null
  std::unique_ptr<ThreadPool> pool_;
  StatsCollectorSet collectors_;
};

}  // namespace dex

#endif  // DEX_CORE_STAGE1_SCAN_H_
