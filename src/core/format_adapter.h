#ifndef DEX_CORE_FORMAT_ADAPTER_H_
#define DEX_CORE_FORMAT_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/reader.h"
#include "mseed/scanner.h"

namespace dex {

/// \brief The "generalized medium for the scientific developer" (paper §5):
/// everything the kernel needs to know about a file format.
///
/// The paper observes that "mapping of data to tables is done only once for
/// a file format [but] different scientific domains usually have different
/// formats", and asks for a way to "define domain- and format-specific
/// mappings and extractions in a simpler way instead of someone writing code
/// for the database kernel for every other scientific format". A
/// FormatAdapter is that seam: the two-stage machinery (scanning metadata
/// up-front, mounting files of interest lazily) is format-agnostic and talks
/// to repositories only through this interface.
///
/// The structs (FileMeta/RecordMeta/ScanResult/DecodedRecord) are the
/// seismic *domain model*; adapters translate their format into it. They
/// live in mseed/ for historical reasons — mSEED was the first format.
class FormatAdapter {
 public:
  virtual ~FormatAdapter() = default;

  /// Short format name for diagnostics ("mseed", "tscsv").
  virtual std::string name() const = 0;

  /// Filename extension identifying this format's files (".mseed").
  virtual std::string file_extension() const = 0;

  /// Lists this format's files under `root` in deterministic (sorted) order.
  /// This order is load-bearing: it is the enumeration order the parallel
  /// stage-1 scanner merges per-file results in, so catalogs and fault
  /// streams are reproducible at any worker count. The default walks the
  /// tree for `file_extension()` files; override only for formats whose
  /// membership is not extension-based.
  virtual Result<std::vector<std::string>> EnumerateFiles(
      const std::string& root);

  /// Scans one file: extracts its file- and record-level metadata — the unit
  /// of work the parallel stage-1 scanner dispatches per task. Must be safe
  /// to call concurrently for distinct files.
  virtual Result<mseed::ScanResult> ScanFile(const std::string& uri) = 0;

  /// Extracts metadata for the whole repository — what ALi loads eagerly.
  /// Final convenience wrapper: EnumerateFiles() + a serial ScanFile() per
  /// file. Adapters only implement the per-file virtuals and automatically
  /// inherit parallelism, fault salvage, and governance from the stage-1
  /// scanner (core/stage1_scan), which drives the same two virtuals.
  Result<mseed::ScanResult> ScanRepository(const std::string& root);

  /// Fully extracts one file — the expensive step a mount performs.
  virtual Result<std::vector<mseed::DecodedRecord>> ReadAllRecords(
      const std::string& uri) = 0;

  /// Fault-tolerant extraction: recover every decodable record from a
  /// damaged file, describing losses in `report` instead of failing. The
  /// default falls back to the strict reader (all-or-nothing), so formats
  /// without record-level resynchronization still work under the kSalvage
  /// mount policy — they just degrade at file granularity.
  virtual Result<std::vector<mseed::DecodedRecord>> ReadAllRecordsSalvage(
      const std::string& uri, mseed::SalvageReport* report) {
    if (report != nullptr) *report = mseed::SalvageReport{};
    return ReadAllRecords(uri);
  }

  /// Zone-map-pruned extraction: like ReadAllRecordsSalvage, but consults
  /// `pruner` per record so decode work can be skipped for records/frames a
  /// zone map excludes, and harvests per-frame stats when asked. The default
  /// ignores the pruner (formats without sub-record structure decode fully —
  /// correct, just unpruned); mSEED overrides with the frame-aware reader.
  virtual Result<std::vector<mseed::DecodedRecord>> ReadAllRecordsPruned(
      const std::string& uri, mseed::SalvageReport* report,
      mseed::RecordPruner* pruner, mseed::PruneStats* prune_stats) {
    (void)pruner;
    (void)prune_stats;
    return ReadAllRecordsSalvage(uri, report);
  }
};

/// \brief Adapter for the binary mSEED-style format (Steim1-compressed).
class MseedAdapter : public FormatAdapter {
 public:
  std::string name() const override { return "mseed"; }
  std::string file_extension() const override { return ".mseed"; }
  Result<mseed::ScanResult> ScanFile(const std::string& uri) override;
  Result<std::vector<mseed::DecodedRecord>> ReadAllRecords(
      const std::string& uri) override;
  Result<std::vector<mseed::DecodedRecord>> ReadAllRecordsSalvage(
      const std::string& uri, mseed::SalvageReport* report) override;
  Result<std::vector<mseed::DecodedRecord>> ReadAllRecordsPruned(
      const std::string& uri, mseed::SalvageReport* report,
      mseed::RecordPruner* pruner, mseed::PruneStats* prune_stats) override;
};

/// \brief Adapter for the plain-text time-series CSV format (src/csvf).
class CsvAdapter : public FormatAdapter {
 public:
  std::string name() const override { return "tscsv"; }
  std::string file_extension() const override;
  Result<mseed::ScanResult> ScanFile(const std::string& uri) override;
  Result<std::vector<mseed::DecodedRecord>> ReadAllRecords(
      const std::string& uri) override;
};

/// \brief Picks an adapter by probing which format's files exist under
/// `root` (mSEED first). NotFound when neither format matches.
Result<std::shared_ptr<FormatAdapter>> DetectFormat(const std::string& root);

}  // namespace dex

#endif  // DEX_CORE_FORMAT_ADAPTER_H_
