#ifndef DEX_CORE_CACHE_MANAGER_H_
#define DEX_CORE_CACHE_MANAGER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/persistent_cache.h"
#include "exec/query_context.h"
#include "storage/table.h"

namespace dex {

/// \brief What happens to data ingested by a mount once the query finishes.
///
/// The paper's preliminary design discards it ("the data ingested by ALi is
/// discarded as soon as the query has been evaluated"), noting that caching
/// "requires a detailed study". CacheManager is that study's apparatus.
enum class CachePolicy {
  kNone,  // paper default: discard after the query; always re-mount
  kLru,   // keep up to capacity_bytes, evicting least-recently-used files
  kAll,   // keep everything (turns repeated exploration into Ei-like state)
};

/// \brief Granularity of cached entries (paper §3: "it leaves a question
/// behind, when and how one cache granularity is better than the other").
///
/// kFile caches the file's full ingested data: any later query over the file
/// hits. kTuple caches only the tuples that survived the selection pushed
/// into the mount (smaller footprint), so a later query hits only when its
/// pushed-down selection is covered by the cached one; otherwise the whole
/// file must be re-mounted — exactly the trade-off the paper describes.
enum class CacheGranularity { kFile, kTuple };

/// \brief Summary of the selection a tuple-granular entry was filtered by,
/// when that selection is a pure time window (every conjunct compares
/// sample_time against a literal). Enables subsumption: a cached superset
/// window serves any narrower query, with the narrower filter re-applied on
/// top of the cache-scan.
struct CachedWindow {
  bool pure = false;  // predicate constrains only sample_time
  double lo = 0;
  double hi = 0;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;      // dropped because the file changed on disk
  uint64_t budget_rejections = 0;  // insertions refused by the memory budget
  // Tiered (persistent) operation; all zero without an attached
  // PersistentCache.
  uint64_t spills = 0;           // resident entries demoted to on-disk stubs
  uint64_t reloads = 0;          // stubs promoted back to resident on touch
  uint64_t reload_failures = 0;  // stub reload refused (corrupt or no budget)
  uint64_t persisted = 0;        // entries written through to the durable tier
  uint64_t persist_failures = 0;
};

/// \brief Keeps ingested file data between queries, keyed by URI.
///
/// Thread-safe: admission, lookup, and eviction take one internal mutex, so
/// concurrent mount tasks can insert their partial tables directly.
class CacheManager {
 public:
  struct Options {
    CachePolicy policy = CachePolicy::kNone;
    CacheGranularity granularity = CacheGranularity::kFile;
    uint64_t capacity_bytes = 256ull << 20;
  };

  CacheManager() : CacheManager(Options{}) {}
  explicit CacheManager(const Options& options) : options_(options) {}

  /// Unifies the cache with the database-wide memory budget: every insertion
  /// reserves its bytes, every eviction/invalidation releases them, and a
  /// reservation failure first evicts unpinned entries, then refuses the
  /// insertion (best-effort cache — never fails the query). Call once,
  /// before any query runs; `budget` is not owned and must outlive this.
  void AttachBudget(MemoryBudget* budget) { budget_ = budget; }

  /// Attaches the durable tier: insertions write through to `persistent`,
  /// budget/capacity eviction demotes persisted entries to on-disk *stubs*
  /// (metadata retained, bytes dropped) instead of discarding them, and a
  /// probed stub is reloaded — revalidated checksums and all — on touch.
  /// Call once, before any query runs; not owned, must outlive this.
  void AttachPersistent(PersistentCache* persistent) {
    persistent_ = persistent;
  }

  /// Seeds the cache with one entry recovered from the durable tier at open
  /// (already fully validated by PersistentCache::Recover). Adopted resident
  /// when `table` is non-null and the budget admits it, otherwise as a stub
  /// that reloads on first touch.
  void AdoptRecovered(const std::string& uri, const ColumnarFileMeta& meta,
                      TablePtr table);

  /// True if a later query with pushed-down selection `predicate_repr`
  /// (empty = unrestricted) can be served for `uri`, given the file's
  /// current mtime. Used by the run-time rewriter to choose cache-scan vs
  /// mount; counts a hit/miss.
  /// `window` (optional) summarizes the query's pushed-down selection for
  /// tuple-granular subsumption checks.
  bool Probe(const std::string& uri, const std::string& predicate_repr,
             int64_t current_mtime_ms, const CachedWindow* window = nullptr);

  /// Like Probe but without mutating stats or LRU order (used by the
  /// informativeness estimator, which must not distort cache accounting).
  bool WouldHit(const std::string& uri, const std::string& predicate_repr,
                int64_t current_mtime_ms,
                const CachedWindow* window = nullptr) const;

  /// Returns the cached partial table (call only after a true Probe; a miss
  /// here is an internal error surfaced as NotFound).
  Result<TablePtr> Lookup(const std::string& uri);

  /// Offers freshly mounted data to the cache. `predicate_repr` describes
  /// the selection applied before insertion (empty = whole file). No-op
  /// under kNone.
  void Insert(const std::string& uri, const std::string& predicate_repr,
              int64_t mtime_ms, TablePtr data,
              const CachedWindow* window = nullptr);

  /// Pins `uri` against eviction (both LRU-capacity and budget-pressure
  /// eviction). The two-stage executor pins the URIs its rewritten plan
  /// cache-scans, so freeing budget for new mounts cannot invalidate
  /// branches of the very plan being executed. No-op for unknown URIs;
  /// pins nest (Pin twice needs Unpin twice).
  void Pin(const std::string& uri);
  void Unpin(const std::string& uri);

  /// Evicts unpinned entries in LRU order until at least `min_bytes` were
  /// freed (or none are left). Called by the two-stage executor when a
  /// mount's budget reservation fails, before declaring memory exhaustion.
  /// Returns the number of entries evicted.
  size_t EvictUnpinned(uint64_t min_bytes);

  /// Drops every entry (e.g. after the repository was regenerated).
  void Clear();

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  uint64_t bytes_used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_used_;
  }
  size_t num_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  const Options& options() const { return options_; }

 private:
  struct Entry {
    // Residency marker: non-null = resident (listed in lru_); null = spilled
    // stub whose bytes live only in the durable tier (never in lru_).
    TablePtr data;
    std::string predicate_repr;
    CachedWindow window;
    int64_t mtime_ms = 0;
    uint64_t bytes = 0;  // in-memory footprint (kept while spilled, for reload)
    uint32_t pins = 0;
    bool persisted = false;  // a validated copy exists in the durable tier
    std::list<std::string>::iterator lru_it;  // valid only while resident
  };

  enum class ReloadResult { kOk, kNoBudget, kCorrupt };

  // Helpers below require mu_ to be held.
  bool TupleEntryServes(const Entry& entry, const std::string& predicate_repr,
                        const CachedWindow* window) const;

  void EvictIfNeeded();
  size_t EvictUnpinnedLocked(uint64_t min_bytes);
  void Erase(const std::string& uri);
  /// Demotes a resident persisted entry to a stub (frees budget + memory).
  void SpillLocked(const std::string& uri, Entry* entry);
  /// Promotes a stub back to resident via the durable tier's full validation
  /// ladder. kCorrupt means the entry was quarantined on disk — the caller
  /// must erase the stub and treat the probe/lookup as a miss.
  ReloadResult ReloadLocked(const std::string& uri, Entry* entry);
  /// Writes `table` through to the durable tier; returns success.
  bool PersistLocked(const std::string& uri, const Table& table,
                     const std::string& predicate_repr,
                     const CachedWindow& window, int64_t mtime_ms);

  const Options options_;
  MemoryBudget* budget_ = nullptr;  // set once before use; not owned
  PersistentCache* persistent_ = nullptr;  // durable tier; may stay null
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t bytes_used_ = 0;
  CacheStats stats_;
};

}  // namespace dex

#endif  // DEX_CORE_CACHE_MANAGER_H_
