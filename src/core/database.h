#ifndef DEX_CORE_DATABASE_H_
#define DEX_CORE_DATABASE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/catalog_epoch.h"
#include "core/coverage.h"
#include "core/derived_metadata.h"
#include "core/eager_loader.h"
#include "core/file_registry.h"
#include "core/format_adapter.h"
#include "core/informativeness.h"
#include "core/mounter.h"
#include "core/stage1_scan.h"
#include "core/zone_map.h"
#include "core/two_stage.h"
#include "exec/thread_pool.h"
#include "io/sim_disk.h"
#include "shard/sharded_repository.h"
#include "storage/catalog.h"

namespace dex {

/// \brief How actual data enters the database.
enum class IngestionMode {
  kLazy,   // ALi: two-stage execution, metadata loaded up-front, files of
           // interest mounted per query
  kEager,  // Ei: the whole repository is decompressed and loaded at Open(),
           // PK/FK indexes built, queries run single-stage
};

/// \brief Everything configurable about a database instance.
struct DatabaseOptions {
  IngestionMode mode = IngestionMode::kLazy;

  // Cache policy for lazily ingested data (kLazy only). The paper's
  // preliminary design is kNone: discard after every query.
  CacheManager::Options cache;

  // Durable tier of the cache (kLazy, policy != kNone only). When non-empty,
  // cached partial tables are written through to checksummed columnar files
  // in this directory and recovered — validated, with corrupt entries
  // quarantined — on the next Open(), so a restarted database answers
  // repeated queries without re-mounting ("instant-on" for actual data,
  // complementing metadata_snapshot_path). Empty = in-memory cache only.
  std::string cache_dir;

  // Run-time optimization knobs (kLazy only).
  TwoStageOptions two_stage;

  // Worker threads for the stage-1 metadata scan (Open() and Refresh()):
  // per-file header parses run as parallel tasks. 0 = hardware concurrency,
  // 1 = serial. The catalog, RefreshStats, quarantine decisions, and charged
  // simulated I/O are bit-identical at any value (DESIGN.md §8.9); only
  // wall time and the reported critical path change.
  size_t stage1_threads = 0;

  // Real threads in the database-wide worker pool every query's mount tasks
  // (and every refresh's scan tasks) run on. 0 = hardware concurrency. The
  // pool size never affects results or charged simulated time — per-query
  // `num_threads`/`stage1_threads` drive the deterministic lane counts; this
  // only bounds physical parallelism across concurrent queries.
  size_t pool_threads = 0;

  // Collect derived metadata as a side effect of mounting (§5).
  bool collect_derived_metadata = false;

  // Harvest per-record / per-Steim-frame min/max zone maps as a side effect
  // of mounting, and use them to skip decode work in later mounts (see
  // PruningOptions). Cheap (one struct per record + 20 bytes per frame);
  // defaults on.
  bool collect_zone_maps = true;

  // When non-empty, zone maps persist to this file (checksummed, atomic
  // rename) after queries/refreshes that changed them, and are recovered on
  // the next Open() — so a restarted database prunes immediately. A corrupt
  // or stale file is discarded wholesale (zone maps are hints; recovery
  // never blocks Open). Empty = in-memory only.
  std::string zone_map_path;

  // Ei knobs.
  bool build_indexes = true;      // PK/FK indexes after the eager load
  bool use_index_joins = false;   // index-assisted joins at query time

  // The simulated storage medium.
  SimDisk::Options disk;

  // Sharding: partition the file catalog across `shard.num_shards` virtual
  // storage nodes behind a simulated interconnect (shard.net). With one
  // shard (the default) everything behaves exactly as before. Stage-1 scans
  // and stage-2 ingestion then run scatter/gather with per-shard charged
  // time; a dead shard degrades queries to deterministic partial results.
  ShardedRepository::Options shard;

  // Repository file format. nullptr = auto-detect from the files present
  // (mSEED first, then the text time-series format).
  std::shared_ptr<FormatAdapter> format;

  // "Instant-on": when non-empty, Open() loads metadata from this snapshot
  // file (re-scanning only files whose size/mtime changed) and saves the
  // current metadata back to it. Empty = always scan.
  std::string metadata_snapshot_path;
};

/// \brief Timings and sizes of Open() — the paper's data-to-insight costs.
struct OpenStats {
  uint64_t metadata_scan_nanos = 0;  // walking the repo, parsing headers
  uint64_t load_nanos = 0;           // Ei only: actual data load
  uint64_t index_nanos = 0;          // Ei only: index build
  uint64_t sim_io_nanos = 0;         // simulated I/O charged during Open
  uint64_t repo_bytes = 0;
  uint64_t metadata_bytes = 0;       // size of F + R (the "ALi" column of Table 1)
  uint64_t db_bytes = 0;             // Ei: loaded table bytes
  uint64_t index_bytes = 0;          // Ei: "+keys"
  size_t num_files = 0;
  size_t num_records = 0;
  uint64_t num_data_rows = 0;        // Ei: rows materialized in D
  size_t snapshot_files_reused = 0;  // instant-on: files not re-scanned

  // Persistent-cache recovery (cache_dir set): entries that survived the
  // validation ladder, were deleted as corrupt, or were dropped because the
  // source file changed since they were persisted.
  uint64_t cache_entries_recovered = 0;
  uint64_t cache_entries_quarantined = 0;
  uint64_t cache_entries_stale = 0;

  // Parallel stage-1 scan: resolved worker-lane count, the scan's charged
  // (serial-sum, worker-invariant) simulated stall time, and its critical
  // path over `scan_workers` lanes (what a medium with that much overlap
  // would have stalled). See DESIGN.md §8.9.
  size_t scan_workers = 1;
  uint64_t scan_serial_sim_nanos = 0;
  uint64_t scan_parallel_sim_nanos = 0;

  // Sharded scan: shard count and the interconnect time Open's scan charged
  // shipping parsed headers to the coordinator (0 when unsharded).
  size_t num_shards = 1;
  uint64_t scan_net_sim_nanos = 0;

  /// Wall-clock-equivalent seconds including simulated I/O.
  double TotalSeconds() const {
    return static_cast<double>(metadata_scan_nanos + load_nanos + index_nanos +
                               sim_io_nanos) /
           1e9;
  }
};

/// \brief Per-query statistics reported alongside every result.
struct QueryStats {
  uint64_t plan_nanos = 0;      // parse + bind + compile-time optimization
  uint64_t exec_nanos = 0;      // both stages, CPU
  /// Simulated I/O stalls charged by *this query* (its own per-query tee of
  /// the shared clock) — independent of what concurrent queries charge.
  uint64_t sim_io_nanos = 0;
  TwoStageStats two_stage;      // stage split details (kLazy)
  Mounter::MountCounters mount; // decode work done by ALi
  uint64_t result_rows = 0;

  /// Id of the catalog epoch this query ran against (snapshot isolation: the
  /// epoch current at admission, unaffected by concurrent Refresh).
  uint64_t epoch = 0;

  // Fault tolerance (kLazy; mirrors the per-query slice of
  // Mounter::MountCounters for direct access).
  uint64_t read_retries = 0;      // transient read failures absorbed by backoff
  uint64_t files_failed = 0;      // permanent read failures → quarantined
  uint64_t files_skipped = 0;     // corrupt files dropped whole (kSkipFile)
  uint64_t records_salvaged = 0;  // records recovered past corruption
  uint64_t records_skipped = 0;   // corrupt records dropped (kSalvage)

  // Zone-map pruning (kLazy; mirrors Mounter::MountCounters): decode work
  // skipped because a zone map proved it could not match the predicate.
  uint64_t records_skipped_zonemap = 0;
  uint64_t frames_skipped_zonemap = 0;
  uint64_t zonemap_fallbacks = 0;  // selective decode failed verification

  /// Human-readable degradation notices for this query: retries exhausted,
  /// files quarantined or skipped, records dropped. Bounded; a final entry
  /// notes how many were dropped when the bound is hit.
  std::vector<std::string> warnings;

  /// Reported query time: measured CPU + simulated I/O.
  double TotalSeconds() const {
    return static_cast<double>(plan_nanos + exec_nanos + sim_io_nanos) / 1e9;
  }
};

/// \brief A query's result table plus its execution statistics.
struct QueryResult {
  TablePtr table;
  QueryStats stats;
};

/// \brief What a Refresh() found in the repository. Every field except the
/// wall-clock `scan_nanos` is bit-identical at any stage1_threads value.
struct RefreshStats {
  size_t files_added = 0;    // new since Open()/last refresh
  size_t files_changed = 0;  // size or mtime differs (header re-parsed)
  size_t files_removed = 0;  // gone from disk (metadata rows dropped)
  uint64_t scan_nanos = 0;   // wall clock, including the parallel scan

  // -- Parallel stage-1 scan ----------------------------------------------
  size_t files_scanned = 0;      // headers physically parsed
  size_t files_reused = 0;       // unchanged: catalog rows kept, no parse
  size_t files_quarantined = 0;  // corrupt header / permanent read failure
  size_t workers = 1;            // resolved worker-lane count
  uint64_t read_retries = 0;     // transient header-read faults absorbed
  uint64_t sim_io_nanos = 0;     // simulated I/O charged by this refresh
  uint64_t serial_sim_nanos = 0;    // scan stall time, summed over tasks
  uint64_t parallel_sim_nanos = 0;  // critical path over `workers` lanes

  /// Id of the catalog epoch this refresh published. Queries admitted before
  /// the publish keep reading their pinned pre-refresh epoch; queries
  /// admitted after see this one.
  uint64_t epoch = 0;

  // -- Governance (a deadline armed during Refresh) -----------------------
  bool is_partial = false;            // deadline or dead shard left work undone
  size_t files_skipped_deadline = 0;  // files left at their stale rows

  // -- Sharded scan -------------------------------------------------------
  size_t num_shards = 1;           // effective shard count (1 = unsharded)
  size_t files_skipped_shard = 0;  // scan candidates on dead shards
  uint64_t net_sim_nanos = 0;      // interconnect time this refresh charged

  /// Degradation notices (quarantines), bounded, deterministic order.
  std::vector<std::string> warnings;
};

/// \brief Per-query knobs for Database::Query — the single query entry
/// point. Each optional overrides the database-wide TwoStageOptions value
/// for this query only (the database defaults are never mutated); nullopt
/// inherits the current default. See the shell's `.timeout` / `.memlimit` /
/// `--threads` for the session-wide equivalents.
struct QueryOptions {
  /// Simulated-time deadline in nanoseconds (0 = off), measured on the
  /// query's own simulated timeline. Deterministic even under concurrency.
  std::optional<uint64_t> sim_deadline_nanos;
  /// Wall-clock deadline in nanoseconds (0 = off). Nondeterministic.
  std::optional<uint64_t> wall_deadline_nanos;
  /// Per-query memory cap in bytes (0 = unlimited), layered on top of the
  /// database-wide budget: this query's admissions must fit under both.
  /// Other queries are unaffected (the shared budget is never resized).
  std::optional<uint64_t> memory_budget_bytes;
  /// Deadline/budget exhaustion policy (default kPartialResults).
  std::optional<OnResourceExhausted> on_resource_exhausted;
  /// Stage-2 ingestion worker lanes (0 = hardware concurrency, 1 = serial).
  std::optional<size_t> num_threads;
  /// The pruning decision ladder for this query (file/record/frame level +
  /// SIMD kernels), overriding the database-wide TwoStageOptions::pruning.
  /// Shell: `--no-zonemap` / `--no-simd-kernels`.
  std::optional<PruningOptions> pruning;
  /// Shard count for this query on a sharded database (nullopt/0 = the
  /// configured count; other values clamped into [1, configured]). The
  /// query re-partitions on the fly: results are identical at any value,
  /// only the charged scatter/gather critical path changes.
  std::optional<int> num_shards;
  /// Worker-pool priority class (ThreadPool::kPriorityBackground/Normal/
  /// Interactive) for this query's mount tasks on the shared pool. Higher
  /// classes are picked first; a deterministic anti-starvation rule keeps
  /// lower classes draining.
  int priority = ThreadPool::kPriorityNormal;
  /// Stage-boundary callback: sees the informativeness estimate after stage
  /// 1 and may abort; with two_stage.mount_batch_size > 0 it is also called
  /// between ingestion batches (multi-stage execution).
  BreakpointCallback breakpoint;
  /// External cooperative cancellation (e.g. wired to a ^C handler or a
  /// watchdog): operators poll it per batch, mount tasks check it before
  /// starting and between read retries. Cancelling leaves the database
  /// consistent — partial tables never reach the catalog.
  CancelToken* cancel = nullptr;
  /// Force span tracing on for this query (restored afterwards).
  bool trace = false;

  // -- Telemetry context (see DESIGN.md §8.12) -----------------------------
  /// Serving-session name this query runs under; becomes the `session`
  /// label on the query's dimensional metrics and flight-recorder events.
  /// "" = unlabeled (direct Database::Query callers).
  std::string session;
  /// Short caller-supplied tag becoming the `query` label on dimensional
  /// metrics (e.g. a workload step name). "" = unlabeled. Cardinality is
  /// bounded registry-side; prefer a handful of stable tags over raw SQL.
  std::string query_label;
  /// Span id the query's root span should parent under (0 = root). The
  /// serving layer sets this to its submit span so admission wait and
  /// execution render as one tree in the Chrome trace.
  uint64_t trace_parent_span = 0;
};

/// \brief The public facade: a scientific file repository, queryable in SQL.
///
/// ```
/// auto db = dex::Database::Open("/repo", {});
/// auto res = (*db)->Query("SELECT AVG(D.sample_value) FROM F JOIN R ON ...");
/// std::cout << res->table->ToString();
/// ```
///
/// Concurrency: Query() is safe to call from multiple threads. Each query
/// pins the catalog epoch current at submission and runs against that
/// snapshot; Refresh()/AnalyzeCoverage()/quarantine sync publish *new*
/// epochs copy-on-write, so metadata mutation never races a reader. Shared
/// mutable collaborators (disk, registry, cache, memory budget, metrics)
/// synchronize internally. The admission/fairness layer on top lives in
/// serve::SessionManager.
class Database {
 public:
  /// Opens `repo_root`: scans metadata (always), and under kEager also loads
  /// all actual data and builds indexes.
  static Result<std::unique_ptr<Database>> Open(const std::string& repo_root,
                                                const DatabaseOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Uninstalls this database's simulated clock from the global flight
  /// recorder (installed by Open so events are stamped with charged sim
  /// time; a newer database's clock is left untouched).
  ~Database();

  /// Runs one SELECT statement — the single query entry point. `options`
  /// carries every per-query knob (deadlines, memory cap, worker lanes,
  /// priority, breakpoint callback, cancel token, tracing); the defaults
  /// inherit the database-wide settings. `EXPLAIN SELECT ...` and `EXPLAIN
  /// ANALYZE SELECT ...` are handled here too: both return the plan as a
  /// one-column "QUERY PLAN" table; ANALYZE actually executes the query and
  /// annotates every operator with its measured rows/batches/wall time.
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions{});

  /// Like Query(sql, options) but against a caller-pinned epoch — the
  /// serving layer pins at admission time, possibly long before the query
  /// gets to run (snapshot-at-submission semantics across a wait queue).
  Result<QueryResult> Query(const std::string& sql, const QueryOptions& options,
                            EpochPtr epoch);

  /// EXPLAIN: the optimized plan and, in lazy mode, its Q_f/Q_s split.
  Result<std::string> Explain(const std::string& sql);

  /// Rescans the repository and folds in what changed: new files become
  /// queryable metadata, changed files get fresh F/R rows (their cached
  /// data invalidates via mtime on the next probe), removed files drop out
  /// of F/R so they can never become files of interest again. This is the
  /// e-science reality the paper opens with — "they automatically receive
  /// multiple terabytes of data on a daily basis" — and under ALi it is a
  /// metadata-only operation: only changed/new files get a header parse
  /// (unchanged files keep their catalog rows), dispatched as parallel
  /// tasks on `stage1_threads` workers with bit-identical results at any
  /// worker count. A sim/wall deadline set via `.timeout`/the runtime
  /// setters governs the scan too: it stops admitting header parses on
  /// expiry and returns a deterministic partial refresh (`is_partial`,
  /// `files_skipped_deadline`).
  ///
  /// Under concurrent serving a refresh is snapshot-isolated: it clones the
  /// current catalog, mutates the private clone, and atomically publishes it
  /// as a new epoch. In-flight queries keep reading their pinned pre-refresh
  /// epoch to completion; queries admitted after the publish see the new
  /// one. Eager mode would need a data reload and returns NotImplemented.
  Result<RefreshStats> Refresh();

  /// Derives GAPS/OVERLAPS tables from the record metadata (paper §5's
  /// "analyzed data" kind of derived metadata) and registers them as
  /// queryable metadata tables (published as a new epoch, like Refresh).
  /// Re-run after Refresh() to update them.
  Result<CoverageStats> AnalyzeCoverage();

  /// Evicts the buffer pool — the next query runs "cold", as after a server
  /// restart with all buffers flushed.
  void FlushBuffers() { disk_->FlushAll(); }

  // -- Epochs (snapshot isolation) ----------------------------------------
  /// Pins the current catalog epoch. The serving layer calls this at
  /// admission and passes the pin to Query(sql, options, epoch).
  EpochPtr PinEpoch() const { return epochs_->Pin(); }
  /// Id of the current epoch (starts at 0, +1 per publish).
  uint64_t current_epoch() const { return epochs_->current_id(); }
  /// Superseded epochs whose last pin has dropped.
  uint64_t epochs_retired() const { return epochs_->epochs_retired(); }

  // -- Resource governance (runtime knobs; see TwoStageOptions) -----------
  /// Per-query simulated-time deadline (0 = off). Shell: `.timeout`.
  void set_sim_deadline_nanos(uint64_t nanos);
  /// Per-query wall-clock deadline (0 = off).
  void set_wall_deadline_nanos(uint64_t nanos);
  /// Database-wide memory budget in bytes (0 = unlimited). Shell: `.memlimit`.
  void set_memory_budget_bytes(uint64_t bytes);
  /// Deadline/budget exhaustion policy (default kPartialResults).
  void set_on_resource_exhausted(OnResourceExhausted policy);

  // -- Introspection ------------------------------------------------------
  const OpenStats& open_stats() const { return open_stats_; }
  /// The database-wide budget mounted partial tables and cache entries
  /// reserve against (tracks usage even when unlimited).
  MemoryBudget* memory_budget() { return memory_budget_.get(); }
  /// The latest published catalog — introspection between operations, not a
  /// stable snapshot: the pointer is valid only until the next publish
  /// (Refresh/AnalyzeCoverage/quarantine sync). Queries pin an epoch instead.
  Catalog* catalog() {
    std::lock_guard<std::mutex> lock(publish_mu_);
    return pinned_latest_->catalog.get();
  }
  SimDisk* disk() { return disk_.get(); }
  CacheManager* cache() { return cache_.get(); }
  /// The cache's durable tier (null unless options.cache_dir was set).
  PersistentCache* persistent_cache() { return persistent_cache_.get(); }
  /// The sharded repository (never null; has one shard when unsharded).
  /// Kill/HealShard and StatusRows back the shell's `.shards` command.
  ShardedRepository* shards() { return shards_.get(); }
  FileRegistry* registry() { return registry_.get(); }
  DerivedMetadata* derived_metadata() { return derived_.get(); }
  /// The zone-map store (null when options.collect_zone_maps is false).
  ZoneMapStore* zone_maps() { return zone_maps_.get(); }
  FormatAdapter* format() { return format_.get(); }
  /// The database-wide worker pool (mount tasks, refresh scan tasks).
  ThreadPool* pool() { return pool_.get(); }
  const DatabaseOptions& options() const { return options_; }

 private:
  explicit Database(DatabaseOptions options);

  Result<QueryResult> RunQuery(const std::string& sql,
                               const QueryOptions& options, EpochPtr epoch,
                               PlanProfiler* profiler = nullptr);

  /// EXPLAIN ANALYZE body: runs `sql` under a profiler and replaces the
  /// result table with the annotated plan rendering.
  Result<QueryResult> RunExplainAnalyze(const std::string& sql,
                                        const QueryOptions& options,
                                        EpochPtr epoch);

  /// Publishes a new epoch with a rebuilt QUARANTINE metadata table if
  /// registry health changed since the last publish.
  Status SyncQuarantineTable();

  /// Persists the zone maps when a path is configured and they changed.
  /// Best-effort: a failed save is logged, never propagated.
  void SaveZoneMaps();

  DatabaseOptions options_;
  std::string repo_root_;
  std::shared_ptr<FormatAdapter> format_;
  std::unique_ptr<SimDisk> disk_;
  // Catalog partitioning + the simulated shard interconnect (owns the
  // SimNetwork). One shard = the classic single-node behavior.
  std::unique_ptr<ShardedRepository> shards_;
  std::unique_ptr<FileRegistry> registry_;
  std::unique_ptr<CacheManager> cache_;
  // Durable tier behind cache_; created (and recovered from) in Open when
  // options_.cache_dir is set. Destroyed after cache_ would be fine either
  // way: cache_ only calls into it while queries run.
  std::unique_ptr<PersistentCache> persistent_cache_;
  // Database-wide: outlives any one query because cache entries keep their
  // reservations between queries. Created before cache_ is used.
  std::unique_ptr<MemoryBudget> memory_budget_;
  std::unique_ptr<DerivedMetadata> derived_;
  // Stats collectors fed by the stage-1 scanner and the mounter (see
  // core/stats_collector.h). derived_ above is one of them when enabled.
  std::unique_ptr<CoverageCollector> coverage_;
  std::unique_ptr<InformativenessIndex> info_index_;
  std::unique_ptr<ZoneMapStore> zone_maps_;
  std::unique_ptr<Mounter> mounter_;
  // The shared worker pool all queries' mount tasks (and refresh scans)
  // run on, with per-query priority classes. Destroyed after the executors.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TwoStageExecutor> two_stage_;
  // Stage-1 scan driver, shared by Open() and every Refresh().
  std::unique_ptr<Stage1Scanner> stage1_;

  // -- Epochs -------------------------------------------------------------
  std::unique_ptr<EpochManager> epochs_;
  // Serializes copy-on-write publishes (quarantine sync, Refresh's swap,
  // AnalyzeCoverage) and guards pinned_latest_/quarantine_table_version_.
  std::mutex publish_mu_;
  // Pin on the latest published epoch: backs the raw `catalog()` accessor
  // and is the clone source for the next publish. Never null after Open.
  EpochPtr pinned_latest_;
  // Pin on epoch 0 for the Database's lifetime: two_stage_ holds a raw
  // default-catalog pointer into it (unused when every Execute passes a
  // QueryEnv, but kept valid for direct use).
  EpochPtr initial_epoch_;
  // Serializes whole refreshes (scan + publish) against each other.
  std::mutex refresh_mu_;
  // Guards the database-wide TwoStageOptions defaults (runtime setters vs
  // concurrent queries snapshotting their effective options).
  std::mutex options_mu_;

  OpenStats open_stats_;
  // Registry health version the QUARANTINE metadata table last reflected.
  // Guarded by publish_mu_.
  uint64_t quarantine_table_version_ = 0;
};

}  // namespace dex

#endif  // DEX_CORE_DATABASE_H_
