#ifndef DEX_CORE_DATABASE_H_
#define DEX_CORE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/coverage.h"
#include "core/derived_metadata.h"
#include "core/eager_loader.h"
#include "core/file_registry.h"
#include "core/format_adapter.h"
#include "core/mounter.h"
#include "core/stage1_scan.h"
#include "core/two_stage.h"
#include "io/sim_disk.h"
#include "storage/catalog.h"

namespace dex {

/// \brief How actual data enters the database.
enum class IngestionMode {
  kLazy,   // ALi: two-stage execution, metadata loaded up-front, files of
           // interest mounted per query
  kEager,  // Ei: the whole repository is decompressed and loaded at Open(),
           // PK/FK indexes built, queries run single-stage
};

/// \brief Everything configurable about a database instance.
struct DatabaseOptions {
  IngestionMode mode = IngestionMode::kLazy;

  // Cache policy for lazily ingested data (kLazy only). The paper's
  // preliminary design is kNone: discard after every query.
  CacheManager::Options cache;

  // Run-time optimization knobs (kLazy only).
  TwoStageOptions two_stage;

  // Worker threads for the stage-1 metadata scan (Open() and Refresh()):
  // per-file header parses run as parallel tasks. 0 = hardware concurrency,
  // 1 = serial. The catalog, RefreshStats, quarantine decisions, and charged
  // simulated I/O are bit-identical at any value (DESIGN.md §8.9); only
  // wall time and the reported critical path change.
  size_t stage1_threads = 0;

  // Collect derived metadata as a side effect of mounting (§5).
  bool collect_derived_metadata = false;

  // Ei knobs.
  bool build_indexes = true;      // PK/FK indexes after the eager load
  bool use_index_joins = false;   // index-assisted joins at query time

  // The simulated storage medium.
  SimDisk::Options disk;

  // Repository file format. nullptr = auto-detect from the files present
  // (mSEED first, then the text time-series format).
  std::shared_ptr<FormatAdapter> format;

  // "Instant-on": when non-empty, Open() loads metadata from this snapshot
  // file (re-scanning only files whose size/mtime changed) and saves the
  // current metadata back to it. Empty = always scan.
  std::string metadata_snapshot_path;
};

/// \brief Timings and sizes of Open() — the paper's data-to-insight costs.
struct OpenStats {
  uint64_t metadata_scan_nanos = 0;  // walking the repo, parsing headers
  uint64_t load_nanos = 0;           // Ei only: actual data load
  uint64_t index_nanos = 0;          // Ei only: index build
  uint64_t sim_io_nanos = 0;         // simulated I/O charged during Open
  uint64_t repo_bytes = 0;
  uint64_t metadata_bytes = 0;       // size of F + R (the "ALi" column of Table 1)
  uint64_t db_bytes = 0;             // Ei: loaded table bytes
  uint64_t index_bytes = 0;          // Ei: "+keys"
  size_t num_files = 0;
  size_t num_records = 0;
  uint64_t num_data_rows = 0;        // Ei: rows materialized in D
  size_t snapshot_files_reused = 0;  // instant-on: files not re-scanned

  // Parallel stage-1 scan: resolved worker-lane count, the scan's charged
  // (serial-sum, worker-invariant) simulated stall time, and its critical
  // path over `scan_workers` lanes (what a medium with that much overlap
  // would have stalled). See DESIGN.md §8.9.
  size_t scan_workers = 1;
  uint64_t scan_serial_sim_nanos = 0;
  uint64_t scan_parallel_sim_nanos = 0;

  /// Wall-clock-equivalent seconds including simulated I/O.
  double TotalSeconds() const {
    return static_cast<double>(metadata_scan_nanos + load_nanos + index_nanos +
                               sim_io_nanos) /
           1e9;
  }
};

/// \brief Per-query statistics reported alongside every result.
struct QueryStats {
  uint64_t plan_nanos = 0;      // parse + bind + compile-time optimization
  uint64_t exec_nanos = 0;      // both stages, CPU
  uint64_t sim_io_nanos = 0;    // simulated I/O stalls
  TwoStageStats two_stage;      // stage split details (kLazy)
  Mounter::MountCounters mount; // decode work done by ALi
  uint64_t result_rows = 0;

  // Fault tolerance (kLazy; mirrors the per-query slice of
  // Mounter::MountCounters for direct access).
  uint64_t read_retries = 0;      // transient read failures absorbed by backoff
  uint64_t files_failed = 0;      // permanent read failures → quarantined
  uint64_t files_skipped = 0;     // corrupt files dropped whole (kSkipFile)
  uint64_t records_salvaged = 0;  // records recovered past corruption
  uint64_t records_skipped = 0;   // corrupt records dropped (kSalvage)

  /// Human-readable degradation notices for this query: retries exhausted,
  /// files quarantined or skipped, records dropped. Bounded; a final entry
  /// notes how many were dropped when the bound is hit.
  std::vector<std::string> warnings;

  /// Reported query time: measured CPU + simulated I/O.
  double TotalSeconds() const {
    return static_cast<double>(plan_nanos + exec_nanos + sim_io_nanos) / 1e9;
  }
};

/// \brief A query's result table plus its execution statistics.
struct QueryResult {
  TablePtr table;
  QueryStats stats;
};

/// \brief What a Refresh() found in the repository. Every field except the
/// wall-clock `scan_nanos` is bit-identical at any stage1_threads value.
struct RefreshStats {
  size_t files_added = 0;    // new since Open()/last refresh
  size_t files_changed = 0;  // size or mtime differs (header re-parsed)
  size_t files_removed = 0;  // gone from disk (metadata rows dropped)
  uint64_t scan_nanos = 0;   // wall clock, including the parallel scan

  // -- Parallel stage-1 scan ----------------------------------------------
  size_t files_scanned = 0;      // headers physically parsed
  size_t files_reused = 0;       // unchanged: catalog rows kept, no parse
  size_t files_quarantined = 0;  // corrupt header / permanent read failure
  size_t workers = 1;            // resolved worker-lane count
  uint64_t read_retries = 0;     // transient header-read faults absorbed
  uint64_t sim_io_nanos = 0;     // simulated I/O charged by this refresh
  uint64_t serial_sim_nanos = 0;    // scan stall time, summed over tasks
  uint64_t parallel_sim_nanos = 0;  // critical path over `workers` lanes

  // -- Governance (a deadline armed during Refresh) -----------------------
  bool is_partial = false;            // the deadline stopped the scan early
  size_t files_skipped_deadline = 0;  // files left at their stale rows

  /// Degradation notices (quarantines), bounded, deterministic order.
  std::vector<std::string> warnings;
};

/// \brief Per-query knobs for Database::Query — the single query entry
/// point. Each optional overrides the database-wide TwoStageOptions value
/// for this query only (the database defaults are restored afterwards);
/// nullopt inherits the current default. See the shell's `.timeout` /
/// `.memlimit` / `--threads` for the session-wide equivalents.
struct QueryOptions {
  /// Simulated-time deadline in nanoseconds (0 = off). Deterministic.
  std::optional<uint64_t> sim_deadline_nanos;
  /// Wall-clock deadline in nanoseconds (0 = off). Nondeterministic.
  std::optional<uint64_t> wall_deadline_nanos;
  /// Memory budget in bytes (0 = unlimited) for this query's admissions.
  std::optional<uint64_t> memory_budget_bytes;
  /// Deadline/budget exhaustion policy (default kPartialResults).
  std::optional<OnResourceExhausted> on_resource_exhausted;
  /// Stage-2 ingestion worker lanes (0 = hardware concurrency, 1 = serial).
  std::optional<size_t> num_threads;
  /// Stage-boundary callback: sees the informativeness estimate after stage
  /// 1 and may abort; with two_stage.mount_batch_size > 0 it is also called
  /// between ingestion batches (multi-stage execution).
  BreakpointCallback breakpoint;
  /// External cooperative cancellation (e.g. wired to a ^C handler or a
  /// watchdog): operators poll it per batch, mount tasks check it before
  /// starting and between read retries. Cancelling leaves the database
  /// consistent — partial tables never reach the catalog.
  CancelToken* cancel = nullptr;
  /// Force span tracing on for this query (restored afterwards).
  bool trace = false;
};

/// \brief The public facade: a scientific file repository, queryable in SQL.
///
/// ```
/// auto db = dex::Database::Open("/repo", {});
/// auto res = (*db)->Query("SELECT AVG(D.sample_value) FROM F JOIN R ON ...");
/// std::cout << res->table->ToString();
/// ```
class Database {
 public:
  /// Opens `repo_root`: scans metadata (always), and under kEager also loads
  /// all actual data and builds indexes.
  static Result<std::unique_ptr<Database>> Open(const std::string& repo_root,
                                                const DatabaseOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Runs one SELECT statement — the single query entry point. `options`
  /// carries every per-query knob (deadlines, memory budget, worker lanes,
  /// breakpoint callback, cancel token, tracing); the defaults inherit the
  /// database-wide settings. `EXPLAIN SELECT ...` and `EXPLAIN ANALYZE
  /// SELECT ...` are handled here too: both return the plan as a one-column
  /// "QUERY PLAN" table; ANALYZE actually executes the query and annotates
  /// every operator with its measured rows/batches/wall time.
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = QueryOptions{});

  /// \deprecated Shim over Query(sql, {.breakpoint = callback}).
  [[deprecated(
      "use Query(sql, QueryOptions) with the `breakpoint` field; QueryOptions "
      "is the single per-query knob surface")]]
  Result<QueryResult> QueryInteractive(const std::string& sql,
                                       const BreakpointCallback& callback);

  /// \deprecated Shim over Query(sql, {.cancel = cancel, .breakpoint = cb}).
  [[deprecated(
      "use Query(sql, QueryOptions) with the `cancel` field; QueryOptions is "
      "the single per-query knob surface")]]
  Result<QueryResult> QueryCancellable(const std::string& sql,
                                       CancelToken* cancel,
                                       const BreakpointCallback& callback = nullptr);

  /// EXPLAIN: the optimized plan and, in lazy mode, its Q_f/Q_s split.
  Result<std::string> Explain(const std::string& sql);

  /// Rescans the repository and folds in what changed: new files become
  /// queryable metadata, changed files get fresh F/R rows (their cached
  /// data invalidates via mtime on the next probe), removed files drop out
  /// of F/R so they can never become files of interest again. This is the
  /// e-science reality the paper opens with — "they automatically receive
  /// multiple terabytes of data on a daily basis" — and under ALi it is a
  /// metadata-only operation: only changed/new files get a header parse
  /// (unchanged files keep their catalog rows), dispatched as parallel
  /// tasks on `stage1_threads` workers with bit-identical results at any
  /// worker count. A sim/wall deadline set via `.timeout`/the runtime
  /// setters governs the scan too: it stops admitting header parses on
  /// expiry and returns a deterministic partial refresh (`is_partial`,
  /// `files_skipped_deadline`). Eager mode would need a data reload and
  /// returns NotImplemented.
  Result<RefreshStats> Refresh();

  /// Derives GAPS/OVERLAPS tables from the record metadata (paper §5's
  /// "analyzed data" kind of derived metadata) and registers them as
  /// queryable metadata tables. Re-run after Refresh() to update them.
  Result<CoverageStats> AnalyzeCoverage() {
    return dex::AnalyzeCoverage(catalog_.get());
  }

  /// Evicts the buffer pool — the next query runs "cold", as after a server
  /// restart with all buffers flushed.
  void FlushBuffers() { disk_->FlushAll(); }

  // -- Resource governance (runtime knobs; see TwoStageOptions) -----------
  /// Per-query simulated-time deadline (0 = off). Shell: `.timeout`.
  void set_sim_deadline_nanos(uint64_t nanos);
  /// Per-query wall-clock deadline (0 = off).
  void set_wall_deadline_nanos(uint64_t nanos);
  /// Database-wide memory budget in bytes (0 = unlimited). Shell: `.memlimit`.
  void set_memory_budget_bytes(uint64_t bytes);
  /// Deadline/budget exhaustion policy (default kPartialResults).
  void set_on_resource_exhausted(OnResourceExhausted policy);

  // -- Introspection ------------------------------------------------------
  const OpenStats& open_stats() const { return open_stats_; }
  /// The database-wide budget mounted partial tables and cache entries
  /// reserve against (tracks usage even when unlimited).
  MemoryBudget* memory_budget() { return memory_budget_.get(); }
  Catalog* catalog() { return catalog_.get(); }
  SimDisk* disk() { return disk_.get(); }
  CacheManager* cache() { return cache_.get(); }
  FileRegistry* registry() { return registry_.get(); }
  DerivedMetadata* derived_metadata() { return derived_.get(); }
  FormatAdapter* format() { return format_.get(); }
  const DatabaseOptions& options() const { return options_; }

 private:
  explicit Database(DatabaseOptions options);

  Result<QueryResult> RunQuery(const std::string& sql,
                               const QueryOptions& options,
                               PlanProfiler* profiler = nullptr);

  /// EXPLAIN ANALYZE body: runs `sql` under a profiler and replaces the
  /// result table with the annotated plan rendering.
  Result<QueryResult> RunExplainAnalyze(const std::string& sql,
                                        const QueryOptions& options);

  /// Rebuilds the QUARANTINE metadata table if registry health changed.
  Status SyncQuarantineTable();

  DatabaseOptions options_;
  std::string repo_root_;
  std::shared_ptr<FormatAdapter> format_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<FileRegistry> registry_;
  std::unique_ptr<CacheManager> cache_;
  // Database-wide: outlives any one query because cache entries keep their
  // reservations between queries. Created before cache_ is used.
  std::unique_ptr<MemoryBudget> memory_budget_;
  std::unique_ptr<DerivedMetadata> derived_;
  std::unique_ptr<Mounter> mounter_;
  std::unique_ptr<TwoStageExecutor> two_stage_;
  // Stage-1 scan driver, shared by Open() and every Refresh() (keeps its
  // worker pool warm between refreshes).
  std::unique_ptr<Stage1Scanner> stage1_;
  OpenStats open_stats_;
  // Registry health version the QUARANTINE metadata table last reflected.
  uint64_t quarantine_table_version_ = 0;
};

}  // namespace dex

#endif  // DEX_CORE_DATABASE_H_
