#include "core/eager_loader.h"

#include <chrono>

#include "core/seismic_schema.h"
#include "mseed/reader.h"

namespace dex {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<EagerLoadStats> EagerLoader::LoadAll(const mseed::ScanResult& scan,
                                            Catalog* catalog,
                                            FileRegistry* registry,
                                            FormatAdapter* format,
                                            bool build_indexes) {
  EagerLoadStats stats;
  stats.repo_bytes = scan.total_bytes;
  SimDisk* disk = catalog->disk();
  const uint64_t sim0 = disk->stats().sim_nanos;

  // Metadata tables (also loaded in Ei, trivially small next to D).
  const uint64_t t0 = NowNanos();
  DEX_ASSIGN_OR_RETURN(TablePtr f_table, BuildFileTable(scan));
  DEX_ASSIGN_OR_RETURN(TablePtr r_table, BuildRecordTable(scan));
  stats.scan_nanos = NowNanos() - t0;
  DEX_RETURN_NOT_OK(catalog->AddTable(f_table, TableKind::kMetadata));
  DEX_RETURN_NOT_OK(catalog->AddTable(r_table, TableKind::kMetadata));
  DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kFileTableName));
  DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kRecordTableName));

  // Actual data: read + decompress + explicitly materialize every sample.
  const uint64_t t1 = NowNanos();
  auto d_table = std::make_shared<Table>(kDataTableName, MakeDataSchema());
  for (const mseed::FileMeta& file : scan.files) {
    // Reading the repository charges the simulated medium.
    DEX_RETURN_NOT_OK(registry->ChargeFileRead(file.uri));
    DEX_ASSIGN_OR_RETURN(std::vector<mseed::DecodedRecord> records,
                         format->ReadAllRecords(file.uri));
    for (size_t i = 0; i < records.size(); ++i) {
      DEX_RETURN_NOT_OK(AppendSamplesToDataTable(
          file.uri, static_cast<int64_t>(i), records[i], d_table.get()));
    }
  }
  stats.rows_loaded = d_table->num_rows();
  DEX_RETURN_NOT_OK(catalog->AddTable(d_table, TableKind::kActual));
  DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kDataTableName));
  stats.load_nanos = NowNanos() - t1;
  stats.db_bytes = f_table->ByteSize() + r_table->ByteSize() + d_table->ByteSize();

  if (build_indexes) {
    const uint64_t t2 = NowNanos();
    DEX_RETURN_NOT_OK(catalog->BuildIndex(kFileTableName, {"uri"}, "F_pk"));
    DEX_RETURN_NOT_OK(
        catalog->BuildIndex(kRecordTableName, {"uri", "record_id"}, "R_pk"));
    DEX_RETURN_NOT_OK(catalog->BuildIndex(kRecordTableName, {"uri"}, "R_fk_F"));
    DEX_RETURN_NOT_OK(
        catalog->BuildIndex(kDataTableName, {"uri", "record_id"}, "D_fk_R"));
    stats.index_nanos = NowNanos() - t2;
    stats.index_bytes = catalog->TotalIndexBytes();
  }
  stats.sim_io_nanos = disk->stats().sim_nanos - sim0;
  return stats;
}

}  // namespace dex
