#ifndef DEX_CORE_METADATA_SNAPSHOT_H_
#define DEX_CORE_METADATA_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/format_adapter.h"
#include "mseed/scanner.h"

namespace dex {

/// Persistent metadata catalog ("instant-on", after the author's companion
/// paper: Kargin et al., "Instant-On Scientific Data Warehouses — Lazy ETL
/// for Data-Intensive Research", BIRTE 2012).
///
/// ALi already avoids loading actual data; the remaining up-front cost is
/// scanning every file's headers at Open(). A snapshot amortizes that across
/// sessions: metadata is saved once, and later opens only stat() files,
/// re-scanning just the ones whose (size, mtime) changed.

/// \brief Writes `scan` to `path` in a compact versioned binary form.
Status SaveSnapshot(const mseed::ScanResult& scan, const std::string& path);

/// \brief Reads a snapshot written by SaveSnapshot. Corruption (bad magic,
/// truncation, count mismatches) is detected and reported.
Result<mseed::ScanResult> LoadSnapshot(const std::string& path);

/// \brief Statistics of a reconciliation pass.
struct ReconcileStats {
  size_t files_reused = 0;     // metadata taken from the snapshot
  size_t files_rescanned = 0;  // changed or new: headers parsed again
  size_t files_dropped = 0;    // in the snapshot but gone from disk
  std::vector<std::string> rescanned_uris;  // the files actually touched
};

/// \brief Produces current metadata for `root` using `baseline` (a previous
/// scan, e.g. from a snapshot) wherever files are unchanged, re-scanning
/// only changed/new files through `format`.
Result<mseed::ScanResult> ReconcileScan(const std::string& root,
                                        FormatAdapter* format,
                                        const mseed::ScanResult& baseline,
                                        ReconcileStats* stats);

}  // namespace dex

#endif  // DEX_CORE_METADATA_SNAPSHOT_H_
