#ifndef DEX_CORE_PLAN_SPLITTER_H_
#define DEX_CORE_PLAN_SPLITTER_H_

#include "engine/logical_plan.h"
#include "storage/catalog.h"

namespace dex {

/// \brief Outcome of decomposing Q into Q_f ⋈ Q_s (paper §3).
struct SplitResult {
  /// The full plan. When a split happened, a StageBreak node marks the root
  /// of Q_f inside it; Q_s is everything else.
  PlanPtr plan;
  /// The metadata branch Q_f (the StageBreak's child), or nullptr when the
  /// query does not need a split.
  PlanPtr qf;
  bool references_actual = false;
  bool references_metadata = false;
};

/// \brief Decomposes an analyzed query plan for two-stage execution.
///
/// Applies the paper's additional plan rewrite rules — e.g.
///   m1 ⋈ (a1 ⋈ m2) → a1 ⋈ (m1 ⋈ m2)
/// — using join associativity/commutativity to collect all metadata-table
/// joins into the highest branch whose leaves are all metadata scans (Q_f),
/// rewriting any join order into the pattern
///   a1 ⋈ (a2 ⋈ (... (ay ⋈ (m1 ⋈ (m2 ⋈ (... ⋈ mx))))))
/// and marking Q_f with a StageBreak node. Queries that reference only
/// metadata or only actual data are returned unsplit ("it is not needed to
/// form Q_f and Q_s, unless the query refers to both").
///
/// The input must be analyzed; the output is re-analyzed.
Result<SplitResult> SplitPlan(const PlanPtr& plan, const Catalog& catalog);

}  // namespace dex

#endif  // DEX_CORE_PLAN_SPLITTER_H_
