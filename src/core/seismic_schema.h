#ifndef DEX_CORE_SEISMIC_SCHEMA_H_
#define DEX_CORE_SEISMIC_SCHEMA_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "mseed/reader.h"
#include "mseed/scanner.h"
#include "storage/table.h"

namespace dex {

/// The paper's normalized schema (§3/§4): two metadata tables and one actual
/// data table.
///   F(uri, network, station, channel, location, size_bytes, mtime, n_records)
///   R(uri, record_id, start_time, end_time, sample_rate, n_samples)
///   D(uri, record_id, sample_time, sample_value)
/// M = {F, R}, A = {D}.
inline constexpr const char* kFileTableName = "F";
inline constexpr const char* kRecordTableName = "R";
inline constexpr const char* kDataTableName = "D";
/// Derived-metadata table (§5 "Extending metadata"); member of M.
inline constexpr const char* kDerivedTableName = "DM";

SchemaPtr MakeFileSchema();
SchemaPtr MakeRecordSchema();
SchemaPtr MakeDataSchema();
SchemaPtr MakeDerivedSchema();

/// \brief Builds the F table from scanned file metadata.
Result<TablePtr> BuildFileTable(const mseed::ScanResult& scan);

/// \brief Builds the R table from scanned record metadata.
Result<TablePtr> BuildRecordTable(const mseed::ScanResult& scan);

/// \brief Inverse of BuildFileTable/BuildRecordTable: reconstructs a
/// ScanResult from the catalog's current F and R tables — the baseline a
/// delta Refresh() reuses for unchanged files. Record payload positions
/// (data_offset/data_bytes) are not part of the schema and come back as 0;
/// nothing downstream of Open() consumes them (mounts re-read files through
/// the format adapter).
mseed::ScanResult ScanResultFromTables(const Table& f_table,
                                       const Table& r_table);

/// \brief Appends one decoded record's samples to a D-schema table.
/// `record_id` is the record's index within its file.
Status AppendSamplesToDataTable(const std::string& uri, int64_t record_id,
                                const mseed::DecodedRecord& record,
                                Table* data_table);

}  // namespace dex

#endif  // DEX_CORE_SEISMIC_SCHEMA_H_
