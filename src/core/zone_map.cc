#include "core/zone_map.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/fnv.h"
#include "common/logging.h"
#include "io/file_io.h"
#include "obs/flight_recorder.h"

namespace dex {

namespace {

constexpr char kMagic[8] = {'D', 'X', 'Z', 'M', '0', '0', '0', '1'};
constexpr uint64_t kMaxFiles = 1ull << 24;
constexpr uint64_t kMaxRecordsPerFile = 1ull << 24;
constexpr uint64_t kMaxFramesPerRecord = 1ull << 20;
constexpr uint64_t kMaxStringBytes = 1ull << 20;

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

/// Bounds-checked sequential reader over the persisted bytes. Every getter
/// fails with Corruption on overrun; the loader discards everything on the
/// first non-OK.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  size_t pos() const { return pos_; }

  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return Status::Corruption("zone map truncated");
    }
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<int64_t> I64() {
    DEX_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }

  Result<double> F64() {
    DEX_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  Result<std::string> Str() {
    DEX_ASSIGN_OR_RETURN(uint64_t len, U64());
    if (len > kMaxStringBytes || pos_ + len > bytes_.size()) {
      return Status::Corruption("zone map string overruns file");
    }
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

/// The pruner handed to the reader: a snapshot of one file's zones taken
/// under the store mutex, so concurrent zone updates (other sessions
/// mounting the same uri) never race the decode loop.
class SnapshotPruner : public mseed::RecordPruner {
 public:
  SnapshotPruner(std::map<int64_t, ZoneMapStore::RecordZone> zones, double lo,
                 double hi, bool record_level, bool frame_level, bool harvest)
      : zones_(std::move(zones)),
        lo_(lo),
        hi_(hi),
        record_level_(record_level),
        frame_level_(frame_level),
        harvest_(harvest) {}

  mseed::RecordDecodePlan Plan(size_t index,
                               const mseed::RecordHeader& header) override {
    mseed::RecordDecodePlan plan;
    auto it = zones_.find(static_cast<int64_t>(index));
    if (it == zones_.end()) {
      // Unknown record: decode fully, harvesting frame stats so the next
      // query over this file can prune.
      plan.harvest = harvest_;
      return plan;
    }
    const ZoneMapStore::RecordZone& zone = it->second;
    if (record_level_ && zone.values.count > 0 &&
        (zone.values.max < lo_ || zone.values.min > hi_)) {
      plan.skip_record = true;
      return plan;
    }
    if (frame_level_ && !zone.frames.empty() && header.encoding == 1) {
      plan.frames = &zone.frames;  // outlives the read: we own the snapshot
      plan.keep.resize(zone.frames.size());
      bool all = true;
      for (size_t f = 0; f < zone.frames.size(); ++f) {
        const mseed::Steim1::FrameStat& fs = zone.frames[f];
        const bool keep = fs.count > 0 && static_cast<double>(fs.max) >= lo_ &&
                          static_cast<double>(fs.min) <= hi_;
        plan.keep[f] = keep;
        all = all && keep;
      }
      if (all) {
        // Every frame may match: a plain full decode is cheaper than the
        // selective path (no chain verification bookkeeping).
        plan.frames = nullptr;
        plan.keep.clear();
      }
    }
    return plan;
  }

 private:
  const std::map<int64_t, ZoneMapStore::RecordZone> zones_;
  const double lo_, hi_;
  const bool record_level_, frame_level_, harvest_;
};

}  // namespace

void ZoneMapStore::FileScanned(const mseed::FileMeta& file,
                               const std::vector<mseed::RecordMeta>& records) {
  (void)records;
  size_t dropped_records = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(file.uri);
    if (it == files_.end()) {
      FileZones& fz = files_[file.uri];
      fz.size_bytes = file.size_bytes;
      fz.mtime_ms = file.mtime_ms;
      fz.expected_records = file.num_records;
      return;
    }
    FileZones& fz = it->second;
    if (fz.size_bytes != file.size_bytes || fz.mtime_ms != file.mtime_ms) {
      // The file was rewritten since the zones were harvested: they describe
      // bytes that no longer exist. Drop them (safety ladder step 1).
      if (!fz.records.empty()) {
        dropped_records = fz.records.size();
        ++stale_dropped_;
        dirty_ = true;
      }
      fz.records.clear();
      fz.size_bytes = file.size_bytes;
      fz.mtime_ms = file.mtime_ms;
    }
    fz.expected_records = file.num_records;
  }
  if (dropped_records > 0) {
    // Flight-record the drop outside mu_: scan delivery is single-threaded
    // and in enumeration order, so the event stream stays deterministic.
    obs::FlightEvent e;
    e.kind = "zonemap_stale";
    e.detail = "'" + file.uri + "' rewritten; dropped " +
               std::to_string(dropped_records) + " record zones";
    obs::FlightRecorder::Global().Record(std::move(e));
  }
}

Status ZoneMapStore::RecordMounted(
    const std::string& uri, int64_t record_id,
    const mseed::RecordHeader& header, const RecordValueStats& values,
    const std::vector<mseed::Steim1::FrameStat>* frames,
    uint32_t expected_records) {
  (void)header;
  std::lock_guard<std::mutex> lock(mu_);
  FileZones& fz = files_[uri];
  if (fz.expected_records == 0) fz.expected_records = expected_records;
  auto it = fz.records.find(record_id);
  if (it != fz.records.end()) {
    // Re-mount of a known record: only upgrade (add frames a previous
    // harvest-free mount did not collect). Values are re-derived from the
    // same bytes, so first write wins.
    if (it->second.frames.empty() && frames != nullptr && !frames->empty()) {
      it->second.frames = *frames;
      dirty_ = true;
    }
    return Status::OK();
  }
  RecordZone zone;
  zone.values = values;
  if (frames != nullptr) zone.frames = *frames;
  fz.records.emplace(record_id, std::move(zone));
  dirty_ = true;
  return Status::OK();
}

std::unique_ptr<mseed::RecordPruner> ZoneMapStore::MakePruner(
    const std::string& uri, double lo, double hi, bool record_level,
    bool frame_level, bool harvest) const {
  std::map<int64_t, RecordZone> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(uri);
    if (it != files_.end()) snapshot = it->second.records;
  }
  if (snapshot.empty() && !harvest) return nullptr;
  return std::make_unique<SnapshotPruner>(std::move(snapshot), lo, hi,
                                          record_level, frame_level, harvest);
}

bool ZoneMapStore::GetRecordStats(const std::string& uri, int64_t record_id,
                                  RecordValueStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(uri);
  if (it == files_.end()) return false;
  auto rit = it->second.records.find(record_id);
  if (rit == it->second.records.end()) return false;
  *out = rit->second.values;
  return true;
}

bool ZoneMapStore::HasCompleteFile(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(uri);
  if (it == files_.end()) return false;
  const FileZones& fz = it->second;
  return fz.expected_records > 0 && fz.records.size() == fz.expected_records;
}

Status ZoneMapStore::SaveIfDirty(const std::string& path) {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dirty_) return Status::OK();
    out.append(kMagic, sizeof(kMagic));
    // Deterministic bytes: uris sorted, records already ordered by id.
    std::vector<const std::pair<const std::string, FileZones>*> entries;
    entries.reserve(files_.size());
    for (const auto& kv : files_) {
      if (!kv.second.records.empty()) entries.push_back(&kv);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    PutU64(&out, entries.size());
    for (const auto* kv : entries) {
      const FileZones& fz = kv->second;
      PutStr(&out, kv->first);
      PutU64(&out, fz.size_bytes);
      PutI64(&out, fz.mtime_ms);
      PutU64(&out, fz.expected_records);
      PutU64(&out, fz.records.size());
      for (const auto& rz : fz.records) {
        PutI64(&out, rz.first);
        PutF64(&out, rz.second.values.min);
        PutF64(&out, rz.second.values.max);
        PutF64(&out, rz.second.values.sum);
        PutU64(&out, rz.second.values.count);
        PutU64(&out, rz.second.frames.size());
        for (const mseed::Steim1::FrameStat& fs : rz.second.frames) {
          PutU64(&out, fs.first_sample);
          PutU64(&out, fs.count);
          PutI64(&out, fs.min);
          PutI64(&out, fs.max);
          PutI64(&out, fs.entry);
        }
      }
    }
    PutU64(&out, Fnv1a(out.data(), out.size()));
    dirty_ = false;
  }
  Status s = WriteFileAtomic(path, out);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ = true;  // retry on the next save
  }
  return s;
}

Status ZoneMapStore::Load(const std::string& path) {
  std::string bytes;
  Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) return Status::OK();  // cold start: nothing persisted yet

  // Parse into a staging map first; only commit when the whole file —
  // including the checksum footer — validated. Any violation discards
  // everything (safety ladder step 2): zones are hints, a partial restore
  // is not worth reasoning about.
  std::unordered_map<std::string, FileZones> staged;
  uint64_t records_loaded = 0;
  Status s = [&]() -> Status {
    if (bytes.size() < sizeof(kMagic) + 8 ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::Corruption("zone map magic mismatch");
    }
    const uint64_t want = Fnv1a(bytes.data(), bytes.size() - 8);
    uint64_t got;
    std::memcpy(&got, bytes.data() + bytes.size() - 8, 8);
    if (want != got) return Status::Corruption("zone map checksum mismatch");

    const std::string payload =
        bytes.substr(sizeof(kMagic), bytes.size() - sizeof(kMagic) - 8);
    Cursor body(payload);
    DEX_ASSIGN_OR_RETURN(uint64_t num_files, body.U64());
    if (num_files > kMaxFiles) {
      return Status::Corruption("implausible zone map file count");
    }
    for (uint64_t i = 0; i < num_files; ++i) {
      DEX_ASSIGN_OR_RETURN(std::string uri, body.Str());
      FileZones fz;
      DEX_ASSIGN_OR_RETURN(fz.size_bytes, body.U64());
      DEX_ASSIGN_OR_RETURN(fz.mtime_ms, body.I64());
      DEX_ASSIGN_OR_RETURN(uint64_t expected, body.U64());
      fz.expected_records = static_cast<uint32_t>(expected);
      DEX_ASSIGN_OR_RETURN(uint64_t num_records, body.U64());
      if (num_records > kMaxRecordsPerFile) {
        return Status::Corruption("implausible zone map record count");
      }
      for (uint64_t r = 0; r < num_records; ++r) {
        DEX_ASSIGN_OR_RETURN(int64_t record_id, body.I64());
        RecordZone zone;
        DEX_ASSIGN_OR_RETURN(zone.values.min, body.F64());
        DEX_ASSIGN_OR_RETURN(zone.values.max, body.F64());
        DEX_ASSIGN_OR_RETURN(zone.values.sum, body.F64());
        DEX_ASSIGN_OR_RETURN(zone.values.count, body.U64());
        DEX_ASSIGN_OR_RETURN(uint64_t num_frames, body.U64());
        if (num_frames > kMaxFramesPerRecord) {
          return Status::Corruption("implausible zone map frame count");
        }
        zone.frames.resize(num_frames);
        for (uint64_t f = 0; f < num_frames; ++f) {
          mseed::Steim1::FrameStat& fs = zone.frames[f];
          DEX_ASSIGN_OR_RETURN(uint64_t first, body.U64());
          DEX_ASSIGN_OR_RETURN(uint64_t count, body.U64());
          DEX_ASSIGN_OR_RETURN(int64_t mn, body.I64());
          DEX_ASSIGN_OR_RETURN(int64_t mx, body.I64());
          DEX_ASSIGN_OR_RETURN(int64_t entry, body.I64());
          fs.first_sample = static_cast<uint32_t>(first);
          fs.count = static_cast<uint32_t>(count);
          fs.min = static_cast<int32_t>(mn);
          fs.max = static_cast<int32_t>(mx);
          fs.entry = static_cast<int32_t>(entry);
        }
        fz.records.emplace(record_id, std::move(zone));
        ++records_loaded;
      }
      staged.emplace(std::move(uri), std::move(fz));
    }
    return Status::OK();
  }();

  if (!s.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++corrupt_discarded_;
    }
    DEX_LOG(Warning) << "discarding persisted zone maps (" << path
                     << "): " << s.ToString();
    // A corrupt persisted set is a control-plane decision worth replaying:
    // the next queries silently run unpruned, and "why was this cold run
    // slow?" should be answerable from the flight ring.
    obs::FlightEvent e;
    e.kind = "zonemap_discard";
    e.detail = "'" + path + "' discarded: " + s.ToString();
    obs::FlightRecorder::Global().Record(std::move(e));
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(mu_);
  files_ = std::move(staged);
  persisted_loads_ = files_.size();
  dirty_ = false;
  (void)records_loaded;
  return Status::OK();
}

ZoneMapStore::Stats ZoneMapStore::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats st;
  for (const auto& kv : files_) {
    if (kv.second.records.empty()) continue;
    ++st.files;
    st.records += kv.second.records.size();
    for (const auto& rz : kv.second.records) {
      st.frames += rz.second.frames.size();
    }
  }
  st.persisted_loads = persisted_loads_;
  st.stale_dropped = stale_dropped_;
  st.corrupt_discarded = corrupt_discarded_;
  return st;
}

}  // namespace dex
