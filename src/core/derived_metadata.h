#ifndef DEX_CORE_DERIVED_METADATA_H_
#define DEX_CORE_DERIVED_METADATA_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/stats_collector.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace dex {

/// \brief Derived metadata collected "as a side-effect of ALi" (paper §5) —
/// a StatsCollector fed by the mounter through the unified harvesting seam.
///
/// Every mounted record contributes per-record summary statistics
/// (min/max/mean/sum/count of sample values) to the DM metadata table —
/// without the explorer noticing and without a separate pass over the data.
/// Two uses are implemented:
///  - DM is a regular metadata table in the catalog, so later explorative
///    queries can SELECT from it (and it can even join into Q_f);
///  - value-range pruning (PruningOptions::file_level): when a query's
///    pushed-down selection bounds D.sample_value, files whose complete
///    per-record stats exclude the range are skipped before mounting.
///
/// The mounter computes each record's RecordValueStats once (from decoded
/// samples, or synthesized from the record's zone map when pruning skipped
/// the decode) and broadcasts them, so DM's *content* is invariant under
/// zone-map pruning.
///
/// Thread-safe: concurrent mount tasks may RecordMounted simultaneously.
/// Under parallel mounting the *row order* of the DM table depends on task
/// interleaving; the per-file min/max aggregates (what pruning reads) and
/// the row *set* do not. Queries over DM never run concurrently with mount
/// tasks — the parallel premount completes before the plan executes.
class DerivedMetadata : public StatsCollector {
 public:
  /// Registers the DM table in `catalog` (kind kMetadata).
  static Result<std::unique_ptr<DerivedMetadata>> Create(Catalog* catalog);

  std::string name() const override { return "derived"; }

  /// Records stats for one mounted record. Idempotent per (uri, record_id).
  /// `expected_records` is the file's record count from the repository scan
  /// (pruning activates only once all records of a file have been seen).
  Status RecordMounted(const std::string& uri, int64_t record_id,
                       const mseed::RecordHeader& header,
                       const RecordValueStats& values,
                       const std::vector<mseed::Steim1::FrameStat>* frames,
                       uint32_t expected_records) override;

  /// True when summary stats cover every record of `uri`.
  bool HasCompleteFile(const std::string& uri) const;

  /// False only when it is *provable* from complete stats that no sample of
  /// `uri` lies in [lo, hi]. Unknown files return true (must mount).
  bool MayMatchValueRange(const std::string& uri, double lo, double hi) const;

  /// The queryable DM table.
  const TablePtr& table() const { return table_; }

  size_t num_records_covered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return record_stats_.size();
  }

 private:
  explicit DerivedMetadata(TablePtr table) : table_(std::move(table)) {}

  bool HasCompleteFileLocked(const std::string& uri) const;

  struct FileStats {
    uint32_t records_seen = 0;
    uint32_t expected_records = 0;
    double min_value = 0;
    double max_value = 0;
  };

  mutable std::mutex mu_;
  TablePtr table_;
  std::unordered_map<std::string, FileStats> file_stats_;
  // "uri\0record_id" -> present marker for idempotency.
  std::unordered_map<std::string, bool> record_stats_;
};

}  // namespace dex

#endif  // DEX_CORE_DERIVED_METADATA_H_
