#include "core/coverage.h"

#include <algorithm>

#include "core/seismic_schema.h"

namespace dex {

namespace {

SchemaPtr MakeCoverageSchema(const char* table, const char* start_name,
                             const char* end_name) {
  auto s = std::make_shared<Schema>();
  const std::string q = table;
  s->AddField({"station", DataType::kString, q});
  s->AddField({"channel", DataType::kString, q});
  s->AddField({start_name, DataType::kTimestamp, q});
  s->AddField({end_name, DataType::kTimestamp, q});
  s->AddField({"duration_ms", DataType::kInt64, q});
  return s;
}

}  // namespace

SchemaPtr MakeGapsSchema() {
  return MakeCoverageSchema(kGapsTableName, "gap_start", "gap_end");
}

SchemaPtr MakeOverlapsSchema() {
  return MakeCoverageSchema(kOverlapsTableName, "overlap_start", "overlap_end");
}

void CoverageCollector::ScanStarted(const std::string& root) {
  (void)root;
  // Each scan pass redelivers the whole repository (reused files included),
  // so the previous pass's picture is simply replaced.
  std::lock_guard<std::mutex> lock(mu_);
  streams_.clear();
}

void CoverageCollector::FileScanned(
    const mseed::FileMeta& file,
    const std::vector<mseed::RecordMeta>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& windows = streams_[{file.station, file.channel}];
  for (const mseed::RecordMeta& r : records) {
    windows.push_back({r.start_time_ms, r.end_time_ms, r.sample_rate_hz});
  }
}

Result<CoverageStats> CoverageCollector::Publish(Catalog* catalog) const {
  // Snapshot under the lock; sort and derive outside it.
  std::map<std::pair<std::string, std::string>, std::vector<RecordWindow>>
      streams;
  {
    std::lock_guard<std::mutex> lock(mu_);
    streams = streams_;
  }

  auto gaps = std::make_shared<Table>(kGapsTableName, MakeGapsSchema());
  auto overlaps =
      std::make_shared<Table>(kOverlapsTableName, MakeOverlapsSchema());
  CoverageStats stats;
  stats.streams = streams.size();
  for (auto& [stream, windows] : streams) {
    if (windows.empty()) continue;
    std::sort(windows.begin(), windows.end(),
              [](const RecordWindow& a, const RecordWindow& b) {
                return a.start_ms < b.start_ms;
              });
    int64_t covered_until = windows.front().end_ms;
    double last_rate = windows.front().sample_rate_hz;
    for (size_t i = 1; i < windows.size(); ++i) {
      const RecordWindow& w = windows[i];
      // One sample interval of slack: consecutive records are contiguous
      // when the next starts one interval after the previous record's last
      // sample.
      const int64_t interval_ms =
          last_rate > 0 ? static_cast<int64_t>(1000.0 / last_rate) : 0;
      if (w.start_ms > covered_until + interval_ms) {
        const int64_t gap_start = covered_until + interval_ms;
        const int64_t duration = w.start_ms - gap_start;
        DEX_RETURN_NOT_OK(gaps->AppendRow(
            {Value::String(stream.first), Value::String(stream.second),
             Value::Timestamp(gap_start), Value::Timestamp(w.start_ms),
             Value::Int64(duration)}));
        ++stats.gaps;
        stats.total_gap_ms += duration;
      } else if (w.start_ms <= covered_until && w.end_ms >= w.start_ms) {
        const int64_t overlap_end = std::min(covered_until, w.end_ms);
        if (overlap_end >= w.start_ms) {
          const int64_t duration = overlap_end - w.start_ms;
          DEX_RETURN_NOT_OK(overlaps->AppendRow(
              {Value::String(stream.first), Value::String(stream.second),
               Value::Timestamp(w.start_ms), Value::Timestamp(overlap_end),
               Value::Int64(duration)}));
          ++stats.overlaps;
          stats.total_overlap_ms += duration;
        }
      }
      covered_until = std::max(covered_until, w.end_ms);
      last_rate = w.sample_rate_hz;
    }
  }

  // Register (or refresh) the results as queryable metadata.
  if (catalog->HasTable(kGapsTableName)) {
    DEX_RETURN_NOT_OK(catalog->ReplaceTable(gaps));
    DEX_RETURN_NOT_OK(catalog->ReplaceTable(overlaps));
  } else {
    DEX_RETURN_NOT_OK(catalog->AddTable(gaps, TableKind::kMetadata));
    DEX_RETURN_NOT_OK(catalog->AddTable(overlaps, TableKind::kMetadata));
    DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kGapsTableName));
    DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kOverlapsTableName));
  }
  return stats;
}

}  // namespace dex
