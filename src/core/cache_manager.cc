#include "core/cache_manager.h"

#include <vector>

#include "obs/trace.h"

namespace dex {

bool CacheManager::TupleEntryServes(const Entry& entry,
                                    const std::string& predicate_repr,
                                    const CachedWindow* window) const {
  if (entry.predicate_repr == predicate_repr) return true;
  // Window subsumption: the cached tuples cover [lo, hi]; any query window
  // inside it can be served (its narrower filter re-applies on top).
  return window != nullptr && window->pure && entry.window.pure &&
         entry.window.lo <= window->lo && entry.window.hi >= window->hi;
}

bool CacheManager::Probe(const std::string& uri,
                         const std::string& predicate_repr,
                         int64_t current_mtime_ms, const CachedWindow* window) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone) {
    ++stats_.misses;
    return false;
  }
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  Entry& entry = it->second;
  if (entry.mtime_ms != current_mtime_ms) {
    // The file changed on disk; cached data is stale. The paper notes the
    // discard-always design "inherently ensures up-to-date data" — with
    // caching we must invalidate explicitly.
    ++stats_.invalidations;
    ++stats_.misses;
    Erase(uri);
    return false;
  }
  if (options_.granularity == CacheGranularity::kTuple &&
      !TupleEntryServes(entry, predicate_repr, window)) {
    // Tuple-granular entries only cover the selection they were filtered
    // by (or a window containing the query's); "we need to mount the whole
    // file even if there is one required tuple missing in the cache".
    ++stats_.misses;
    return false;
  }
  if (options_.granularity == CacheGranularity::kFile &&
      !entry.predicate_repr.empty()) {
    // A tuple-level entry can't serve file-granular expectations.
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  obs::Tracer::Instant("cache_hit", "cache", {{"uri", uri}});
  return true;
}

bool CacheManager::WouldHit(const std::string& uri,
                            const std::string& predicate_repr,
                            int64_t current_mtime_ms,
                            const CachedWindow* window) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone) return false;
  auto it = entries_.find(uri);
  if (it == entries_.end()) return false;
  const Entry& entry = it->second;
  if (entry.mtime_ms != current_mtime_ms) return false;
  if (options_.granularity == CacheGranularity::kTuple) {
    return TupleEntryServes(entry, predicate_repr, window);
  }
  return entry.predicate_repr.empty();
}

Result<TablePtr> CacheManager::Lookup(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    return Status::NotFound("no cached data for '" + uri + "'");
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.data;
}

void CacheManager::Insert(const std::string& uri,
                          const std::string& predicate_repr, int64_t mtime_ms,
                          TablePtr data, const CachedWindow* window) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone || data == nullptr) return;
  if (options_.granularity == CacheGranularity::kFile && !predicate_repr.empty()) {
    // File-granular cache stores whole files only; filtered mounts are not
    // cacheable under this configuration.
    return;
  }
  Erase(uri);
  Entry entry;
  entry.bytes = data->ByteSize();
  if (budget_ != nullptr && !budget_->TryReserve(entry.bytes)) {
    // Make room at the expense of colder entries before giving up; the
    // cache is best-effort, so a refused insertion never fails the query.
    (void)EvictUnpinnedLocked(entry.bytes);
    if (!budget_->TryReserve(entry.bytes)) {
      ++stats_.budget_rejections;
      obs::Tracer::Instant("cache_reject", "cache", {{"uri", uri}});
      return;
    }
  }
  entry.data = std::move(data);
  entry.predicate_repr = predicate_repr;
  if (window != nullptr) entry.window = *window;
  entry.mtime_ms = mtime_ms;
  lru_.push_front(uri);
  entry.lru_it = lru_.begin();
  bytes_used_ += entry.bytes;
  entries_.emplace(uri, std::move(entry));
  ++stats_.insertions;
  EvictIfNeeded();
}

void CacheManager::EvictIfNeeded() {
  if (options_.policy != CachePolicy::kLru) return;
  // Collect victims tail-first, skipping pinned entries (their data is
  // planned into a running query's cache-scan branches).
  std::vector<std::string> victims;
  uint64_t would_free = 0;
  for (auto it = lru_.rbegin();
       it != lru_.rend() && bytes_used_ - would_free > options_.capacity_bytes;
       ++it) {
    const Entry& entry = entries_.at(*it);
    if (entry.pins > 0) continue;
    victims.push_back(*it);
    would_free += entry.bytes;
  }
  for (const std::string& victim : victims) {
    obs::Tracer::Instant("cache_evict", "cache", {{"uri", victim}});
    Erase(victim);
    ++stats_.evictions;
  }
}

size_t CacheManager::EvictUnpinnedLocked(uint64_t min_bytes) {
  std::vector<std::string> victims;
  uint64_t would_free = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend() && would_free < min_bytes;
       ++it) {
    const Entry& entry = entries_.at(*it);
    if (entry.pins > 0) continue;
    victims.push_back(*it);
    would_free += entry.bytes;
  }
  for (const std::string& victim : victims) {
    obs::Tracer::Instant("cache_evict", "cache",
                         {{"uri", victim}, {"reason", "memory_budget"}});
    Erase(victim);
    ++stats_.evictions;
  }
  return victims.size();
}

size_t CacheManager::EvictUnpinned(uint64_t min_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return EvictUnpinnedLocked(min_bytes);
}

void CacheManager::Pin(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(uri);
  if (it != entries_.end()) ++it->second.pins;
}

void CacheManager::Unpin(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(uri);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

void CacheManager::Erase(const std::string& uri) {
  auto it = entries_.find(uri);
  if (it == entries_.end()) return;
  if (budget_ != nullptr) budget_->Release(it->second.bytes);
  bytes_used_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ != nullptr) budget_->Release(bytes_used_);
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

}  // namespace dex
