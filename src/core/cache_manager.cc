#include "core/cache_manager.h"

#include <vector>

#include "io/file_io.h"
#include "obs/trace.h"

namespace dex {

bool CacheManager::TupleEntryServes(const Entry& entry,
                                    const std::string& predicate_repr,
                                    const CachedWindow* window) const {
  if (entry.predicate_repr == predicate_repr) return true;
  // Window subsumption: the cached tuples cover [lo, hi]; any query window
  // inside it can be served (its narrower filter re-applies on top).
  return window != nullptr && window->pure && entry.window.pure &&
         entry.window.lo <= window->lo && entry.window.hi >= window->hi;
}

bool CacheManager::Probe(const std::string& uri,
                         const std::string& predicate_repr,
                         int64_t current_mtime_ms, const CachedWindow* window) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone) {
    ++stats_.misses;
    return false;
  }
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  Entry& entry = it->second;
  if (entry.mtime_ms != current_mtime_ms) {
    // The file changed on disk; cached data is stale. The paper notes the
    // discard-always design "inherently ensures up-to-date data" — with
    // caching we must invalidate explicitly.
    ++stats_.invalidations;
    ++stats_.misses;
    Erase(uri);
    return false;
  }
  if (options_.granularity == CacheGranularity::kTuple &&
      !TupleEntryServes(entry, predicate_repr, window)) {
    // Tuple-granular entries only cover the selection they were filtered
    // by (or a window containing the query's); "we need to mount the whole
    // file even if there is one required tuple missing in the cache".
    ++stats_.misses;
    return false;
  }
  if (options_.granularity == CacheGranularity::kFile &&
      !entry.predicate_repr.empty()) {
    // A tuple-level entry can't serve file-granular expectations.
    ++stats_.misses;
    return false;
  }
  if (entry.data == nullptr) {
    // Spilled stub: the bytes live only in the durable tier. Promote them
    // back through the full validation ladder before promising a hit.
    switch (ReloadLocked(uri, &entry)) {
      case ReloadResult::kOk:
        break;
      case ReloadResult::kNoBudget:
        // Keep the stub (the data on disk is fine); this query mounts.
        ++stats_.misses;
        return false;
      case ReloadResult::kCorrupt:
        // The durable copy was quarantined-and-deleted underneath us; the
        // stub now points at nothing.
        Erase(uri);
        ++stats_.misses;
        return false;
    }
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  obs::Tracer::Instant("cache_hit", "cache", {{"uri", uri}});
  return true;
}

bool CacheManager::WouldHit(const std::string& uri,
                            const std::string& predicate_repr,
                            int64_t current_mtime_ms,
                            const CachedWindow* window) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone) return false;
  auto it = entries_.find(uri);
  if (it == entries_.end()) return false;
  const Entry& entry = it->second;
  if (entry.mtime_ms != current_mtime_ms) return false;
  if (options_.granularity == CacheGranularity::kTuple) {
    return TupleEntryServes(entry, predicate_repr, window);
  }
  return entry.predicate_repr.empty();
}

Result<TablePtr> CacheManager::Lookup(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(uri);
  if (it == entries_.end()) {
    return Status::NotFound("no cached data for '" + uri + "'");
  }
  if (it->second.data == nullptr) {
    // The entry was spilled between probe and lookup (budget pressure from a
    // concurrent query). Reload; on failure the caller (Mounter::CacheLookup)
    // falls back to mounting the source file, so the query still answers
    // correctly.
    switch (ReloadLocked(uri, &it->second)) {
      case ReloadResult::kOk:
        break;
      case ReloadResult::kNoBudget:
        return Status::NotFound("cached data for '" + uri +
                                "' spilled and budget refuses reload");
      case ReloadResult::kCorrupt:
        Erase(uri);
        return Status::NotFound("cached data for '" + uri +
                                "' quarantined on reload");
    }
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.data;
}

void CacheManager::Insert(const std::string& uri,
                          const std::string& predicate_repr, int64_t mtime_ms,
                          TablePtr data, const CachedWindow* window) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone || data == nullptr) return;
  if (options_.granularity == CacheGranularity::kFile && !predicate_repr.empty()) {
    // File-granular cache stores whole files only; filtered mounts are not
    // cacheable under this configuration.
    return;
  }
  Erase(uri);
  Entry entry;
  entry.bytes = data->ByteSize();
  entry.predicate_repr = predicate_repr;
  if (window != nullptr) entry.window = *window;
  entry.mtime_ms = mtime_ms;
  if (budget_ != nullptr && !budget_->TryReserve(entry.bytes)) {
    // Make room at the expense of colder entries before giving up; the
    // cache is best-effort, so a refused insertion never fails the query.
    (void)EvictUnpinnedLocked(entry.bytes);
    if (!budget_->TryReserve(entry.bytes)) {
      ++stats_.budget_rejections;
      obs::Tracer::Instant("cache_reject", "cache", {{"uri", uri}});
      // No room in memory — but the durable tier has no budget. Persist and
      // keep a stub, so a later (less pressured) query can reload instead of
      // re-mounting.
      if (persistent_ != nullptr &&
          PersistLocked(uri, *data, entry.predicate_repr, entry.window,
                        mtime_ms)) {
        entry.persisted = true;
        ++stats_.spills;
        entries_.emplace(uri, std::move(entry));  // data stays null: a stub
      }
      return;
    }
  }
  if (persistent_ != nullptr) {
    entry.persisted = PersistLocked(uri, *data, entry.predicate_repr,
                                    entry.window, mtime_ms);
  }
  entry.data = std::move(data);
  lru_.push_front(uri);
  entry.lru_it = lru_.begin();
  bytes_used_ += entry.bytes;
  entries_.emplace(uri, std::move(entry));
  ++stats_.insertions;
  EvictIfNeeded();
}

void CacheManager::EvictIfNeeded() {
  if (options_.policy != CachePolicy::kLru) return;
  // Collect victims tail-first, skipping pinned entries (their data is
  // planned into a running query's cache-scan branches).
  std::vector<std::string> victims;
  uint64_t would_free = 0;
  for (auto it = lru_.rbegin();
       it != lru_.rend() && bytes_used_ - would_free > options_.capacity_bytes;
       ++it) {
    const Entry& entry = entries_.at(*it);
    if (entry.pins > 0) continue;
    victims.push_back(*it);
    would_free += entry.bytes;
  }
  for (const std::string& victim : victims) {
    Entry& entry = entries_.at(victim);
    if (entry.persisted) {
      SpillLocked(victim, &entry);  // demote, don't discard: reload is cheap
    } else {
      obs::Tracer::Instant("cache_evict", "cache", {{"uri", victim}});
      Erase(victim);
      ++stats_.evictions;
    }
  }
}

size_t CacheManager::EvictUnpinnedLocked(uint64_t min_bytes) {
  std::vector<std::string> victims;
  uint64_t would_free = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend() && would_free < min_bytes;
       ++it) {
    const Entry& entry = entries_.at(*it);
    if (entry.pins > 0) continue;
    victims.push_back(*it);
    would_free += entry.bytes;
  }
  for (const std::string& victim : victims) {
    Entry& entry = entries_.at(victim);
    if (entry.persisted) {
      SpillLocked(victim, &entry);
    } else {
      obs::Tracer::Instant("cache_evict", "cache",
                           {{"uri", victim}, {"reason", "memory_budget"}});
      Erase(victim);
      ++stats_.evictions;
    }
  }
  return victims.size();
}

size_t CacheManager::EvictUnpinned(uint64_t min_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return EvictUnpinnedLocked(min_bytes);
}

void CacheManager::Pin(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(uri);
  if (it != entries_.end()) ++it->second.pins;
}

void CacheManager::Unpin(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(uri);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

void CacheManager::Erase(const std::string& uri) {
  auto it = entries_.find(uri);
  if (it == entries_.end()) return;
  if (it->second.data != nullptr) {  // stubs hold no memory and no lru slot
    if (budget_ != nullptr) budget_->Release(it->second.bytes);
    bytes_used_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
  }
  // An erased entry is gone for good (invalidated or replaced), so its
  // durable copy must go too — a stale disk file must never outlive the
  // in-memory decision that it is no longer trustworthy.
  if (it->second.persisted && persistent_ != nullptr) {
    persistent_->Remove(uri);
  }
  entries_.erase(it);
}

void CacheManager::SpillLocked(const std::string& uri, Entry* entry) {
  if (budget_ != nullptr) budget_->Release(entry->bytes);
  bytes_used_ -= entry->bytes;
  lru_.erase(entry->lru_it);
  entry->data = nullptr;
  ++stats_.spills;
  obs::Tracer::Instant("cache_spill", "cache", {{"uri", uri}});
}

CacheManager::ReloadResult CacheManager::ReloadLocked(const std::string& uri,
                                                      Entry* entry) {
  ColumnarFileMeta meta;
  auto loaded = persistent_ != nullptr
                    ? persistent_->Load(uri, &meta)
                    : Result<TablePtr>(Status::NotFound("no durable tier"));
  if (!loaded.ok()) {
    ++stats_.reload_failures;
    return ReloadResult::kCorrupt;
  }
  const uint64_t bytes = (*loaded)->ByteSize();
  if (budget_ != nullptr && !budget_->TryReserve(bytes)) {
    (void)EvictUnpinnedLocked(bytes);
    if (!budget_->TryReserve(bytes)) {
      ++stats_.reload_failures;
      return ReloadResult::kNoBudget;
    }
  }
  entry->data = std::move(*loaded);
  entry->bytes = bytes;
  lru_.push_front(uri);
  entry->lru_it = lru_.begin();
  bytes_used_ += bytes;
  ++stats_.reloads;
  obs::Tracer::Instant("cache_reload", "cache", {{"uri", uri}});
  return ReloadResult::kOk;
}

bool CacheManager::PersistLocked(const std::string& uri, const Table& table,
                                 const std::string& predicate_repr,
                                 const CachedWindow& window, int64_t mtime_ms) {
  ColumnarFileMeta meta;
  meta.source_uri = uri;
  meta.predicate_repr = predicate_repr;
  meta.window_pure = window.pure;
  meta.window_lo = window.lo;
  meta.window_hi = window.hi;
  meta.source_size_bytes = FileSize(uri).ValueOr(0);
  meta.source_mtime_ms = mtime_ms;
  const bool ok = persistent_->Persist(uri, table, meta);
  if (ok) {
    ++stats_.persisted;
  } else {
    ++stats_.persist_failures;
  }
  return ok;
}

void CacheManager::AdoptRecovered(const std::string& uri,
                                  const ColumnarFileMeta& meta, TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.policy == CachePolicy::kNone) return;
  Erase(uri);
  Entry entry;
  entry.predicate_repr = meta.predicate_repr;
  entry.window.pure = meta.window_pure;
  entry.window.lo = meta.window_lo;
  entry.window.hi = meta.window_hi;
  entry.mtime_ms = meta.source_mtime_ms;
  entry.bytes = table != nullptr ? table->ByteSize() : meta.table_byte_size;
  entry.persisted = true;
  const bool admit = table != nullptr &&
                     (budget_ == nullptr || budget_->TryReserve(entry.bytes));
  if (admit) {
    entry.data = std::move(table);
    lru_.push_front(uri);
    entry.lru_it = lru_.begin();
    bytes_used_ += entry.bytes;
  } else {
    ++stats_.spills;  // adopted as a stub; first touch reloads
  }
  entries_.emplace(uri, std::move(entry));
  EvictIfNeeded();
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ != nullptr) budget_->Release(bytes_used_);
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
  if (persistent_ != nullptr) persistent_->RemoveAll();
}

}  // namespace dex
