#ifndef DEX_CORE_EXPORT_H_
#define DEX_CORE_EXPORT_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace dex {

/// Result export — the last step of an exploration: handing data of
/// interest to the scientist's downstream tools (plotting, MATLAB/Python).

/// \brief Renders a result table as RFC-4180-style CSV: a header row of
/// column names, then one line per row. Strings are quoted and embedded
/// quotes doubled; timestamps render as ISO-8601.
std::string TableToCsv(const Table& table);

/// \brief Writes TableToCsv(table) to `path`, creating parent directories.
Status ExportTableCsv(const Table& table, const std::string& path);

}  // namespace dex

#endif  // DEX_CORE_EXPORT_H_
