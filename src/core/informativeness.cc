#include "core/informativeness.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/time_utils.h"
#include "io/file_io.h"

namespace dex {

bool ExtractBounds(const ExprPtr& predicate, const std::string& column_name,
                   double* lo, double* hi) {
  *lo = -std::numeric_limits<double>::infinity();
  *hi = std::numeric_limits<double>::infinity();
  if (predicate == nullptr) return false;
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(predicate, &conjuncts);
  bool constrained = false;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kComparison) continue;
    const ExprPtr& a = c->children()[0];
    const ExprPtr& b = c->children()[1];
    // Normalize to: column <op> literal.
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    CompareOp op = c->compare_op();
    if (a->kind() == ExprKind::kColumnRef && b->kind() == ExprKind::kLiteral) {
      col = a.get();
      lit = b.get();
    } else if (b->kind() == ExprKind::kColumnRef &&
               a->kind() == ExprKind::kLiteral) {
      col = b.get();
      lit = a.get();
      // Mirror the operator: 5 < x  ≡  x > 5.
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    } else {
      continue;
    }
    // Match by unqualified column name.
    std::string name = col->column_name();
    const size_t dot = name.find('.');
    if (dot != std::string::npos) name = name.substr(dot + 1);
    if (name != column_name) continue;
    // Predicates here are unbound: ISO-8601 string literals have not been
    // coerced to timestamps yet, so parse them explicitly.
    auto v = lit->literal().AsDouble();
    if (!v.ok() && lit->literal().type() == DataType::kString &&
        LooksLikeIso8601(lit->literal().str())) {
      auto ms = ParseIso8601(lit->literal().str());
      if (ms.ok()) v = static_cast<double>(*ms);
    }
    if (!v.ok()) continue;
    switch (op) {
      case CompareOp::kGt:
      case CompareOp::kGe:
        *lo = std::max(*lo, *v);
        constrained = true;
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        *hi = std::min(*hi, *v);
        constrained = true;
        break;
      case CompareOp::kEq:
        *lo = std::max(*lo, *v);
        *hi = std::min(*hi, *v);
        constrained = true;
        break;
      default:
        break;
    }
  }
  return constrained;
}

CachedWindow SummarizeTimeWindow(const ExprPtr& predicate) {
  CachedWindow window;
  if (predicate == nullptr) return window;
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(predicate, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kComparison) return window;
    const ExprPtr& a = c->children()[0];
    const ExprPtr& b = c->children()[1];
    const Expr* col = nullptr;
    if (a->kind() == ExprKind::kColumnRef && b->kind() == ExprKind::kLiteral) {
      col = a.get();
    } else if (b->kind() == ExprKind::kColumnRef &&
               a->kind() == ExprKind::kLiteral) {
      col = b.get();
    } else {
      return window;
    }
    std::string name = col->column_name();
    const size_t dot = name.find('.');
    if (dot != std::string::npos) name = name.substr(dot + 1);
    if (name != "sample_time") return window;
    // Equality/range only; <> would make the cached set non-contiguous.
    if (c->compare_op() == CompareOp::kNe) return window;
  }
  double lo, hi;
  if (!ExtractBounds(predicate, "sample_time", &lo, &hi)) return window;
  window.pure = true;
  window.lo = lo;
  window.hi = hi;
  return window;
}

Result<BreakpointInfo> EstimateInformativeness(
    const TablePtr& qf_result, const std::vector<std::string>& files_of_interest,
    const FileRegistry& registry, const CacheManager* cache,
    const ExprPtr& d_predicate, const InformativenessModel& model,
    const InformativenessIndex* index) {
  BreakpointInfo info;
  info.files_of_interest = files_of_interest;

  const std::string pred_repr =
      d_predicate == nullptr ? "" : d_predicate->ToString();
  for (const std::string& uri : files_of_interest) {
    auto entry = registry.Get(uri);
    if (!entry.ok()) continue;
    const int64_t mtime = FileMtimeMillis(uri).ValueOr(entry->mtime_ms);
    const bool cached =
        cache != nullptr &&
        (cache->WouldHit(uri, "", mtime) || cache->WouldHit(uri, pred_repr, mtime));
    if (cached) {
      info.files_cached += 1;
    } else {
      info.bytes_to_mount += entry->size_bytes;
    }
  }

  // Record-level estimates from Q_f's own output: the stage-1 result carries
  // R.start_time / R.end_time / R.n_samples for every record of interest.
  double t_lo, t_hi;
  const bool has_window = ExtractBounds(d_predicate, "sample_time", &t_lo, &t_hi);
  if (qf_result != nullptr) {
    const Schema& schema = *qf_result->schema();
    const int n_samples_idx = schema.FindFieldIndex("n_samples");
    const int start_idx = schema.FindFieldIndex("start_time");
    const int end_idx = schema.FindFieldIndex("end_time");
    const int uri_idx = schema.FindFieldIndex("uri");
    const int record_idx = schema.FindFieldIndex("record_id");
    if (n_samples_idx >= 0) {
      // Q_f output can contain duplicate records when several metadata rows
      // join to the same record; dedupe on (uri, record_id) when available.
      std::unordered_set<std::string> seen;
      for (size_t r = 0; r < qf_result->num_rows(); ++r) {
        if (uri_idx >= 0 && record_idx >= 0) {
          std::string key =
              qf_result->column(static_cast<size_t>(uri_idx))->GetString(r) +
              '\0' +
              std::to_string(qf_result->column(static_cast<size_t>(record_idx))
                                 ->GetInt64(r));
          if (!seen.insert(std::move(key)).second) continue;
        }
        const int64_t n =
            qf_result->column(static_cast<size_t>(n_samples_idx))->GetInt64(r);
        info.est_rows_to_ingest += static_cast<uint64_t>(n);
        double frac = 1.0;
        if (has_window && start_idx >= 0 && end_idx >= 0) {
          const double start = static_cast<double>(
              qf_result->column(static_cast<size_t>(start_idx))->GetInt64(r));
          const double end = static_cast<double>(
              qf_result->column(static_cast<size_t>(end_idx))->GetInt64(r));
          const double span = std::max(1.0, end - start);
          const double overlap =
              std::max(0.0, std::min(t_hi, end) - std::max(t_lo, start));
          frac = std::min(1.0, overlap / span);
        }
        info.est_result_rows +=
            static_cast<uint64_t>(frac * static_cast<double>(n));
      }
    }
  }
  if (info.est_rows_to_ingest == 0 && index != nullptr &&
      !files_of_interest.empty()) {
    // Q_f carried no record-level columns (the query joined F with D
    // directly, or skipped metadata altogether). The stage-1 scan indexed
    // every record's window anyway — one lookup per file of interest.
    for (const std::string& uri : files_of_interest) {
      for (const InformativenessIndex::RecordWindow& w :
           index->WindowsFor(uri)) {
        info.est_rows_to_ingest += w.num_samples;
        double frac = 1.0;
        if (has_window) {
          const double start = static_cast<double>(w.start_ms);
          const double end = static_cast<double>(w.end_ms);
          const double span = std::max(1.0, end - start);
          const double overlap =
              std::max(0.0, std::min(t_hi, end) - std::max(t_lo, start));
          frac = std::min(1.0, overlap / span);
        }
        info.est_result_rows +=
            static_cast<uint64_t>(frac * static_cast<double>(w.num_samples));
      }
    }
  }

  info.est_stage2_seconds =
      static_cast<double>(info.bytes_to_mount) / (model.mount_mb_per_sec * 1e6) +
      static_cast<double>(info.est_rows_to_ingest) / model.ingest_rows_per_sec;
  return info;
}

}  // namespace dex
