#ifndef DEX_CORE_ZONE_MAP_H_
#define DEX_CORE_ZONE_MAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/stats_collector.h"
#include "mseed/reader.h"
#include "mseed/steim.h"

namespace dex {

/// \brief Per-record and per-Steim-frame min/max zone maps, harvested for
/// free while mount decodes records anyway (StatsCollector::RecordMounted),
/// and consulted by later mounts to skip decode work the predicate has
/// already excluded.
///
/// Two pruning granularities:
///  - *record-level*: a record whose [min,max] value zone is disjoint from
///    the predicate's sample_value bounds is dropped before its payload is
///    touched (it keeps a positional placeholder slot so record ids stay
///    stable, and its DM row is synthesized from the zone so derived
///    metadata is invariant under pruning);
///  - *frame-level* (Steim1 only): per-64-byte-frame stats let the decoder
///    unpack only frames that may contain matching samples, resuming the
///    integration chain from each frame's recorded entry value.
///
/// ## Safety ladder
/// A zone map is a performance hint, never a correctness dependency:
///  1. FileScanned drops a file's zones when its size/mtime identity
///     changed (stale after rewrite).
///  2. Persisted zone maps carry an FNV-1a checksum; any corruption or
///     format violation discards the whole persisted set (counted, logged).
///  3. Even a wrong-but-plausible frame zone is caught at decode time: the
///     selective Steim1 decode verifies the entry/exit integration chain
///     and falls back to a full decode on mismatch (PruneStats::fallbacks).
/// The worst a bad zone map can cost is decode work, never wrong rows.
///
/// Thread-safe: stage-1 events arrive from the scan coordinator, record
/// zones from concurrent mount tasks, pruners from concurrent query
/// sessions. One mutex guards everything; MakePruner snapshots (copies) the
/// file's zones so a pruner never races later updates.
class ZoneMapStore : public StatsCollector {
 public:
  /// Value zone of one record, plus its per-frame stats when the record's
  /// payload was Steim1 and the decode harvested them.
  struct RecordZone {
    RecordValueStats values;
    std::vector<mseed::Steim1::FrameStat> frames;
  };

  struct Stats {
    uint64_t files = 0;             // files with at least one record zone
    uint64_t records = 0;           // record zones held
    uint64_t frames = 0;            // frame stats held
    uint64_t persisted_loads = 0;   // files restored from disk
    uint64_t stale_dropped = 0;     // files dropped on identity change
    uint64_t corrupt_discarded = 0; // persisted sets discarded on corruption
  };

  ZoneMapStore() = default;

  // StatsCollector ------------------------------------------------------
  std::string name() const override { return "zonemap"; }
  void FileScanned(const mseed::FileMeta& file,
                   const std::vector<mseed::RecordMeta>& records) override;
  Status RecordMounted(const std::string& uri, int64_t record_id,
                       const mseed::RecordHeader& header,
                       const RecordValueStats& values,
                       const std::vector<mseed::Steim1::FrameStat>* frames,
                       uint32_t expected_records) override;

  // Query side ----------------------------------------------------------

  /// A pruner restricting decode to samples that may lie in [lo, hi],
  /// backed by a snapshot of `uri`'s current zones. Unknown records are
  /// decoded fully with frame-stat harvest (so the next query can prune).
  /// Returns null when the store holds nothing for `uri` and `harvest` is
  /// also off — no pruner beats a no-op pruner.
  std::unique_ptr<mseed::RecordPruner> MakePruner(const std::string& uri,
                                                  double lo, double hi,
                                                  bool record_level,
                                                  bool frame_level,
                                                  bool harvest = true) const;

  /// Record-level zone lookup, used to synthesize the DM row of a record
  /// whose decode was skipped. False when no zone is held.
  bool GetRecordStats(const std::string& uri, int64_t record_id,
                      RecordValueStats* out) const;

  /// True when every record of `uri` has a zone (given stage 1 reported
  /// `expected_records` for it).
  bool HasCompleteFile(const std::string& uri) const;

  // Persistence ---------------------------------------------------------

  /// Serializes all zones to `path` (atomic temp+rename, FNV-1a footer,
  /// deterministic uri-sorted order). No-op when nothing changed since the
  /// last save/load.
  Status SaveIfDirty(const std::string& path);

  /// Restores zones from `path`. Missing file is OK (cold start). Any
  /// corruption — bad magic, truncation, checksum mismatch, implausible
  /// counts — discards the whole persisted set and returns OK: zone maps
  /// are hints, recovery must never block opening the database.
  Status Load(const std::string& path);

  Stats GetStats() const;

 private:
  struct FileZones {
    uint64_t size_bytes = 0;  // identity at harvest time
    int64_t mtime_ms = 0;
    uint32_t expected_records = 0;
    std::map<int64_t, RecordZone> records;  // ordered for determinism
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, FileZones> files_;
  bool dirty_ = false;
  uint64_t persisted_loads_ = 0;
  uint64_t stale_dropped_ = 0;
  uint64_t corrupt_discarded_ = 0;
};

}  // namespace dex

#endif  // DEX_CORE_ZONE_MAP_H_
