#include "core/two_stage.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "core/seismic_schema.h"
#include "engine/plan_profile.h"
#include "exec/sim_schedule.h"
#include "exec/task_group.h"
#include "io/file_io.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace dex {

namespace {

constexpr const char* kQfResultId = "__qf";
constexpr const char* kEmptyResultId = "__empty";
constexpr const char* kIngestedResultId = "__ingested";

// Payload of one scatter request ("mount these files") to a shard. Small and
// fixed: the request is dominated by the link latency, not its bytes.
constexpr uint64_t kShardRequestBytes = 256;

// Warnings accumulated into a query's MountOutcome are bounded the same way
// Mounter bounds its own (the database bounds again at copy time).
constexpr size_t kMaxShardWarnings = 32;

void AddShardWarning(Mounter::MountOutcome* outcome, std::string msg) {
  if (outcome->warnings.size() < kMaxShardWarnings) {
    outcome->warnings.push_back(std::move(msg));
  } else {
    ++outcome->warnings_dropped;
  }
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs `fn` at scope exit — used for the cleanup Execute owes on every
/// return path (budget reservations, cache pins).
template <typename F>
struct ScopeExit {
  F fn;
  ~ScopeExit() { fn(); }
};
template <typename F>
ScopeExit(F) -> ScopeExit<F>;

/// Book-keeping for stage-2 memory reservations and (when governed)
/// admission, shared with the mount_fn closure. Only touched from the
/// coordinator thread: the mount_fn runs inline as union branches open, and
/// governed queries additionally skip PremountUnion, so access is serial.
struct AdmissionState {
  bool stopped = false;           // no further mounts are admitted
  bool stopped_by_memory = false; // why: budget (true) vs deadline (false)
  Status reason;                  // DeadlineExceeded / ResourceExhausted
  uint64_t reserved_bytes = 0;    // partial-table reservations to release
};

}  // namespace

Result<std::vector<std::string>> TwoStageExecutor::FilesOfInterest(
    const TablePtr& qf_result) {
  // Any column named "uri" identifies the file; F.uri and R.uri agree by the
  // join condition, so the first one found works.
  int uri_idx = -1;
  for (size_t i = 0; i < qf_result->schema()->num_fields(); ++i) {
    if (qf_result->schema()->field(i).name == "uri") {
      uri_idx = static_cast<int>(i);
      break;
    }
  }
  if (uri_idx < 0) {
    return Status::Internal(
        "stage-1 result carries no 'uri' column; files of interest are "
        "unidentifiable in schema " +
        qf_result->schema()->ToString());
  }
  const Column& col = *qf_result->column(static_cast<size_t>(uri_idx));
  std::vector<std::string> files;
  std::unordered_set<int32_t> seen_codes;
  for (size_t r = 0; r < qf_result->num_rows(); ++r) {
    if (seen_codes.insert(col.GetStringCode(r)).second) {
      files.push_back(col.GetString(r));
    }
  }
  return files;
}

ExprPtr TwoStageExecutor::FindActualScanPredicate(const PlanPtr& plan,
                                                  const Catalog& catalog) {
  if (plan->kind == PlanKind::kFilter &&
      plan->children[0]->kind == PlanKind::kScan) {
    auto kind = catalog.GetKind(plan->children[0]->table_name);
    if (kind.ok() && *kind == TableKind::kActual) return plan->predicate;
  }
  for (const PlanPtr& c : plan->children) {
    ExprPtr found = FindActualScanPredicate(c, catalog);
    if (found != nullptr) return found;
  }
  return nullptr;
}

Result<std::vector<FileDecision>> TwoStageExecutor::DecideFiles(
    const std::vector<std::string>& files, const ExprPtr& d_predicate,
    const TwoStageOptions& opts) {
  const std::string pred_repr =
      d_predicate == nullptr ? "" : d_predicate->ToString();
  const CachedWindow query_window = SummarizeTimeWindow(d_predicate);
  double value_lo = 0, value_hi = 0;
  const bool value_bounded =
      opts.pruning.file_level && derived_ != nullptr &&
      ExtractBounds(d_predicate, "sample_value", &value_lo, &value_hi);

  std::vector<FileDecision> decisions;
  decisions.reserve(files.size());
  for (const std::string& uri : files) {
    FileDecision d;
    d.uri = uri;
    DEX_ASSIGN_OR_RETURN(FileRegistry::Entry entry, registry_->Get(uri));
    const int64_t mtime = FileMtimeMillis(uri).ValueOr(entry.mtime_ms);
    if (value_bounded && !derived_->MayMatchValueRange(uri, value_lo, value_hi)) {
      d.action = FileDecision::Action::kSkip;
    } else if (cache_ != nullptr &&
               cache_->Probe(uri,
                             cache_->options().granularity ==
                                     CacheGranularity::kTuple
                                 ? pred_repr
                                 : "",
                             mtime, &query_window)) {
      d.action = FileDecision::Action::kCacheScan;
    } else {
      d.action = FileDecision::Action::kMount;
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

Result<PlanPtr> TwoStageExecutor::RewriteStage2Impl(
    const PlanPtr& split_plan, const std::string& qf_result_id,
    const std::vector<FileDecision>& decisions, PlanPtr* union_node_out,
    Catalog* catalog, const TwoStageOptions& opts) {
  // Builds the union replacing one actual-table scan. `pred` is the
  // selection that sat on the scan (may be null).
  auto build_union = [&](const std::string& table_name,
                         const ExprPtr& pred) -> PlanPtr {
    std::vector<PlanPtr> branches;
    for (const FileDecision& d : decisions) {
      switch (d.action) {
        case FileDecision::Action::kSkip:
          break;
        case FileDecision::Action::kCacheScan: {
          PlanPtr node = MakeCacheScan(table_name, d.uri);
          if (pred != nullptr && opts.push_selection_into_union) {
            node = MakeFilter(pred, std::move(node));  // σ(cache-scan(f))
          }
          branches.push_back(std::move(node));
          break;
        }
        case FileDecision::Action::kMount: {
          PlanPtr node = MakeMount(table_name, d.uri);
          if (pred != nullptr && opts.push_selection_into_union) {
            node->predicate = pred;  // combined select-mount access path
          }
          branches.push_back(std::move(node));
          break;
        }
      }
    }
    PlanPtr result;
    if (branches.empty()) {
      // Best case of ALi: an empty set of files of interest means no actual
      // data is ever ingested.
      result = MakeResultScan(std::string(kEmptyResultId) + ":" + table_name,
                              nullptr /* filled by caller context */);
    } else {
      result = MakeUnion(std::move(branches));
    }
    if (union_node_out != nullptr) *union_node_out = result;
    if (pred != nullptr && !opts.push_selection_into_union) {
      result = MakeFilter(pred, std::move(result));
    }
    return result;
  };

  std::function<Result<PlanPtr>(const PlanPtr&)> transform =
      [&](const PlanPtr& node) -> Result<PlanPtr> {
    if (node->kind == PlanKind::kStageBreak) {
      return MakeResultScan(qf_result_id, node->children[0]->output_schema);
    }
    // σ_p(scan(a)) and bare scan(a) both expand via rewrite rule (1).
    if (node->kind == PlanKind::kFilter &&
        node->children[0]->kind == PlanKind::kScan) {
      auto kind = catalog->GetKind(node->children[0]->table_name);
      if (kind.ok() && *kind == TableKind::kActual) {
        return build_union(node->children[0]->table_name, node->predicate);
      }
    }
    if (node->kind == PlanKind::kScan) {
      auto kind = catalog->GetKind(node->table_name);
      if (kind.ok() && *kind == TableKind::kActual) {
        return build_union(node->table_name, nullptr);
      }
    }
    auto copy = std::make_shared<LogicalPlan>(*node);
    copy->children.clear();
    for (const PlanPtr& c : node->children) {
      DEX_ASSIGN_OR_RETURN(PlanPtr t, transform(c));
      copy->children.push_back(std::move(t));
    }
    return copy;
  };

  DEX_ASSIGN_OR_RETURN(PlanPtr rewritten, transform(split_plan));

  if (opts.distribute_join_over_union) {
    // Strategy (b): Join(∪ b_i, X) → ∪ Join(b_i, X) — run the join per
    // mounted sub-table, then merge the results.
    std::function<PlanPtr(const PlanPtr&)> distribute =
        [&](const PlanPtr& node) -> PlanPtr {
      auto copy = std::make_shared<LogicalPlan>(*node);
      copy->children.clear();
      for (const PlanPtr& c : node->children) {
        copy->children.push_back(distribute(c));
      }
      if (copy->kind == PlanKind::kJoin &&
          copy->children[0]->kind == PlanKind::kUnion) {
        std::vector<PlanPtr> joined;
        for (const PlanPtr& b : copy->children[0]->children) {
          joined.push_back(MakeJoin(copy->predicate, b, copy->children[1]));
        }
        if (!joined.empty()) return MakeUnion(std::move(joined));
      }
      return copy;
    };
    rewritten = distribute(rewritten);
  }
  return rewritten;
}

ThreadPool* TwoStageExecutor::Pool(size_t workers) {
  // A shared pool serves every query at its real size; `workers` only drives
  // the deterministic lane count in ListScheduleSimTimes, never the number
  // of OS threads actually running tasks.
  if (shared_pool_ != nullptr) return shared_pool_;
  if (pool_ == nullptr || pool_->num_threads() != workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  return pool_.get();
}

Status TwoStageExecutor::PremountUnion(const PlanPtr& union_node, size_t workers,
                                       int priority, TwoStageStats* stats,
                                       PremountMap* premounted,
                                       QueryContext* qctx,
                                       const PruningOptions* pruning,
                                       ShardedRepository* shards,
                                       int num_shards) {
  if (qctx != nullptr && qctx->has_limits()) {
    // Governed queries serialize admission: every mount opens inline in
    // union-branch order, so the deadline/budget cutoff is a function of the
    // deterministic simulated timeline instead of worker scheduling. The
    // trade (documented in DESIGN.md §8.8): no parallel mount overlap while
    // a deadline or memory budget is armed. (Sharded governed queries charge
    // their gather transfers inline in the mount_fn instead.)
    return Status::OK();
  }
  const bool sharded = shards != nullptr && num_shards > 1;
  if (union_node == nullptr || union_node->kind != PlanKind::kUnion) {
    return Status::OK();
  }
  if (!sharded && workers <= 1) {
    return Status::OK();  // legacy path: mounts open inline, one at a time
  }
  // The union's branch order is the files-of-interest order (URIs,
  // deterministic), so task index doubles as the deterministic tiebreak for
  // error reporting and time aggregation.
  std::vector<const LogicalPlan*> mounts;
  for (const PlanPtr& child : union_node->children) {
    if (child->kind == PlanKind::kMount) mounts.push_back(child.get());
  }
  // Unsharded: overlap needs at least two mounts. Sharded: the wave runs
  // even for a single mount at a single worker — the per-shard cost model
  // (not the worker-lane makespan) is what gets charged, and it must be the
  // same at every worker count.
  if (mounts.empty() || (!sharded && mounts.size() < 2)) return Status::OK();

  struct TaskResult {
    TablePtr table;
    Mounter::MountOutcome outcome;
    uint64_t sim_nanos = 0;
  };
  std::vector<TaskResult> results(mounts.size());
  TaskGroup group(workers > 1 ? Pool(workers) : nullptr, priority);
  for (size_t i = 0; i < mounts.size(); ++i) {
    const LogicalPlan* node = mounts[i];
    TaskResult* slot = &results[i];
    // Trace context (order key + parent span) is captured at spawn time and
    // installed on the worker thread by TaskGroup::Spawn itself, so the span
    // below parents under the coordinator's current span automatically.
    group.Spawn([this, node, slot, qctx, pruning]() -> Status {
      // A cancelled query skips tasks that have not started yet; the cancel
      // reason propagates through the group's lowest-index error rule.
      if (qctx != nullptr) DEX_RETURN_NOT_OK(qctx->CheckInterrupt());
      obs::TraceSpan span("mount_task", "mount");
      span.AddArg("uri", node->uri);
      span.AddArg("lane", static_cast<uint64_t>(obs::CurrentThreadLane()));
      // Route this task's simulated stall time into its own bucket so the
      // wave's cost can be aggregated as a critical path afterwards,
      // independent of real thread interleaving.
      SimDisk::TaskTimeScope scope(&slot->sim_nanos);
      DEX_ASSIGN_OR_RETURN(slot->table,
                           mounter_->Mount(node->table_name, node->uri,
                                           node->predicate, &slot->outcome,
                                           qctx, pruning));
      return Status::OK();
    });
  }
  DEX_RETURN_NOT_OK(group.Wait());

  if (sharded) {
    // Sharded time model: each shard is one storage node with a serial disk
    // behind its own link. The wave costs max over shards of (the shard's
    // summed mount time + the shard's net time) — the slowest *shard*, not
    // the slowest worker lane — so the charge is identical at every worker
    // count and physical pool size. Worker threads only shorten wall time.
    const size_t n = static_cast<size_t>(num_shards);
    std::vector<int> owner(mounts.size());
    std::vector<uint64_t> disk_nanos(n, 0);
    std::vector<uint64_t> net_nanos(n, 0);
    std::vector<size_t> files(n, 0);
    for (size_t i = 0; i < mounts.size(); ++i) {
      owner[i] = shards->ShardOf(mounts[i]->uri, num_shards);
      disk_nanos[static_cast<size_t>(owner[i])] += results[i].sim_nanos;
      ++files[static_cast<size_t>(owner[i])];
    }
    // Gather on the coordinator at the barrier, in shard then branch order:
    // the k-th transfer on a link is the same transfer in every run, so the
    // per-link fault streams replay bit-identically. One scatter request per
    // shard with work, then each mounted table ships back over its link.
    SimNetwork* net = shards->network();
    std::vector<uint64_t> messages(n, 0);
    std::vector<Status> gather_failure(mounts.size(), Status::OK());
    for (int s = 0; s < num_shards; ++s) {
      if (files[static_cast<size_t>(s)] == 0) continue;
      // The shard's transfers land in its own bucket; the global clock is
      // charged once below with the wave's critical path.
      SimDisk::TaskTimeScope scope(&net_nanos[static_cast<size_t>(s)]);
      (void)net->Transfer(shards->LinkOf(s), kShardRequestBytes);
      ++messages[static_cast<size_t>(s)];
      for (size_t i = 0; i < mounts.size(); ++i) {
        if (owner[i] != s || results[i].table == nullptr) continue;
        Result<uint64_t> resp =
            net->Transfer(shards->LinkOf(s), results[i].table->ByteSize());
        ++messages[static_cast<size_t>(s)];
        if (!resp.ok()) gather_failure[i] = resp.status();
      }
    }
    uint64_t wave = 0;
    for (size_t s = 0; s < n; ++s) {
      wave = std::max(wave, disk_nanos[s] + net_nanos[s]);
      stats->serial_sim_nanos += disk_nanos[s] + net_nanos[s];
      stats->net_sim_nanos += net_nanos[s];
      if (files[s] == 0) continue;
      // Per-shard accounting row (merged across batched waves by shard id).
      TwoStageStats::ShardRow* row = nullptr;
      for (TwoStageStats::ShardRow& r : stats->shard_rows) {
        if (r.shard == static_cast<int>(s)) row = &r;
      }
      if (row == nullptr) {
        stats->shard_rows.push_back(TwoStageStats::ShardRow{});
        row = &stats->shard_rows.back();
        row->shard = static_cast<int>(s);
      }
      row->files += files[s];
      row->disk_sim_nanos += disk_nanos[s];
      row->net_sim_nanos += net_nanos[s];
      row->net_messages += messages[s];
      obs::Tracer::Instant(
          "shard_gather", "shard",
          {{"shard", std::to_string(s)},
           {"files", std::to_string(files[s])},
           {"disk_nanos", std::to_string(disk_nanos[s])},
           {"net_nanos", std::to_string(net_nanos[s])}});
    }
    registry_->disk()->ChargeDelay(wave);
    stats->parallel_sim_nanos += wave;
    stats->mount_tasks += mounts.size();
    for (size_t i = 0; i < mounts.size(); ++i) {
      stats->mount.MergeFrom(results[i].outcome);
      if (!gather_failure[i].ok()) {
        // The response never made it across the link (loss past the resend
        // budget, or the shard died mid-wave): quarantine the file and let
        // its branch contribute no rows — the same degradation as a
        // governance skip, and deterministic because the fault streams are.
        registry_->Quarantine(mounts[i]->uri, gather_failure[i].message());
        AddShardWarning(&stats->mount,
                        "gather of '" + mounts[i]->uri +
                            "' failed: " + gather_failure[i].message() +
                            " (file quarantined)");
        (*premounted)[mounts[i]->uri] = PremountEntry{
            mounts[i]->predicate,
            std::make_shared<Table>(mounts[i]->table_name, MakeDataSchema())};
        continue;
      }
      (*premounted)[mounts[i]->uri] =
          PremountEntry{mounts[i]->predicate, std::move(results[i].table)};
    }
    return Status::OK();
  }

  // Deterministic time model: greedy list scheduling of the per-task stall
  // times onto `workers` lanes, in task order. The makespan (longest lane)
  // is what a machine with `workers` disks-worth of overlap would have
  // stalled; it is charged to the medium as this wave's elapsed time.
  // (Contrast with the stage-1 scan, which charges the serial sum and only
  // *reports* the makespan: a query's latency should drop with workers,
  // Open/Refresh cost must not drift with the core count.)
  std::vector<uint64_t> task_nanos;
  task_nanos.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    task_nanos.push_back(results[i].sim_nanos);
    stats->mount.MergeFrom(results[i].outcome);
    (*premounted)[mounts[i]->uri] =
        PremountEntry{mounts[i]->predicate, std::move(results[i].table)};
  }
  const SimSchedule sched = ListScheduleSimTimes(task_nanos, workers);
  registry_->disk()->ChargeDelay(sched.makespan);
  stats->parallel_sim_nanos += sched.makespan;
  stats->serial_sim_nanos += sched.serial_sum;
  stats->mount_tasks += mounts.size();
  return Status::OK();
}

Result<TablePtr> TwoStageExecutor::Execute(const PlanPtr& plan,
                                           const BreakpointCallback& callback,
                                           TwoStageStats* stats,
                                           PlanProfiler* profiler,
                                           QueryContext* qctx,
                                           const QueryEnv* env) {
  DEX_CHECK(stats != nullptr);
  // The query's own view of the world: its pinned catalog epoch, effective
  // options, and pool priority. Defaults reproduce the single-query behavior.
  Catalog* catalog =
      (env != nullptr && env->catalog != nullptr) ? env->catalog : catalog_;
  const TwoStageOptions& opts =
      (env != nullptr && env->options != nullptr) ? *env->options : options_;
  const int priority = env != nullptr ? env->priority
                                      : ThreadPool::kPriorityNormal;
  ShardedRepository* shards =
      (env != nullptr && env->shards != nullptr) ? env->shards : nullptr;
  const int num_shards =
      shards != nullptr ? shards->ClampShardCount(env->num_shards) : 1;
  const bool sharded = shards != nullptr && num_shards > 1;
  stats->num_shards = static_cast<size_t>(num_shards);

  DEX_ASSIGN_OR_RETURN(SplitResult split, SplitPlan(plan, *catalog));

  const bool governed = qctx != nullptr && qctx->has_limits();
  const size_t workers = opts.num_threads == 0
                             ? ThreadPool::DefaultConcurrency()
                             : opts.num_threads;
  // Governed queries serialize stage-2 admission (PremountUnion is a no-op),
  // so report the effective lane count.
  stats->workers = governed ? 1 : workers;

  // Mounts completed ahead of plan execution by worker tasks. The mount_fn
  // serves them on URI + exact-predicate match; anything else (cache-scan
  // fallbacks, re-opened branches) takes the real serial mount path.
  auto premounted = std::make_shared<PremountMap>();
  // Reservation/admission book-keeping, shared with the mount_fn closure.
  // Present for every governed *or merely tracked* query (any qctx): an
  // ungoverned run still reserves against the unlimited budget, so its
  // `mem_reserved_peak` reports what a governed run would have needed.
  auto admission = qctx != nullptr ? std::make_shared<AdmissionState>() : nullptr;
  // URIs pinned in the cache for this query's cache-scan branches.
  std::vector<std::string> pinned_uris;
  ScopeExit cleanup{[&] {
    // All return paths: partial tables never outlive the query, so their
    // budget reservations don't either (the tables themselves are dangling
    // shared_ptrs that die with the plan — nothing reaches the catalog).
    if (admission != nullptr && admission->reserved_bytes > 0) {
      qctx->memory()->Release(admission->reserved_bytes);
    }
    if (cache_ != nullptr) {
      for (const std::string& uri : pinned_uris) cache_->Unpin(uri);
    }
    if (qctx != nullptr) stats->mem_reserved_peak = qctx->memory()->peak();
  }};

  // Flips the admission gate shut and records the cutoff (once).
  auto stop_admission = [this, stats, qctx](AdmissionState* adm, Status reason,
                                            bool by_memory, uint64_t sim_now) {
    adm->stopped = true;
    adm->stopped_by_memory = by_memory;
    adm->reason = std::move(reason);
    stats->cutoff_sim_nanos = sim_now - qctx->sim_start_nanos();
    stats->cutoff_wall_nanos = qctx->wall_elapsed_nanos();
    obs::Tracer::Instant(
        by_memory ? "memory_cutoff" : "deadline_cutoff", "governance",
        {{"cutoff_sim_nanos", std::to_string(stats->cutoff_sim_nanos)}});
    // Governed admission runs serially on the coordinator, so the cutoff
    // event is deterministic: the same file triggers it at any worker count.
    obs::FlightEvent ev;
    ev.kind = by_memory ? "memory_cutoff" : "deadline_cutoff";
    ev.detail = adm->reason.message();
    obs::FlightRecorder::Global().Record(std::move(ev));
  };

  ExecContext ctx;
  ctx.catalog = catalog;
  ctx.profiler = profiler;
  ctx.use_simd_kernels = opts.pruning.use_simd_kernels;
  if (qctx != nullptr) {
    // Per-batch cooperative cancellation in the volcano operators. Under
    // kFailQuery a deadline behaves like a cancellation (the whole plan
    // aborts); under kPartialResults it only gates mount admission, so the
    // plan runs to completion over whatever was admitted. Deadlines are
    // measured on the query's own sim timeline (qctx->sim_now): under
    // concurrent serving the global clock advances with everyone's I/O.
    SimDisk* disk = registry_->disk();
    const bool fail_on_deadline =
        qctx->has_deadline() &&
        opts.on_resource_exhausted == OnResourceExhausted::kFailQuery;
    ctx.interrupt_fn = [qctx, disk, fail_on_deadline]() -> Status {
      DEX_RETURN_NOT_OK(qctx->CheckInterrupt());
      if (fail_on_deadline) {
        const uint64_t sim_now = qctx->sim_now(disk->stats().sim_nanos);
        if (qctx->DeadlineExpired(sim_now)) return qctx->DeadlineStatus(sim_now);
      }
      return Status::OK();
    };
  }
  // Gather charge for a mount performed *outside* the sharded premount wave
  // (governed admission serializes mounts inline; premount fallbacks): the
  // file's table still crosses its shard's link exactly once. These run
  // serially in union-branch order on the coordinator, so the per-link fault
  // streams replay deterministically; with no TaskTimeScope installed the
  // transfer charges the global clock (plus the query's tee) directly.
  auto charge_gather = [shards, num_shards, sharded,
                        stats](const std::string& uri, const TablePtr& t) {
    if (!sharded || t == nullptr) return;
    const int s = shards->ShardOf(uri, num_shards);
    Result<uint64_t> r =
        shards->network()->Transfer(shards->LinkOf(s), t->ByteSize());
    // A failed transfer (shard killed mid-query) still charged its attempt;
    // dead shards are normally filtered at planning time, so keep the
    // already-mounted data rather than inventing a second failure path.
    if (r.ok()) stats->net_sim_nanos += *r;
  };
  ctx.mount_fn = [this, stats, premounted, qctx, admission, stop_admission,
                  governed, charge_gather, &opts](
                     const std::string& table, const std::string& uri,
                     const ExprPtr& pred) -> Result<TablePtr> {
    auto it = premounted->find(uri);
    if (it != premounted->end() && it->second.predicate.get() == pred.get()) {
      TablePtr t = std::move(it->second.table);
      premounted->erase(it);  // each union branch opens once
      if (admission != nullptr && qctx->memory()->TryReserve(t->ByteSize())) {
        admission->reserved_bytes += t->ByteSize();
      }
      return Result<TablePtr>(std::move(t));
    }
    if (admission == nullptr) {
      auto mounted = mounter_->Mount(table, uri, pred, &stats->mount, qctx,
                                     &opts.pruning);
      if (mounted.ok()) charge_gather(uri, *mounted);
      return mounted;
    }
    if (!governed) {
      // Tracked but not limited: reservations against the unlimited budget
      // always succeed and only maintain the high-water mark.
      auto mounted = mounter_->Mount(table, uri, pred, &stats->mount, qctx,
                                     &opts.pruning);
      if (!mounted.ok()) return mounted;
      charge_gather(uri, *mounted);
      if (qctx->memory()->TryReserve((*mounted)->ByteSize())) {
        admission->reserved_bytes += (*mounted)->ByteSize();
      }
      return mounted;
    }
    // Governed admission, decided serially in union-branch order against
    // the query's simulated timeline: the set of admitted files is the same
    // at any worker count — and, with a per-query sim counter attached,
    // independent of what concurrent queries charge to the global clock.
    if (!admission->stopped) {
      const uint64_t sim_now =
          qctx->sim_now(registry_->disk()->stats().sim_nanos);
      if (qctx->DeadlineExpired(sim_now)) {
        stop_admission(admission.get(), qctx->DeadlineStatus(sim_now),
                       /*by_memory=*/false, sim_now);
      }
    }
    if (admission->stopped) {
      if (opts.on_resource_exhausted == OnResourceExhausted::kFailQuery) {
        return admission->reason;
      }
      stats->is_partial = true;
      if (admission->stopped_by_memory) {
        ++stats->files_skipped_memory;
      } else {
        ++stats->files_skipped_deadline;
      }
      // Degrade like a quarantined file: the branch contributes no rows.
      return Result<TablePtr>(std::make_shared<Table>(table, MakeDataSchema()));
    }
    auto mounted = mounter_->Mount(table, uri, pred, &stats->mount, qctx,
                                   &opts.pruning);
    if (!mounted.ok()) return mounted;
    // The mounted table ships to the coordinator before memory admission is
    // decided: a table the budget then discards still crossed the link.
    charge_gather(uri, *mounted);
    // Memory admission, two layers: the partial table must fit under the
    // query's own cap (if any) *and* in the shared budget. Eviction of
    // unpinned cache entries is tried only for the shared budget — freeing
    // cache space cannot help a query that exhausted its private cap.
    const uint64_t bytes = (*mounted)->ByteSize();
    MemoryBudget* budget = qctx->memory();
    const uint64_t query_cap = qctx->query_memory_limit();
    const bool over_query_cap =
        query_cap != 0 && admission->reserved_bytes + bytes > query_cap;
    bool reserved = false;
    if (!over_query_cap) {
      reserved = budget->TryReserve(bytes);
      if (!reserved && cache_ != nullptr) {
        const size_t evicted = cache_->EvictUnpinned(bytes);
        stats->mem_budget_evictions += evicted;
        if (evicted > 0) {
          obs::FlightEvent ev;
          ev.kind = "budget_eviction";
          ev.detail = std::to_string(evicted) + " cache entries for '" + uri + "'";
          obs::FlightRecorder::Global().Record(std::move(ev));
        }
        reserved = budget->TryReserve(bytes);
      }
    }
    if (!reserved) {
      const uint64_t sim_now =
          qctx->sim_now(registry_->disk()->stats().sim_nanos);
      stop_admission(
          admission.get(),
          over_query_cap
              ? Status::ResourceExhausted(
                    "per-query memory cap of " + std::to_string(query_cap) +
                    " bytes exhausted mounting '" + uri + "' (" +
                    std::to_string(bytes) + " bytes needed, " +
                    std::to_string(admission->reserved_bytes) + " reserved)")
              : Status::ResourceExhausted(
                    "memory budget of " + std::to_string(budget->limit()) +
                    " bytes exhausted mounting '" + uri + "' (" +
                    std::to_string(bytes) + " bytes needed, " +
                    std::to_string(budget->used()) + " in use)"),
          /*by_memory=*/true, sim_now);
      if (opts.on_resource_exhausted == OnResourceExhausted::kFailQuery) {
        return admission->reason;
      }
      // The triggering file's simulated I/O is already charged (the same
      // file triggers exhaustion at any worker count, so this stays
      // deterministic); its data cannot be admitted and is discarded.
      stats->is_partial = true;
      ++stats->files_skipped_memory;
      return Result<TablePtr>(std::make_shared<Table>(table, MakeDataSchema()));
    }
    admission->reserved_bytes += bytes;
    return mounted;
  };
  ctx.cache_fn = [this](const std::string& table, const std::string& uri) {
    return mounter_->CacheLookup(table, uri);
  };

  // ---- Metadata-only query: the first stage of execution is naturally
  // enough and the query is answered without any actual data ingestion.
  if (!split.references_actual) {
    stats->stage1_only = true;
    const uint64_t t0 = NowNanos();
    TablePtr result;
    {
      obs::TraceSpan span("stage1", "query");
      span.AddArg("stage1_only", uint64_t{1});
      DEX_ASSIGN_OR_RETURN(result, ExecutePlan(split.plan, &ctx));
      span.AddArg("rows", result->num_rows());
    }
    stats->stage1_nanos = NowNanos() - t0;
    stats->exec = ctx.stats;
    if (profiler != nullptr) profiler->AddRoot("stage 1 (metadata only)", split.plan);
    return result;
  }

  // ---- Stage 1: execute Q_f (when the query references metadata at all).
  TablePtr qf_result;
  std::vector<std::string> files;
  if (split.qf != nullptr) {
    stats->split = true;
    const uint64_t t0 = NowNanos();
    {
      obs::TraceSpan span("stage1", "query");
      DEX_ASSIGN_OR_RETURN(qf_result, ExecutePlan(split.qf, &ctx));
      span.AddArg("rows", qf_result->num_rows());
    }
    stats->stage1_nanos = NowNanos() - t0;
    if (profiler != nullptr) profiler->AddRoot("stage 1 (Q_f)", split.qf);
    DEX_ASSIGN_OR_RETURN(files, FilesOfInterest(qf_result));
  } else {
    // Without metadata restriction every available file is "relevant".
    // (AllUris already excludes quarantined files.)
    files = registry_->AllUris();
  }
  // Quarantined files can never be mounted; drop them from the files of
  // interest before planning so a permanently bad file is skipped for free
  // instead of failing (or stalling) every query that touches its stream.
  {
    const size_t before = files.size();
    files.erase(std::remove_if(files.begin(), files.end(),
                               [this](const std::string& uri) {
                                 return registry_->IsQuarantined(uri);
                               }),
                files.end());
    stats->files_quarantined = before - files.size();
  }
  // Files owned by a dead shard cannot be ingested at all: drop them at
  // planning time — before the rewrite builds their branches — so the query
  // degrades to the same deterministic partial-results path a governance
  // cutoff uses, instead of stalling on a link that refuses every transfer.
  if (sharded && shards->HasDeadShards()) {
    const size_t before = files.size();
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const std::string& uri) {
                                 return !shards->IsShardAlive(
                                     shards->ShardOf(uri, num_shards));
                               }),
                files.end());
    stats->files_skipped_shard = before - files.size();
    if (stats->files_skipped_shard > 0) {
      stats->is_partial = true;
      obs::Tracer::Instant(
          "shard_skip", "shard",
          {{"files_skipped_shard",
            std::to_string(stats->files_skipped_shard)}});
    }
  }
  stats->files_of_interest = files.size();

  // ---- Run-time query optimization phase. The span closes where
  // rewrite_nanos stops counting (or at any early return on abort/error).
  const uint64_t t_rw = NowNanos();
  std::optional<obs::TraceSpan> rewrite_span;
  rewrite_span.emplace("rewrite", "query");
  rewrite_span->AddArg("files_of_interest", static_cast<uint64_t>(files.size()));
  const ExprPtr d_predicate = FindActualScanPredicate(split.plan, *catalog);
  DEX_ASSIGN_OR_RETURN(std::vector<FileDecision> decisions,
                       DecideFiles(files, d_predicate, opts));
  for (const FileDecision& d : decisions) {
    switch (d.action) {
      case FileDecision::Action::kMount:
        ++stats->files_planned_mount;
        break;
      case FileDecision::Action::kCacheScan:
        ++stats->files_planned_cache;
        break;
      case FileDecision::Action::kSkip:
        ++stats->files_pruned;
        break;
    }
  }
  // Pin the cache entries the rewritten plan will scan: budget-pressure
  // eviction while the query runs must not invalidate branches of the very
  // plan being executed. Unpinned by `cleanup` on every return path.
  if (cache_ != nullptr) {
    for (const FileDecision& d : decisions) {
      if (d.action == FileDecision::Action::kCacheScan) {
        cache_->Pin(d.uri);
        pinned_uris.push_back(d.uri);
      }
    }
  }

  // Informativeness at the breakpoint. The stage-1-harvested record-window
  // index backs the estimate when Q_f carries no record-level columns.
  DEX_ASSIGN_OR_RETURN(
      stats->breakpoint,
      EstimateInformativeness(qf_result, files, *registry_, cache_, d_predicate,
                              opts.model, info_index_));
  stats->breakpoint.files_pruned = stats->files_pruned;
  stats->breakpoint_evaluated = true;
  if (callback != nullptr &&
      callback(stats->breakpoint) == BreakpointDecision::kAbort) {
    return Status::Aborted("query aborted by the explorer at the breakpoint");
  }

  PlanPtr union_node;
  DEX_ASSIGN_OR_RETURN(PlanPtr stage2_plan,
                       RewriteStage2Impl(split.plan, kQfResultId, decisions,
                                         &union_node, catalog, opts));

  // Named results available to stage 2.
  if (qf_result != nullptr) ctx.named_results[kQfResultId] = qf_result;
  // Empty-relation placeholders (one per actual table) for the zero-files
  // case; fix up the result-scan schemas too.
  std::function<Status(const PlanPtr&)> fix_empties =
      [&](const PlanPtr& node) -> Status {
    if (node->kind == PlanKind::kResultScan &&
        node->result_id.rfind(kEmptyResultId, 0) == 0) {
      const std::string table = node->result_id.substr(strlen(kEmptyResultId) + 1);
      DEX_ASSIGN_OR_RETURN(TablePtr base, catalog->GetTable(table));
      auto empty = std::make_shared<Table>(table, base->schema());
      ctx.named_results[node->result_id] = empty;
      node->output_schema = base->schema();
    }
    for (const PlanPtr& c : node->children) {
      DEX_RETURN_NOT_OK(fix_empties(c));
    }
    return Status::OK();
  };
  DEX_RETURN_NOT_OK(fix_empties(stage2_plan));
  DEX_RETURN_NOT_OK(AnalyzePlan(stage2_plan, *catalog));
  if (rewrite_span.has_value()) {
    rewrite_span->AddArg("planned_mount",
                         static_cast<uint64_t>(stats->files_planned_mount));
    rewrite_span->AddArg("planned_cache",
                         static_cast<uint64_t>(stats->files_planned_cache));
    rewrite_span->AddArg("pruned", static_cast<uint64_t>(stats->files_pruned));
    rewrite_span.reset();
  }
  stats->rewrite_nanos = NowNanos() - t_rw;

  // ---- Stage 2: multi-stage (batched) or single-shot.
  const uint64_t t2 = NowNanos();
  std::optional<obs::TraceSpan> stage2_span;
  stage2_span.emplace("stage2", "query");
  const bool batched = opts.mount_batch_size > 0 && union_node != nullptr &&
                       union_node->kind == PlanKind::kUnion &&
                       union_node->children.size() > opts.mount_batch_size;
  if (batched) {
    // Ingest the union's branches in batches, with a breakpoint after each.
    DEX_ASSIGN_OR_RETURN(TablePtr base, catalog->GetTable(kDataTableName));
    auto buffer = std::make_shared<Table>(kIngestedResultId, base->schema());
    const size_t batch = opts.mount_batch_size;
    const size_t num_batches =
        (union_node->children.size() + batch - 1) / batch;
    for (size_t b = 0; b < num_batches; ++b) {
      // Clean cancellation point between ingestion batches: nothing of the
      // aborted query survives except cache/quarantine entries already
      // committed, which are consistent on their own.
      if (qctx != nullptr) DEX_RETURN_NOT_OK(qctx->CheckInterrupt());
      std::vector<PlanPtr> group(
          union_node->children.begin() + static_cast<long>(b * batch),
          union_node->children.begin() +
              static_cast<long>(std::min((b + 1) * batch,
                                         union_node->children.size())));
      PlanPtr sub = MakeUnion(std::move(group));
      DEX_RETURN_NOT_OK(AnalyzePlan(sub, *catalog));
      obs::TraceSpan batch_span("ingest_batch", "query");
      batch_span.AddArg("batch", static_cast<uint64_t>(b + 1));
      // Parallelism is per ingestion wave: each batch's mounts overlap, the
      // breakpoint between batches stays a clean barrier.
      DEX_RETURN_NOT_OK(PremountUnion(sub, workers, priority, stats,
                                      premounted.get(), qctx, &opts.pruning,
                                      shards, num_shards));
      DEX_ASSIGN_OR_RETURN(TablePtr part, ExecutePlan(sub, &ctx));
      if (profiler != nullptr) {
        profiler->AddRoot("stage 2 ingestion (batch " + std::to_string(b + 1) +
                              ")",
                          sub);
      }
      DEX_RETURN_NOT_OK(buffer->AppendTable(*part));
      if (callback != nullptr) {
        BreakpointInfo progress = stats->breakpoint;
        progress.batch_index = b + 1;
        progress.num_batches = num_batches;
        progress.rows_ingested_so_far = buffer->num_rows();
        if (callback(progress) == BreakpointDecision::kAbort) {
          return Status::Aborted("query aborted during multi-stage ingestion");
        }
      }
    }
    ctx.named_results[kIngestedResultId] = buffer;
    // Splice the buffer in place of the union and run the rest of the plan.
    std::function<PlanPtr(const PlanPtr&)> splice =
        [&](const PlanPtr& node) -> PlanPtr {
      if (node == union_node) {
        return MakeResultScan(kIngestedResultId, base->schema());
      }
      auto copy = std::make_shared<LogicalPlan>(*node);
      copy->children.clear();
      for (const PlanPtr& c : node->children) copy->children.push_back(splice(c));
      return copy;
    };
    stage2_plan = splice(stage2_plan);
    DEX_RETURN_NOT_OK(AnalyzePlan(stage2_plan, *catalog));
  } else {
    DEX_RETURN_NOT_OK(PremountUnion(union_node, workers, priority, stats,
                                    premounted.get(), qctx, &opts.pruning,
                                    shards, num_shards));
  }
  DEX_ASSIGN_OR_RETURN(TablePtr result, ExecutePlan(stage2_plan, &ctx));
  if (profiler != nullptr) profiler->AddRoot("stage 2", stage2_plan);
  if (stage2_span.has_value()) {
    stage2_span->AddArg("rows", result->num_rows());
    stage2_span.reset();
  }
  stats->stage2_nanos = NowNanos() - t2;
  stats->exec = ctx.stats;
  return result;
}

}  // namespace dex
