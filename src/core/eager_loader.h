#ifndef DEX_CORE_EAGER_LOADER_H_
#define DEX_CORE_EAGER_LOADER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/file_registry.h"
#include "core/format_adapter.h"
#include "mseed/scanner.h"
#include "storage/catalog.h"

namespace dex {

/// \brief Timings and sizes of an eager (Ei) load, the paper's baseline.
struct EagerLoadStats {
  uint64_t scan_nanos = 0;    // metadata extraction
  uint64_t load_nanos = 0;    // decompress + materialize actual data
  uint64_t index_nanos = 0;   // PK/FK index construction
  uint64_t repo_bytes = 0;    // size of the mSEED repository
  uint64_t db_bytes = 0;      // loaded tables, without indexes
  uint64_t index_bytes = 0;   // "+keys" of Table 1
  uint64_t rows_loaded = 0;   // rows in D
  uint64_t sim_io_nanos = 0;  // simulated write/read time during the load
};

/// \brief Ei: "the entire input repository is loaded eagerly up-front"
/// (paper §4), then primary and foreign key indexes are built — F(uri) and
/// R(uri, record_id) primary keys, R(uri) and D(uri, record_id) foreign keys.
class EagerLoader {
 public:
  /// Loads every file under `scan` into catalog tables F, R, D. The catalog
  /// must not yet contain them. Files must already be in `registry`.
  static Result<EagerLoadStats> LoadAll(const mseed::ScanResult& scan,
                                        Catalog* catalog, FileRegistry* registry,
                                        FormatAdapter* format,
                                        bool build_indexes);
};

}  // namespace dex

#endif  // DEX_CORE_EAGER_LOADER_H_
