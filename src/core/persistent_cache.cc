#include "core/persistent_cache.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/fnv.h"
#include "io/file_io.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace dex {

namespace {

constexpr char kManifestMagic[8] = {'D', 'X', 'M', 'A', 'N', '0', '0', '1'};
constexpr char kManifestName[] = "MANIFEST";
constexpr char kEntryExtension[] = ".dxcol";

// Manifest updates are modeled as one fixed-size append: the charge per
// persist must not depend on how many entries happen to precede it, or the
// per-task sim buckets (and with them the replayed critical path) would vary
// with insertion order across worker counts.
constexpr uint64_t kManifestAppendBytes = 4096;

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

uint32_t StreamFor(const std::string& uri) {
  return static_cast<uint32_t>(Fnv1aString(uri));
}

std::string HexName(const std::string& uri) {
  const uint64_t h = Fnv1aString(uri);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf) + kEntryExtension;
}

/// Emits the CACHE_QUARANTINE decision to the flight recorder (mirroring
/// PR 1's file-quarantine surfacing) and auto-dumps the ring: a corrupt
/// persistent entry is exactly the "what led up to this?" moment the
/// recorder exists for.
void EmitQuarantineEvent(const std::string& kind, const std::string& uri,
                         const std::string& reason) {
  obs::FlightEvent e;
  e.kind = kind;
  e.detail = "CACHE_QUARANTINE: '" + uri + "' (" + reason + ")";
  if (kind == "cache_stale") e.detail = "'" + uri + "' (" + reason + ")";
  obs::FlightRecorder::Global().Record(std::move(e));
  obs::Tracer::Instant(kind.c_str(), "cache",
                       {{"uri", uri}, {"reason", reason}});
  if (kind == "cache_quarantine") {
    obs::FlightRecorder::Global().AutoDump("cache_quarantine: " + uri);
  }
}

}  // namespace

PersistentCache::PersistentCache(SimDisk* disk, const Options& options)
    : disk_(disk), options_(options) {}

void PersistentCache::ChargeWrite(uint64_t bytes) {
  const double mbps = disk_->options().write_mb_per_sec;
  disk_->ChargeDelay(static_cast<uint64_t>(bytes * 1000.0 / mbps));
}

void PersistentCache::ChargeRead(uint64_t bytes) {
  const double mbps = disk_->options().read_mb_per_sec;
  disk_->ChargeDelay(static_cast<uint64_t>(bytes * 1000.0 / mbps));
}

void PersistentCache::ChargeSeek() {
  disk_->ChargeDelay(
      static_cast<uint64_t>(disk_->options().seek_millis * 1e6));
}

Status PersistentCache::WriteManifestLocked() {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  PutU64(&out, options_.generation);
  PutU64(&out, manifest_.size());
  for (const auto& [uri, e] : manifest_) {
    PutStr(&out, uri);
    PutStr(&out, e.file);
    PutU64(&out, e.encoded_bytes);
    PutU64(&out, e.source_size_bytes);
    PutU64(&out, static_cast<uint64_t>(e.source_mtime_ms));
  }
  PutU64(&out, Fnv1a(out.data(), out.size()));  // footer seal
  ChargeWrite(kManifestAppendBytes);
  return WriteFileAtomic(options_.dir + "/" + kManifestName, out);
}

Status PersistentCache::ReadManifestLocked() {
  const std::string path = options_.dir + "/" + kManifestName;
  if (!FileExists(path)) {
    manifest_.clear();
    return Status::OK();  // empty cache, nothing to recover
  }
  std::string data;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &data));
  ChargeRead(data.size());
  if (data.size() < sizeof(kManifestMagic) + 8 ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("bad cache manifest magic");
  }
  const uint64_t want = Fnv1a(data.data(), data.size() - 8);
  uint64_t got;
  std::memcpy(&got, data.data() + data.size() - 8, 8);
  if (want != got) {
    return Status::Corruption("cache manifest footer checksum mismatch");
  }
  size_t pos = sizeof(kManifestMagic);
  auto u64 = [&](uint64_t* v) -> bool {
    if (pos + 8 > data.size() - 8) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  };
  auto str = [&](std::string* s) -> bool {
    uint64_t n;
    if (!u64(&n) || n > data.size() || pos + n > data.size() - 8) return false;
    *s = data.substr(pos, n);
    pos += n;
    return true;
  };
  uint64_t generation = 0, count = 0;
  if (!u64(&generation) || !u64(&count)) {
    return Status::Corruption("cache manifest truncated");
  }
  if (generation != options_.generation) {
    return Status::Corruption("cache manifest generation " +
                              std::to_string(generation) + " != expected " +
                              std::to_string(options_.generation));
  }
  std::map<std::string, ManifestEntry> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    std::string uri;
    ManifestEntry e;
    uint64_t mtime = 0;
    if (!str(&uri) || !str(&e.file) || !u64(&e.encoded_bytes) ||
        !u64(&e.source_size_bytes) || !u64(&mtime)) {
      return Status::Corruption("cache manifest truncated mid-entry");
    }
    e.source_mtime_ms = static_cast<int64_t>(mtime);
    loaded.emplace(std::move(uri), std::move(e));
  }
  if (pos != data.size() - 8) {
    return Status::Corruption("trailing bytes in cache manifest");
  }
  manifest_ = std::move(loaded);
  return Status::OK();
}

void PersistentCache::QuarantineLocked(const std::string& uri,
                                       const std::string& /*reason*/) {
  auto it = manifest_.find(uri);
  if (it != manifest_.end()) {
    (void)std::remove((options_.dir + "/" + it->second.file).c_str());
    manifest_.erase(it);
  }
  ++stats_.quarantined;
  (void)WriteManifestLocked();
}

bool PersistentCache::Persist(const std::string& uri, const Table& table,
                              ColumnarFileMeta meta) {
  meta.source_uri = uri;
  if (meta.table_byte_size == 0) meta.table_byte_size = table.ByteSize();
  std::string bytes = EncodeColumnarFile(table, meta);
  const uint64_t intended = bytes.size();

  // Draw this file's write fate from its own stream, then apply it
  // physically: the bytes that land are really torn/flipped, so recovery
  // exercises the genuine validation ladder.
  const FaultInjector::CacheWriteFault fault =
      disk_->fault_injector()->OnCacheWrite(StreamFor(uri), intended);
  if (fault.torn) bytes.resize(fault.keep_bytes);
  if (fault.bit_flip && fault.flip_offset < bytes.size()) {
    bytes[fault.flip_offset] =
        static_cast<char>(static_cast<uint8_t>(bytes[fault.flip_offset]) ^
                          fault.flip_mask);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ChargeSeek();
  ChargeWrite(bytes.size());
  const std::string file = HexName(uri);
  const Status st = WriteFileAtomic(options_.dir + "/" + file, bytes);
  if (!st.ok()) {
    ++stats_.persist_failures;
    return false;
  }
  ManifestEntry e;
  e.file = file;
  e.encoded_bytes = intended;
  e.source_size_bytes = meta.source_size_bytes;
  e.source_mtime_ms = meta.source_mtime_ms;
  manifest_[uri] = std::move(e);
  if (!WriteManifestLocked().ok()) {
    ++stats_.persist_failures;
    return false;
  }
  ++stats_.persisted;
  stats_.persisted_bytes += bytes.size();
  return true;
}

Result<TablePtr> PersistentCache::Load(const std::string& uri,
                                       ColumnarFileMeta* meta) {
  std::string quarantine_reason;
  Result<TablePtr> out = [&]() -> Result<TablePtr> {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = manifest_.find(uri);
    if (it == manifest_.end()) {
      return Status::NotFound("no persisted cache entry for '" + uri + "'");
    }
    const std::string path = options_.dir + "/" + it->second.file;
    std::string bytes;
    const Status read = ReadFileToString(path, &bytes);
    if (!read.ok()) {
      quarantine_reason = read.message();
      QuarantineLocked(uri, quarantine_reason);
      ++stats_.load_failures;
      return Status::Corruption("cache entry unreadable: " + read.message());
    }
    // An injected short read returns only a prefix of the real bytes — the
    // decode must catch it exactly like a physically truncated file.
    const FaultInjector::CacheReadFault fault =
        disk_->fault_injector()->OnCacheRead(StreamFor(uri), bytes.size());
    if (fault.short_read) bytes.resize(fault.keep_bytes);
    ChargeSeek();
    ChargeRead(bytes.size());
    auto decoded = DecodeColumnarFile(bytes, meta);
    if (!decoded.ok()) {
      quarantine_reason = decoded.status().message();
      QuarantineLocked(uri, quarantine_reason);
      ++stats_.load_failures;
      return decoded.status();
    }
    ++stats_.loads;
    return decoded;
  }();
  if (!quarantine_reason.empty()) {
    EmitQuarantineEvent("cache_quarantine", uri, quarantine_reason);
  }
  return out;
}

std::vector<PersistentCache::RecoveredEntry> PersistentCache::Recover() {
  std::vector<RecoveredEntry> survivors;
  // kind, uri, reason — emitted after the lock is released.
  std::vector<std::array<std::string, 3>> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ChargeSeek();  // one seek: the cache dir is read back sequentially
    const Status mst = ReadManifestLocked();
    if (!mst.ok()) {
      // The manifest itself is untrustworthy: discard the whole directory.
      // Losing a valid entry to a bad manifest only costs a re-mount;
      // trusting a bad manifest could cost correctness.
      auto files = ListFiles(options_.dir, kEntryExtension);
      if (files.ok()) {
        for (const std::string& f : *files) (void)std::remove(f.c_str());
      }
      (void)std::remove((options_.dir + "/" + kManifestName).c_str());
      manifest_.clear();
      ++stats_.quarantined;
      events.push_back({"cache_quarantine", options_.dir, mst.message()});
    } else {
      // Orphan entry files (present on disk, absent from the sealed
      // manifest — e.g. a crash between entry write and manifest write)
      // are deleted: the manifest is the only source of truth.
      auto files = ListFiles(options_.dir, kEntryExtension);
      if (files.ok()) {
        for (const std::string& f : *files) {
          const std::string base = f.substr(f.find_last_of('/') + 1);
          bool listed = false;
          for (const auto& [uri, e] : manifest_) {
            if (e.file == base) {
              listed = true;
              break;
            }
          }
          if (!listed) (void)std::remove(f.c_str());
        }
      }
      std::vector<std::string> drop_stale, drop_corrupt;
      std::vector<std::string> corrupt_reasons;
      for (const auto& [uri, e] : manifest_) {
        // Ladder step 2: the source file must still be exactly what the
        // entry was persisted against.
        auto size = FileSize(uri);
        auto mtime = FileMtimeMillis(uri);
        if (!size.ok() || !mtime.ok() || *size != e.source_size_bytes ||
            *mtime != e.source_mtime_ms) {
          drop_stale.push_back(uri);
          events.push_back({"cache_stale", uri,
                            "source file changed or vanished since persist"});
          continue;
        }
        // Ladder step 3: read the entry back (short-read faults apply) and
        // verify every checksum by fully decoding it.
        const std::string path = options_.dir + "/" + e.file;
        std::string bytes;
        const Status read = ReadFileToString(path, &bytes);
        if (!read.ok()) {
          drop_corrupt.push_back(uri);
          corrupt_reasons.push_back(read.message());
          continue;
        }
        const FaultInjector::CacheReadFault fault =
            disk_->fault_injector()->OnCacheRead(StreamFor(uri), bytes.size());
        if (fault.short_read) bytes.resize(fault.keep_bytes);
        ChargeRead(bytes.size());
        RecoveredEntry rec;
        rec.uri = uri;
        auto decoded = DecodeColumnarFile(bytes, &rec.meta);
        if (!decoded.ok()) {
          drop_corrupt.push_back(uri);
          corrupt_reasons.push_back(decoded.status().message());
          continue;
        }
        rec.table = std::move(*decoded);
        ++stats_.recovered;
        survivors.push_back(std::move(rec));
      }
      for (const std::string& uri : drop_stale) {
        auto it = manifest_.find(uri);
        if (it != manifest_.end()) {
          (void)std::remove((options_.dir + "/" + it->second.file).c_str());
          manifest_.erase(it);
        }
        ++stats_.stale_dropped;
      }
      for (size_t i = 0; i < drop_corrupt.size(); ++i) {
        const std::string& uri = drop_corrupt[i];
        auto it = manifest_.find(uri);
        if (it != manifest_.end()) {
          (void)std::remove((options_.dir + "/" + it->second.file).c_str());
          manifest_.erase(it);
        }
        ++stats_.quarantined;
        events.push_back({"cache_quarantine", uri, corrupt_reasons[i]});
      }
      if (!drop_stale.empty() || !drop_corrupt.empty()) {
        (void)WriteManifestLocked();
      }
    }
  }
  for (const auto& [kind, uri, reason] : events) {
    EmitQuarantineEvent(kind, uri, reason);
  }
  return survivors;
}

void PersistentCache::Remove(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = manifest_.find(uri);
  if (it == manifest_.end()) return;
  (void)std::remove((options_.dir + "/" + it->second.file).c_str());
  manifest_.erase(it);
  (void)WriteManifestLocked();
}

void PersistentCache::RemoveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [uri, e] : manifest_) {
    (void)std::remove((options_.dir + "/" + e.file).c_str());
  }
  manifest_.clear();
  (void)std::remove((options_.dir + "/" + kManifestName).c_str());
}

}  // namespace dex
