#ifndef DEX_CORE_TWO_STAGE_H_
#define DEX_CORE_TWO_STAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cache_manager.h"
#include "core/derived_metadata.h"
#include "core/file_registry.h"
#include "core/informativeness.h"
#include "core/mounter.h"
#include "core/plan_splitter.h"
#include "engine/executor.h"
#include "exec/query_context.h"
#include "exec/thread_pool.h"
#include "shard/sharded_repository.h"

namespace dex {

class InformativenessIndex;

/// \brief Knobs for the run-time optimization phase between the two stages.
struct TwoStageOptions {
  /// Apply σ_p(∪ ...) → ∪ σ_p(...) and fuse the selection into mounts
  /// (combined select-mount / select-cache-scan access paths).
  bool push_selection_into_union = true;

  /// The paper's strategy question (§3): (a) merge mounted data then run
  /// higher operators in bulk (false), or (b) run higher operators on
  /// sub-tables and merge results (true) — implemented by distributing the
  /// join with Q_f's result over the union of mounts.
  bool distribute_join_over_union = false;

  /// >0 enables multi-stage execution (§5): files of interest are ingested
  /// in batches of this size, with a breakpoint callback between batches.
  size_t mount_batch_size = 0;

  /// The pruning decision ladder (file/record/frame level + kernels). Per
  /// query overridable via QueryOptions::pruning.
  PruningOptions pruning;

  /// Worker threads for stage-2 ingestion: the files of interest planned as
  /// mounts are read/salvaged/decoded as parallel tasks before the union
  /// scan. 0 = hardware concurrency; 1 = the exact legacy serial behavior
  /// (mounts happen inline as the union's branches open). Simulated I/O time
  /// stays deterministic for any value: per-task stall time is accumulated
  /// separately and aggregated as a critical path over `num_threads` lanes,
  /// independent of how the OS schedules the real threads.
  size_t num_threads = 0;

  /// What to do when a file of interest cannot be mounted cleanly: fail the
  /// query (the strict pre-fault-tolerance behavior), skip the file, or
  /// salvage every decodable record from it (default). See OnMountError.
  OnMountError on_mount_error = OnMountError::kSalvage;

  /// Retry/backoff for transiently failing file reads; backoff is charged
  /// as simulated I/O time.
  MountRetryPolicy retry;

  // -- Resource governance --------------------------------------------------
  // When any of the three limits below is set, stage-2 mount admission is
  // *governed*: mounts open inline in union-branch order and each admission
  // is decided against the global simulated clock, so the cutoff — and the
  // partial result — is bit-identical at any num_threads (at the price of no
  // parallel mount overlap for that query). See DESIGN.md §8.8.

  /// Simulated-time deadline per query (0 = none): the query may charge this
  /// many nanoseconds to the SimDisk clock before admission stops /
  /// the query fails, per `on_resource_exhausted`. Deterministic.
  uint64_t sim_deadline_nanos = 0;

  /// Wall-clock deadline per query (0 = none). Inherently nondeterministic —
  /// meant for real interactive sessions, not reproducible experiments.
  uint64_t wall_deadline_nanos = 0;

  /// Database-wide memory budget (0 = unlimited) covering every mounted
  /// partial table of the running query plus all cache entries. On
  /// exhaustion, unpinned cache entries are evicted first; what happens then
  /// is `on_resource_exhausted`.
  uint64_t memory_budget_bytes = 0;

  /// Deadline/budget exhaustion policy: fail the query with
  /// DeadlineExceeded/ResourceExhausted, or degrade to a partial result with
  /// completeness accounting (default). Mirrors OnMountError.
  OnResourceExhausted on_resource_exhausted = OnResourceExhausted::kPartialResults;

  InformativenessModel model;
};

/// \brief What the run-time rewriter decided for each file of interest.
struct FileDecision {
  enum class Action { kMount, kCacheScan, kSkip };
  std::string uri;
  Action action = Action::kMount;
};

/// \brief Statistics of one two-stage execution.
struct TwoStageStats {
  bool split = false;          // Q_f / Q_s decomposition happened
  bool stage1_only = false;    // metadata-only query: stage 1 answered it
  uint64_t stage1_nanos = 0;
  uint64_t rewrite_nanos = 0;  // run-time optimization phase
  uint64_t stage2_nanos = 0;
  size_t files_of_interest = 0;
  size_t files_planned_mount = 0;
  size_t files_planned_cache = 0;
  size_t files_pruned = 0;
  size_t files_quarantined = 0;  // files of interest dropped as quarantined

  // -- Parallel ingestion -------------------------------------------------
  size_t workers = 1;        // resolved worker-lane count for this execution
  size_t mount_tasks = 0;    // mounts dispatched as parallel tasks
  /// Simulated stall time charged for parallel mount waves: the critical
  /// path (longest worker lane under deterministic list scheduling).
  uint64_t parallel_sim_nanos = 0;
  /// What the same waves would have cost serially (sum over tasks) — the
  /// parallel speedup in simulated time is serial/parallel.
  uint64_t serial_sim_nanos = 0;

  // -- Resource governance ------------------------------------------------
  /// True when the result is incomplete: the deadline or memory budget
  /// stopped mount admission and some files of interest were never ingested.
  bool is_partial = false;
  size_t files_skipped_deadline = 0;  // admission refused: deadline passed
  size_t files_skipped_memory = 0;    // admission refused: budget exhausted
  /// Simulated / wall nanoseconds into the query when admission stopped
  /// (0 when it never did).
  uint64_t cutoff_sim_nanos = 0;
  uint64_t cutoff_wall_nanos = 0;
  /// High-water mark of the memory budget during this query (bytes), and
  /// cache entries evicted under budget pressure to admit new mounts.
  uint64_t mem_reserved_peak = 0;
  uint64_t mem_budget_evictions = 0;

  // -- Sharded execution --------------------------------------------------
  /// Effective shard count this query ran with (1 = unsharded).
  size_t num_shards = 1;
  /// Files of interest dropped at planning time because their owning shard
  /// was dead (they contribute to `is_partial`, like governance skips).
  size_t files_skipped_shard = 0;
  /// Simulated interconnect time this query charged (scatter requests plus
  /// per-file gather responses, including deterministic resend backoff).
  uint64_t net_sim_nanos = 0;
  /// One row per shard that served this query's stage-2 mounts: its slice
  /// of the ingestion and what its link cost. The sharded wave charges
  /// max(disk_sim_nanos + net_sim_nanos) over these rows — each shard is
  /// one serial storage node, so the critical path is the slowest shard,
  /// not the slowest worker lane.
  struct ShardRow {
    int shard = 0;
    size_t files = 0;
    uint64_t disk_sim_nanos = 0;
    uint64_t net_sim_nanos = 0;
    uint64_t net_messages = 0;  // gather/scatter transfers on this link
  };
  std::vector<ShardRow> shard_rows;

  /// Everything the query's mounts did (counters + bounded warnings),
  /// accumulated per query — inline mounts directly, parallel tasks merged
  /// in task order at the wave barrier.
  Mounter::MountOutcome mount;

  ExecStats exec;
  BreakpointInfo breakpoint;
  bool breakpoint_evaluated = false;
};

/// \brief Executes queries under the paper's two-stage paradigm.
///
/// The four physical steps of §3: compile-time optimization happened before
/// (binder + predicate pushdown + SplitPlan); this class runs (1) the partial
/// execution of Q_f, (2) the run-time query optimization phase (rewrite rule
/// (1) plus options above), and (3) the second-stage execution with ALi —
/// optionally ingesting the files of interest on a worker pool (see
/// TwoStageOptions::num_threads).
class TwoStageExecutor {
 public:
  /// Per-query execution environment, overriding the executor's defaults for
  /// one Execute call. Under concurrent serving every query runs against its
  /// own pinned catalog epoch with its own effective options (the session's
  /// defaults merged with per-call overrides), so the executor's members —
  /// shared across queries — must not carry per-query state.
  struct QueryEnv {
    /// The query's snapshot catalog (a pinned epoch); null = the executor's
    /// default catalog. Must stay alive for the whole Execute call.
    Catalog* catalog = nullptr;
    /// Effective options for this query; null = the executor's defaults.
    const TwoStageOptions* options = nullptr;
    /// Worker-pool priority class for this query's mount tasks.
    int priority = ThreadPool::kPriorityNormal;
    /// The sharded repository (null = unsharded database). With more than
    /// one effective shard, stage-2 ingestion runs scatter/gather: mounts
    /// route to their owning shard's node, gathers charge the interconnect,
    /// and the wave costs max over shards instead of a worker-lane makespan.
    ShardedRepository* shards = nullptr;
    /// Per-query shard count (0 = the repository's configured count; other
    /// values are clamped into [1, configured]).
    int num_shards = 0;
  };

  /// `shared_pool`, when non-null, is used for stage-2 mount tasks instead
  /// of a private per-executor pool — the serving layer passes one
  /// database-wide pool so concurrent queries contend (and are prioritized)
  /// on the same workers. The deterministic time model is unaffected: charged
  /// time comes from list-scheduling task buckets onto
  /// `TwoStageOptions::num_threads` lanes, not from the pool's real size.
  TwoStageExecutor(Catalog* catalog, FileRegistry* registry, CacheManager* cache,
                   Mounter* mounter, DerivedMetadata* derived,
                   TwoStageOptions options, ThreadPool* shared_pool = nullptr,
                   const InformativenessIndex* info_index = nullptr)
      : catalog_(catalog),
        registry_(registry),
        cache_(cache),
        mounter_(mounter),
        derived_(derived),
        info_index_(info_index),
        options_(options),
        shared_pool_(shared_pool) {}

  /// Runs `plan` (analyzed, predicates pushed down). `callback` may be null;
  /// when set it is invoked at the stage boundary (and, under multi-stage
  /// execution, after every ingestion batch) and may abort the query.
  /// `profiler`, when set (EXPLAIN ANALYZE), receives per-operator counters
  /// for every executed plan (stage 1, per-batch ingestion, stage 2).
  /// `qctx`, when set, governs the execution: its cancel token is polled per
  /// batch and between ingestion batches, its deadline/budget gate mount
  /// admission (see TwoStageOptions' governance knobs). `env`, when set,
  /// supplies the query's pinned catalog, effective options, and priority.
  Result<TablePtr> Execute(const PlanPtr& plan, const BreakpointCallback& callback,
                           TwoStageStats* stats, PlanProfiler* profiler = nullptr,
                           QueryContext* qctx = nullptr,
                           const QueryEnv* env = nullptr);

  /// Distinct values of the stage-1 result's `uri` column — "the files of
  /// interest are identified, and collected as a list of file URIs".
  static Result<std::vector<std::string>> FilesOfInterest(const TablePtr& qf_result);

  /// The pushed-down selection sitting directly on the actual-data scan
  /// (nullptr when the query has no predicate on actual data).
  static ExprPtr FindActualScanPredicate(const PlanPtr& plan,
                                         const Catalog& catalog);

  /// Applies rewrite rule (1): replaces the StageBreak with a result-scan of
  /// `qf_result_id` and every actual-table scan with a union over per-file
  /// access paths according to `decisions`. Exposed for tests and benches.
  Result<PlanPtr> RewriteStage2(const PlanPtr& split_plan,
                                const std::string& qf_result_id,
                                const std::vector<FileDecision>& decisions,
                                PlanPtr* union_node_out) {
    return RewriteStage2Impl(split_plan, qf_result_id, decisions,
                             union_node_out, catalog_, options_);
  }

  const TwoStageOptions& options() const { return options_; }

  /// Runtime adjustment of the governance knobs (shell `.timeout` /
  /// `.memlimit`). Safe between queries; not synchronized against a query
  /// in flight.
  TwoStageOptions* mutable_options() { return &options_; }

 private:
  /// A mount completed ahead of plan execution by a worker task, keyed by
  /// URI. `predicate` is the exact fused-predicate instance the plan's mount
  /// node carries — the mount_fn serves the premounted table only on pointer
  /// match, falling back to a real mount otherwise.
  struct PremountEntry {
    ExprPtr predicate;
    TablePtr table;
  };
  using PremountMap = std::unordered_map<std::string, PremountEntry>;

  Result<std::vector<FileDecision>> DecideFiles(
      const std::vector<std::string>& files, const ExprPtr& d_predicate,
      const TwoStageOptions& opts);

  /// RewriteStage2 body, parameterized on the query's catalog and effective
  /// options (the public wrapper passes the executor defaults).
  Result<PlanPtr> RewriteStage2Impl(const PlanPtr& split_plan,
                                    const std::string& qf_result_id,
                                    const std::vector<FileDecision>& decisions,
                                    PlanPtr* union_node_out, Catalog* catalog,
                                    const TwoStageOptions& opts);

  /// Mounts `union_node`'s kMount branches as parallel tasks on `workers`
  /// lanes, filling `premounted` and accumulating counters/warnings and the
  /// deterministic critical-path time into `stats`. No-op when the union has
  /// fewer than two mounts (unsharded), and no-op for governed queries
  /// (`qctx` with limits): governed admission is serialized for determinism.
  ///
  /// With `shards` non-null and `num_shards` > 1 the wave runs sharded
  /// scatter/gather instead: it runs for *any* worker count and any number
  /// of mounts (≥ 1), groups mounts by owning shard, performs the gather
  /// transfers on the coordinator in shard/file order (deterministic fault
  /// streams), and charges max over shards of (shard's serial mount time +
  /// shard's net time) — worker-invariant by construction.
  Status PremountUnion(const PlanPtr& union_node, size_t workers, int priority,
                       TwoStageStats* stats, PremountMap* premounted,
                       QueryContext* qctx, const PruningOptions* pruning,
                       ShardedRepository* shards = nullptr, int num_shards = 1);

  /// The shared database-wide pool when one was injected, else a private
  /// cached pool (re)built to `workers` threads when needed.
  ThreadPool* Pool(size_t workers);

  Catalog* catalog_;
  FileRegistry* registry_;
  CacheManager* cache_;
  Mounter* mounter_;
  DerivedMetadata* derived_;
  // Stage-1-harvested record windows backing the breakpoint estimate when
  // Q_f carries no record-level columns (may be null: estimate degrades).
  const InformativenessIndex* info_index_;
  TwoStageOptions options_;
  ThreadPool* shared_pool_;  // not owned; may be null
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dex

#endif  // DEX_CORE_TWO_STAGE_H_
