#ifndef DEX_CORE_INFORMATIVENESS_H_
#define DEX_CORE_INFORMATIVENESS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/file_registry.h"
#include "core/stats_collector.h"
#include "engine/expr.h"
#include "storage/table.h"

namespace dex {

/// \brief What the system learned at the breakpoint between the two stages.
///
/// This realizes the paper's "interactive query execution" direction (§5):
/// after Q_f runs, the system "can let the explorer learn expected time and
/// resource consumption of his query at the breakpoint and let him even
/// change the destiny of his query".
struct BreakpointInfo {
  std::vector<std::string> files_of_interest;
  uint64_t files_cached = 0;       // servable by cache-scan
  uint64_t files_pruned = 0;       // skipped via derived metadata
  uint64_t bytes_to_mount = 0;     // repository bytes ALi will pull
  uint64_t est_rows_to_ingest = 0; // Σ n_samples over matching records
  uint64_t est_result_rows = 0;    // time-window-overlap scaled estimate
  double est_stage2_seconds = 0.0;

  // Multi-stage execution (§5): progress at intermediate ingestion
  // breakpoints. batch 0 of n is the classic post-Q_f breakpoint.
  size_t batch_index = 0;
  size_t num_batches = 1;
  uint64_t rows_ingested_so_far = 0;
};

enum class BreakpointDecision { kContinue, kAbort };

/// Return kAbort to cancel the query before (or during) ingestion; the query
/// then fails with StatusCode::kAborted and no further files are mounted.
using BreakpointCallback = std::function<BreakpointDecision(const BreakpointInfo&)>;

/// \brief Extracts the [lo, hi] window that conjuncts of `predicate` impose
/// on column `column_name` (comparisons against literals). Returns false
/// when unconstrained on that column.
bool ExtractBounds(const ExprPtr& predicate, const std::string& column_name,
                   double* lo, double* hi);

/// \brief Summarizes `predicate` as a time window for cache subsumption:
/// `pure` is set only when every conjunct is a comparison of sample_time
/// against a literal (so the cached tuple set is exactly the window).
CachedWindow SummarizeTimeWindow(const ExprPtr& predicate);

/// \brief Cost-model constants for the stage-2 time estimate.
struct InformativenessModel {
  double mount_mb_per_sec = 120.0;   // matches SimDisk read bandwidth
  double ingest_rows_per_sec = 2e7;  // decode+transform throughput
};

/// \brief Per-file record windows harvested from stage-1 scan events — the
/// breakpoint estimator's fallback when Q_f carries no record-level columns.
///
/// Before the StatsCollector unification the estimator re-scanned the whole
/// R table per query to find the records of the files of interest; now the
/// stage-1 scan (which walks every record's metadata anyway) indexes them
/// per uri as a side effect, and the estimator does one hash lookup per
/// file. Rebuilt on every scan pass (ScanStarted clears). The estimate is a
/// cost model, not a result: a query pinned to an older epoch reading a
/// newer index is acceptable by design.
class InformativenessIndex : public StatsCollector {
 public:
  struct RecordWindow {
    int64_t start_ms = 0;
    int64_t end_ms = 0;
    uint32_t num_samples = 0;
  };

  std::string name() const override { return "informativeness"; }

  void ScanStarted(const std::string& root) override {
    (void)root;
    std::lock_guard<std::mutex> lock(mu_);
    windows_.clear();
  }

  void FileScanned(const mseed::FileMeta& file,
                   const std::vector<mseed::RecordMeta>& records) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto& w = windows_[file.uri];
    w.clear();
    w.reserve(records.size());
    for (const mseed::RecordMeta& r : records) {
      w.push_back({r.start_time_ms, r.end_time_ms, r.num_samples});
    }
  }

  /// The record windows of `uri` (empty when unknown). Copy: the index may
  /// be rebuilt by a concurrent refresh while the caller iterates.
  std::vector<RecordWindow> WindowsFor(const std::string& uri) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = windows_.find(uri);
    return it == windows_.end() ? std::vector<RecordWindow>{} : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<RecordWindow>> windows_;
};

/// \brief Estimates stage-2 cost and result size from the stage-1 output.
///
/// Record-level estimates come from R-level columns (start_time, end_time,
/// n_samples) in `qf_result` when present — the precise record set the query
/// restricted to. When Q_f does not carry them (e.g. the query joins F
/// directly with D), the estimator falls back to `index` (the stage-1
/// harvested per-file record windows, nullable) for the files of interest.
/// `d_predicate` is the selection that will be pushed into the mounts
/// (nullable).
Result<BreakpointInfo> EstimateInformativeness(
    const TablePtr& qf_result, const std::vector<std::string>& files_of_interest,
    const FileRegistry& registry, const CacheManager* cache,
    const ExprPtr& d_predicate, const InformativenessModel& model,
    const InformativenessIndex* index = nullptr);

}  // namespace dex

#endif  // DEX_CORE_INFORMATIVENESS_H_
