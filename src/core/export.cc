#include "core/export.h"

#include <cstdio>

#include "common/time_utils.h"
#include "io/file_io.h"

namespace dex {

namespace {

void AppendCsvString(std::string* out, const std::string& s) {
  const bool needs_quoting = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) {
    *out += s;
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = *table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += ',';
    AppendCsvString(&out, schema.field(c).QualifiedName());
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      const Column& col = *table.column(c);
      switch (col.type()) {
        case DataType::kString:
          AppendCsvString(&out, col.GetString(r));
          break;
        case DataType::kTimestamp:
          out += FormatIso8601(col.GetInt64(r));
          break;
        case DataType::kDouble: {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.17g", col.GetDouble(r));
          out += buf;
          break;
        }
        case DataType::kBool:
          out += col.GetInt64(r) != 0 ? "true" : "false";
          break;
        default:
          out += std::to_string(col.GetInt64(r));
      }
    }
    out += '\n';
  }
  return out;
}

Status ExportTableCsv(const Table& table, const std::string& path) {
  return WriteStringToFile(path, TableToCsv(table));
}

}  // namespace dex
