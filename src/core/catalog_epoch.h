#ifndef DEX_CORE_CATALOG_EPOCH_H_
#define DEX_CORE_CATALOG_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "storage/catalog.h"

namespace dex {

/// \brief One immutable snapshot of the metadata catalog, identified by a
/// monotonically increasing id.
///
/// Queries pin the epoch that was current when they were admitted and read
/// only through it for their whole lifetime — snapshot isolation at metadata
/// granularity: a Refresh() publishing a new epoch mid-query never changes
/// what an in-flight query sees. "Immutable" is by convention, not by type:
/// the catalog is mutated exactly once, between Clone() and Publish(), on
/// the refreshing thread, before any other thread can observe it.
struct MetadataEpoch {
  uint64_t id = 0;
  std::unique_ptr<Catalog> catalog;
  /// Set (once, by EpochManager::Publish) when a newer epoch replaced this
  /// one; the destructor of a superseded epoch counts as a retirement.
  std::atomic<bool> superseded{false};
};

/// A pin on an epoch: holding it keeps the epoch's catalog alive. When the
/// last pin on a *superseded* epoch drops, the epoch is retired (counted in
/// `EpochManager::epochs_retired()` and the `serve.epoch_retired` metric).
using EpochPtr = std::shared_ptr<const MetadataEpoch>;

/// \brief Owner of the current catalog epoch; the publication point of
/// Database::Refresh / quarantine-table sync under concurrent serving.
///
/// Thread-safe. `Pin()` is the read side (every query admission);
/// `Publish()` the write side (copy-on-write: callers Clone() the pinned
/// catalog, mutate the private clone, then swap it in here). Retirement of
/// old epochs is driven entirely by shared_ptr refcounts — no epoch list,
/// no background reclamation thread.
class EpochManager {
 public:
  explicit EpochManager(std::unique_ptr<Catalog> initial);

  /// The current epoch, pinned. Never null.
  EpochPtr Pin() const;

  /// Installs `next` as the new current epoch and marks the previous one
  /// superseded. Returns the newly published epoch.
  EpochPtr Publish(std::unique_ptr<Catalog> next);

  uint64_t current_id() const;

  /// Superseded epochs whose last pin has dropped.
  uint64_t epochs_retired() const {
    return retired_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<MetadataEpoch> Wrap(std::unique_ptr<Catalog> catalog);

  mutable std::mutex mu_;
  std::shared_ptr<MetadataEpoch> current_;  // guarded by mu_; never null
  uint64_t next_id_ = 1;                    // guarded by mu_; 0 means "unset"
  // Shared with the epoch deleters, which may outlive this manager's use
  // sites (a query can hold a pin across the manager's final Publish).
  std::shared_ptr<std::atomic<uint64_t>> retired_;
};

}  // namespace dex

#endif  // DEX_CORE_CATALOG_EPOCH_H_
