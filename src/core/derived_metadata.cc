#include "core/derived_metadata.h"

#include <algorithm>

#include "core/seismic_schema.h"

namespace dex {

Result<std::unique_ptr<DerivedMetadata>> DerivedMetadata::Create(Catalog* catalog) {
  auto table = std::make_shared<Table>(kDerivedTableName, MakeDerivedSchema());
  std::unique_ptr<DerivedMetadata> dm(new DerivedMetadata(table));
  DEX_RETURN_NOT_OK(catalog->AddTable(std::move(table), TableKind::kMetadata));
  return dm;
}

Status DerivedMetadata::RecordMounted(
    const std::string& uri, int64_t record_id,
    const mseed::RecordHeader& header, const RecordValueStats& values,
    const std::vector<mseed::Steim1::FrameStat>* frames,
    uint32_t expected_records) {
  (void)header;
  (void)frames;
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = uri + '\0' + std::to_string(record_id);
  if (record_stats_.count(key) > 0) return Status::OK();
  record_stats_.emplace(key, true);

  const double n = static_cast<double>(values.count);
  DEX_RETURN_NOT_OK(table_->AppendRow(
      {Value::String(uri), Value::Int64(record_id), Value::Double(values.min),
       Value::Double(values.max), Value::Double(n > 0 ? values.sum / n : 0.0),
       Value::Double(values.sum), Value::Int64(static_cast<int64_t>(n))}));

  FileStats& fs = file_stats_[uri];
  if (fs.records_seen == 0) {
    fs.min_value = values.min;
    fs.max_value = values.max;
  } else {
    fs.min_value = std::min(fs.min_value, values.min);
    fs.max_value = std::max(fs.max_value, values.max);
  }
  fs.records_seen += 1;
  fs.expected_records = expected_records;
  return Status::OK();
}

bool DerivedMetadata::HasCompleteFile(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  return HasCompleteFileLocked(uri);
}

bool DerivedMetadata::HasCompleteFileLocked(const std::string& uri) const {
  auto it = file_stats_.find(uri);
  return it != file_stats_.end() && it->second.expected_records > 0 &&
         it->second.records_seen >= it->second.expected_records;
}

bool DerivedMetadata::MayMatchValueRange(const std::string& uri, double lo,
                                         double hi) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!HasCompleteFileLocked(uri)) return true;
  const FileStats& fs = file_stats_.at(uri);
  return fs.max_value >= lo && fs.min_value <= hi;
}

}  // namespace dex
