#include "core/database.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "io/file_io.h"

#include "core/metadata_snapshot.h"
#include "core/metrics_publish.h"
#include "core/plan_splitter.h"
#include "core/seismic_schema.h"
#include "engine/optimizer.h"
#include "engine/plan_profile.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sql/binder.h"

namespace dex {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Warnings copied into each QueryStats are bounded so a query over a rotten
// repository cannot bloat its own result.
constexpr size_t kMaxQueryWarnings = 32;

/// Case-insensitively consumes leading whitespace plus `kw` at *pos; the
/// keyword must end at a word boundary. Advances *pos past it on match.
bool ConsumeKeyword(const std::string& sql, size_t* pos, const char* kw) {
  size_t p = *pos;
  while (p < sql.size() && std::isspace(static_cast<unsigned char>(sql[p]))) ++p;
  size_t k = 0;
  while (kw[k] != '\0') {
    if (p + k >= sql.size() ||
        std::toupper(static_cast<unsigned char>(sql[p + k])) != kw[k]) {
      return false;
    }
    ++k;
  }
  if (p + k < sql.size() &&
      !std::isspace(static_cast<unsigned char>(sql[p + k]))) {
    return false;
  }
  *pos = p + k;
  return true;
}

/// Renders multi-line plan text as a one-column "QUERY PLAN" result table —
/// how EXPLAIN [ANALYZE] returns through the SQL front end.
Result<TablePtr> PlanTextTable(const std::string& text) {
  auto schema = std::make_shared<Schema>();
  schema->AddField({"QUERY PLAN", DataType::kString, ""});
  auto table = std::make_shared<Table>("explain", schema);
  size_t rows = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    table->mutable_column(0)->AppendString(text.substr(start, end - start));
    ++rows;
    start = end + 1;
  }
  DEX_RETURN_NOT_OK(table->CommitAppendedRows(rows));
  return table;
}

/// Forces span tracing on for one query, restoring the previous state.
class ScopedTrace {
 public:
  ScopedTrace() : saved_(obs::Tracer::Global().enabled()) {
    obs::Tracer::Global().set_enabled(true);
  }
  ~ScopedTrace() { obs::Tracer::Global().set_enabled(saved_); }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool saved_;
};

}  // namespace

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() {
  SaveZoneMaps();
  obs::FlightRecorder::Global().UninstallClock(this);
}

void Database::SaveZoneMaps() {
  if (zone_maps_ == nullptr || options_.zone_map_path.empty()) return;
  Status s = zone_maps_->SaveIfDirty(options_.zone_map_path);
  if (!s.ok()) {
    DEX_LOG(Warning) << "zone-map save to '" << options_.zone_map_path
                     << "' failed: " << s.ToString();
  }
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& repo_root,
                                                 const DatabaseOptions& options) {
  std::unique_ptr<Database> db(new Database(options));
  obs::TraceSpan span("open", "lifecycle");
  span.AddArg("repo", repo_root);
  db->repo_root_ = repo_root;
  db->disk_ = std::make_unique<SimDisk>(options.disk);
  // Flight-recorder events are stamped with this database's charged
  // simulated time — the deterministic clock every dump sorts on. The last
  // database opened owns the clock; the destructor uninstalls only its own.
  obs::FlightRecorder::Global().InstallClock(
      db.get(), [disk = db->disk_.get()] { return disk->stats().sim_nanos; });
  // The sharded repository always exists — with one shard (the default) it
  // is inert and every executor keeps its classic single-node cost model.
  db->shards_ =
      std::make_unique<ShardedRepository>(db->disk_.get(), options.shard);
  db->registry_ = std::make_unique<FileRegistry>(db->disk_.get());
  db->cache_ = std::make_unique<CacheManager>(options.cache);
  // The global memory budget covers mounted partial tables and cache entries
  // alike; the cache reserves/releases through it from here on.
  db->memory_budget_ =
      std::make_unique<MemoryBudget>(options.two_stage.memory_budget_bytes);
  db->cache_->AttachBudget(db->memory_budget_.get());
  // The cache's durable tier: recover whatever the last process persisted,
  // running every entry through the validation ladder (stale sources dropped,
  // corrupt files quarantined-and-deleted), and seed the in-memory cache with
  // the survivors — the actual-data counterpart of the metadata snapshot's
  // instant-on.
  if (options.mode == IngestionMode::kLazy && !options.cache_dir.empty() &&
      options.cache.policy != CachePolicy::kNone) {
    PersistentCache::Options popts;
    popts.dir = options.cache_dir;
    db->persistent_cache_ =
        std::make_unique<PersistentCache>(db->disk_.get(), popts);
    db->cache_->AttachPersistent(db->persistent_cache_.get());
    std::vector<PersistentCache::RecoveredEntry> recovered =
        db->persistent_cache_->Recover();
    for (PersistentCache::RecoveredEntry& r : recovered) {
      db->cache_->AdoptRecovered(r.uri, r.meta, std::move(r.table));
    }
    const PersistentCache::Stats pstats = db->persistent_cache_->stats();
    db->open_stats_.cache_entries_recovered = pstats.recovered;
    db->open_stats_.cache_entries_quarantined = pstats.quarantined;
    db->open_stats_.cache_entries_stale = pstats.stale_dropped;
  }
  // One database-wide worker pool: every query's mount tasks and every
  // refresh's scan tasks land here, scheduled by priority class.
  db->pool_ = std::make_unique<ThreadPool>(
      options.pool_threads == 0 ? ThreadPool::DefaultConcurrency()
                                : options.pool_threads);

  // The catalog is built privately here and becomes epoch 0 at the end of
  // Open; from then on it is only ever mutated copy-on-write via publishes.
  auto catalog = std::make_unique<Catalog>(db->disk_.get());

  // Resolve the repository's file format.
  if (options.format != nullptr) {
    db->format_ = options.format;
  } else {
    DEX_ASSIGN_OR_RETURN(db->format_, DetectFormat(repo_root));
  }

  // Scan the repository: extract file- and record-level metadata. This is
  // the only up-front data access ALi performs, driven by the parallel
  // stage-1 scanner (per-file ScanFile tasks, bit-identical results at any
  // stage1_threads). With a metadata snapshot ("instant-on"), unchanged
  // files skip the header parse entirely — the snapshot is the baseline.
  const uint64_t t0 = NowNanos();
  // Stats collectors (core/stats_collector.h). Coverage and the
  // informativeness index are always on — metadata-only, cheap. Zone maps
  // per options; persisted zone maps are restored *before* the scan so
  // FileScanned can drop entries whose file identity changed (safety-ladder
  // step 1). They must all exist before the Open scan to see its events.
  db->coverage_ = std::make_unique<CoverageCollector>();
  db->info_index_ = std::make_unique<InformativenessIndex>();
  if (options.collect_zone_maps) {
    db->zone_maps_ = std::make_unique<ZoneMapStore>();
    if (!options.zone_map_path.empty()) {
      DEX_RETURN_NOT_OK(db->zone_maps_->Load(options.zone_map_path));
    }
  }
  StatsCollectorSet scan_collectors;
  scan_collectors.Register(db->coverage_.get());
  scan_collectors.Register(db->info_index_.get());
  scan_collectors.Register(db->zone_maps_.get());
  db->stage1_ = std::make_unique<Stage1Scanner>(
      db->format_.get(), db->registry_.get(), db->pool_.get(),
      scan_collectors);
  mseed::ScanResult baseline;
  bool have_baseline = false;
  if (!options.metadata_snapshot_path.empty() &&
      FileExists(options.metadata_snapshot_path)) {
    auto loaded = LoadSnapshot(options.metadata_snapshot_path);
    if (loaded.ok()) {
      baseline = std::move(*loaded);
      have_baseline = true;
    }
    // A corrupt or stale snapshot falls back to a full scan.
  }
  Stage1Options sopts;
  sopts.num_threads = options.stage1_threads;
  sopts.on_error = options.two_stage.on_mount_error;
  sopts.retry = options.two_stage.retry;
  sopts.shards = db->shards_.get();
  Stage1Stats sstats;
  DEX_ASSIGN_OR_RETURN(
      mseed::ScanResult scan,
      db->stage1_->Scan(repo_root, have_baseline ? &baseline : nullptr, sopts,
                        &sstats));
  if (!options.metadata_snapshot_path.empty()) {
    DEX_RETURN_NOT_OK(SaveSnapshot(scan, options.metadata_snapshot_path));
  }
  db->open_stats_.metadata_scan_nanos = NowNanos() - t0;
  db->open_stats_.snapshot_files_reused = sstats.files_reused;
  db->open_stats_.scan_workers = sstats.workers;
  db->open_stats_.scan_serial_sim_nanos = sstats.serial_sim_nanos;
  db->open_stats_.scan_parallel_sim_nanos = sstats.parallel_sim_nanos;
  db->open_stats_.num_shards = sstats.num_shards;
  db->open_stats_.scan_net_sim_nanos = sstats.net_sim_nanos;
  db->open_stats_.repo_bytes = scan.total_bytes;
  db->open_stats_.num_files = scan.files.size();
  db->open_stats_.num_records = scan.records.size();

  if (options.mode == IngestionMode::kEager) {
    DEX_ASSIGN_OR_RETURN(
        EagerLoadStats load,
        EagerLoader::LoadAll(scan, catalog.get(), db->registry_.get(),
                             db->format_.get(), options.build_indexes));
    db->open_stats_.load_nanos = load.load_nanos;
    db->open_stats_.index_nanos = load.index_nanos;
    db->open_stats_.db_bytes = load.db_bytes;
    db->open_stats_.index_bytes = load.index_bytes;
    db->open_stats_.num_data_rows = load.rows_loaded;
  } else {
    // ALi: load only metadata; D exists but stays empty.
    DEX_ASSIGN_OR_RETURN(TablePtr f_table, BuildFileTable(scan));
    DEX_ASSIGN_OR_RETURN(TablePtr r_table, BuildRecordTable(scan));
    DEX_RETURN_NOT_OK(catalog->AddTable(f_table, TableKind::kMetadata));
    DEX_RETURN_NOT_OK(catalog->AddTable(r_table, TableKind::kMetadata));
    DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kFileTableName));
    DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kRecordTableName));
    auto d_table = std::make_shared<Table>(kDataTableName, MakeDataSchema());
    DEX_RETURN_NOT_OK(catalog->AddTable(d_table, TableKind::kActual));
    // File health is queryable like GAPS/OVERLAPS: an (initially empty)
    // QUARANTINE metadata table, refreshed whenever mounting quarantines or
    // rehabilitates a file.
    DEX_ASSIGN_OR_RETURN(TablePtr q_table, db->registry_->BuildQuarantineTable());
    DEX_RETURN_NOT_OK(catalog->AddTable(q_table, TableKind::kMetadata));
    DEX_RETURN_NOT_OK(catalog->SyncStorageSize(kQuarantineTableName));
  }
  {
    DEX_ASSIGN_OR_RETURN(TablePtr f_table, catalog->GetTable(kFileTableName));
    DEX_ASSIGN_OR_RETURN(TablePtr r_table, catalog->GetTable(kRecordTableName));
    db->open_stats_.metadata_bytes = f_table->ByteSize() + r_table->ByteSize();
  }

  if (options.collect_derived_metadata) {
    DEX_ASSIGN_OR_RETURN(db->derived_, DerivedMetadata::Create(catalog.get()));
  }

  // Freeze the built catalog as epoch 0 and wire up the executors.
  db->epochs_ = std::make_unique<EpochManager>(std::move(catalog));
  db->pinned_latest_ = db->epochs_->Pin();
  db->initial_epoch_ = db->pinned_latest_;
  StatsCollectorSet mount_collectors;
  mount_collectors.Register(db->derived_.get());
  mount_collectors.Register(db->zone_maps_.get());
  db->mounter_ = std::make_unique<Mounter>(
      db->registry_.get(), db->cache_.get(), mount_collectors,
      db->zone_maps_.get(), db->format_.get(),
      options.two_stage.on_mount_error, options.two_stage.retry);
  db->two_stage_ = std::make_unique<TwoStageExecutor>(
      db->initial_epoch_->catalog.get(), db->registry_.get(), db->cache_.get(),
      db->mounter_.get(), db->derived_.get(), options.two_stage,
      db->pool_.get(), db->info_index_.get());
  db->open_stats_.sim_io_nanos = db->disk_->stats().sim_nanos;
  PublishOpenMetrics(db->open_stats_);
  PublishIoMetrics(db->disk_->stats());
  return db;
}

Status Database::SyncQuarantineTable() {
  if (options_.mode != IngestionMode::kLazy) return Status::OK();
  std::lock_guard<std::mutex> lock(publish_mu_);
  if (registry_->health_version() == quarantine_table_version_) {
    return Status::OK();
  }
  // Copy-on-write publish: clone the latest epoch, swap in the rebuilt
  // QUARANTINE table, publish. In-flight queries keep their pinned epochs.
  DEX_ASSIGN_OR_RETURN(TablePtr q_table, registry_->BuildQuarantineTable());
  std::unique_ptr<Catalog> next = pinned_latest_->catalog->Clone();
  DEX_RETURN_NOT_OK(next->ReplaceTable(std::move(q_table)));
  pinned_latest_ = epochs_->Publish(std::move(next));
  quarantine_table_version_ = registry_->health_version();
  return Status::OK();
}

Result<QueryResult> Database::RunQuery(const std::string& sql,
                                       const QueryOptions& options,
                                       EpochPtr epoch,
                                       PlanProfiler* profiler) {
  // EXPLAIN [ANALYZE] enters through the same front door as a SELECT and
  // returns through it too, as a one-column "QUERY PLAN" table.
  {
    size_t pos = 0;
    if (ConsumeKeyword(sql, &pos, "EXPLAIN")) {
      const bool analyze = ConsumeKeyword(sql, &pos, "ANALYZE");
      const std::string inner = sql.substr(pos);
      if (analyze) return RunExplainAnalyze(inner, options, std::move(epoch));
      DEX_ASSIGN_OR_RETURN(std::string text, Explain(inner));
      QueryResult out;
      DEX_ASSIGN_OR_RETURN(out.table, PlanTextTable(text));
      out.stats.result_rows = out.table->num_rows();
      return out;
    }
  }

  std::optional<ScopedTrace> trace_on;
  if (options.trace) trace_on.emplace();

  // Fold any out-of-band health changes (quarantines from a prior query,
  // rehabilitations via Refresh/Update) into the queryable QUARANTINE table
  // before this query pins its snapshot.
  DEX_RETURN_NOT_OK(SyncQuarantineTable());

  // Snapshot isolation: the query reads the epoch that was current at
  // submission (caller-pinned by the serving layer) or now, for its whole
  // lifetime. Concurrent publishes never change what it sees.
  const EpochPtr pinned = epoch != nullptr ? std::move(epoch) : epochs_->Pin();
  Catalog* catalog = pinned->catalog.get();

  // This query's effective options: a snapshot of the database-wide defaults
  // with the per-query overrides applied. The defaults are never mutated, so
  // concurrent queries cannot observe each other's overrides.
  TwoStageOptions effective;
  {
    std::lock_guard<std::mutex> lock(options_mu_);
    effective = two_stage_->options();
  }
  if (options.sim_deadline_nanos) {
    effective.sim_deadline_nanos = *options.sim_deadline_nanos;
  }
  if (options.wall_deadline_nanos) {
    effective.wall_deadline_nanos = *options.wall_deadline_nanos;
  }
  if (options.on_resource_exhausted) {
    effective.on_resource_exhausted = *options.on_resource_exhausted;
  }
  if (options.num_threads) effective.num_threads = *options.num_threads;
  if (options.pruning) effective.pruning = *options.pruning;

  QueryResult out;
  out.stats.epoch = pinned->id;
  // The query's root span parents under the serving layer's submit span
  // when one was handed down — the whole admission-to-result path renders
  // as one tree in the Chrome trace.
  const uint64_t query_parent = options.trace_parent_span != 0
                                    ? options.trace_parent_span
                                    : obs::Tracer::CurrentSpanId();
  obs::TraceSpan query_span("query", "query", query_parent);
  query_span.AddArg("sql", sql);
  query_span.AddArg("epoch", pinned->id);
  if (!options.session.empty()) query_span.AddArg("session", options.session);

  // Everything this query charges to the shared simulated clock is teed into
  // its own counter: per-query sim_io_nanos (and the deadline timeline) stay
  // independent of what concurrent queries charge.
  uint64_t query_sim_nanos = 0;
  {
    SimDisk::QueryTimeScope qscope(&query_sim_nanos);

    const uint64_t t0 = NowNanos();
    PlanPtr plan;
    {
      obs::TraceSpan span("parse_bind", "query");
      DEX_ASSIGN_OR_RETURN(plan, sql::PlanQuery(sql, *catalog));
    }
    {
      obs::TraceSpan span("optimize", "query");
      DEX_ASSIGN_OR_RETURN(plan, PushDownPredicates(plan, *catalog));
      DEX_ASSIGN_OR_RETURN(plan, FuseTopK(plan, *catalog));
    }
    out.stats.plan_nanos = NowNanos() - t0;

    // Resource governance: deadlines from the effective options, measured on
    // the query's own timeline; the shared memory budget plus an optional
    // per-query cap.
    QueryContext qctx(
        {effective.sim_deadline_nanos, effective.wall_deadline_nanos},
        memory_budget_.get(), options.cancel);
    qctx.Start(disk_->stats().sim_nanos);
    qctx.AttachSimCounter(&query_sim_nanos);
    if (options.memory_budget_bytes) {
      qctx.set_query_memory_limit(*options.memory_budget_bytes);
    }

    const uint64_t t1 = NowNanos();
    if (options_.mode == IngestionMode::kEager) {
      ExecContext ctx;
      ctx.catalog = catalog;
      ctx.use_index_joins = options_.use_index_joins;
      ctx.profiler = profiler;
      if (options.cancel != nullptr) {
        ctx.interrupt_fn = [&qctx] { return qctx.CheckInterrupt(); };
      }
      DEX_ASSIGN_OR_RETURN(out.table, ExecutePlan(plan, &ctx));
      if (profiler != nullptr) profiler->AddRoot("plan", plan);
      out.stats.two_stage.exec = ctx.stats;
    } else {
      TwoStageExecutor::QueryEnv env;
      env.catalog = catalog;
      env.options = &effective;
      env.priority = options.priority;
      env.shards = shards_.get();
      env.num_shards = options.num_shards.value_or(0);
      DEX_ASSIGN_OR_RETURN(
          out.table,
          two_stage_->Execute(plan, options.breakpoint, &out.stats.two_stage,
                              profiler, &qctx, &env));
    }
    out.stats.exec_nanos = NowNanos() - t1;
  }
  out.stats.sim_io_nanos = query_sim_nanos;
  out.stats.result_rows = out.table->num_rows();
  query_span.AddArg("result_rows", out.stats.result_rows);
  query_span.AddArg("sim_io_nanos", out.stats.sim_io_nanos);

  // Mount work is accounted per query by the two-stage executor (inline
  // mounts and parallel mount tasks alike), so no singleton counter diffing
  // — concurrent tasks and interleaved queries each see their own numbers.
  const Mounter::MountOutcome& outcome = out.stats.two_stage.mount;
  out.stats.mount = outcome.counters;
  out.stats.read_retries = out.stats.mount.read_retries;
  out.stats.files_failed = out.stats.mount.files_failed;
  out.stats.files_skipped = out.stats.mount.files_skipped;
  out.stats.records_salvaged = out.stats.mount.records_salvaged;
  out.stats.records_skipped = out.stats.mount.records_skipped;
  out.stats.records_skipped_zonemap = out.stats.mount.records_skipped_zonemap;
  out.stats.frames_skipped_zonemap = out.stats.mount.frames_skipped_zonemap;
  out.stats.zonemap_fallbacks = out.stats.mount.zonemap_fallbacks;

  // This query's warnings, bounded.
  const size_t copied = std::min(outcome.warnings.size(), kMaxQueryWarnings);
  out.stats.warnings.assign(outcome.warnings.begin(),
                            outcome.warnings.begin() + copied);
  const uint64_t dropped =
      outcome.warnings_dropped + (outcome.warnings.size() - copied);
  if (dropped > 0) {
    out.stats.warnings.push_back("(" + std::to_string(dropped) +
                                 " more warnings dropped)");
  }

  // Quarantines that happened while mounting become visible immediately
  // (to queries pinning after this publish; our own snapshot is unchanged).
  DEX_RETURN_NOT_OK(SyncQuarantineTable());

  // Zone maps harvested by this query's mounts persist (when configured) so
  // a restarted database prunes immediately. No-op when nothing changed.
  SaveZoneMaps();

  // Publish into the unified metrics registry: per-query counters (labeled
  // with the query's telemetry context when one was supplied), plus the
  // disk's and cache's cumulative totals as gauges.
  obs::MetricLabels labels;
  labels.session = options.session;
  labels.query = options.query_label;
  if (!labels.empty()) labels.priority = options.priority;
  PublishQueryMetrics(out.stats, labels);
  PublishIoMetrics(disk_->stats());
  if (cache_ != nullptr) PublishCacheMetrics(cache_->stats());
  if (persistent_cache_ != nullptr) {
    PublishPersistentCacheMetrics(persistent_cache_->stats());
  }
  if (shards_->enabled()) PublishShardMetrics(shards_->StatusRows());
  return out;
}

Result<QueryResult> Database::RunExplainAnalyze(const std::string& sql,
                                                const QueryOptions& options,
                                                EpochPtr epoch) {
  PlanProfiler profiler;
  DEX_ASSIGN_OR_RETURN(QueryResult out,
                       RunQuery(sql, options, std::move(epoch), &profiler));
  std::string text = profiler.Render();
  text += "-- execution --\n";
  text += "result rows: " + std::to_string(out.stats.result_rows) + "\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "plan %.3fms, exec %.3fms, simulated I/O %.3fms",
                static_cast<double>(out.stats.plan_nanos) / 1e6,
                static_cast<double>(out.stats.exec_nanos) / 1e6,
                static_cast<double>(out.stats.sim_io_nanos) / 1e6);
  text += line;
  const TwoStageStats& ts = out.stats.two_stage;
  const Mounter::MountCounters& mc = ts.mount.counters;
  if (mc.records_skipped_zonemap > 0 || mc.frames_skipped_zonemap > 0 ||
      mc.zonemap_fallbacks > 0) {
    std::snprintf(line, sizeof(line),
                  "\nzone maps: %llu records skipped, %llu frames skipped "
                  "(%llu decoded), %llu fallbacks",
                  static_cast<unsigned long long>(mc.records_skipped_zonemap),
                  static_cast<unsigned long long>(mc.frames_skipped_zonemap),
                  static_cast<unsigned long long>(mc.frames_decoded_zonemap),
                  static_cast<unsigned long long>(mc.zonemap_fallbacks));
    text += line;
  }
  const ExecStats& ex = ts.exec;
  if (ex.kernel_filter_batches > 0 || ex.kernel_agg_batches > 0 ||
      ex.scalar_filter_batches > 0 || ex.scalar_agg_batches > 0) {
    std::snprintf(line, sizeof(line),
                  "\nkernels: filter %llu vectorized / %llu scalar, "
                  "agg %llu vectorized / %llu scalar, %llu compactions",
                  static_cast<unsigned long long>(ex.kernel_filter_batches),
                  static_cast<unsigned long long>(ex.scalar_filter_batches),
                  static_cast<unsigned long long>(ex.kernel_agg_batches),
                  static_cast<unsigned long long>(ex.scalar_agg_batches),
                  static_cast<unsigned long long>(ex.selection_compactions));
    text += line;
  }
  if (ts.is_partial) {
    std::snprintf(
        line, sizeof(line),
        "\npartial result: %llu files mounted, %zu skipped by deadline, "
        "%zu skipped by memory, %zu skipped on dead shards",
        static_cast<unsigned long long>(ts.mount.counters.mounts),
        ts.files_skipped_deadline, ts.files_skipped_memory,
        ts.files_skipped_shard);
    text += line;
    std::snprintf(line, sizeof(line),
                  "\ncutoff at %.3fms simulated, %.3fms wall",
                  static_cast<double>(ts.cutoff_sim_nanos) / 1e6,
                  static_cast<double>(ts.cutoff_wall_nanos) / 1e6);
    text += line;
  }
  if (ts.num_shards > 1) {
    std::snprintf(line, sizeof(line),
                  "\nshards: %zu, interconnect %.3fms simulated",
                  ts.num_shards,
                  static_cast<double>(ts.net_sim_nanos) / 1e6);
    text += line;
    for (const TwoStageStats::ShardRow& row : ts.shard_rows) {
      std::snprintf(line, sizeof(line),
                    "\n  shard %d: %zu files, disk %.3fms, net %.3fms, "
                    "%llu messages",
                    row.shard, row.files,
                    static_cast<double>(row.disk_sim_nanos) / 1e6,
                    static_cast<double>(row.net_sim_nanos) / 1e6,
                    static_cast<unsigned long long>(row.net_messages));
      text += line;
    }
  }
  DEX_ASSIGN_OR_RETURN(out.table, PlanTextTable(text));
  return out;
}

namespace {

// Failed queries flush the flight recorder: the ring's recent grants,
// publishes, cutoffs, and quarantines are exactly the context a post-mortem
// needs, and by the next query they may have been overwritten.
void RecordQueryFailure(const QueryOptions& options, const Status& status) {
  obs::FlightEvent e;
  e.kind = "query_failure";
  e.session = options.session;
  e.priority = options.priority;
  e.detail = status.ToString();
  obs::FlightRecorder::Global().Record(std::move(e));
  obs::FlightRecorder::Global().AutoDump("query_failure: " + status.ToString());
}

}  // namespace

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options) {
  Result<QueryResult> result = RunQuery(sql, options, EpochPtr{});
  if (!result.ok()) RecordQueryFailure(options, result.status());
  return result;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options,
                                    EpochPtr epoch) {
  Result<QueryResult> result = RunQuery(sql, options, std::move(epoch));
  if (!result.ok()) RecordQueryFailure(options, result.status());
  return result;
}

void Database::set_sim_deadline_nanos(uint64_t nanos) {
  std::lock_guard<std::mutex> lock(options_mu_);
  two_stage_->mutable_options()->sim_deadline_nanos = nanos;
}

void Database::set_wall_deadline_nanos(uint64_t nanos) {
  std::lock_guard<std::mutex> lock(options_mu_);
  two_stage_->mutable_options()->wall_deadline_nanos = nanos;
}

void Database::set_memory_budget_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(options_mu_);
  two_stage_->mutable_options()->memory_budget_bytes = bytes;
  memory_budget_->set_limit(bytes);
}

void Database::set_on_resource_exhausted(OnResourceExhausted policy) {
  std::lock_guard<std::mutex> lock(options_mu_);
  two_stage_->mutable_options()->on_resource_exhausted = policy;
}

Result<RefreshStats> Database::Refresh() {
  if (options_.mode == IngestionMode::kEager) {
    return Status::NotImplemented(
        "Refresh() requires lazy ingestion; an eager database must reload "
        "actual data to pick up repository changes");
  }
  // One refresh at a time. Queries are never blocked: in-flight ones keep
  // reading their pinned epochs while the scan and the publish proceed.
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  RefreshStats stats;
  obs::TraceSpan span("refresh", "lifecycle");
  const uint64_t t0 = NowNanos();

  // The current epoch is the baseline: files whose size/mtime still match
  // keep their F/R rows without a header parse — a delta refresh, the same
  // reconciliation the instant-on snapshot gives Open().
  const EpochPtr base = epochs_->Pin();
  DEX_ASSIGN_OR_RETURN(TablePtr f_table,
                       base->catalog->GetTable(kFileTableName));
  DEX_ASSIGN_OR_RETURN(TablePtr r_table,
                       base->catalog->GetTable(kRecordTableName));
  const mseed::ScanResult baseline = ScanResultFromTables(*f_table, *r_table);

  // The scan shares the session's governance and fault policy: a deadline
  // armed via the runtime setters (`.timeout`) also bounds the refresh.
  TwoStageOptions ts;
  {
    std::lock_guard<std::mutex> lock(options_mu_);
    ts = two_stage_->options();
  }
  Stage1Options sopts;
  sopts.num_threads = options_.stage1_threads;
  sopts.on_error = ts.on_mount_error;
  sopts.retry = ts.retry;
  sopts.shards = shards_.get();
  // A refresh is maintenance: its scan tasks ride the shared pool at
  // background priority so interactive queries keep their workers.
  sopts.priority = ThreadPool::kPriorityBackground;
  QueryContext qctx({ts.sim_deadline_nanos, ts.wall_deadline_nanos},
                    memory_budget_.get(), nullptr);
  Stage1Stats sstats;
  mseed::ScanResult scan;
  uint64_t refresh_sim_nanos = 0;
  {
    // The refresh's charges get their own tee, like a query's: reported
    // sim_io_nanos (and a deadline, when armed) measure this refresh alone.
    SimDisk::QueryTimeScope qscope(&refresh_sim_nanos);
    if (ts.sim_deadline_nanos != 0 || ts.wall_deadline_nanos != 0) {
      qctx.Start(disk_->stats().sim_nanos);
      qctx.AttachSimCounter(&refresh_sim_nanos);
      sopts.qctx = &qctx;
    }
    DEX_ASSIGN_OR_RETURN(scan,
                         stage1_->Scan(repo_root_, &baseline, sopts, &sstats));
  }
  stats.scan_nanos = NowNanos() - t0;
  stats.files_added = sstats.files_added;
  stats.files_changed = sstats.files_changed;
  stats.files_removed = sstats.files_removed;
  stats.files_scanned = sstats.files_scanned;
  stats.files_reused = sstats.files_reused;
  stats.files_quarantined = sstats.files_quarantined;
  stats.workers = sstats.workers;
  stats.read_retries = sstats.read_retries;
  stats.serial_sim_nanos = sstats.serial_sim_nanos;
  stats.parallel_sim_nanos = sstats.parallel_sim_nanos;
  stats.is_partial = sstats.is_partial;
  stats.files_skipped_deadline = sstats.files_skipped_deadline;
  stats.num_shards = sstats.num_shards;
  stats.files_skipped_shard = sstats.files_skipped_shard;
  stats.net_sim_nanos = sstats.net_sim_nanos;
  stats.warnings = std::move(sstats.warnings);
  if (sstats.warnings_dropped > 0) {
    stats.warnings.push_back("(" + std::to_string(sstats.warnings_dropped) +
                             " more warnings dropped)");
  }
  stats.sim_io_nanos = refresh_sim_nanos;

  // Adopt the merged metadata wholesale: F and R describe exactly what is on
  // disk now (modulo deadline-skipped files held at their stale rows).
  // Registry entries for removed files stay registered on the simulated disk
  // but are unreachable through metadata.
  DEX_ASSIGN_OR_RETURN(TablePtr new_f, BuildFileTable(scan));
  DEX_ASSIGN_OR_RETURN(TablePtr new_r, BuildRecordTable(scan));
  {
    // Copy-on-write publish. The clone source is the epoch current *now*
    // (under the publish lock), not the scan's baseline pin — a quarantine
    // publish that slipped in between is preserved.
    std::lock_guard<std::mutex> lock(publish_mu_);
    std::unique_ptr<Catalog> next = pinned_latest_->catalog->Clone();
    DEX_RETURN_NOT_OK(next->ReplaceTable(std::move(new_f)));
    DEX_RETURN_NOT_OK(next->ReplaceTable(std::move(new_r)));
    // Quarantine decisions made by the scan become queryable in the same
    // epoch (folded here, under the same lock, to publish once not twice).
    if (registry_->health_version() != quarantine_table_version_) {
      DEX_ASSIGN_OR_RETURN(TablePtr q_table,
                           registry_->BuildQuarantineTable());
      DEX_RETURN_NOT_OK(next->ReplaceTable(std::move(q_table)));
      quarantine_table_version_ = registry_->health_version();
    }
    pinned_latest_ = epochs_->Publish(std::move(next));
    stats.epoch = pinned_latest_->id;
  }
  open_stats_.num_files = scan.files.size();
  open_stats_.num_records = scan.records.size();
  span.AddArg("files_scanned", static_cast<uint64_t>(stats.files_scanned));
  span.AddArg("files_reused", static_cast<uint64_t>(stats.files_reused));
  span.AddArg("epoch", stats.epoch);
  // The scan's FileScanned events may have dropped stale zone maps (changed
  // file identities); persist the trimmed set when configured.
  SaveZoneMaps();
  PublishRefreshMetrics(stats);
  PublishIoMetrics(disk_->stats());
  if (shards_->enabled()) PublishShardMetrics(shards_->StatusRows());
  return stats;
}

Result<CoverageStats> Database::AnalyzeCoverage() {
  // Copy-on-write like every metadata mutation: derive GAPS/OVERLAPS into a
  // clone of the latest epoch and publish it. In-flight queries keep their
  // pinned (possibly GAPS-less) snapshots.
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::unique_ptr<Catalog> next = pinned_latest_->catalog->Clone();
  DEX_ASSIGN_OR_RETURN(CoverageStats stats, coverage_->Publish(next.get()));
  pinned_latest_ = epochs_->Publish(std::move(next));
  return stats;
}

Result<std::string> Database::Explain(const std::string& sql) {
  const EpochPtr pinned = epochs_->Pin();
  const Catalog& catalog = *pinned->catalog;
  DEX_ASSIGN_OR_RETURN(PlanPtr plan, sql::PlanQuery(sql, catalog));
  std::string out = "-- initial plan --\n" + plan->ToString();
  DEX_ASSIGN_OR_RETURN(plan, PushDownPredicates(plan, catalog));
  out += "-- after predicate pushdown --\n" + plan->ToString();
  if (options_.mode == IngestionMode::kLazy) {
    DEX_ASSIGN_OR_RETURN(SplitResult split, SplitPlan(plan, catalog));
    if (split.qf != nullptr) {
      out += "-- after two-stage decomposition (StageBreak marks Q_f) --\n" +
             split.plan->ToString();
    } else {
      out += "-- no Q_f/Q_s split needed --\n";
    }
  }
  return out;
}

}  // namespace dex
