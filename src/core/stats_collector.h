#ifndef DEX_CORE_STATS_COLLECTOR_H_
#define DEX_CORE_STATS_COLLECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "mseed/record.h"
#include "mseed/scanner.h"
#include "mseed/steim.h"

namespace dex {

/// \brief Value statistics of one decoded record — computed once by the
/// mounter (or synthesized from a zone map when decode was skipped) and
/// broadcast to every collector.
struct RecordValueStats {
  double min = 0;
  double max = 0;
  double sum = 0;
  uint64_t count = 0;
};

/// \brief The one interface through which the two-stage machinery harvests
/// statistics as a side effect of work it does anyway (paper §5: derived
/// metadata "as a side-effect of ALi").
///
/// Before this interface, every statistics consumer had its own seam:
/// DerivedMetadata was hardwired into the mounter, coverage re-derived
/// stream windows from the catalog's R table, informativeness fell back to
/// scanning R, and nothing captured sub-record structure at all. Now the
/// stage-1 scanner and the mounter drive a StatsCollectorSet, and each
/// consumer — derived metadata (DM), coverage (GAPS/OVERLAPS), the
/// informativeness index, zone maps — is a collector behind this interface.
///
/// ## Delivery contract
///
///  - Stage 1 events (`ScanStarted`/`FileScanned`/`ScanFinished`) are
///    delivered from the scan coordinator thread only, in repository
///    enumeration order, *including* files whose metadata was reused from
///    the baseline — so a collector always sees the complete repository
///    picture, deterministically, at any worker count. Implementations need
///    no locking against other stage-1 events.
///  - `RecordMounted` is delivered from mount tasks, possibly concurrently;
///    implementations must synchronize internally. Events for the records
///    of one file arrive in record order from that file's mount task.
///  - A collector must tolerate redundant delivery: the same file may be
///    re-scanned on refresh and the same record re-mounted by later queries.
class StatsCollector {
 public:
  virtual ~StatsCollector() = default;

  /// Short name for diagnostics and metrics ("derived", "zonemap", ...).
  virtual std::string name() const = 0;

  /// A stage-1 scan pass over `root` is beginning.
  virtual void ScanStarted(const std::string& root) { (void)root; }

  /// One file's scan metadata, in enumeration order. Delivered exactly for
  /// the files whose metadata enters the catalog (parse-quarantined and
  /// deadline-skipped files are not); `records` are the file's record
  /// windows.
  virtual void FileScanned(const mseed::FileMeta& file,
                           const std::vector<mseed::RecordMeta>& records) {
    (void)file;
    (void)records;
  }

  /// All FileScanned events of the pass have been delivered. Files present
  /// in an earlier pass but absent from this one were removed.
  virtual Status ScanFinished() { return Status::OK(); }

  /// Stage 2: record `record_id` of `uri` was mounted. `values` summarizes
  /// its sample values; `frames` carries per-Steim-frame stats when the
  /// decode harvested them (null otherwise); `expected_records` is the
  /// file's record count from stage 1. Thread-safe.
  virtual Status RecordMounted(const std::string& uri, int64_t record_id,
                               const mseed::RecordHeader& header,
                               const RecordValueStats& values,
                               const std::vector<mseed::Steim1::FrameStat>* frames,
                               uint32_t expected_records) {
    (void)uri;
    (void)record_id;
    (void)header;
    (void)values;
    (void)frames;
    (void)expected_records;
    return Status::OK();
  }
};

/// \brief An ordered set of collectors, broadcast to in registration order.
/// Non-owning; the database owns the collectors and outlives the set's
/// users (scanner, mounter). Copyable so components can hold it by value.
class StatsCollectorSet {
 public:
  void Register(StatsCollector* collector) {
    if (collector != nullptr) collectors_.push_back(collector);
  }

  bool empty() const { return collectors_.empty(); }
  size_t size() const { return collectors_.size(); }

  void ScanStarted(const std::string& root) const {
    for (StatsCollector* c : collectors_) c->ScanStarted(root);
  }

  void FileScanned(const mseed::FileMeta& file,
                   const std::vector<mseed::RecordMeta>& records) const {
    for (StatsCollector* c : collectors_) c->FileScanned(file, records);
  }

  Status ScanFinished() const {
    for (StatsCollector* c : collectors_) {
      DEX_RETURN_NOT_OK(c->ScanFinished());
    }
    return Status::OK();
  }

  Status RecordMounted(const std::string& uri, int64_t record_id,
                       const mseed::RecordHeader& header,
                       const RecordValueStats& values,
                       const std::vector<mseed::Steim1::FrameStat>* frames,
                       uint32_t expected_records) const {
    for (StatsCollector* c : collectors_) {
      DEX_RETURN_NOT_OK(c->RecordMounted(uri, record_id, header, values,
                                         frames, expected_records));
    }
    return Status::OK();
  }

 private:
  std::vector<StatsCollector*> collectors_;
};

}  // namespace dex

#endif  // DEX_CORE_STATS_COLLECTOR_H_
