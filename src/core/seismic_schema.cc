#include "core/seismic_schema.h"

#include "common/logging.h"
#include "mseed/reader.h"

namespace dex {

SchemaPtr MakeFileSchema() {
  auto s = std::make_shared<Schema>();
  const std::string q = kFileTableName;
  s->AddField({"uri", DataType::kString, q});
  s->AddField({"network", DataType::kString, q});
  s->AddField({"station", DataType::kString, q});
  s->AddField({"channel", DataType::kString, q});
  s->AddField({"location", DataType::kString, q});
  s->AddField({"size_bytes", DataType::kInt64, q});
  s->AddField({"mtime", DataType::kTimestamp, q});
  s->AddField({"n_records", DataType::kInt64, q});
  return s;
}

SchemaPtr MakeRecordSchema() {
  auto s = std::make_shared<Schema>();
  const std::string q = kRecordTableName;
  s->AddField({"uri", DataType::kString, q});
  s->AddField({"record_id", DataType::kInt64, q});
  s->AddField({"start_time", DataType::kTimestamp, q});
  s->AddField({"end_time", DataType::kTimestamp, q});
  s->AddField({"sample_rate", DataType::kDouble, q});
  s->AddField({"n_samples", DataType::kInt64, q});
  return s;
}

SchemaPtr MakeDataSchema() {
  auto s = std::make_shared<Schema>();
  const std::string q = kDataTableName;
  s->AddField({"uri", DataType::kString, q});
  s->AddField({"record_id", DataType::kInt64, q});
  s->AddField({"sample_time", DataType::kTimestamp, q});
  s->AddField({"sample_value", DataType::kDouble, q});
  return s;
}

SchemaPtr MakeDerivedSchema() {
  auto s = std::make_shared<Schema>();
  const std::string q = kDerivedTableName;
  s->AddField({"uri", DataType::kString, q});
  s->AddField({"record_id", DataType::kInt64, q});
  s->AddField({"min_value", DataType::kDouble, q});
  s->AddField({"max_value", DataType::kDouble, q});
  s->AddField({"mean_value", DataType::kDouble, q});
  s->AddField({"sum_value", DataType::kDouble, q});
  s->AddField({"n_samples", DataType::kInt64, q});
  return s;
}

Result<TablePtr> BuildFileTable(const mseed::ScanResult& scan) {
  auto table = std::make_shared<Table>(kFileTableName, MakeFileSchema());
  for (const mseed::FileMeta& f : scan.files) {
    DEX_RETURN_NOT_OK(table->AppendRow(
        {Value::String(f.uri), Value::String(f.network), Value::String(f.station),
         Value::String(f.channel), Value::String(f.location),
         Value::Int64(static_cast<int64_t>(f.size_bytes)),
         Value::Timestamp(f.mtime_ms), Value::Int64(f.num_records)}));
  }
  return table;
}

Result<TablePtr> BuildRecordTable(const mseed::ScanResult& scan) {
  auto table = std::make_shared<Table>(kRecordTableName, MakeRecordSchema());
  for (const mseed::RecordMeta& r : scan.records) {
    DEX_RETURN_NOT_OK(table->AppendRow(
        {Value::String(r.uri), Value::Int64(r.record_id),
         Value::Timestamp(r.start_time_ms), Value::Timestamp(r.end_time_ms),
         Value::Double(r.sample_rate_hz), Value::Int64(r.num_samples)}));
  }
  return table;
}

mseed::ScanResult ScanResultFromTables(const Table& f_table,
                                       const Table& r_table) {
  mseed::ScanResult out;
  out.files.reserve(f_table.num_rows());
  for (size_t i = 0; i < f_table.num_rows(); ++i) {
    mseed::FileMeta fm;
    fm.uri = f_table.GetValue(i, 0).str();
    fm.network = f_table.GetValue(i, 1).str();
    fm.station = f_table.GetValue(i, 2).str();
    fm.channel = f_table.GetValue(i, 3).str();
    fm.location = f_table.GetValue(i, 4).str();
    fm.size_bytes = static_cast<uint64_t>(f_table.GetValue(i, 5).int64());
    fm.mtime_ms = f_table.GetValue(i, 6).int64();
    fm.num_records = static_cast<uint32_t>(f_table.GetValue(i, 7).int64());
    out.total_bytes += fm.size_bytes;
    out.files.push_back(std::move(fm));
  }
  out.records.reserve(r_table.num_rows());
  for (size_t i = 0; i < r_table.num_rows(); ++i) {
    mseed::RecordMeta rm;
    rm.uri = r_table.GetValue(i, 0).str();
    rm.record_id = r_table.GetValue(i, 1).int64();
    rm.start_time_ms = r_table.GetValue(i, 2).int64();
    rm.end_time_ms = r_table.GetValue(i, 3).int64();
    rm.sample_rate_hz = r_table.GetValue(i, 4).dbl();
    rm.num_samples = static_cast<uint32_t>(r_table.GetValue(i, 5).int64());
    out.records.push_back(std::move(rm));
  }
  return out;
}

Status AppendSamplesToDataTable(const std::string& uri, int64_t record_id,
                                const mseed::DecodedRecord& record,
                                Table* data_table) {
  DEX_CHECK(data_table != nullptr);
  const size_t n = record.samples.size();
  Column* uri_col = data_table->mutable_column(0);
  Column* rec_col = data_table->mutable_column(1);
  Column* time_col = data_table->mutable_column(2);
  Column* value_col = data_table->mutable_column(3);
  // No exact-size Reserve here: repeated exact reservations defeat the
  // vectors' geometric growth and turn bulk loads quadratic.
  const double rate = record.header.sample_rate_hz;
  const int64_t t0 = record.header.start_time_ms;
  for (size_t i = 0; i < n; ++i) {
    // A sparsely decoded record (zone-map frame skip) carries the original
    // sample index alongside each value, so sample_time stays exact.
    const size_t idx = record.sparse ? record.sample_index[i] : i;
    uri_col->AppendString(uri);
    rec_col->AppendInt64(record_id);
    time_col->AppendInt64(
        t0 + static_cast<int64_t>(static_cast<double>(idx) * 1000.0 / rate));
    value_col->AppendDouble(static_cast<double>(record.samples[i]));
  }
  return data_table->CommitAppendedRows(n);
}

}  // namespace dex
