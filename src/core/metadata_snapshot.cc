#include "core/metadata_snapshot.h"

#include <cstring>
#include <unordered_map>

#include "common/fnv.h"
#include "io/file_io.h"

namespace dex {

namespace {

// v2 appends a whole-payload FNV-1a checksum, so a truncated or bit-flipped
// snapshot is rejected outright instead of trusting the per-field length
// checks to notice. v1 files ("DXSNAP01") are rejected as stale, which
// Database::Open treats like any corrupt snapshot: full rescan, then the
// snapshot is rewritten in the current format.
constexpr char kMagic[8] = {'D', 'X', 'S', 'N', 'A', 'P', '0', '2'};

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("snapshot truncated at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<uint64_t> U64() {
    DEX_RETURN_NOT_OK(Need(8));
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<int64_t> I64() {
    DEX_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    DEX_RETURN_NOT_OK(Need(8));
    double v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    DEX_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > data_.size()) return Status::Corruption("implausible string length");
    DEX_RETURN_NOT_OK(Need(n));
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  Status Skip(size_t n) {
    DEX_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::OK();
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveSnapshot(const mseed::ScanResult& scan, const std::string& path) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU64(&out, scan.files.size());
  PutU64(&out, scan.records.size());
  PutU64(&out, scan.total_bytes);
  for (const mseed::FileMeta& f : scan.files) {
    PutStr(&out, f.uri);
    PutStr(&out, f.network);
    PutStr(&out, f.station);
    PutStr(&out, f.channel);
    PutStr(&out, f.location);
    PutU64(&out, f.size_bytes);
    PutI64(&out, f.mtime_ms);
    PutU64(&out, f.num_records);
  }
  for (const mseed::RecordMeta& r : scan.records) {
    PutStr(&out, r.uri);
    PutI64(&out, r.record_id);
    PutI64(&out, r.start_time_ms);
    PutI64(&out, r.end_time_ms);
    PutF64(&out, r.sample_rate_hz);
    PutU64(&out, r.num_samples);
    PutU64(&out, r.data_offset);
    PutU64(&out, r.data_bytes);
  }
  PutU64(&out, Fnv1a(out.data(), out.size()));  // seal the whole payload
  return WriteFileAtomic(path, out);
}

Result<mseed::ScanResult> LoadSnapshot(const std::string& path) {
  std::string data;
  DEX_RETURN_NOT_OK(ReadFileToString(path, &data));
  if (data.size() < sizeof(kMagic) + 8 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad snapshot magic in '" + path + "'");
  }
  // Verify the trailing whole-payload checksum before believing any field:
  // length-prefixed strings catch gross truncation, but a flipped bit inside
  // a fixed-width field would otherwise parse "successfully" into wrong
  // metadata.
  {
    const uint64_t want = Fnv1a(data.data(), data.size() - 8);
    uint64_t got;
    std::memcpy(&got, data.data() + data.size() - 8, 8);
    if (want != got) {
      return Status::Corruption("snapshot checksum mismatch in '" + path + "'");
    }
    data.resize(data.size() - 8);
  }
  Cursor cur(data);
  DEX_RETURN_NOT_OK(cur.Skip(sizeof(kMagic)));
  mseed::ScanResult scan;
  DEX_ASSIGN_OR_RETURN(uint64_t num_files, cur.U64());
  DEX_ASSIGN_OR_RETURN(uint64_t num_records, cur.U64());
  DEX_ASSIGN_OR_RETURN(scan.total_bytes, cur.U64());
  scan.files.reserve(num_files);
  for (uint64_t i = 0; i < num_files; ++i) {
    mseed::FileMeta f;
    DEX_ASSIGN_OR_RETURN(f.uri, cur.Str());
    DEX_ASSIGN_OR_RETURN(f.network, cur.Str());
    DEX_ASSIGN_OR_RETURN(f.station, cur.Str());
    DEX_ASSIGN_OR_RETURN(f.channel, cur.Str());
    DEX_ASSIGN_OR_RETURN(f.location, cur.Str());
    DEX_ASSIGN_OR_RETURN(f.size_bytes, cur.U64());
    DEX_ASSIGN_OR_RETURN(f.mtime_ms, cur.I64());
    DEX_ASSIGN_OR_RETURN(uint64_t n, cur.U64());
    f.num_records = static_cast<uint32_t>(n);
    scan.files.push_back(std::move(f));
  }
  scan.records.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    mseed::RecordMeta r;
    DEX_ASSIGN_OR_RETURN(r.uri, cur.Str());
    DEX_ASSIGN_OR_RETURN(r.record_id, cur.I64());
    DEX_ASSIGN_OR_RETURN(r.start_time_ms, cur.I64());
    DEX_ASSIGN_OR_RETURN(r.end_time_ms, cur.I64());
    DEX_ASSIGN_OR_RETURN(r.sample_rate_hz, cur.F64());
    DEX_ASSIGN_OR_RETURN(uint64_t n, cur.U64());
    r.num_samples = static_cast<uint32_t>(n);
    DEX_ASSIGN_OR_RETURN(r.data_offset, cur.U64());
    DEX_ASSIGN_OR_RETURN(uint64_t bytes, cur.U64());
    r.data_bytes = static_cast<uint32_t>(bytes);
    scan.records.push_back(std::move(r));
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot '" + path + "'");
  }
  return scan;
}

Result<mseed::ScanResult> ReconcileScan(const std::string& root,
                                        FormatAdapter* format,
                                        const mseed::ScanResult& baseline,
                                        ReconcileStats* stats) {
  DEX_ASSIGN_OR_RETURN(std::vector<std::string> on_disk,
                       ListFiles(root, format->file_extension()));

  std::unordered_map<std::string, const mseed::FileMeta*> known;
  for (const mseed::FileMeta& f : baseline.files) known.emplace(f.uri, &f);
  std::unordered_map<std::string, std::vector<const mseed::RecordMeta*>>
      known_records;
  for (const mseed::RecordMeta& r : baseline.records) {
    known_records[r.uri].push_back(&r);
  }

  mseed::ScanResult out;
  size_t present = 0;
  for (const std::string& uri : on_disk) {
    auto it = known.find(uri);
    bool unchanged = false;
    if (it != known.end()) {
      ++present;
      auto size = FileSize(uri);
      auto mtime = FileMtimeMillis(uri);
      unchanged = size.ok() && mtime.ok() && *size == it->second->size_bytes &&
                  *mtime == it->second->mtime_ms;
    }
    if (unchanged) {
      out.files.push_back(*it->second);
      for (const mseed::RecordMeta* r : known_records[uri]) {
        out.records.push_back(*r);
      }
      out.total_bytes += it->second->size_bytes;
      if (stats != nullptr) ++stats->files_reused;
    } else {
      DEX_ASSIGN_OR_RETURN(mseed::ScanResult one, format->ScanFile(uri));
      out.files.insert(out.files.end(), one.files.begin(), one.files.end());
      out.records.insert(out.records.end(), one.records.begin(),
                         one.records.end());
      out.total_bytes += one.total_bytes;
      if (stats != nullptr) {
        ++stats->files_rescanned;
        stats->rescanned_uris.push_back(uri);
      }
    }
  }
  if (stats != nullptr) {
    stats->files_dropped = baseline.files.size() - present;
  }
  return out;
}

}  // namespace dex
