#ifndef DEX_CORE_METRICS_PUBLISH_H_
#define DEX_CORE_METRICS_PUBLISH_H_

#include "core/cache_manager.h"
#include "core/database.h"
#include "io/io_stats.h"
#include "obs/metrics.h"

namespace dex {

/// Publishers folding the system's stat structs into the global
/// obs::MetricsRegistry under stable dot-separated names. One-way: metrics
/// are observability output only and never feed back into execution.

/// Per-query counters/histograms (`query.*`, `stage.*`, `mount.*`,
/// `fault.*`, `exec.*`). Called once per completed query. When `labels` is
/// non-empty the headline series (`query.count`, `query.result_rows`,
/// `query.total_seconds`) are additionally published per label-set —
/// {session, priority, query} from QueryOptions — with the base series
/// still carrying the totals.
void PublishQueryMetrics(const QueryStats& stats,
                         const obs::MetricLabels& labels = {});

/// Open()-time gauges (`open.*`). Called once after Database::Open.
void PublishOpenMetrics(const OpenStats& stats);

/// Per-refresh counters (`refresh.*`, plus the `governance.*` counters a
/// deadline-bounded refresh shares with governed queries). Called once per
/// completed Database::Refresh.
void PublishRefreshMetrics(const RefreshStats& stats);

/// Cumulative simulated-disk gauges (`io.*`) — last write wins, so publish
/// with the disk's current totals.
void PublishIoMetrics(const IoStats& io);

/// Cumulative cache gauges (`cache.*`).
void PublishCacheMetrics(const CacheStats& cache);

/// Cumulative durable-tier gauges (`cache.disk.*`): persist/load traffic and
/// the recovery ladder's verdicts (recovered / quarantined / stale).
void PublishPersistentCacheMetrics(const PersistentCache::Stats& stats);

/// Cumulative shard gauges (`shard.*`) from the repository's per-shard
/// status rows: totals under `shard.net_*_total` plus per-shard labeled
/// gauges (`shard.net_messages{shard=N}`, ...). Called after
/// queries/refreshes on a sharded database.
void PublishShardMetrics(
    const std::vector<ShardedRepository::SliceStats>& rows);

}  // namespace dex

#endif  // DEX_CORE_METRICS_PUBLISH_H_
