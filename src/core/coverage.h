#ifndef DEX_CORE_COVERAGE_H_
#define DEX_CORE_COVERAGE_H_

#include <string>

#include "common/result.h"
#include "storage/catalog.h"

namespace dex {

/// Coverage analysis — the paper's other kind of derived metadata (§5):
/// "derived metadata can be anything ranging from summary data (e.g. sum,
/// average, max, etc.) to analyzed data (e.g. gaps, overlaps, etc.)".
///
/// Unlike the DM value statistics (which require mounting), gaps and
/// overlaps derive purely from the *given* metadata: R's record windows.
/// AnalyzeCoverage computes, per (station, channel) stream,
///  - GAPS(station, channel, gap_start, gap_end, duration_ms): intervals
///    with no recorded data between consecutive records,
///  - OVERLAPS(station, channel, overlap_start, overlap_end, duration_ms):
///    intervals covered by more than one record (duplicate acquisition).
/// and registers/replaces both as metadata tables in the catalog, so the
/// explorer can query them in SQL without touching a single file.
inline constexpr const char* kGapsTableName = "GAPS";
inline constexpr const char* kOverlapsTableName = "OVERLAPS";

struct CoverageStats {
  size_t streams = 0;    // distinct (station, channel) pairs
  size_t gaps = 0;
  size_t overlaps = 0;
  int64_t total_gap_ms = 0;
  int64_t total_overlap_ms = 0;
};

/// \brief Derives GAPS/OVERLAPS from the metadata tables F and R in
/// `catalog` and registers them (replacing earlier versions). Tolerance: a
/// break shorter than one sample interval is not a gap.
Result<CoverageStats> AnalyzeCoverage(Catalog* catalog);

SchemaPtr MakeGapsSchema();
SchemaPtr MakeOverlapsSchema();

}  // namespace dex

#endif  // DEX_CORE_COVERAGE_H_
