#ifndef DEX_CORE_COVERAGE_H_
#define DEX_CORE_COVERAGE_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/stats_collector.h"
#include "storage/catalog.h"

namespace dex {

/// Coverage analysis — the paper's other kind of derived metadata (§5):
/// "derived metadata can be anything ranging from summary data (e.g. sum,
/// average, max, etc.) to analyzed data (e.g. gaps, overlaps, etc.)".
inline constexpr const char* kGapsTableName = "GAPS";
inline constexpr const char* kOverlapsTableName = "OVERLAPS";

struct CoverageStats {
  size_t streams = 0;    // distinct (station, channel) pairs
  size_t gaps = 0;
  size_t overlaps = 0;
  int64_t total_gap_ms = 0;
  int64_t total_overlap_ms = 0;
};

/// \brief Accumulates per-stream record windows from stage-1 scan events
/// and, on demand, derives GAPS/OVERLAPS tables into a catalog.
///
/// Unlike the DM value statistics (which require mounting), gaps and
/// overlaps derive purely from the *given* metadata: the record windows the
/// stage-1 scan delivers. The collector rebuilds its picture on every scan
/// pass (ScanStarted clears; every file — including baseline-reused ones —
/// is redelivered), so after Open() or Refresh() it always reflects the
/// whole repository. Publish() then computes, per (station, channel) stream,
///  - GAPS(station, channel, gap_start, gap_end, duration_ms): intervals
///    with no recorded data between consecutive records,
///  - OVERLAPS(station, channel, overlap_start, overlap_end, duration_ms):
///    intervals covered by more than one record (duplicate acquisition),
/// and registers/replaces both as metadata tables, so the explorer can
/// query them in SQL without touching a single file. Tolerance: a break
/// shorter than one sample interval is not a gap.
///
/// Thread-safe: scan passes (single-threaded per the collector contract)
/// may run concurrently with Publish() from another session's
/// AnalyzeCoverage call.
class CoverageCollector : public StatsCollector {
 public:
  std::string name() const override { return "coverage"; }

  void ScanStarted(const std::string& root) override;
  void FileScanned(const mseed::FileMeta& file,
                   const std::vector<mseed::RecordMeta>& records) override;

  /// Derives GAPS/OVERLAPS from the accumulated windows and registers them
  /// in `catalog` (replacing earlier versions).
  Result<CoverageStats> Publish(Catalog* catalog) const;

 private:
  struct RecordWindow {
    int64_t start_ms;
    int64_t end_ms;
    double sample_rate_hz;
  };

  mutable std::mutex mu_;
  // (station, channel) -> record windows; ordered so Publish's stream
  // iteration (and therefore GAPS/OVERLAPS row order) is deterministic.
  std::map<std::pair<std::string, std::string>, std::vector<RecordWindow>>
      streams_;
};

SchemaPtr MakeGapsSchema();
SchemaPtr MakeOverlapsSchema();

}  // namespace dex

#endif  // DEX_CORE_COVERAGE_H_
