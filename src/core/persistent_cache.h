#ifndef DEX_CORE_PERSISTENT_CACHE_H_
#define DEX_CORE_PERSISTENT_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/columnar_file.h"
#include "io/sim_disk.h"
#include "storage/table.h"

namespace dex {

/// \brief The durable tier of the mount cache: one checksummed columnar file
/// per cached URI plus a footer-sealed manifest, all written via the atomic
/// temp-file + fsync + rename protocol.
///
/// The cache directory is the engine's *own* durable state — the first such
/// state in the system — so it is treated as hostile until proven intact.
/// Nothing read from it is ever served without passing the validation
/// ladder:
///
///   1. manifest magic + generation + footer checksum (else: wipe the dir);
///   2. per entry, the source file's current size/mtime vs what the entry
///      was persisted against (else: stale → delete, rescan is authoritative);
///   3. per entry, the columnar file's magic, header checksum, every frame
///      checksum, and the whole-file footer checksum (else: corrupt →
///      quarantine-and-delete, flight-recorder `cache_quarantine` event).
///
/// A failure never propagates: the entry degrades to a re-mount of the
/// source file. Wrong answers are impossible by construction because no
/// unvalidated byte reaches a query.
///
/// Fault injection: writes and reads consult the disk's FaultInjector
/// (torn_write_rate / bit_flip_rate / short_read_rate) through per-file
/// streams keyed by FNV-1a(uri), so persistence fault schedules are
/// replayable and independent of thread interleavings. Injected faults are
/// applied *physically* to the real bytes (a torn write really truncates the
/// entry file), so recovery exercises the real ladder, not a simulation of
/// it.
///
/// Simulated-time model: the cache directory lives on the same medium as the
/// repository but is written append-style by the engine itself, so reads
/// back are modeled as sequential — one seek per Recover()/Load() plus
/// transfer at the configured bandwidth, against the repository's
/// seek-per-file mount cost. Manifest updates are modeled as a fixed-size
/// append (a constant, so per-entry persist charges stay independent of
/// insertion order — required for worker-count-invariant replay).
///
/// Thread-safe; the CacheManager calls in under its own lock, which also
/// serializes manifest updates with entry-file writes.
class PersistentCache {
 public:
  /// On-disk format generation. Bump when the manifest or entry layout
  /// changes incompatibly: a mismatching directory is discarded wholesale
  /// (clean re-ingestion, never a misparse).
  static constexpr uint64_t kGeneration = 1;

  struct Options {
    std::string dir;  // cache directory (created on first persist)
    uint64_t generation = kGeneration;
  };

  struct Stats {
    uint64_t persisted = 0;        // entry files written successfully
    uint64_t persisted_bytes = 0;  // encoded bytes written (cumulative)
    uint64_t persist_failures = 0; // encode/write errors (entry not durable)
    uint64_t loads = 0;            // entry files read back + validated
    uint64_t load_failures = 0;    // validation failed at load → quarantined
    uint64_t recovered = 0;        // entries that survived open-time recovery
    uint64_t quarantined = 0;      // corrupt entries deleted (CACHE_QUARANTINE)
    uint64_t stale_dropped = 0;    // source size/mtime changed → deleted
  };

  /// One entry that survived the full validation ladder at recovery.
  struct RecoveredEntry {
    std::string uri;
    ColumnarFileMeta meta;
    TablePtr table;  // fully decoded and checksum-verified
  };

  /// `disk` provides the simulated-time charges and the fault injector;
  /// not owned, must outlive this.
  PersistentCache(SimDisk* disk, const Options& options);

  /// Writes `table` through to disk for `uri` (atomic replace + manifest
  /// update), applying any injected write fault physically. Returns true if
  /// the entry is now durable. Best-effort: a failure is counted, never
  /// surfaced to the query. Note an injected torn write or bit flip still
  /// returns true — that is the point: the damage is discovered (and
  /// quarantined) by the validation ladder on the next load, exactly like
  /// real silent corruption.
  bool Persist(const std::string& uri, const Table& table,
               ColumnarFileMeta meta);

  /// Reads `uri`'s entry back, applying any injected short read, and runs
  /// the full integrity ladder (magic, header/frame/footer checksums). On
  /// success returns the decoded table. On any failure the entry is
  /// quarantined-and-deleted (flight-recorder event, stats) and Corruption
  /// is returned — the caller falls back to re-mounting the source file.
  Result<TablePtr> Load(const std::string& uri, ColumnarFileMeta* meta);

  /// Open-time recovery: validates the manifest (magic/generation/footer
  /// checksum — a bad manifest wipes the directory), deletes entry files
  /// the manifest does not list, then walks the listed entries oldest-uri
  /// first: stale sources are dropped, corrupt files quarantined, and every
  /// survivor is returned fully decoded. Deterministic: the manifest is
  /// uri-sorted and recovery is single-threaded.
  std::vector<RecoveredEntry> Recover();

  /// Deletes `uri`'s entry (source invalidated). No-op if absent.
  void Remove(const std::string& uri);

  /// Deletes every entry and the manifest (repository regenerated).
  void RemoveAll();

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  size_t num_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return manifest_.size();
  }
  const Options& options() const { return options_; }

 private:
  struct ManifestEntry {
    std::string file;            // entry file name within dir
    uint64_t encoded_bytes = 0;  // size of the (intended) entry file
    uint64_t source_size_bytes = 0;
    int64_t source_mtime_ms = 0;
  };

  // All helpers require mu_ to be held.
  Status WriteManifestLocked();
  Status ReadManifestLocked();
  void QuarantineLocked(const std::string& uri, const std::string& reason);
  void ChargeWrite(uint64_t bytes);
  void ChargeRead(uint64_t bytes);
  void ChargeSeek();

  SimDisk* disk_;  // not owned
  const Options options_;
  mutable std::mutex mu_;
  // uri -> entry; std::map so the manifest bytes (and recovery order) are
  // deterministic regardless of insertion order.
  std::map<std::string, ManifestEntry> manifest_;
  Stats stats_;
};

}  // namespace dex

#endif  // DEX_CORE_PERSISTENT_CACHE_H_
