#include "core/mounter.h"

#include "core/informativeness.h"
#include "core/seismic_schema.h"
#include "engine/batch.h"
#include "io/file_io.h"
#include "mseed/reader.h"

namespace dex {

Result<TablePtr> Mounter::Mount(const std::string& table_name,
                                const std::string& uri,
                                const ExprPtr& fused_predicate) {
  if (table_name != kDataTableName) {
    return Status::NotImplemented("no extraction mapping for actual table '" +
                                  table_name + "'");
  }
  DEX_ASSIGN_OR_RETURN(FileRegistry::Entry entry, registry_->Get(uri));
  // Charge the simulated medium for pulling the file's bytes.
  DEX_RETURN_NOT_OK(registry_->ChargeFileRead(uri));

  // Extract: parse headers and decode every record (real work), through
  // the repository's format adapter.
  auto records = format_->ReadAllRecords(uri);
  if (!records.ok()) {
    return records.status().WithContext("mounting '" + uri + "'");
  }

  // Transform: comply with the D schema.
  auto table = std::make_shared<Table>(table_name, MakeDataSchema());
  for (size_t i = 0; i < records->size(); ++i) {
    const mseed::DecodedRecord& rec = (*records)[i];
    DEX_RETURN_NOT_OK(AppendSamplesToDataTable(uri, static_cast<int64_t>(i), rec,
                                               table.get()));
    counters_.records_decoded += 1;
    counters_.samples_decoded += rec.samples.size();
    if (derived_ != nullptr) {
      DEX_RETURN_NOT_OK(derived_->RecordMounted(
          uri, static_cast<int64_t>(i), rec,
          static_cast<uint32_t>(records->size())));
    }
  }
  counters_.mounts += 1;
  counters_.bytes_read += entry.size_bytes;

  // Combined select-mount: apply the fused selection before handing the
  // partial table to the plan.
  TablePtr out = table;
  std::string predicate_repr;
  if (fused_predicate != nullptr) {
    predicate_repr = fused_predicate->ToString();
    DEX_ASSIGN_OR_RETURN(ExprPtr bound, fused_predicate->Bind(*table->schema()));
    Batch all;
    all.schema = table->schema();
    for (size_t c = 0; c < table->num_columns(); ++c) {
      all.columns.push_back(table->column(c));
    }
    DEX_ASSIGN_OR_RETURN(ColumnPtr mask, bound->Evaluate(all));
    std::vector<uint32_t> selected;
    const int64_t* bits = mask->data_i64();
    for (size_t i = 0; i < table->num_rows(); ++i) {
      if (bits[i] != 0) selected.push_back(static_cast<uint32_t>(i));
    }
    auto filtered = std::make_shared<Table>(table_name, table->schema());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      filtered->mutable_column(c)->AppendGather(*table->column(c), selected);
    }
    DEX_RETURN_NOT_OK(filtered->CommitAppendedRows(selected.size()));
    out = filtered;
  }

  // Offer the mounted data to the cache. File-granular caches want the whole
  // file; tuple-granular caches store exactly what the selection kept.
  if (cache_ != nullptr) {
    const int64_t mtime = FileMtimeMillis(uri).ValueOr(entry.mtime_ms);
    if (cache_->options().granularity == CacheGranularity::kFile) {
      cache_->Insert(uri, "", mtime, table);
    } else {
      const CachedWindow window = SummarizeTimeWindow(fused_predicate);
      cache_->Insert(uri, predicate_repr, mtime, out, &window);
    }
  }
  return out;
}

Result<TablePtr> Mounter::CacheLookup(const std::string& table_name,
                                      const std::string& uri) {
  if (table_name != kDataTableName) {
    return Status::NotImplemented("no cache mapping for actual table '" +
                                  table_name + "'");
  }
  if (cache_ == nullptr) {
    return Status::Internal("cache-scan without a cache manager");
  }
  return cache_->Lookup(uri);
}

}  // namespace dex
