#include "core/mounter.h"

#include <cmath>
#include <limits>

#include "core/informativeness.h"
#include "core/seismic_schema.h"
#include "engine/batch.h"
#include "engine/kernel.h"
#include "io/file_io.h"
#include "mseed/reader.h"
#include "obs/trace.h"

namespace dex {

namespace {

// Warnings surface in QueryStats; keep each outcome's buffer bounded so a
// pathological repository cannot grow it without limit.
constexpr size_t kMaxMountWarnings = 256;

}  // namespace

void Mounter::MountOutcome::MergeFrom(const MountOutcome& o) {
  counters += o.counters;
  warnings_dropped += o.warnings_dropped;
  for (const std::string& w : o.warnings) {
    if (warnings.size() < kMaxMountWarnings) {
      warnings.push_back(w);
    } else {
      ++warnings_dropped;
    }
  }
}

void Mounter::AddWarning(MountOutcome* outcome, std::string msg) {
  if (outcome == nullptr) return;
  if (outcome->warnings.size() < kMaxMountWarnings) {
    outcome->warnings.push_back(std::move(msg));
  } else {
    ++outcome->warnings_dropped;
  }
}

Status Mounter::ChargeReadWithRetry(const std::string& uri,
                                    MountOutcome* outcome,
                                    const QueryContext* qctx) {
  Status io = registry_->ChargeFileRead(uri);
  double backoff_ms = retry_.backoff_base_millis;
  for (int attempt = 0; !io.ok() && io.IsIOError() && attempt < retry_.max_retries;
       ++attempt) {
    // A cancelled query must not ride out the remaining backoff schedule.
    // The cancel reason is not an IOError, so Mount propagates it as a
    // query failure instead of quarantining the file.
    if (qctx != nullptr) DEX_RETURN_NOT_OK(qctx->CheckInterrupt());
    registry_->RecordTransientError(uri, io.message());
    obs::Tracer::Instant("read_retry", "fault",
                         {{"uri", uri},
                          {"attempt", std::to_string(attempt + 1)},
                          {"backoff_ms", std::to_string(backoff_ms)}});
    // Backoff is simulated wall time the query spends waiting on the medium.
    registry_->disk()->ChargeDelay(static_cast<uint64_t>(backoff_ms * 1e6));
    backoff_ms *= retry_.backoff_multiplier;
    if (outcome != nullptr) ++outcome->counters.read_retries;
    io = registry_->ChargeFileRead(uri);
  }
  return io;
}

Result<TablePtr> Mounter::Mount(const std::string& table_name,
                                const std::string& uri,
                                const ExprPtr& fused_predicate,
                                MountOutcome* outcome,
                                const QueryContext* qctx,
                                const PruningOptions* pruning) {
  if (table_name != kDataTableName) {
    return Status::NotImplemented("no extraction mapping for actual table '" +
                                  table_name + "'");
  }
  // The per-file ingestion span: present whether this mount runs inline
  // inside stage-2 plan execution or as a parallel premount task.
  obs::TraceSpan span("mount", "mount");
  span.AddArg("uri", uri);
  span.AddArg("lane", static_cast<uint64_t>(obs::CurrentThreadLane()));
  DEX_ASSIGN_OR_RETURN(FileRegistry::Entry entry, registry_->Get(uri));

  // Charge the simulated medium for pulling the file's bytes, absorbing
  // transient faults with exponential backoff.
  Status io = ChargeReadWithRetry(uri, outcome, qctx);
  if (!io.ok()) {
    if (!io.IsIOError() || on_error_ == OnMountError::kFail) {
      return io.WithContext("mounting '" + uri + "'");
    }
    // Permanent read failure: quarantine the file so it never re-enters a
    // files-of-interest set, and degrade to an empty partial table so the
    // query still returns every healthy file's rows.
    if (outcome != nullptr) ++outcome->counters.files_failed;
    obs::Tracer::Instant("quarantine", "fault",
                         {{"uri", uri}, {"reason", io.message()}});
    registry_->Quarantine(uri, io.message());
    AddWarning(outcome, "mount of '" + uri + "' failed after " +
                            std::to_string(retry_.max_retries) +
                            " retries: " + io.message() + " (file quarantined)");
    return std::make_shared<Table>(table_name, MakeDataSchema());
  }

  // Extract: parse headers and decode every record (real work), through
  // the repository's format adapter.
  std::vector<mseed::DecodedRecord> decoded;
  mseed::SalvageReport salvage;
  mseed::PruneStats prune_stats;
  if (on_error_ == OnMountError::kSalvage) {
    // Zone-map pruning rides the salvage path only: the strict and
    // skip-file policies promise whole-file semantics (all-or-nothing), and
    // sparse decode is a record-granular degradation by construction.
    std::unique_ptr<mseed::RecordPruner> pruner;
    if (zone_maps_ != nullptr) {
      double lo = -std::numeric_limits<double>::infinity();
      double hi = std::numeric_limits<double>::infinity();
      const bool bounded =
          ExtractBounds(fused_predicate, "sample_value", &lo, &hi);
      const bool record_level =
          bounded && pruning != nullptr && pruning->record_level;
      const bool frame_level =
          bounded && pruning != nullptr && pruning->frame_level;
      // Even without usable bounds the pruner harvests frame stats during
      // the full decode (same pass, free) so the next query can prune.
      pruner = zone_maps_->MakePruner(uri, lo, hi, record_level, frame_level,
                                      /*harvest=*/true);
    }
    auto records =
        pruner != nullptr
            ? format_->ReadAllRecordsPruned(uri, &salvage, pruner.get(),
                                            &prune_stats)
            : format_->ReadAllRecordsSalvage(uri, &salvage);
    if (!records.ok()) {
      // Even the salvaging reader could not deliver the file's bytes.
      if (outcome != nullptr) ++outcome->counters.files_failed;
      obs::Tracer::Instant("quarantine", "fault",
                           {{"uri", uri}, {"reason", records.status().message()}});
      registry_->Quarantine(uri, records.status().message());
      AddWarning(outcome, "salvage of '" + uri +
                              "' failed: " + records.status().ToString() +
                              " (file quarantined)");
      return std::make_shared<Table>(table_name, MakeDataSchema());
    }
    decoded = std::move(*records);
    if (outcome != nullptr) {
      outcome->counters.records_salvaged += salvage.records_salvaged;
      outcome->counters.records_skipped += salvage.records_skipped;
      outcome->counters.records_skipped_zonemap += prune_stats.records_skipped;
      outcome->counters.frames_skipped_zonemap += prune_stats.frames_skipped;
      outcome->counters.frames_decoded_zonemap += prune_stats.frames_decoded;
      outcome->counters.zonemap_fallbacks += prune_stats.fallbacks;
    }
    if (prune_stats.records_skipped > 0 || prune_stats.frames_skipped > 0) {
      obs::Tracer::Instant(
          "zonemap_prune", "prune",
          {{"uri", uri},
           {"records_skipped", std::to_string(prune_stats.records_skipped)},
           {"frames_skipped", std::to_string(prune_stats.frames_skipped)},
           {"fallbacks", std::to_string(prune_stats.fallbacks)}});
    }
    if (salvage.records_salvaged > 0 || salvage.records_skipped > 0) {
      obs::Tracer::Instant(
          "salvage", "fault",
          {{"uri", uri},
           {"salvaged", std::to_string(salvage.records_salvaged)},
           {"skipped", std::to_string(salvage.records_skipped)}});
    }
    for (const std::string& w : salvage.warnings) AddWarning(outcome, w);
  } else {
    auto records = format_->ReadAllRecords(uri);
    if (!records.ok()) {
      if (on_error_ == OnMountError::kFail) {
        return records.status().WithContext("mounting '" + uri + "'");
      }
      // kSkipFile: drop the corrupt file whole. Not quarantined — the bytes
      // are still deliverable, the kSalvage policy could recover from them.
      if (outcome != nullptr) ++outcome->counters.files_skipped;
      obs::Tracer::Instant("skip_file", "fault", {{"uri", uri}});
      AddWarning(outcome, "skipping corrupt file '" + uri +
                              "': " + records.status().ToString());
      return std::make_shared<Table>(table_name, MakeDataSchema());
    }
    decoded = std::move(*records);
  }

  // Transform: comply with the D schema.
  auto table = std::make_shared<Table>(table_name, MakeDataSchema());
  // Intern the uri up front: a fully zone-skipped mount appends no rows, but
  // its table must weigh exactly what an unpruned mount's filtered table
  // weighs (the shared uri dictionary included) — ByteSize feeds the memory
  // budget and the sharded gather's network charge, both under the
  // pruning-cannot-move-the-ledger contract.
  table->mutable_column(0)->dict()->Intern(uri);
  for (size_t i = 0; i < decoded.size(); ++i) {
    const mseed::DecodedRecord& rec = decoded[i];
    DEX_RETURN_NOT_OK(AppendSamplesToDataTable(uri, static_cast<int64_t>(i), rec,
                                               table.get()));
    if (outcome != nullptr) {
      if (!rec.sparse || !rec.samples.empty()) {
        outcome->counters.records_decoded += 1;  // zone-skipped don't count
      }
      outcome->counters.samples_decoded += rec.samples.size();
    }
    if (!collectors_.empty()) {
      // One pass computes the record's value stats for every collector. A
      // sparsely decoded record's samples are partial, so its stats come
      // from its zone map instead — that zone was written by a *full*
      // decode, so DM content is invariant under pruning. No zone (cannot
      // happen for a skip, possible after a fallback) → skip delivery; the
      // next unpruned mount will deliver authoritative stats.
      RecordValueStats values;
      bool have_values = false;
      if (!rec.sparse) {
        const kernel::NumericAgg agg =
            kernel::AggI32(rec.samples.data(), rec.samples.size());
        values.min = agg.min;
        values.max = agg.max;
        values.sum = agg.sum;
        values.count = agg.count;
        have_values = true;
      } else if (zone_maps_ != nullptr) {
        have_values = zone_maps_->GetRecordStats(uri, static_cast<int64_t>(i),
                                                 &values);
      }
      if (have_values) {
        DEX_RETURN_NOT_OK(collectors_.RecordMounted(
            uri, static_cast<int64_t>(i), rec.header, values,
            rec.frame_stats.empty() ? nullptr : &rec.frame_stats,
            static_cast<uint32_t>(decoded.size())));
      }
    }
  }
  if (outcome != nullptr) {
    outcome->counters.mounts += 1;
    outcome->counters.bytes_read += entry.size_bytes;
  }
  span.AddArg("records", static_cast<uint64_t>(decoded.size()));
  span.AddArg("bytes", entry.size_bytes);

  // Combined select-mount: apply the fused selection before handing the
  // partial table to the plan.
  TablePtr out = table;
  std::string predicate_repr;
  if (fused_predicate != nullptr) {
    predicate_repr = fused_predicate->ToString();
    DEX_ASSIGN_OR_RETURN(ExprPtr bound, fused_predicate->Bind(*table->schema()));
    Batch all;
    all.schema = table->schema();
    for (size_t c = 0; c < table->num_columns(); ++c) {
      all.columns.push_back(table->column(c));
    }
    DEX_ASSIGN_OR_RETURN(ColumnPtr mask, bound->Evaluate(all));
    std::vector<uint32_t> selected;
    const int64_t* bits = mask->data_i64();
    for (size_t i = 0; i < table->num_rows(); ++i) {
      if (bits[i] != 0) selected.push_back(static_cast<uint32_t>(i));
    }
    auto filtered = std::make_shared<Table>(table_name, table->schema());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      filtered->mutable_column(c)->AppendGather(*table->column(c), selected);
    }
    DEX_RETURN_NOT_OK(filtered->CommitAppendedRows(selected.size()));
    out = filtered;
  }

  // Offer the mounted data to the cache. File-granular caches want the whole
  // file; tuple-granular caches store exactly what the selection kept. A
  // salvaged file with losses is never cached: its mounted content is not
  // the file's full content, and the file may yet be repaired. Likewise a
  // zone-pruned mount: its table deliberately misses non-matching tuples, so
  // caching it (even predicate-tagged) would let window subsumption serve a
  // subset where the full set was promised. Conservative — pruned mounts
  // simply don't feed the cache.
  if (cache_ != nullptr && salvage.records_skipped == 0 &&
      prune_stats.records_skipped == 0 && prune_stats.frames_skipped == 0) {
    const int64_t mtime = FileMtimeMillis(uri).ValueOr(entry.mtime_ms);
    if (cache_->options().granularity == CacheGranularity::kFile) {
      cache_->Insert(uri, "", mtime, table);
    } else {
      const CachedWindow window = SummarizeTimeWindow(fused_predicate);
      cache_->Insert(uri, predicate_repr, mtime, out, &window);
    }
  }
  return out;
}

Result<TablePtr> Mounter::CacheLookup(const std::string& table_name,
                                      const std::string& uri) {
  if (table_name != kDataTableName) {
    return Status::NotImplemented("no cache mapping for actual table '" +
                                  table_name + "'");
  }
  if (cache_ == nullptr) {
    return Status::Internal("cache-scan without a cache manager");
  }
  auto cached = cache_->Lookup(uri);
  if (cached.ok()) return cached;
  // The entry vanished between planning and execution: spilled to the
  // durable tier under concurrent budget pressure and then refused reload
  // (quarantined as corrupt, or no budget headroom). The selection above
  // this union branch re-applies the query's predicate, so mounting the
  // whole file is a correct — just slower — substitute. The query degrades;
  // it never fails and never sees unvalidated bytes.
  return Mount(table_name, uri, nullptr);
}

}  // namespace dex
