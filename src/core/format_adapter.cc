#include "core/format_adapter.h"

#include "csvf/csv_format.h"
#include "io/file_io.h"

namespace dex {

Result<std::vector<std::string>> FormatAdapter::EnumerateFiles(
    const std::string& root) {
  return ListFiles(root, file_extension());
}

Result<mseed::ScanResult> FormatAdapter::ScanRepository(const std::string& root) {
  DEX_ASSIGN_OR_RETURN(std::vector<std::string> paths, EnumerateFiles(root));
  mseed::ScanResult out;
  for (const std::string& path : paths) {
    DEX_ASSIGN_OR_RETURN(mseed::ScanResult one, ScanFile(path));
    out.files.insert(out.files.end(), one.files.begin(), one.files.end());
    out.records.insert(out.records.end(), one.records.begin(),
                       one.records.end());
    out.total_bytes += one.total_bytes;
  }
  return out;
}

Result<mseed::ScanResult> MseedAdapter::ScanFile(const std::string& uri) {
  return mseed::ScanFile(uri);
}

Result<std::vector<mseed::DecodedRecord>> MseedAdapter::ReadAllRecords(
    const std::string& uri) {
  return mseed::Reader::ReadAllRecords(uri);
}

Result<std::vector<mseed::DecodedRecord>> MseedAdapter::ReadAllRecordsSalvage(
    const std::string& uri, mseed::SalvageReport* report) {
  return mseed::Reader::ReadAllRecordsSalvage(uri, report);
}

Result<std::vector<mseed::DecodedRecord>> MseedAdapter::ReadAllRecordsPruned(
    const std::string& uri, mseed::SalvageReport* report,
    mseed::RecordPruner* pruner, mseed::PruneStats* prune_stats) {
  return mseed::Reader::ReadAllRecordsSalvage(uri, report, pruner, prune_stats);
}

std::string CsvAdapter::file_extension() const { return csvf::kCsvExtension; }

Result<mseed::ScanResult> CsvAdapter::ScanFile(const std::string& uri) {
  return csvf::ScanCsvFile(uri);
}

Result<std::vector<mseed::DecodedRecord>> CsvAdapter::ReadAllRecords(
    const std::string& uri) {
  return csvf::ReadCsvFile(uri);
}

Result<std::shared_ptr<FormatAdapter>> DetectFormat(const std::string& root) {
  auto mseed_files = ListFiles(root, ".mseed");
  if (mseed_files.ok() && !mseed_files->empty()) {
    return std::shared_ptr<FormatAdapter>(std::make_shared<MseedAdapter>());
  }
  auto csv_files = ListFiles(root, csvf::kCsvExtension);
  if (csv_files.ok() && !csv_files->empty()) {
    return std::shared_ptr<FormatAdapter>(std::make_shared<CsvAdapter>());
  }
  return Status::NotFound("no files of any registered format under '" + root +
                          "'");
}

}  // namespace dex
