#ifndef DEX_CORE_MOUNTER_H_
#define DEX_CORE_MOUNTER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/file_registry.h"
#include "core/format_adapter.h"
#include "core/stats_collector.h"
#include "core/zone_map.h"
#include "engine/expr.h"
#include "exec/query_context.h"

namespace dex {

/// \brief Every pruning decision the execution pipeline can make, in one
/// struct — replacing the per-knob sprawl (`use_derived_pruning` et al.)
/// that grew one boolean per optimization. The decision ladder, coarse to
/// fine (each level only sees work the previous level let through):
///
///   1. `file_level`  — skip mounting files whose complete derived metadata
///      (DM) proves no sample lies in the predicate's value range (§5
///      "Extending metadata"). Changes charged simulated I/O: skipped files
///      are never read.
///   2. `record_level` — per-record zone maps: a record whose value zone is
///      disjoint from the range keeps its positional slot but its payload is
///      never decoded. CPU only; the whole file was already charged.
///   3. `frame_level` — per-Steim1-frame zone maps: decode only frames that
///      may contain matching samples. CPU only.
///   4. `use_simd_kernels` — vectorize the residual filter/aggregate work on
///      whatever survived pruning (engine/kernel.h).
///
/// `file_level` defaults off because it needs opt-in DM collection and
/// changes the I/O accounting experiments compare; the CPU-only levels
/// default on (results and charged I/O are bit-identical either way).
struct PruningOptions {
  bool file_level = false;
  bool record_level = true;
  bool frame_level = true;
  bool use_simd_kernels = true;

  /// Record/frame zone-map pruning enabled at all?
  bool zonemap_enabled() const { return record_level || frame_level; }
};

/// \brief What to do when a file of interest cannot be mounted cleanly.
///
/// The repository is a real-world file dump: reads fail, records rot. A
/// production system serving a 1000-file query cannot drop 997 good files
/// because 3 are bad, so the default degrades gracefully.
enum class OnMountError {
  kFail,      // strict: the first bad file fails the whole query
  kSkipFile,  // drop unreadable/corrupt files, keep the rest of the result
  kSalvage,   // like kSkipFile, but additionally recover every decodable
              // record from corrupt files (record-level resynchronization)
};

/// \brief Retry policy for transiently failing file reads. Backoff time is
/// charged to the simulated medium, so retry overhead shows up in
/// QueryStats::sim_io_nanos like any other I/O stall.
struct MountRetryPolicy {
  int max_retries = 3;               // retry attempts after the first failure
  double backoff_base_millis = 2.0;  // first backoff; doubles per retry
  double backoff_multiplier = 2.0;
};

/// \brief Implements the mount access path: "extracts, transforms (to comply
/// with database schema) and ingests actual data from individual external
/// files" (paper §3).
///
/// The resulting tables are *dangling partial tables* — they are never
/// appended to the catalog's D table; they exist for the duration of the
/// query (and afterwards only if the cache policy retains them).
///
/// The mounter holds no mutable state of its own: every call reports what it
/// did through a caller-supplied MountOutcome, so concurrent mount tasks (and
/// interleaved queries) each account their own work without races. Thread
/// safety of a concurrent Mount reduces to that of the shared collaborators
/// (registry health, cache, stats collectors, zone maps, simulated disk),
/// which all synchronize internally.
class Mounter {
 public:
  struct MountCounters {
    uint64_t mounts = 0;
    uint64_t records_decoded = 0;
    uint64_t samples_decoded = 0;
    uint64_t bytes_read = 0;
    // Fault tolerance.
    uint64_t read_retries = 0;      // transient read failures retried
    uint64_t files_failed = 0;      // reads failing after all retries (quarantined)
    uint64_t files_skipped = 0;     // corrupt files dropped whole (kSkipFile)
    uint64_t records_salvaged = 0;  // records recovered past corruption
    uint64_t records_skipped = 0;   // corrupt records dropped (kSalvage)
    // Zone-map pruning (CPU saved; the file's bytes were still charged).
    uint64_t records_skipped_zonemap = 0;  // records proven non-matching
    uint64_t frames_skipped_zonemap = 0;   // Steim frames skipped selectively
    uint64_t frames_decoded_zonemap = 0;   // frames decoded in selective mode
    uint64_t zonemap_fallbacks = 0;        // failed verification → full decode

    MountCounters& operator+=(const MountCounters& o) {
      mounts += o.mounts;
      records_decoded += o.records_decoded;
      samples_decoded += o.samples_decoded;
      bytes_read += o.bytes_read;
      read_retries += o.read_retries;
      files_failed += o.files_failed;
      files_skipped += o.files_skipped;
      records_salvaged += o.records_salvaged;
      records_skipped += o.records_skipped;
      records_skipped_zonemap += o.records_skipped_zonemap;
      frames_skipped_zonemap += o.frames_skipped_zonemap;
      frames_decoded_zonemap += o.frames_decoded_zonemap;
      zonemap_fallbacks += o.zonemap_fallbacks;
      return *this;
    }
  };

  /// What one (or, accumulated, several) Mount call(s) did. Warnings are
  /// bounded; overflow is counted in `warnings_dropped`.
  struct MountOutcome {
    MountCounters counters;
    std::vector<std::string> warnings;
    uint64_t warnings_dropped = 0;

    /// Folds another outcome in (bounded warnings). The parallel mount path
    /// merges per-task outcomes in task order at the barrier, so merged
    /// warning order is deterministic.
    void MergeFrom(const MountOutcome& o);
  };

  /// `collectors` receive one RecordMounted event per record of every
  /// mounted file (possibly concurrently across mounts); `zone_maps`, when
  /// non-null, additionally powers record/frame pruning (it is normally also
  /// one of the collectors, registered by the database).
  Mounter(FileRegistry* registry, CacheManager* cache,
          StatsCollectorSet collectors, ZoneMapStore* zone_maps,
          FormatAdapter* format,
          OnMountError on_error = OnMountError::kSalvage,
          MountRetryPolicy retry = MountRetryPolicy{})
      : registry_(registry),
        cache_(cache),
        collectors_(std::move(collectors)),
        zone_maps_(zone_maps),
        format_(format),
        on_error_(on_error),
        retry_(retry) {}

  /// Mounts `uri` as a partial `table_name` table. When `fused_predicate` is
  /// non-null, only satisfying tuples are returned (combined select-mount);
  /// the cache is offered the data either way, tagged with the predicate.
  ///
  /// Under kSkipFile/kSalvage a permanently failing or unsalvageable file
  /// yields an *empty* partial table (plus health bookkeeping and a warning)
  /// instead of an error, so the enclosing union still returns every healthy
  /// file's rows.
  ///
  /// When `outcome` is non-null, counters and warnings for this call are
  /// *accumulated* into it (never reset), so a caller may thread one
  /// accumulator through a whole query's mounts.
  ///
  /// When `qctx` is non-null, its cancel token is checked between retry
  /// attempts in the read path, so a cancelled query stops backing off
  /// instead of riding out the full retry schedule.
  ///
  /// `pruning`, when non-null with record/frame levels enabled and a zone-map
  /// store attached, lets the kSalvage decode path skip records and Steim
  /// frames the zone maps prove non-matching for the value bounds that
  /// `fused_predicate` imposes on sample_value. Pruning never changes the
  /// returned tuples (the fused selection still runs on whatever was
  /// decoded, and zone-skipped data could not have satisfied it) — only the
  /// CPU spent decoding. Charged simulated I/O is unchanged: the whole file
  /// is read either way.
  Result<TablePtr> Mount(const std::string& table_name, const std::string& uri,
                         const ExprPtr& fused_predicate,
                         MountOutcome* outcome = nullptr,
                         const QueryContext* qctx = nullptr,
                         const PruningOptions* pruning = nullptr);

  /// The cache-scan access path: returns previously ingested data.
  Result<TablePtr> CacheLookup(const std::string& table_name,
                               const std::string& uri);

  OnMountError on_mount_error() const { return on_error_; }

 private:
  /// Reads the file's bytes off the simulated medium, absorbing transient
  /// faults with exponential backoff. Non-OK only when the failure survived
  /// every retry (a permanent fault), the query was cancelled between
  /// attempts, or the failure is not an I/O fault at all.
  Status ChargeReadWithRetry(const std::string& uri, MountOutcome* outcome,
                             const QueryContext* qctx);

  static void AddWarning(MountOutcome* outcome, std::string msg);

  FileRegistry* registry_;
  CacheManager* cache_;
  StatsCollectorSet collectors_;
  ZoneMapStore* zone_maps_;  // may be null (zone maps disabled)
  FormatAdapter* format_;
  const OnMountError on_error_;
  const MountRetryPolicy retry_;
};

}  // namespace dex

#endif  // DEX_CORE_MOUNTER_H_
