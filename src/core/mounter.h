#ifndef DEX_CORE_MOUNTER_H_
#define DEX_CORE_MOUNTER_H_

#include <string>

#include "common/result.h"
#include "core/cache_manager.h"
#include "core/derived_metadata.h"
#include "core/file_registry.h"
#include "core/format_adapter.h"
#include "engine/expr.h"
#include "storage/catalog.h"

namespace dex {

/// \brief Implements the mount access path: "extracts, transforms (to comply
/// with database schema) and ingests actual data from individual external
/// files" (paper §3).
///
/// The resulting tables are *dangling partial tables* — they are never
/// appended to the catalog's D table; they exist for the duration of the
/// query (and afterwards only if the cache policy retains them).
class Mounter {
 public:
  struct MountCounters {
    uint64_t mounts = 0;
    uint64_t records_decoded = 0;
    uint64_t samples_decoded = 0;
    uint64_t bytes_read = 0;
  };

  Mounter(Catalog* catalog, FileRegistry* registry, CacheManager* cache,
          DerivedMetadata* derived, FormatAdapter* format)
      : catalog_(catalog),
        registry_(registry),
        cache_(cache),
        derived_(derived),
        format_(format) {}

  /// Mounts `uri` as a partial `table_name` table. When `fused_predicate` is
  /// non-null, only satisfying tuples are returned (combined select-mount);
  /// the cache is offered the data either way, tagged with the predicate.
  Result<TablePtr> Mount(const std::string& table_name, const std::string& uri,
                         const ExprPtr& fused_predicate);

  /// The cache-scan access path: returns previously ingested data.
  Result<TablePtr> CacheLookup(const std::string& table_name,
                               const std::string& uri);

  const MountCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = MountCounters{}; }

 private:
  Catalog* catalog_;
  FileRegistry* registry_;
  CacheManager* cache_;
  DerivedMetadata* derived_;  // may be null (collection disabled)
  FormatAdapter* format_;
  MountCounters counters_;
};

}  // namespace dex

#endif  // DEX_CORE_MOUNTER_H_
