#include "core/catalog_epoch.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace dex {

EpochManager::EpochManager(std::unique_ptr<Catalog> initial)
    : retired_(std::make_shared<std::atomic<uint64_t>>(0)) {
  DEX_CHECK(initial != nullptr);
  current_ = Wrap(std::move(initial));
}

std::shared_ptr<MetadataEpoch> EpochManager::Wrap(
    std::unique_ptr<Catalog> catalog) {
  auto* epoch = new MetadataEpoch;
  epoch->id = next_id_++;
  epoch->catalog = std::move(catalog);
  // The deleter runs when the last pin drops — possibly on a query thread
  // long after the publishing Refresh returned. Only superseded epochs count
  // as retirements; the final epoch dying with the database does not.
  std::shared_ptr<std::atomic<uint64_t>> retired = retired_;
  return std::shared_ptr<MetadataEpoch>(
      epoch, [retired](MetadataEpoch* e) {
        if (e->superseded.load(std::memory_order_acquire)) {
          retired->fetch_add(1, std::memory_order_relaxed);
          obs::MetricsRegistry::Global().AddCounter("serve.epoch_retired", 1);
        }
        delete e;
      });
}

EpochPtr EpochManager::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

EpochPtr EpochManager::Publish(std::unique_ptr<Catalog> next) {
  DEX_CHECK(next != nullptr);
  EpochPtr published;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_->superseded.store(true, std::memory_order_release);
    current_ = Wrap(std::move(next));
    published = current_;
  }
  obs::FlightEvent e;
  e.kind = "epoch_publish";
  e.detail = "epoch " + std::to_string(published->id);
  obs::FlightRecorder::Global().Record(std::move(e));
  return published;
}

uint64_t EpochManager::current_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id;
}

}  // namespace dex
