#include "core/stage1_scan.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "exec/sim_schedule.h"
#include "exec/task_group.h"
#include "io/file_io.h"
#include "obs/trace.h"

namespace dex {

namespace {

// Warnings kept per scan are bounded so a rotten repository cannot bloat
// the stats of its own refresh (mirrors the query-warning bound).
constexpr size_t kMaxScanWarnings = 32;

// Payload of one scatter request ("scan your slice") to a shard.
constexpr uint64_t kShardScanRequestBytes = 256;

/// The coordinator's per-file decision, made in enumeration order.
struct FilePlan {
  const std::string* uri = nullptr;
  uint64_t size_bytes = 0;
  int64_t mtime_ms = 0;
  bool stat_ok = false;
  bool known = false;      // registry had the uri before this scan
  bool changed = false;    // known, and size/mtime differ from the registry
  bool reuse = false;      // metadata served from the baseline
  size_t task = SIZE_MAX;  // slot index when a scan task was dispatched
};

/// One scan task's output, merged on the coordinator in enumeration order.
struct TaskSlot {
  mseed::ScanResult result;
  bool parse_failed = false;
  bool read_failed = false;  // header read still failing after retries
  std::string error;
  uint64_t retries = 0;
  uint64_t sim_nanos = 0;
};

void AddWarning(Stage1Stats* stats, std::string msg) {
  if (stats->warnings.size() < kMaxScanWarnings) {
    stats->warnings.push_back(std::move(msg));
  } else {
    ++stats->warnings_dropped;
  }
}

/// Charges the file's header pages ((num_records + 1) * 64 bytes, capped at
/// the file size) to the simulated medium, absorbing transient faults with
/// exponential backoff exactly like the stage-2 mount read path. All charges
/// (reads and backoff) land in the caller's TaskTimeScope bucket when one is
/// installed, or directly on the global clock when the scan is governed.
Status ChargeHeaderReadWithRetry(FileRegistry* registry, const std::string& uri,
                                 const MountRetryPolicy& retry,
                                 const QueryContext* qctx, TaskSlot* slot) {
  DEX_ASSIGN_OR_RETURN(FileRegistry::Entry entry, registry->Get(uri));
  const uint32_t num_records =
      slot->result.files.empty() ? 0 : slot->result.files[0].num_records;
  const uint64_t length = std::min<uint64_t>(
      entry.size_bytes, (static_cast<uint64_t>(num_records) + 1) * 64);
  SimDisk* disk = registry->disk();
  Status io = disk->Read(entry.object, 0, length);
  double backoff_ms = retry.backoff_base_millis;
  for (int attempt = 0;
       !io.ok() && io.IsIOError() && attempt < retry.max_retries; ++attempt) {
    if (qctx != nullptr) DEX_RETURN_NOT_OK(qctx->CheckInterrupt());
    registry->RecordTransientError(uri, io.message());
    obs::Tracer::Instant("scan_retry", "fault",
                         {{"uri", uri},
                          {"attempt", std::to_string(attempt + 1)},
                          {"backoff_ms", std::to_string(backoff_ms)}});
    disk->ChargeDelay(static_cast<uint64_t>(backoff_ms * 1e6));
    backoff_ms *= retry.backoff_multiplier;
    ++slot->retries;
    io = disk->Read(entry.object, 0, length);
  }
  return io;
}

/// The per-file unit of work (one task in the parallel path, one inline
/// admission in the governed path). Degradation is *recorded*, not applied:
/// quarantines happen at merge time on the coordinator so the health
/// sequence is deterministic.
Status ScanOne(FormatAdapter* format, FileRegistry* registry,
               const FilePlan& plan, const Stage1Options& options,
               TaskSlot* slot) {
  Result<mseed::ScanResult> parsed = format->ScanFile(*plan.uri);
  if (!parsed.ok()) {
    if (options.on_error == OnMountError::kFail) return parsed.status();
    slot->parse_failed = true;
    slot->error = parsed.status().message();
    return Status::OK();
  }
  slot->result = std::move(*parsed);
  if (!plan.known && !plan.stat_ok) {
    // The file appeared between the coordinator's stat and this parse, so it
    // was never registered with the simulated disk. Sit this round out; the
    // next scan picks it up cleanly.
    slot->parse_failed = true;
    slot->error = "file appeared mid-scan";
    return Status::OK();
  }
  Status io =
      ChargeHeaderReadWithRetry(registry, *plan.uri, options.retry,
                                options.qctx, slot);
  if (!io.ok()) {
    if (!io.IsIOError()) return io;  // cancellation or bookkeeping errors
    if (options.on_error == OnMountError::kFail) return io;
    slot->read_failed = true;
    slot->error = io.message();
  }
  return Status::OK();
}

}  // namespace

ThreadPool* Stage1Scanner::Pool(size_t workers) {
  // The shared database-wide pool wins: `workers` then only drives how many
  // lanes the deterministic schedule aggregates over, not real thread count.
  if (shared_pool_ != nullptr) return shared_pool_;
  if (pool_ == nullptr || pool_->num_threads() != workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  return pool_.get();
}

Result<mseed::ScanResult> Stage1Scanner::Scan(const std::string& root,
                                              const mseed::ScanResult* baseline,
                                              const Stage1Options& options,
                                              Stage1Stats* stats) {
  DEX_CHECK(stats != nullptr);
  obs::TraceSpan span("stage1_scan", "stage1.scan");
  span.AddArg("root", root);
  collectors_.ScanStarted(root);

  DEX_ASSIGN_OR_RETURN(std::vector<std::string> uris,
                       format_->EnumerateFiles(root));
  stats->files_enumerated = uris.size();

  // (Re)partition the enumerated catalog across the shards *before* any
  // assignment is read: Open, every Refresh, and the queries running against
  // the epoch this scan publishes all agree on the file→shard map.
  ShardedRepository* shards = options.shards;
  const bool sharded = shards != nullptr && shards->enabled();
  if (shards != nullptr) shards->AssignCatalog(uris);
  stats->num_shards =
      sharded ? static_cast<size_t>(shards->num_shards()) : 1;

  // Index the baseline by URI (metadata snapshot at Open, catalog at
  // Refresh).
  std::unordered_map<std::string, const mseed::FileMeta*> base_files;
  std::unordered_map<std::string, std::vector<const mseed::RecordMeta*>>
      base_records;
  if (baseline != nullptr) {
    base_files.reserve(baseline->files.size());
    for (const mseed::FileMeta& f : baseline->files) base_files[f.uri] = &f;
    for (const mseed::RecordMeta& r : baseline->records) {
      base_records[r.uri].push_back(&r);
    }
  }

  // Coordinator pre-pass, in enumeration order: stat each file and decide
  // reuse-vs-scan. Reused files are registered here when new (the instant-on
  // snapshot path), so later mounts charge them correctly.
  std::vector<FilePlan> plans(uris.size());
  std::vector<size_t> work;
  for (size_t i = 0; i < uris.size(); ++i) {
    FilePlan& plan = plans[i];
    plan.uri = &uris[i];
    Result<uint64_t> size = FileSize(uris[i]);
    Result<int64_t> mtime = FileMtimeMillis(uris[i]);
    if (size.ok() && mtime.ok()) {
      plan.stat_ok = true;
      plan.size_bytes = *size;
      plan.mtime_ms = *mtime;
    }
    plan.known = registry_->Contains(uris[i]);
    if (plan.known && plan.stat_ok) {
      DEX_ASSIGN_OR_RETURN(FileRegistry::Entry entry, registry_->Get(uris[i]));
      plan.changed = entry.size_bytes != plan.size_bytes ||
                     entry.mtime_ms != plan.mtime_ms;
    }
    auto it = plan.stat_ok ? base_files.find(uris[i]) : base_files.end();
    if (it != base_files.end() && it->second->size_bytes == plan.size_bytes &&
        it->second->mtime_ms == plan.mtime_ms && !plan.changed) {
      plan.reuse = true;
      if (!plan.known) {
        DEX_RETURN_NOT_OK(
            registry_->Add(uris[i], plan.size_bytes, plan.mtime_ms));
      }
      continue;
    }
    // A file needing a parse but owned by a dead shard cannot be reached:
    // fall back to its stale baseline row when one exists (like a deadline
    // skip) and let the next refresh re-detect it. The registry is left
    // untouched for the same reason.
    if (sharded && !shards->IsShardAlive(shards->ShardOf(uris[i]))) {
      ++stats->files_skipped_shard;
      stats->is_partial = true;
      plan.reuse = base_files.count(uris[i]) > 0;
      continue;
    }
    work.push_back(i);
  }
  span.AddArg("files", static_cast<uint64_t>(uris.size()));
  span.AddArg("scan_tasks", static_cast<uint64_t>(work.size()));

  // Baseline files no longer on disk drop out of the merged metadata.
  if (baseline != nullptr) {
    std::unordered_set<std::string> enumerated;
    enumerated.reserve(uris.size());
    for (const FilePlan& plan : plans) {
      if (plan.stat_ok) enumerated.insert(*plan.uri);
    }
    for (const auto& [uri, meta] : base_files) {
      (void)meta;
      if (enumerated.count(uri) == 0) ++stats->files_removed;
    }
  }

  const bool governed =
      options.qctx != nullptr && options.qctx->has_deadline();
  SimDisk* disk = registry_->disk();
  std::vector<TaskSlot> slots(work.size());

  if (governed) {
    // Governed scans serialize admission on the simulated clock — the same
    // trade governed stage-2 mounts make (DESIGN.md §8.8): each header parse
    // is admitted against the global clock, so the cutoff is bit-identical
    // at any num_threads. Registration is deferred to admission time so a
    // new file skipped by the deadline stays unknown and is picked up by the
    // next refresh.
    stats->workers = 1;
    for (size_t w = 0; w < work.size(); ++w) {
      FilePlan& plan = plans[work[w]];
      DEX_RETURN_NOT_OK(options.qctx->CheckInterrupt());
      // The deadline is measured on the scan's own timeline (sim_now falls
      // back to the global clock when no per-query counter is attached), so
      // concurrent queries charging the shared clock cannot move the cutoff.
      if (options.qctx->DeadlineExpired(
              options.qctx->sim_now(disk->stats().sim_nanos))) {
        stats->is_partial = true;
        for (size_t rest = w; rest < work.size(); ++rest) {
          FilePlan& skipped = plans[work[rest]];
          ++stats->files_skipped_deadline;
          // Not-yet-admitted files fall back to their stale baseline rows
          // when they have one; new files stay out of this round's catalog.
          // The registry was not touched for either, so the next refresh
          // re-detects them.
          skipped.reuse = base_files.count(*skipped.uri) > 0;
        }
        break;
      }
      if (plan.stat_ok && !plan.known) {
        DEX_RETURN_NOT_OK(
            registry_->Add(*plan.uri, plan.size_bytes, plan.mtime_ms));
      }
      plan.task = w;
      {
        // Bucket this admission's charges, then fold them onto the global
        // clock as one delay: the measured per-file cost cannot be polluted
        // by whatever concurrent queries charge to the shared clock.
        SimDisk::TaskTimeScope scope(&slots[w].sim_nanos);
        DEX_RETURN_NOT_OK(
            ScanOne(format_, registry_, plan, options, &slots[w]));
      }
      disk->ChargeDelay(slots[w].sim_nanos);
      stats->serial_sim_nanos += slots[w].sim_nanos;
    }
    stats->parallel_sim_nanos = stats->serial_sim_nanos;
  } else {
    size_t workers = options.num_threads == 0 ? ThreadPool::DefaultConcurrency()
                                              : options.num_threads;
    workers = std::max<size_t>(
        1, std::min(workers, std::max<size_t>(work.size(), 1)));
    stats->workers = workers;

    // Register every scan candidate with the simulated disk *before* any
    // task runs: object ids — and with them the per-object PRNG fault
    // streams — are a pure function of the enumeration order, not of worker
    // interleaving.
    for (size_t w = 0; w < work.size(); ++w) {
      FilePlan& plan = plans[work[w]];
      plan.task = w;
      if (plan.stat_ok && !plan.known) {
        DEX_RETURN_NOT_OK(
            registry_->Add(*plan.uri, plan.size_bytes, plan.mtime_ms));
      }
    }
    TaskGroup group(workers > 1 ? Pool(workers) : nullptr, options.priority);
    for (size_t w = 0; w < work.size(); ++w) {
      const FilePlan* plan = &plans[work[w]];
      TaskSlot* slot = &slots[w];
      // Trace context (order key + parent span) is captured at spawn time by
      // TaskGroup::Spawn, so the drained span stream reproduces spawn order
      // at any worker count without per-call-site plumbing.
      group.Spawn([this, plan, slot, &options]() -> Status {
        if (options.qctx != nullptr) {
          DEX_RETURN_NOT_OK(options.qctx->CheckInterrupt());
        }
        obs::TraceSpan task_span("scan_task", "stage1.scan");
        task_span.AddArg("uri", *plan->uri);
        task_span.AddArg("lane",
                         static_cast<uint64_t>(obs::CurrentThreadLane()));
        // Route this task's simulated stall time into its own bucket so the
        // wave can be aggregated deterministically afterwards.
        SimDisk::TaskTimeScope scope(&slot->sim_nanos);
        return ScanOne(format_, registry_, *plan, options, slot);
      });
    }
    DEX_RETURN_NOT_OK(group.Wait());

    // Sharded gather: every parsed header ships its bytes back over its
    // shard's link, on the coordinator at the barrier in shard/enumeration
    // order — the k-th transfer on a link is the same transfer in every
    // run, so the seeded per-link fault streams replay bit-identically. A
    // response lost past the resend budget degrades like a permanently
    // failing header read (quarantine, metadata kept).
    const size_t num_shards =
        sharded ? static_cast<size_t>(shards->num_shards()) : 1;
    std::vector<uint64_t> shard_disk(num_shards, 0);
    std::vector<uint64_t> shard_net(num_shards, 0);
    uint64_t net_total = 0;
    if (sharded && !work.empty()) {
      std::vector<std::vector<size_t>> members(num_shards);
      for (size_t w = 0; w < work.size(); ++w) {
        const size_t s =
            static_cast<size_t>(shards->ShardOf(*plans[work[w]].uri));
        shard_disk[s] += slots[w].sim_nanos;
        members[s].push_back(w);
      }
      SimNetwork* net = shards->network();
      for (size_t s = 0; s < num_shards; ++s) {
        if (members[s].empty()) continue;
        // This shard's transfers land in its own bucket; the global clock
        // gets one worker-invariant charge below.
        SimDisk::TaskTimeScope scope(&shard_net[s]);
        (void)net->Transfer(shards->LinkOf(static_cast<int>(s)),
                            kShardScanRequestBytes);
        for (size_t w : members[s]) {
          if (slots[w].parse_failed) continue;  // nothing to ship
          const FilePlan& plan = plans[work[w]];
          const uint32_t num_records = slots[w].result.files.empty()
                                           ? 0
                                           : slots[w].result.files[0].num_records;
          const uint64_t bytes = std::min<uint64_t>(
              plan.size_bytes, (static_cast<uint64_t>(num_records) + 1) * 64);
          Result<uint64_t> resp =
              net->Transfer(shards->LinkOf(static_cast<int>(s)), bytes);
          if (!resp.ok() && !slots[w].read_failed) {
            slots[w].read_failed = true;
            slots[w].error = resp.status().message();
          }
        }
      }
      for (size_t s = 0; s < num_shards; ++s) net_total += shard_net[s];
    }

    std::vector<uint64_t> task_nanos;
    task_nanos.reserve(slots.size());
    for (const TaskSlot& slot : slots) task_nanos.push_back(slot.sim_nanos);
    const SimSchedule sched = ListScheduleSimTimes(task_nanos, workers);
    // Charge the *serial sum* (plus, sharded, the total net time): the
    // scan's charged simulated cost stays invariant in the worker count (and
    // equal to the legacy serial scan's charge), while the critical path is
    // reported as what a medium with that much overlap would have stalled —
    // the speedup bench_refresh measures. Unsharded, the critical path is
    // the makespan over `workers` lanes; sharded, it is the slowest shard
    // (summed parse time + link time — each shard is one serial storage
    // node, so shard count, not worker count, sets the headroom). Contrast
    // with stage-2 mounts, which charge the makespan (a query's reported
    // latency *should* drop with workers); Open/Refresh cost feeds
    // experiments that compare ingestion strategies and must not drift with
    // the machine's core count.
    if (sched.serial_sum + net_total > 0) {
      disk->ChargeDelay(sched.serial_sum + net_total);
    }
    stats->serial_sim_nanos = sched.serial_sum + net_total;
    stats->net_sim_nanos = net_total;
    if (sharded) {
      uint64_t slowest = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        slowest = std::max(slowest, shard_disk[s] + shard_net[s]);
        if (shard_disk[s] + shard_net[s] == 0) continue;
        obs::Tracer::Instant(
            "shard_scan", "shard",
            {{"shard", std::to_string(s)},
             {"disk_nanos", std::to_string(shard_disk[s])},
             {"net_nanos", std::to_string(shard_net[s])}});
      }
      stats->parallel_sim_nanos = slowest;
    } else {
      stats->parallel_sim_nanos = sched.makespan;
    }
  }

  // Merge in enumeration order: catalog row order, stat counters, warning
  // order, and quarantine decisions are independent of completion order.
  mseed::ScanResult out;
  out.files.reserve(uris.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    FilePlan& plan = plans[i];
    if (plan.reuse) {
      auto it = base_files.find(*plan.uri);
      DEX_CHECK(it != base_files.end());
      out.files.push_back(*it->second);
      auto rit = base_records.find(*plan.uri);
      if (rit != base_records.end()) {
        for (const mseed::RecordMeta* r : rit->second) out.records.push_back(*r);
      }
      out.total_bytes += it->second->size_bytes;
      ++stats->files_reused;
      if (!collectors_.empty()) {
        // Baseline-reused files are redelivered so collectors always see the
        // complete repository picture (per the delivery contract).
        std::vector<mseed::RecordMeta> recs;
        if (rit != base_records.end()) {
          recs.reserve(rit->second.size());
          for (const mseed::RecordMeta* r : rit->second) recs.push_back(*r);
        }
        collectors_.FileScanned(*it->second, recs);
      }
      continue;
    }
    if (plan.task == SIZE_MAX) continue;  // deadline-skipped, no baseline row
    TaskSlot& slot = slots[plan.task];
    stats->read_retries += slot.retries;
    if (slot.parse_failed) {
      // Corrupt header: quarantine and keep the file out of the catalog. The
      // registry keeps its pre-change identity, so a repaired copy is
      // re-detected as changed and rescanned (which lifts the quarantine).
      registry_->Quarantine(*plan.uri, slot.error);
      obs::Tracer::Instant("scan_quarantine", "fault", {{"uri", *plan.uri}});
      AddWarning(stats, "stage-1 scan of '" + *plan.uri +
                            "' failed: " + slot.error + " (file quarantined)");
      ++stats->files_quarantined;
      continue;
    }
    ++stats->files_scanned;
    if (plan.known) {
      if (plan.changed) {
        // Adopt the file's new identity. Update also lifts any quarantine —
        // the operator may have replaced a broken file with a repaired one.
        DEX_RETURN_NOT_OK(
            registry_->Update(*plan.uri, plan.size_bytes, plan.mtime_ms));
        ++stats->files_changed;
      }
    } else if (plan.stat_ok) {
      ++stats->files_added;
    }
    if (slot.read_failed) {
      // The parse succeeded off the real filesystem but the simulated medium
      // kept failing the header pages: keep the metadata (queryable) but
      // quarantine the file so it cannot become a file of interest until
      // repaired.
      registry_->Quarantine(*plan.uri, slot.error);
      obs::Tracer::Instant("scan_quarantine", "fault", {{"uri", *plan.uri}});
      AddWarning(stats, "header read of '" + *plan.uri + "' failed after " +
                            std::to_string(options.retry.max_retries) +
                            " retries: " + slot.error +
                            " (file quarantined; metadata kept)");
      ++stats->files_quarantined;
    }
    out.files.insert(out.files.end(), slot.result.files.begin(),
                     slot.result.files.end());
    out.records.insert(out.records.end(), slot.result.records.begin(),
                       slot.result.records.end());
    out.total_bytes += slot.result.total_bytes;
    if (!collectors_.empty()) {
      // Metadata entered the catalog (read-failed files keep theirs too), so
      // the collectors see it. ScanFile parses one path, but stay general:
      // deliver per file with that file's records.
      for (const mseed::FileMeta& f : slot.result.files) {
        std::vector<mseed::RecordMeta> recs;
        recs.reserve(slot.result.records.size());
        for (const mseed::RecordMeta& r : slot.result.records) {
          if (r.uri == f.uri) recs.push_back(r);
        }
        collectors_.FileScanned(f, recs);
      }
    }
  }
  DEX_RETURN_NOT_OK(collectors_.ScanFinished());
  span.AddArg("files_scanned", static_cast<uint64_t>(stats->files_scanned));
  span.AddArg("files_reused", static_cast<uint64_t>(stats->files_reused));
  return out;
}

}  // namespace dex
