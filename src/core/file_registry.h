#ifndef DEX_CORE_FILE_REGISTRY_H_
#define DEX_CORE_FILE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/sim_disk.h"

namespace dex {

/// \brief Maps repository file URIs to their SimDisk storage objects.
///
/// Every repository file is registered at Open() so that mounts charge
/// simulated I/O for the bytes they pull, and so "all available files"
/// is a well-defined set when a query references actual data without any
/// metadata restriction.
class FileRegistry {
 public:
  explicit FileRegistry(SimDisk* disk) : disk_(disk) {}

  struct Entry {
    ObjectId object = kInvalidObjectId;
    uint64_t size_bytes = 0;
    int64_t mtime_ms = 0;
  };

  Status Add(const std::string& uri, uint64_t size_bytes, int64_t mtime_ms);

  /// Refreshes size/mtime of a known file (it changed on disk).
  Status Update(const std::string& uri, uint64_t size_bytes, int64_t mtime_ms);
  Result<Entry> Get(const std::string& uri) const;
  bool Contains(const std::string& uri) const { return entries_.count(uri) > 0; }

  /// Charges a full sequential read of the file (what a mount costs on the
  /// simulated medium).
  Status ChargeFileRead(const std::string& uri) const;

  /// All registered URIs in sorted order.
  std::vector<std::string> AllUris() const;

  size_t size() const { return entries_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  SimDisk* disk_;
  std::map<std::string, Entry> entries_;
  uint64_t total_bytes_ = 0;
};

}  // namespace dex

#endif  // DEX_CORE_FILE_REGISTRY_H_
