#ifndef DEX_CORE_FILE_REGISTRY_H_
#define DEX_CORE_FILE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/sim_disk.h"
#include "storage/table.h"

namespace dex {

/// Derived metadata table listing quarantined repository files (one row per
/// file), registered in the catalog alongside GAPS/OVERLAPS so the explorer
/// can inspect failures in SQL:
///   QUARANTINE(uri, reason, transient_errors, failed_reads)
inline constexpr const char* kQuarantineTableName = "QUARANTINE";

SchemaPtr MakeQuarantineSchema();

/// \brief Maps repository file URIs to their SimDisk storage objects.
///
/// Every repository file is registered at Open() so that mounts charge
/// simulated I/O for the bytes they pull, and so "all available files"
/// is a well-defined set when a query references actual data without any
/// metadata restriction.
///
/// The registry also tracks per-file health: reads that failed transiently
/// (and were absorbed by retry) and files that failed permanently. A
/// permanently failing file is *quarantined* — removed from every future
/// files-of-interest set until the repository operator repairs it — so one
/// bad disk sector cannot keep failing queries over the other thousand
/// files.
///
/// Thread-safety: fully internally synchronized. The entry map is guarded by
/// `entries_mu_` — under concurrent serving a Refresh() can Add/Update
/// entries while in-flight queries look files up — and the *health* state
/// (mutated by mount tasks: quarantine, transient-error bookkeeping) by its
/// own `health_mu_`. Lock order where both are needed: entries before
/// health; no method calls out while holding either.
class FileRegistry {
 public:
  explicit FileRegistry(SimDisk* disk) : disk_(disk) {}

  struct Entry {
    ObjectId object = kInvalidObjectId;
    uint64_t size_bytes = 0;
    int64_t mtime_ms = 0;
  };

  struct Health {
    uint64_t transient_errors = 0;  // failed reads later absorbed by retry
    uint64_t failed_reads = 0;      // reads still failing after retry
    bool quarantined = false;
    std::string last_error;
  };

  Status Add(const std::string& uri, uint64_t size_bytes, int64_t mtime_ms);

  /// Refreshes size/mtime of a known file (it changed on disk).
  Status Update(const std::string& uri, uint64_t size_bytes, int64_t mtime_ms);
  Result<Entry> Get(const std::string& uri) const;
  bool Contains(const std::string& uri) const {
    std::lock_guard<std::mutex> lock(entries_mu_);
    return entries_.count(uri) > 0;
  }

  /// Charges a full sequential read of the file (what a mount costs on the
  /// simulated medium).
  Status ChargeFileRead(const std::string& uri) const;

  // -- Per-file health ----------------------------------------------------

  /// Notes a read of `uri` that failed but will be (or was) retried.
  void RecordTransientError(const std::string& uri, const std::string& error);

  /// Quarantines `uri`: it is dropped from AllUris() and callers are
  /// expected to exclude it from files-of-interest sets. Idempotent.
  void Quarantine(const std::string& uri, const std::string& reason);

  /// Lifts a quarantine (e.g. after Refresh() observed the file change).
  void Unquarantine(const std::string& uri);

  bool IsQuarantined(const std::string& uri) const;
  size_t num_quarantined() const {
    std::lock_guard<std::mutex> lock(health_mu_);
    return num_quarantined_;
  }

  /// Monotonic counter bumped on every health change; lets the database
  /// refresh the QUARANTINE metadata table only when something happened.
  uint64_t health_version() const {
    std::lock_guard<std::mutex> lock(health_mu_);
    return health_version_;
  }

  /// Builds the QUARANTINE table (one row per quarantined file).
  Result<TablePtr> BuildQuarantineTable() const;

  /// All registered, non-quarantined URIs in sorted order.
  std::vector<std::string> AllUris() const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(entries_mu_);
    return entries_.size();
  }
  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(entries_mu_);
    return total_bytes_;
  }
  SimDisk* disk() const { return disk_; }

 private:
  SimDisk* disk_;
  mutable std::mutex entries_mu_;
  std::map<std::string, Entry> entries_;  // guarded by entries_mu_
  uint64_t total_bytes_ = 0;              // guarded by entries_mu_
  // Health state below is shared with concurrent mount tasks.
  mutable std::mutex health_mu_;
  std::map<std::string, Health> health_;
  size_t num_quarantined_ = 0;
  uint64_t health_version_ = 0;
};

}  // namespace dex

#endif  // DEX_CORE_FILE_REGISTRY_H_
