#include "core/metrics_publish.h"

#include "obs/metrics.h"

namespace dex {

using obs::MetricsRegistry;

void PublishQueryMetrics(const QueryStats& stats,
                         const obs::MetricLabels& labels) {
  MetricsRegistry& m = MetricsRegistry::Global();
  if (labels.empty()) {
    m.AddCounter("query.count", 1);
    m.AddCounter("query.result_rows", stats.result_rows);
    m.Observe("query.total_seconds", stats.TotalSeconds());
  } else {
    // Labeled updates land in both the labeled series and the base series,
    // so the base names above stay the grand totals either way.
    m.AddCounter("query.count", labels, 1);
    m.AddCounter("query.result_rows", labels, stats.result_rows);
    m.Observe("query.total_seconds", labels, stats.TotalSeconds());
  }
  m.AddCounter("query.plan_nanos", stats.plan_nanos);
  m.AddCounter("query.exec_nanos", stats.exec_nanos);
  m.AddCounter("query.sim_io_nanos", stats.sim_io_nanos);

  const TwoStageStats& ts = stats.two_stage;
  if (ts.split) m.AddCounter("stage.split_queries", 1);
  if (ts.stage1_only) m.AddCounter("stage.stage1_only_queries", 1);
  m.AddCounter("stage.stage1_nanos", ts.stage1_nanos);
  m.AddCounter("stage.rewrite_nanos", ts.rewrite_nanos);
  m.AddCounter("stage.stage2_nanos", ts.stage2_nanos);
  m.AddCounter("stage.files_of_interest", ts.files_of_interest);
  m.AddCounter("stage.files_planned_mount", ts.files_planned_mount);
  m.AddCounter("stage.files_planned_cache", ts.files_planned_cache);
  m.AddCounter("stage.files_pruned", ts.files_pruned);
  m.AddCounter("stage.files_quarantined", ts.files_quarantined);
  m.AddCounter("stage.mount_tasks", ts.mount_tasks);
  m.AddCounter("stage.parallel_sim_nanos", ts.parallel_sim_nanos);
  m.AddCounter("stage.serial_sim_nanos", ts.serial_sim_nanos);
  if (ts.files_of_interest > 0) {
    m.Observe("stage.files_of_interest_per_query",
              static_cast<double>(ts.files_of_interest));
  }

  // Sharded execution: per-query scatter/gather accounting.
  if (ts.num_shards > 1) {
    m.AddCounter("shard.sharded_queries", 1);
    m.AddCounter("shard.net_sim_nanos", ts.net_sim_nanos);
  }
  m.AddCounter("shard.files_skipped_shard", ts.files_skipped_shard);

  // Resource governance: how often queries degrade, and why.
  if (ts.is_partial) m.AddCounter("governance.partial_queries", 1);
  m.AddCounter("governance.files_skipped_deadline", ts.files_skipped_deadline);
  m.AddCounter("governance.files_skipped_memory", ts.files_skipped_memory);
  m.AddCounter("governance.mem_budget_evictions", ts.mem_budget_evictions);
  m.SetGauge("governance.mem_reserved_peak_bytes",
             static_cast<double>(ts.mem_reserved_peak));

  const Mounter::MountCounters& mc = stats.mount;
  m.AddCounter("mount.mounts", mc.mounts);
  m.AddCounter("mount.records_decoded", mc.records_decoded);
  m.AddCounter("mount.samples_decoded", mc.samples_decoded);
  m.AddCounter("mount.bytes_read", mc.bytes_read);
  m.AddCounter("fault.read_retries", mc.read_retries);
  m.AddCounter("fault.files_failed", mc.files_failed);
  m.AddCounter("fault.files_skipped", mc.files_skipped);
  m.AddCounter("fault.records_salvaged", mc.records_salvaged);
  m.AddCounter("fault.records_skipped", mc.records_skipped);
  m.AddCounter("fault.warnings", stats.warnings.size());

  // Zone-map pruning: decode work avoided (CPU only — the mount still
  // charges the whole-file simulated read) and safety-net fallbacks.
  m.AddCounter("zonemap.records_skipped", mc.records_skipped_zonemap);
  m.AddCounter("zonemap.frames_skipped", mc.frames_skipped_zonemap);
  m.AddCounter("zonemap.frames_decoded", mc.frames_decoded_zonemap);
  m.AddCounter("zonemap.fallbacks", mc.zonemap_fallbacks);

  const ExecStats& ex = ts.exec;
  m.AddCounter("exec.rows_scanned", ex.rows_scanned);
  m.AddCounter("exec.rows_output", ex.rows_output);
  m.AddCounter("exec.files_mounted", ex.files_mounted);
  m.AddCounter("exec.mounted_rows", ex.mounted_rows);
  m.AddCounter("exec.cache_scans", ex.cache_scans);
  m.AddCounter("exec.index_probes", ex.index_probes);

  // Vectorized-kernel coverage: batches on the branchless SIMD path vs.
  // scalar-interpreter fallbacks, and boundary compactions.
  m.AddCounter("kernel.filter_batches", ex.kernel_filter_batches);
  m.AddCounter("kernel.filter_scalar_batches", ex.scalar_filter_batches);
  m.AddCounter("kernel.agg_batches", ex.kernel_agg_batches);
  m.AddCounter("kernel.agg_scalar_batches", ex.scalar_agg_batches);
  m.AddCounter("kernel.selection_compactions", ex.selection_compactions);
}

void PublishOpenMetrics(const OpenStats& stats) {
  MetricsRegistry& m = MetricsRegistry::Global();
  m.SetGauge("open.metadata_scan_nanos",
             static_cast<double>(stats.metadata_scan_nanos));
  m.SetGauge("open.load_nanos", static_cast<double>(stats.load_nanos));
  m.SetGauge("open.index_nanos", static_cast<double>(stats.index_nanos));
  m.SetGauge("open.sim_io_nanos", static_cast<double>(stats.sim_io_nanos));
  m.SetGauge("open.repo_bytes", static_cast<double>(stats.repo_bytes));
  m.SetGauge("open.metadata_bytes", static_cast<double>(stats.metadata_bytes));
  m.SetGauge("open.num_files", static_cast<double>(stats.num_files));
  m.SetGauge("open.num_records", static_cast<double>(stats.num_records));
  m.SetGauge("open.snapshot_files_reused",
             static_cast<double>(stats.snapshot_files_reused));
  m.SetGauge("open.scan_workers", static_cast<double>(stats.scan_workers));
  m.SetGauge("open.scan_serial_sim_nanos",
             static_cast<double>(stats.scan_serial_sim_nanos));
  m.SetGauge("open.scan_parallel_sim_nanos",
             static_cast<double>(stats.scan_parallel_sim_nanos));
  m.SetGauge("open.num_shards", static_cast<double>(stats.num_shards));
  m.SetGauge("open.scan_net_sim_nanos",
             static_cast<double>(stats.scan_net_sim_nanos));
}

void PublishRefreshMetrics(const RefreshStats& stats) {
  MetricsRegistry& m = MetricsRegistry::Global();
  m.AddCounter("refresh.count", 1);
  m.AddCounter("refresh.files_added", stats.files_added);
  m.AddCounter("refresh.files_changed", stats.files_changed);
  m.AddCounter("refresh.files_removed", stats.files_removed);
  m.AddCounter("refresh.files_scanned", stats.files_scanned);
  m.AddCounter("refresh.files_reused", stats.files_reused);
  m.AddCounter("refresh.files_quarantined", stats.files_quarantined);
  m.AddCounter("refresh.read_retries", stats.read_retries);
  m.AddCounter("refresh.scan_nanos", stats.scan_nanos);
  m.AddCounter("refresh.sim_io_nanos", stats.sim_io_nanos);
  m.AddCounter("refresh.serial_sim_nanos", stats.serial_sim_nanos);
  m.AddCounter("refresh.parallel_sim_nanos", stats.parallel_sim_nanos);
  if (stats.is_partial) m.AddCounter("governance.partial_refreshes", 1);
  m.AddCounter("governance.files_skipped_deadline",
               stats.files_skipped_deadline);
  if (stats.num_shards > 1) {
    m.AddCounter("refresh.net_sim_nanos", stats.net_sim_nanos);
  }
  m.AddCounter("shard.files_skipped_shard", stats.files_skipped_shard);
}

void PublishIoMetrics(const IoStats& io) {
  MetricsRegistry& m = MetricsRegistry::Global();
  m.SetGauge("io.disk_bytes_read", static_cast<double>(io.disk_bytes_read));
  m.SetGauge("io.cached_bytes_read", static_cast<double>(io.cached_bytes_read));
  m.SetGauge("io.bytes_written", static_cast<double>(io.bytes_written));
  m.SetGauge("io.seeks", static_cast<double>(io.seeks));
  m.SetGauge("io.sim_nanos", static_cast<double>(io.sim_nanos));
  m.SetGauge("io.read_faults", static_cast<double>(io.read_faults));
}

void PublishCacheMetrics(const CacheStats& cache) {
  MetricsRegistry& m = MetricsRegistry::Global();
  m.SetGauge("cache.hits", static_cast<double>(cache.hits));
  m.SetGauge("cache.misses", static_cast<double>(cache.misses));
  m.SetGauge("cache.insertions", static_cast<double>(cache.insertions));
  m.SetGauge("cache.evictions", static_cast<double>(cache.evictions));
  m.SetGauge("cache.invalidations", static_cast<double>(cache.invalidations));
  m.SetGauge("cache.budget_rejections",
             static_cast<double>(cache.budget_rejections));
  m.SetGauge("cache.spills", static_cast<double>(cache.spills));
  m.SetGauge("cache.reloads", static_cast<double>(cache.reloads));
  m.SetGauge("cache.reload_failures",
             static_cast<double>(cache.reload_failures));
  m.SetGauge("cache.persisted", static_cast<double>(cache.persisted));
  m.SetGauge("cache.persist_failures",
             static_cast<double>(cache.persist_failures));
}

void PublishPersistentCacheMetrics(const PersistentCache::Stats& stats) {
  MetricsRegistry& m = MetricsRegistry::Global();
  m.SetGauge("cache.disk.persisted", static_cast<double>(stats.persisted));
  m.SetGauge("cache.disk.persisted_bytes",
             static_cast<double>(stats.persisted_bytes));
  m.SetGauge("cache.disk.persist_failures",
             static_cast<double>(stats.persist_failures));
  m.SetGauge("cache.disk.loads", static_cast<double>(stats.loads));
  m.SetGauge("cache.disk.load_failures",
             static_cast<double>(stats.load_failures));
  m.SetGauge("cache.disk.recovered", static_cast<double>(stats.recovered));
  m.SetGauge("cache.disk.quarantined", static_cast<double>(stats.quarantined));
  m.SetGauge("cache.disk.stale_dropped",
             static_cast<double>(stats.stale_dropped));
}

void PublishShardMetrics(
    const std::vector<ShardedRepository::SliceStats>& rows) {
  MetricsRegistry& m = MetricsRegistry::Global();
  size_t dead = 0;
  uint64_t messages = 0, bytes = 0, nanos = 0, resends = 0;
  for (const ShardedRepository::SliceStats& r : rows) {
    if (!r.alive) ++dead;
    messages += r.net_messages;
    bytes += r.net_bytes;
    nanos += r.net_sim_nanos;
    resends += r.net_resends;
    obs::MetricLabels labels;
    labels.shard = r.shard;
    m.SetGauge("shard.net_messages", labels, static_cast<double>(r.net_messages));
    m.SetGauge("shard.net_bytes", labels, static_cast<double>(r.net_bytes));
    m.SetGauge("shard.net_sim_nanos", labels,
               static_cast<double>(r.net_sim_nanos));
    m.SetGauge("shard.net_resends", labels, static_cast<double>(r.net_resends));
    m.SetGauge("shard.alive", labels, r.alive ? 1.0 : 0.0);
  }
  m.SetGauge("shard.count", static_cast<double>(rows.size()));
  m.SetGauge("shard.dead", static_cast<double>(dead));
  m.SetGauge("shard.net_messages_total", static_cast<double>(messages));
  m.SetGauge("shard.net_bytes_total", static_cast<double>(bytes));
  m.SetGauge("shard.net_sim_nanos_total", static_cast<double>(nanos));
  m.SetGauge("shard.net_resends_total", static_cast<double>(resends));
}

}  // namespace dex
