#ifndef DEX_SERVE_SESSION_MANAGER_H_
#define DEX_SERVE_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace dex::serve {

/// \brief Database-wide admission knobs (shell: `--max-inflight`,
/// `--queue-depth`).
struct ServeOptions {
  /// Queries allowed to execute concurrently across all sessions. Excess
  /// admissions wait in the queue.
  size_t max_inflight = 4;
  /// Bounded wait queue. An arrival finding it full is shed immediately
  /// with a retryable kOverloaded status carrying a backoff hint.
  size_t queue_depth = 8;
  /// Base of the shed backoff hint: the hint grows linearly with the queue
  /// occupancy at shed time, so clients back off harder the deeper the
  /// overload.
  uint64_t shed_backoff_base_nanos = 1'000'000;
};

/// \brief One client session: a name, a scheduling priority, a private
/// concurrency cap, and default QueryOptions merged under every Submit.
struct SessionOptions {
  std::string name;
  /// ThreadPool::kPriorityBackground/Normal/Interactive. Decides both the
  /// admission queue order and the worker-pool class of the session's mount
  /// tasks.
  int priority = ThreadPool::kPriorityNormal;
  /// This session's own in-flight cap (an ingest session is typically capped
  /// at 1 so it cannot monopolize the global window).
  size_t max_inflight = 1;
  /// Per-session defaults (deadline, memory cap, worker lanes, ...);
  /// Submit-time overrides win field by field.
  QueryOptions defaults;
};

/// \brief Parses the `backoff_hint_nanos=<n>` token a shed (kOverloaded)
/// status carries in its message. Returns 0 when absent.
uint64_t BackoffHintNanos(const Status& status);

/// \brief Admission control and fair scheduling for N concurrent sessions
/// over one shared Database.
///
/// Every Submit pins the catalog epoch current *at submission* — even while
/// the query then waits in the admission queue — so what a query sees is
/// decided by when it was issued, not by when a worker got to it
/// (snapshot-at-submission). The gate holds at most `max_inflight` running
/// queries; the next `queue_depth` wait, woken in (priority desc, ticket
/// asc) order, each session additionally bounded by its own cap; everything
/// beyond that is shed deterministically with Status::Overloaded and a
/// backoff hint.
///
/// Thread-safe; Submit is designed to be called from one thread per session
/// (or any number of threads — the ticket order is the arrival order under
/// the internal lock).
///
/// Metrics: `serve.sessions_active`, `serve.queries_queued` (gauges),
/// `serve.queries_shed`, `serve.queries_admitted` (counters), and
/// per-priority queue-wait histograms `serve.queue_wait_nanos.p<priority>`.
class SessionManager {
 public:
  using SessionId = uint64_t;

  /// Point-in-time admission state.
  struct Stats {
    size_t sessions_active = 0;
    size_t inflight = 0;
    size_t queued = 0;
    uint64_t admitted = 0;  // cumulative: ran (immediately or after a wait)
    uint64_t waited = 0;    // cumulative: went through the wait queue
    uint64_t shed = 0;      // cumulative: refused with kOverloaded
  };

  /// One row of `.sessions` introspection.
  struct SessionInfo {
    SessionId id = 0;
    std::string name;
    int priority = ThreadPool::kPriorityNormal;
    size_t max_inflight = 1;
    size_t inflight = 0;
    uint64_t submitted = 0;
    uint64_t shed = 0;
    bool closed = false;
  };

  SessionManager(Database* db, ServeOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a session. Never fails today (the Result is for forward
  /// compatibility with per-session quotas).
  Result<SessionId> OpenSession(SessionOptions options);

  /// Marks the session closed: further Submits are refused; an in-flight
  /// query finishes normally.
  Status CloseSession(SessionId id);

  /// Runs `sql` on behalf of `session`: pins the current epoch, passes the
  /// admission gate (possibly waiting), then executes on the shared
  /// Database with the session's defaults merged under `overrides`.
  /// Sheds with Status::Overloaded (see BackoffHintNanos) when the wait
  /// queue is full, without blocking.
  Result<QueryResult> Submit(SessionId session, const std::string& sql,
                             const QueryOptions* overrides = nullptr);

  Stats stats() const;
  std::vector<SessionInfo> ListSessions() const;

  const ServeOptions& options() const { return options_; }
  Database* database() { return db_; }

 private:
  struct Session {
    SessionId id = 0;
    SessionOptions options;
    size_t inflight = 0;     // guarded by mu_
    uint64_t submitted = 0;  // guarded by mu_
    uint64_t shed = 0;       // guarded by mu_
    bool closed = false;     // guarded by mu_
  };

  struct Waiter {
    uint64_t ticket = 0;
    int priority = ThreadPool::kPriorityNormal;
    Session* session = nullptr;
    bool granted = false;
    bool aborted = false;  // manager shutting down
  };

  /// True when a new arrival from `s` may start right now: global and
  /// per-session capacity free, and no *eligible* waiter of equal or higher
  /// priority would be bypassed (waiters always have earlier tickets).
  bool CanRunNowLocked(const Session& s) const;

  /// Grants as many waiters as capacity allows, best (priority desc, ticket
  /// asc) eligible first. Called after every release and every grant-state
  /// change; wakes granted waiters via cv_.
  void GrantWaitersLocked();

  void PublishGaugesLocked();

  Database* db_;
  const ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
  std::deque<Waiter*> queue_;  // waiting admissions, ticket order
  SessionId next_session_id_ = 1;
  uint64_t next_ticket_ = 0;
  size_t inflight_ = 0;
  size_t open_sessions_ = 0;
  uint64_t admitted_ = 0;
  uint64_t waited_ = 0;
  uint64_t shed_ = 0;
  bool shutdown_ = false;
};

}  // namespace dex::serve

#endif  // DEX_SERVE_SESSION_MANAGER_H_
