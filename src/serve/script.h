#ifndef DEX_SERVE_SCRIPT_H_
#define DEX_SERVE_SCRIPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fnv.h"
#include "common/result.h"
#include "serve/session_manager.h"

namespace dex::serve {

/// \brief One step of a scripted multi-session workload.
struct ScriptOp {
  enum class Kind {
    kQuery,    // submit `sql` on behalf of `session`
    kRefresh,  // publish a new catalog epoch (repository rescan)
    kDrain,    // deterministic mode: run every admitted/queued query, then
               // reset the gate (threaded mode: no-op)
  };
  Kind kind = Kind::kQuery;
  size_t session = 0;  // index into ServeScript::sessions
  std::string sql;
};

/// \brief A reproducible serving workload: admission knobs, the session
/// roster, and an op sequence.
struct ServeScript {
  ServeOptions serve;
  std::vector<SessionOptions> sessions;
  std::vector<ScriptOp> ops;
};

/// \brief What happened to one kQuery op.
struct ScriptQueryOutcome {
  size_t op_index = 0;
  size_t session = 0;
  int priority = ThreadPool::kPriorityNormal;
  bool shed = false;    // refused with kOverloaded at arrival
  bool queued = false;  // waited in the admission queue before running
  StatusCode status = StatusCode::kOk;
  uint64_t backoff_hint_nanos = 0;  // shed only
  uint64_t epoch = 0;               // catalog epoch the query ran against
  uint64_t result_hash = 0;         // FNV-1a over the result table rendering
  uint64_t result_rows = 0;
  uint64_t sim_io_nanos = 0;  // the query's own charged simulated I/O
  // Deterministic mode only: list-scheduled position on the virtual
  // timeline (max_inflight lanes, burst arrival at the drain-group start).
  uint64_t virtual_start_nanos = 0;
  uint64_t virtual_end_nanos = 0;
};

/// \brief Aggregate result of one script run.
struct ScriptResult {
  std::vector<ScriptQueryOutcome> outcomes;  // one per kQuery op, op order
  uint64_t admitted = 0;
  uint64_t queued = 0;
  uint64_t shed = 0;
  uint64_t refreshes = 0;
  uint64_t final_epoch = 0;
  uint64_t epochs_retired = 0;
  /// p50/p99 of interactive-priority virtual latency (deterministic mode).
  uint64_t p50_interactive_nanos = 0;
  uint64_t p99_interactive_nanos = 0;
  /// FNV-1a over every outcome (status, shed decision, epoch, result hash,
  /// charged sim time) plus the aggregate counters. In deterministic mode
  /// this is bit-identical across runs, worker counts, and pool sizes; in
  /// threaded mode it depends on real interleaving and is informational.
  uint64_t fingerprint = 0;
};

/// The script fingerprint primitive is the shared FNV-1a from common/fnv.h
/// (also used for the shard-merge determinism checks — one copy, one hash).
using ::dex::Fnv1a;
using ::dex::Fnv1aString;

/// \brief Deterministic replay: models the whole script as admission bursts.
///
/// Ops are processed in order against a simulated gate (max_inflight running
/// slots, queue_depth wait slots, the rest shed with the same kOverloaded
/// status Submit would return). Every accepted query pins the epoch current
/// at its op position; kRefresh publishes synchronously in place, so queries
/// submitted before it run against the pre-refresh snapshot even though they
/// physically execute later. At each kDrain (and at end of script) the
/// accepted queries execute serially in admission order (priority desc,
/// ticket asc) — results, shed decisions, epochs, and charged sim I/O are
/// bit-identical at any worker count — and their measured per-query sim
/// times are list-scheduled onto max_inflight virtual lanes for the latency
/// percentiles.
Result<ScriptResult> RunScriptDeterministic(Database* db,
                                            const ServeScript& script);

/// \brief Physical replay: a real SessionManager, one thread per session,
/// each thread submitting its session's ops in script order. Exercises the
/// cross-query locking for TSan. Which queries shed depends on real timing;
/// per-query outcomes (hash, epoch, sim time) are still well-defined for
/// every admitted query.
Result<ScriptResult> RunScriptThreaded(Database* db, const ServeScript& script);

}  // namespace dex::serve

#endif  // DEX_SERVE_SCRIPT_H_
