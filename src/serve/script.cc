#include "serve/script.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"

namespace dex::serve {

namespace {

void HashU64(uint64_t v, uint64_t* h) {
  *h = Fnv1a(&v, sizeof(v), *h);
}

void HashOutcome(const ScriptQueryOutcome& o, uint64_t* h) {
  HashU64(o.op_index, h);
  HashU64(o.session, h);
  HashU64(static_cast<uint64_t>(o.priority), h);
  HashU64(o.shed ? 1 : 0, h);
  HashU64(o.queued ? 1 : 0, h);
  HashU64(static_cast<uint64_t>(o.status), h);
  HashU64(o.backoff_hint_nanos, h);
  HashU64(o.epoch, h);
  HashU64(o.result_hash, h);
  HashU64(o.result_rows, h);
  HashU64(o.sim_io_nanos, h);
  HashU64(o.virtual_start_nanos, h);
  HashU64(o.virtual_end_nanos, h);
}

uint64_t Percentile(std::vector<uint64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      static_cast<double>(values.size() - 1) * p / 100.0);
  return values[idx];
}

/// One accepted (running or queued) query awaiting its drain.
struct Pending {
  size_t op_index = 0;
  size_t session = 0;
  const std::string* sql = nullptr;
  EpochPtr epoch;  // pinned at arrival — snapshot-at-submission
  uint64_t ticket = 0;
  int priority = ThreadPool::kPriorityNormal;
  bool queued = false;
};

}  // namespace

Result<ScriptResult> RunScriptDeterministic(Database* db,
                                            const ServeScript& script) {
  ScriptResult out;
  const size_t max_inflight = std::max<size_t>(1, script.serve.max_inflight);
  const size_t queue_depth = script.serve.queue_depth;

  std::vector<Pending> running;   // admitted immediately, ticket order
  std::vector<Pending> waiting;   // queued, ticket order
  uint64_t next_ticket = 0;
  uint64_t virtual_offset = 0;
  std::vector<uint64_t> interactive_latencies;

  // Runs every accepted query of the current burst serially, in the order a
  // real gate would have granted them: the already-running set in admission
  // (ticket) order, then the queue in (priority desc, ticket asc) order.
  // Measured per-query sim times are then list-scheduled onto max_inflight
  // virtual lanes — the latency a pool with that much overlap would show.
  auto drain = [&]() -> Status {
    std::vector<Pending*> order;
    order.reserve(running.size() + waiting.size());
    for (Pending& p : running) order.push_back(&p);
    {
      std::vector<Pending*> q;
      for (Pending& p : waiting) q.push_back(&p);
      std::stable_sort(q.begin(), q.end(), [](const Pending* a, const Pending* b) {
        return a->priority > b->priority;
      });
      order.insert(order.end(), q.begin(), q.end());
    }
    std::vector<uint64_t> lanes(max_inflight, 0);
    for (Pending* p : order) {
      const SessionOptions& sess = script.sessions[p->session];
      QueryOptions opts = sess.defaults;
      opts.priority = sess.priority;
      ScriptQueryOutcome o;
      o.op_index = p->op_index;
      o.session = p->session;
      o.priority = p->priority;
      o.queued = p->queued;
      o.epoch = p->epoch->id;
      Result<QueryResult> r = db->Query(*p->sql, opts, std::move(p->epoch));
      if (r.ok()) {
        o.status = StatusCode::kOk;
        DEX_CHECK(r->stats.epoch == o.epoch);
        o.result_hash = Fnv1aString(r->table->ToString());
        o.result_rows = r->stats.result_rows;
        o.sim_io_nanos = r->stats.sim_io_nanos;
      } else {
        o.status = r.status().code();
      }
      // Earliest-free virtual lane (ties → lowest index): deterministic.
      size_t lane = 0;
      for (size_t l = 1; l < lanes.size(); ++l) {
        if (lanes[l] < lanes[lane]) lane = l;
      }
      o.virtual_start_nanos = virtual_offset + lanes[lane];
      o.virtual_end_nanos = o.virtual_start_nanos + o.sim_io_nanos;
      lanes[lane] = o.virtual_end_nanos - virtual_offset;
      if (p->priority == ThreadPool::kPriorityInteractive) {
        // Burst arrival at the group start: latency = queue + service.
        interactive_latencies.push_back(o.virtual_end_nanos - virtual_offset);
      }
      out.outcomes.push_back(o);
    }
    virtual_offset += *std::max_element(lanes.begin(), lanes.end());
    running.clear();
    waiting.clear();
    return Status::OK();
  };

  for (size_t i = 0; i < script.ops.size(); ++i) {
    const ScriptOp& op = script.ops[i];
    switch (op.kind) {
      case ScriptOp::Kind::kQuery: {
        DEX_CHECK(op.session < script.sessions.size());
        const SessionOptions& sess = script.sessions[op.session];
        const size_t cap = std::max<size_t>(1, sess.max_inflight);
        size_t session_running = 0;
        for (const Pending& p : running) {
          if (p.session == op.session) ++session_running;
        }
        Pending p;
        p.op_index = i;
        p.session = op.session;
        p.sql = &op.sql;
        p.ticket = next_ticket++;
        p.priority = sess.priority;
        p.epoch = db->PinEpoch();
        if (running.size() < max_inflight && session_running < cap) {
          running.push_back(std::move(p));
        } else if (waiting.size() < queue_depth) {
          p.queued = true;
          waiting.push_back(std::move(p));
        } else {
          // Shed — same status and hint Submit would produce.
          ScriptQueryOutcome o;
          o.op_index = i;
          o.session = op.session;
          o.priority = sess.priority;
          o.shed = true;
          o.status = StatusCode::kOverloaded;
          o.backoff_hint_nanos =
              script.serve.shed_backoff_base_nanos * (waiting.size() + 1);
          out.outcomes.push_back(o);
        }
        break;
      }
      case ScriptOp::Kind::kRefresh: {
        // Publishes mid-script: queries accepted above hold pre-refresh
        // pins and will see pre-refresh rows when the next drain runs them.
        DEX_ASSIGN_OR_RETURN(RefreshStats rs, db->Refresh());
        (void)rs;
        ++out.refreshes;
        break;
      }
      case ScriptOp::Kind::kDrain: {
        DEX_RETURN_NOT_OK(drain());
        break;
      }
    }
  }
  DEX_RETURN_NOT_OK(drain());

  std::sort(out.outcomes.begin(), out.outcomes.end(),
            [](const ScriptQueryOutcome& a, const ScriptQueryOutcome& b) {
              return a.op_index < b.op_index;
            });
  for (const ScriptQueryOutcome& o : out.outcomes) {
    if (o.shed) {
      ++out.shed;
    } else {
      ++out.admitted;
      if (o.queued) ++out.queued;
    }
  }
  out.final_epoch = db->current_epoch();
  out.epochs_retired = db->epochs_retired();
  out.p50_interactive_nanos = Percentile(interactive_latencies, 50);
  out.p99_interactive_nanos = Percentile(interactive_latencies, 99);

  uint64_t h = kFnv1aOffsetBasis;
  for (const ScriptQueryOutcome& o : out.outcomes) HashOutcome(o, &h);
  HashU64(out.admitted, &h);
  HashU64(out.queued, &h);
  HashU64(out.shed, &h);
  HashU64(out.refreshes, &h);
  HashU64(out.final_epoch, &h);
  HashU64(out.epochs_retired, &h);
  out.fingerprint = h;
  return out;
}

Result<ScriptResult> RunScriptThreaded(Database* db,
                                       const ServeScript& script) {
  ScriptResult out;
  SessionManager manager(db, script.serve);
  std::vector<SessionManager::SessionId> ids;
  ids.reserve(script.sessions.size());
  for (const SessionOptions& s : script.sessions) {
    DEX_ASSIGN_OR_RETURN(SessionManager::SessionId id,
                         manager.OpenSession(s));
    ids.push_back(id);
  }

  // Each session replays its own ops in script order on its own thread —
  // real contention on the gate, the pool, the cache, and the epochs.
  std::vector<std::vector<size_t>> per_session(script.sessions.size());
  for (size_t i = 0; i < script.ops.size(); ++i) {
    const ScriptOp& op = script.ops[i];
    if (op.kind == ScriptOp::Kind::kDrain) continue;  // no barrier here
    DEX_CHECK(op.session < script.sessions.size());
    per_session[op.session].push_back(i);
  }

  std::vector<ScriptQueryOutcome> outcomes(script.ops.size());
  std::vector<char> is_query(script.ops.size(), 0);
  std::atomic<uint64_t> refreshes{0};
  std::vector<std::thread> threads;
  threads.reserve(per_session.size());
  for (size_t s = 0; s < per_session.size(); ++s) {
    threads.emplace_back([&, s] {
      for (size_t idx : per_session[s]) {
        const ScriptOp& op = script.ops[idx];
        if (op.kind == ScriptOp::Kind::kRefresh) {
          Result<RefreshStats> r = db->Refresh();
          if (r.ok()) refreshes.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ScriptQueryOutcome& o = outcomes[idx];
        o.op_index = idx;
        o.session = s;
        o.priority = script.sessions[s].priority;
        is_query[idx] = 1;
        Result<QueryResult> r = manager.Submit(ids[s], op.sql);
        if (r.ok()) {
          o.status = StatusCode::kOk;
          o.epoch = r->stats.epoch;
          o.result_hash = Fnv1aString(r->table->ToString());
          o.result_rows = r->stats.result_rows;
          o.sim_io_nanos = r->stats.sim_io_nanos;
        } else {
          o.status = r.status().code();
          o.shed = r.status().IsOverloaded();
          o.backoff_hint_nanos = BackoffHintNanos(r.status());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (is_query[i]) out.outcomes.push_back(outcomes[i]);
  }
  const SessionManager::Stats stats = manager.stats();
  out.admitted = stats.admitted;
  out.queued = stats.waited;
  out.shed = stats.shed;
  out.refreshes = refreshes.load();
  out.final_epoch = db->current_epoch();
  out.epochs_retired = db->epochs_retired();

  uint64_t h = kFnv1aOffsetBasis;
  for (const ScriptQueryOutcome& o : out.outcomes) HashOutcome(o, &h);
  out.fingerprint = h;  // informational: depends on real interleaving
  return out;
}

}  // namespace dex::serve
