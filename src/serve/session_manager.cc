#include "serve/session_manager.h"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dex::serve {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr const char* kBackoffToken = "backoff_hint_nanos=";

/// Session defaults overlaid with submit-time overrides, field by field.
/// The session's priority always wins: priority is a property of who is
/// asking, not of the individual statement.
QueryOptions MergeOptions(const QueryOptions& defaults,
                          const QueryOptions* overrides, int priority) {
  QueryOptions merged = defaults;
  if (overrides != nullptr) {
    if (overrides->sim_deadline_nanos) {
      merged.sim_deadline_nanos = overrides->sim_deadline_nanos;
    }
    if (overrides->wall_deadline_nanos) {
      merged.wall_deadline_nanos = overrides->wall_deadline_nanos;
    }
    if (overrides->memory_budget_bytes) {
      merged.memory_budget_bytes = overrides->memory_budget_bytes;
    }
    if (overrides->on_resource_exhausted) {
      merged.on_resource_exhausted = overrides->on_resource_exhausted;
    }
    if (overrides->num_threads) merged.num_threads = overrides->num_threads;
    if (overrides->breakpoint != nullptr) {
      merged.breakpoint = overrides->breakpoint;
    }
    if (overrides->cancel != nullptr) merged.cancel = overrides->cancel;
    if (overrides->trace) merged.trace = true;
    if (!overrides->query_label.empty()) {
      merged.query_label = overrides->query_label;
    }
  }
  merged.priority = priority;
  return merged;
}

}  // namespace

uint64_t BackoffHintNanos(const Status& status) {
  const std::string& msg = status.message();
  const size_t pos = msg.find(kBackoffToken);
  if (pos == std::string::npos) return 0;
  uint64_t hint = 0;
  for (size_t i = pos + std::string(kBackoffToken).size();
       i < msg.size() && msg[i] >= '0' && msg[i] <= '9'; ++i) {
    hint = hint * 10 + static_cast<uint64_t>(msg[i] - '0');
  }
  return hint;
}

SessionManager::SessionManager(Database* db, ServeOptions options)
    : db_(db), options_(options) {}

SessionManager::~SessionManager() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  for (Waiter* w : queue_) w->aborted = true;
  queue_.clear();
  cv_.notify_all();
}

Result<SessionManager::SessionId> SessionManager::OpenSession(
    SessionOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = std::make_unique<Session>();
  session->id = next_session_id_++;
  session->options = std::move(options);
  if (session->options.max_inflight == 0) session->options.max_inflight = 1;
  session->options.priority =
      std::clamp(session->options.priority, ThreadPool::kPriorityBackground,
                 ThreadPool::kPriorityInteractive);
  const SessionId id = session->id;
  sessions_[id] = std::move(session);
  ++open_sessions_;
  PublishGaugesLocked();
  return id;
}

Status SessionManager::CloseSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + std::to_string(id));
  }
  if (!it->second->closed) {
    it->second->closed = true;
    --open_sessions_;
    PublishGaugesLocked();
  }
  return Status::OK();
}

bool SessionManager::CanRunNowLocked(const Session& s) const {
  if (inflight_ >= options_.max_inflight) return false;
  if (s.inflight >= s.options.max_inflight) return false;
  // No queue jumping: an eligible waiter of equal or higher priority always
  // has an earlier ticket than a new arrival and therefore goes first.
  // (Waiters blocked only by their own session cap don't hold others back.)
  for (const Waiter* w : queue_) {
    if (w->priority >= s.options.priority &&
        w->session->inflight < w->session->options.max_inflight) {
      return false;
    }
  }
  return true;
}

void SessionManager::GrantWaitersLocked() {
  bool granted_any = false;
  while (inflight_ < options_.max_inflight) {
    // Best eligible waiter: highest priority, then earliest ticket. The
    // deque is in ticket order, so the first hit of the best priority wins.
    Waiter* best = nullptr;
    for (Waiter* w : queue_) {
      if (w->session->inflight >= w->session->options.max_inflight) continue;
      if (best == nullptr || w->priority > best->priority) best = w;
    }
    if (best == nullptr) break;
    best->granted = true;
    ++inflight_;
    ++best->session->inflight;
    queue_.erase(std::find(queue_.begin(), queue_.end(), best));
    granted_any = true;
  }
  if (granted_any) {
    PublishGaugesLocked();
    cv_.notify_all();
  }
}

void SessionManager::PublishGaugesLocked() {
  auto& reg = obs::MetricsRegistry::Global();
  reg.SetGauge("serve.sessions_active", static_cast<double>(open_sessions_));
  reg.SetGauge("serve.queries_queued", static_cast<double>(queue_.size()));
  reg.SetGauge("serve.queries_inflight", static_cast<double>(inflight_));
}

Result<QueryResult> SessionManager::Submit(SessionId session,
                                           const std::string& sql,
                                           const QueryOptions* overrides) {
  // Snapshot-at-submission: the epoch is pinned before any waiting, so a
  // Refresh publishing while this query sits in the queue does not change
  // what it will see.
  EpochPtr epoch = db_->PinEpoch();

  // The submit span covers admission (including queue wait) plus execution;
  // the query's root span parents under it via `trace_parent_span`, so the
  // whole admission-to-result path renders as one tree in the Chrome trace.
  obs::TraceSpan submit_span("submit", "serve");

  QueryOptions merged;
  Session* s = nullptr;
  Status shed_status = Status::OK();
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return Status::NotFound("no such session: " + std::to_string(session));
    }
    s = it->second.get();
    if (s->closed || shutdown_) {
      return Status::InvalidArgument("session '" + s->options.name +
                                     "' is closed");
    }
    ++s->submitted;
    merged = MergeOptions(s->options.defaults, overrides, s->options.priority);
    merged.session = s->options.name.empty()
                         ? "session-" + std::to_string(session)
                         : s->options.name;
    merged.trace_parent_span = submit_span.id();
    if (submit_span.active()) {
      submit_span.AddArg("session", merged.session);
      submit_span.AddArg("priority",
                         static_cast<uint64_t>(s->options.priority));
    }

    if (CanRunNowLocked(*s)) {
      ++inflight_;
      ++s->inflight;
      ++admitted_;
      PublishGaugesLocked();
    } else if (queue_.size() >= options_.queue_depth) {
      // Overload: shed deterministically, never block past the bounded
      // queue. The hint scales with the occupancy the client collided with.
      ++shed_;
      ++s->shed;
      const uint64_t hint =
          options_.shed_backoff_base_nanos * (queue_.size() + 1);
      shed_status = Status::Overloaded(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.queue_depth) + " waiting, " +
          std::to_string(inflight_) + " in flight); retry later; " +
          kBackoffToken + std::to_string(hint));
    } else {
      Waiter waiter;
      waiter.ticket = next_ticket_++;
      waiter.priority = s->options.priority;
      waiter.session = s;
      queue_.push_back(&waiter);
      ++waited_;
      PublishGaugesLocked();
      const uint64_t wait_start = NowNanos();
      cv_.wait(lock, [&waiter] { return waiter.granted || waiter.aborted; });
      obs::MetricLabels wait_labels;
      wait_labels.priority = waiter.priority;
      obs::MetricsRegistry::Global().Observe(
          "serve.queue_wait_nanos", wait_labels,
          static_cast<double>(NowNanos() - wait_start));
      if (waiter.aborted) {
        return Status::Aborted("session manager shut down while queued");
      }
      // Granted: GrantWaitersLocked() already took the inflight slots.
      ++admitted_;
    }
  }

  // Admission telemetry outside mu_: the flight recorder's clock callback
  // reads SimDisk stats, and labeled-counter publication does not need the
  // admission lock.
  obs::MetricLabels labels;
  labels.session = merged.session;
  labels.priority = merged.priority;
  if (!shed_status.ok()) {
    obs::MetricsRegistry::Global().AddCounter("serve.queries_shed", labels, 1);
    obs::FlightEvent ev;
    ev.kind = "shed";
    ev.session = merged.session;
    ev.priority = merged.priority;
    ev.detail = shed_status.message();
    obs::FlightRecorder::Global().Record(std::move(ev));
    obs::FlightRecorder::Global().AutoDump("shed: " + merged.session);
    return shed_status;
  }
  obs::MetricsRegistry::Global().AddCounter("serve.queries_admitted", labels, 1);
  {
    obs::FlightEvent ev;
    ev.kind = "admission_grant";
    ev.session = merged.session;
    ev.priority = merged.priority;
    obs::FlightRecorder::Global().Record(std::move(ev));
  }
  Result<QueryResult> result = db_->Query(sql, merged, std::move(epoch));

  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    --s->inflight;
    GrantWaitersLocked();
    PublishGaugesLocked();
  }
  return result;
}

SessionManager::Stats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.sessions_active = open_sessions_;
  out.inflight = inflight_;
  out.queued = queue_.size();
  out.admitted = admitted_;
  out.waited = waited_;
  out.shed = shed_;
  return out;
}

std::vector<SessionManager::SessionInfo> SessionManager::ListSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    SessionInfo info;
    info.id = id;
    info.name = s->options.name;
    info.priority = s->options.priority;
    info.max_inflight = s->options.max_inflight;
    info.inflight = s->inflight;
    info.submitted = s->submitted;
    info.shed = s->shed;
    info.closed = s->closed;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SessionInfo& a, const SessionInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace dex::serve
