#ifndef DEX_COMMON_RANDOM_H_
#define DEX_COMMON_RANDOM_H_

#include <cstdint>

namespace dex {

/// \brief Deterministic xorshift128+ PRNG.
///
/// All synthetic data in the repository generator and benchmarks flows
/// through this so that experiments are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding to decorrelate nearby seeds.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Approximate standard normal via sum of uniforms (Irwin-Hall, n=12).
  double NextGaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return sum - 6.0;
  }

  /// Bernoulli with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace dex

#endif  // DEX_COMMON_RANDOM_H_
