#ifndef DEX_COMMON_VALUE_H_
#define DEX_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/types.h"

namespace dex {

/// \brief A single scalar value flowing through expressions and result rows.
///
/// Values are a convenience layer for literals, query results and tests; the
/// execution engine itself operates on typed column vectors (see
/// engine/batch.h) and only falls back to Value at the edges.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(DataType::kInt64), repr_(std::monostate{}) {}

  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Timestamp(int64_t millis) {
    return Value(DataType::kTimestamp, millis);
  }
  static Value Bool(bool v) {
    return Value(DataType::kBool, static_cast<int64_t>(v));
  }
  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  DataType type() const { return type_; }

  /// Raw accessors; the caller must know the physical representation.
  int64_t int64() const { return std::get<int64_t>(repr_); }
  double dbl() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }
  bool boolean() const { return std::get<int64_t>(repr_) != 0; }

  /// \brief Numeric view of the value (int64/bool/timestamp widen to double).
  Result<double> AsDouble() const;
  /// \brief Integer view; doubles are rejected to avoid silent truncation.
  Result<int64_t> AsInt64() const;

  /// \brief SQL-ish rendering: 123, 4.5, 'text', NULL,
  /// timestamps as ISO-8601.
  std::string ToString() const;

  /// Deep equality: same type category and same content. NULL != NULL here
  /// (SQL semantics are handled by the expression evaluator).
  bool Equals(const Value& other) const;

 private:
  Value(DataType type, int64_t v) : type_(type), repr_(v) {}
  Value(DataType type, double v) : type_(type), repr_(v) {}
  Value(DataType type, std::string v) : type_(type), repr_(std::move(v)) {}

  DataType type_;
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

bool operator==(const Value& a, const Value& b);
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

}  // namespace dex

#endif  // DEX_COMMON_VALUE_H_
