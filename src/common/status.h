#ifndef DEX_COMMON_STATUS_H_
#define DEX_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace dex {

/// \brief Error codes used across the whole library.
///
/// `dex` follows the Arrow/RocksDB idiom: fallible functions return a
/// `Status` (or a `Result<T>`, see result.h) instead of throwing. The OK
/// status carries no allocation, so returning it is cheap.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotImplemented,
  kAborted,   // e.g. explorer aborted a query at the stage-1 breakpoint
  kInternal,
  kDeadlineExceeded,   // query ran past its wall/sim deadline
  kResourceExhausted,  // memory budget (or another governed resource) ran out
  kOverloaded,         // admission gate full; retryable after a backoff
};

/// \brief Returns a human-readable name for a status code ("Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a context message.
///
/// The OK state is represented by a null internal pointer, making
/// `Status::OK()` allocation-free and `ok()` a null check.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  /// \brief "Invalid argument: <message>" or "OK".
  std::string ToString() const;

  /// \brief Returns a copy with `prefix + ": "` prepended to the message.
  Status WithContext(const std::string& prefix) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Null iff OK.
  std::unique_ptr<State> state_;
};

}  // namespace dex

/// Propagates a non-OK Status to the caller.
#define DEX_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::dex::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define DEX_CONCAT_IMPL(x, y) x##y
#define DEX_CONCAT(x, y) DEX_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error propagates the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define DEX_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  DEX_ASSIGN_OR_RETURN_IMPL(DEX_CONCAT(_dex_res_, __LINE__), lhs, rexpr)

#define DEX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueUnsafe();

#endif  // DEX_COMMON_STATUS_H_
