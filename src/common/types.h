#ifndef DEX_COMMON_TYPES_H_
#define DEX_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace dex {

/// \brief Column data types supported by the engine.
///
/// kTimestamp is stored as int64 milliseconds since the Unix epoch; SQL
/// string literals compared against timestamp columns are coerced by the
/// binder (see sql/binder.h).
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kTimestamp = 3,  // int64 milliseconds since epoch
  kBool = 4,       // stored as int64 0/1 in columns
};

/// \brief Returns "INT64", "DOUBLE", ...
const char* DataTypeToString(DataType type);

/// \brief True for the types physically stored as int64.
inline bool IsIntegerBacked(DataType type) {
  return type == DataType::kInt64 || type == DataType::kTimestamp ||
         type == DataType::kBool;
}

/// \brief True if values of the two types may be compared without an
/// explicit cast (numeric with numeric, timestamp with timestamp/int).
bool AreComparable(DataType a, DataType b);

}  // namespace dex

#endif  // DEX_COMMON_TYPES_H_
