#ifndef DEX_COMMON_LOGGING_H_
#define DEX_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dex {

/// \brief Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Minimal leveled logger writing to stderr.
///
/// Defaults to kWarning so that library users are not spammed; benchmarks and
/// examples may lower it to kInfo to narrate stage transitions. The
/// `DEX_LOG_LEVEL` environment variable (debug|info|warning|error), applied
/// via InitFromEnv(), overrides the default; `dex_shell --log-level=` maps to
/// set_threshold directly.
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);
  static void Log(LogLevel level, const std::string& msg);

  /// Applies `DEX_LOG_LEVEL` when set to a recognized name; unknown or unset
  /// values leave the threshold unchanged. Returns true if it applied.
  static bool InitFromEnv();

  /// Redirects Log() output (all levels that pass the threshold) to a test
  /// sink instead of stderr; nullptr restores stderr. Fatal still aborts.
  /// Not thread-safe against concurrent Log calls — tests install the sink
  /// before exercising the code under test.
  static void set_test_sink(std::string* sink);
};

/// Parses "debug"/"info"/"warning"/"warn"/"error" (case-insensitive) into a
/// LogLevel. Returns false (leaving `out` untouched) for anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dex

#define DEX_LOG(level) \
  ::dex::internal::LogMessage(::dex::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check: always on (used for internal consistency, not user input).
#define DEX_CHECK(cond)                                                  \
  if (!(cond))                                                           \
  ::dex::internal::LogMessage(::dex::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define DEX_CHECK_EQ(a, b) DEX_CHECK((a) == (b))
#define DEX_CHECK_NE(a, b) DEX_CHECK((a) != (b))
#define DEX_CHECK_LT(a, b) DEX_CHECK((a) < (b))
#define DEX_CHECK_LE(a, b) DEX_CHECK((a) <= (b))
#define DEX_CHECK_GT(a, b) DEX_CHECK((a) > (b))
#define DEX_CHECK_GE(a, b) DEX_CHECK((a) >= (b))

#endif  // DEX_COMMON_LOGGING_H_
