#ifndef DEX_COMMON_FNV_H_
#define DEX_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dex {

/// FNV-1a 64-bit offset basis — the default seed for all fingerprints.
inline constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// \brief FNV-1a 64-bit — the fingerprint primitive shared by the serving
/// layer's script replay, the shard-merge determinism checks, and the
/// benches' cross-run identity assertions. Stable across platforms (unlike
/// std::hash), and chainable: pass a previous hash as `seed` to fold more
/// data into one fingerprint.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = kFnv1aOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

inline uint64_t Fnv1aString(const std::string& s,
                            uint64_t seed = kFnv1aOffsetBasis) {
  return Fnv1a(s.data(), s.size(), seed);
}

}  // namespace dex

#endif  // DEX_COMMON_FNV_H_
