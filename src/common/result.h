#ifndef DEX_COMMON_RESULT_H_
#define DEX_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dex {

/// \brief Either a value of type T or a non-OK Status.
///
/// The counterpart of arrow::Result. A `Result` constructed from an OK
/// Status is a programming error and asserts.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (implicit by design).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Accessors; must not be called unless ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueUnsafe() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueUnsafe() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value or `alternative` when this holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace dex

#endif  // DEX_COMMON_RESULT_H_
