#include "common/string_utils.h"

#include <cctype>
#include <cstdio>

namespace dex {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[unit]);
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.insert(out.begin(), ',');
    out.insert(out.begin(), *it);
    ++count;
  }
  return out;
}

}  // namespace dex
