#include "common/time_utils.h"

#include <cctype>
#include <cstdio>

namespace dex {

namespace {

constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDaysInMonth[month - 1];
}

/// Days since 1970-01-01 for a proleptic Gregorian date (days algorithm from
/// Howard Hinnant's date library, valid far beyond our needs).
int64_t DaysFromCivil(int64_t y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                   // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0,146096]
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool ParseFixedInt(const std::string& s, size_t pos, size_t len, int* out) {
  if (pos + len > s.size()) return false;
  int v = 0;
  for (size_t i = pos; i < pos + len; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Result<int64_t> ParseIso8601(const std::string& text) {
  // Minimal shape: YYYY-MM-DD (10 chars). Optional: THH:MM:SS[.mmm].
  int year = 0, month = 0, day = 0;
  if (!ParseFixedInt(text, 0, 4, &year) || text.size() < 10 || text[4] != '-' ||
      !ParseFixedInt(text, 5, 2, &month) || text[7] != '-' ||
      !ParseFixedInt(text, 8, 2, &day)) {
    return Status::InvalidArgument("bad ISO-8601 date: '" + text + "'");
  }
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("out-of-range date: '" + text + "'");
  }
  int hour = 0, minute = 0, second = 0, millis = 0;
  if (text.size() > 10) {
    if ((text[10] != 'T' && text[10] != ' ') ||
        !ParseFixedInt(text, 11, 2, &hour) || text.size() < 19 ||
        text[13] != ':' || !ParseFixedInt(text, 14, 2, &minute) ||
        text[16] != ':' || !ParseFixedInt(text, 17, 2, &second)) {
      return Status::InvalidArgument("bad ISO-8601 time: '" + text + "'");
    }
    if (hour > 23 || minute > 59 || second > 59) {
      return Status::InvalidArgument("out-of-range time: '" + text + "'");
    }
    if (text.size() > 19) {
      if (text[19] != '.' || !ParseFixedInt(text, 20, 3, &millis) ||
          text.size() != 23) {
        return Status::InvalidArgument("bad ISO-8601 millis: '" + text + "'");
      }
    }
  }
  const int64_t days = DaysFromCivil(year, month, day);
  return days * kMillisPerDay + hour * kMillisPerHour + minute * kMillisPerMinute +
         second * kMillisPerSecond + millis;
}

std::string FormatIso8601(int64_t epoch_millis) {
  int64_t days = epoch_millis / kMillisPerDay;
  int64_t rem = epoch_millis % kMillisPerDay;
  if (rem < 0) {
    rem += kMillisPerDay;
    days -= 1;
  }
  int year, month, day;
  CivilFromDays(days, &year, &month, &day);
  const int hour = static_cast<int>(rem / kMillisPerHour);
  const int minute = static_cast<int>((rem / kMillisPerMinute) % 60);
  const int second = static_cast<int>((rem / kMillisPerSecond) % 60);
  const int millis = static_cast<int>(rem % 1000);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d", year,
                month, day, hour, minute, second, millis);
  return buf;
}

bool LooksLikeIso8601(const std::string& text) {
  if (text.size() < 10) return false;
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9}) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  return text[4] == '-' && text[7] == '-';
}

}  // namespace dex
