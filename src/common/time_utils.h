#ifndef DEX_COMMON_TIME_UTILS_H_
#define DEX_COMMON_TIME_UTILS_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dex {

/// Timestamps across the library are int64 milliseconds since the Unix epoch
/// (UTC). This matches the paper's SQL literals of the form
/// '2010-01-12T22:15:00.000'.

/// \brief Parses 'YYYY-MM-DD[THH:MM:SS[.mmm]]' (UTC) into epoch millis.
Result<int64_t> ParseIso8601(const std::string& text);

/// \brief Formats epoch millis as 'YYYY-MM-DDTHH:MM:SS.mmm'.
std::string FormatIso8601(int64_t epoch_millis);

/// \brief True if `text` looks like an ISO-8601 date/time literal.
bool LooksLikeIso8601(const std::string& text);

constexpr int64_t kMillisPerSecond = 1000;
constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;

}  // namespace dex

#endif  // DEX_COMMON_TIME_UTILS_H_
