#include "common/status.h"

namespace dex {

namespace {
const std::string kEmptyMessage;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyMessage;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

Status Status::WithContext(const std::string& prefix) const {
  if (ok()) return *this;
  return Status(code(), prefix + ": " + message());
}

}  // namespace dex
