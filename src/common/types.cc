#include "common/types.h"

namespace dex {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

bool AreComparable(DataType a, DataType b) {
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble || t == DataType::kBool;
  };
  if (a == b) return true;
  if (numeric(a) && numeric(b)) return true;
  // Timestamps compare against integers (raw epoch millis).
  if ((a == DataType::kTimestamp && b == DataType::kInt64) ||
      (b == DataType::kTimestamp && a == DataType::kInt64)) {
    return true;
  }
  return false;
}

}  // namespace dex
