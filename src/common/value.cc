#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/time_utils.h"

namespace dex {

Result<double> Value::AsDouble() const {
  if (is_null()) return Status::InvalidArgument("NULL has no numeric value");
  switch (type_) {
    case DataType::kDouble:
      return dbl();
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kBool:
      return static_cast<double>(int64());
    case DataType::kString:
      return Status::InvalidArgument("string is not numeric: '" + str() + "'");
  }
  return Status::Internal("unreachable");
}

Result<int64_t> Value::AsInt64() const {
  if (is_null()) return Status::InvalidArgument("NULL has no integer value");
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kBool:
      return int64();
    case DataType::kDouble:
      return Status::InvalidArgument("refusing implicit double->int64 cast");
    case DataType::kString:
      return Status::InvalidArgument("string is not an integer: '" + str() + "'");
  }
  return Status::Internal("unreachable");
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(int64());
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", dbl());
      return buf;
    }
    case DataType::kString:
      return "'" + str() + "'";
    case DataType::kTimestamp:
      return FormatIso8601(int64());
    case DataType::kBool:
      return boolean() ? "TRUE" : "FALSE";
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    return type_ == other.type_ && str() == other.str();
  }
  if (type_ == DataType::kDouble || other.type_ == DataType::kDouble) {
    auto a = AsDouble();
    auto b = other.AsDouble();
    return a.ok() && b.ok() && *a == *b;
  }
  return int64() == other.int64();
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return true;
  return a.Equals(b);
}

}  // namespace dex
