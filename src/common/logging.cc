#include "common/logging.h"

#include <atomic>

namespace dex {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel Logger::threshold() { return static_cast<LogLevel>(g_threshold.load()); }

void Logger::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level));
}

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_threshold.load() &&
      level != LogLevel::kFatal) {
    return;
  }
  std::fprintf(stderr, "[dex %s] %s\n", LevelName(level), msg.c_str());
  if (level == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  if (level == LogLevel::kFatal) {
    stream_ << file << ":" << line << " ";
  }
}

LogMessage::~LogMessage() { Logger::Log(level_, stream_.str()); }

}  // namespace internal
}  // namespace dex
