#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>

namespace dex {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

// Test-only capture sink; nullptr = write to stderr.
std::string* g_test_sink = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel Logger::threshold() { return static_cast<LogLevel>(g_threshold.load()); }

void Logger::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level));
}

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_threshold.load() &&
      level != LogLevel::kFatal) {
    return;
  }
  if (g_test_sink != nullptr) {
    g_test_sink->append("[dex ");
    g_test_sink->append(LevelName(level));
    g_test_sink->append("] ");
    g_test_sink->append(msg);
    g_test_sink->push_back('\n');
    if (level != LogLevel::kFatal) return;
  }
  std::fprintf(stderr, "[dex %s] %s\n", LevelName(level), msg.c_str());
  if (level == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

bool Logger::InitFromEnv() {
  const char* env = std::getenv("DEX_LOG_LEVEL");
  if (env == nullptr) return false;
  LogLevel level;
  if (!ParseLogLevel(env, &level)) return false;
  set_threshold(level);
  return true;
}

void Logger::set_test_sink(std::string* sink) { g_test_sink = sink; }

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  if (level == LogLevel::kFatal) {
    stream_ << file << ":" << line << " ";
  }
}

LogMessage::~LogMessage() { Logger::Log(level_, stream_.str()); }

}  // namespace internal
}  // namespace dex
