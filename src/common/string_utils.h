#ifndef DEX_COMMON_STRING_UTILS_H_
#define DEX_COMMON_STRING_UTILS_H_

#include <string>
#include <vector>

namespace dex {

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// \brief Returns a copy with leading/trailing ASCII whitespace removed.
std::string Trim(const std::string& s);

/// \brief ASCII lower/upper-casing (SQL keywords are case-insensitive).
std::string ToLower(const std::string& s);
std::string ToUpper(const std::string& s);

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// \brief Human-readable byte counts: "1.3 GB", "10 MB", "512 B".
std::string FormatBytes(uint64_t bytes);

/// \brief Formats with thousands separators: 660259608 -> "660,259,608".
std::string FormatCount(uint64_t n);

}  // namespace dex

#endif  // DEX_COMMON_STRING_UTILS_H_
