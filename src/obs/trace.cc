#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace dex::obs {

namespace {

// Per-thread ring capacity. A query opens a handful of spans per file of
// interest, so 64k spans covers repositories four orders of magnitude larger
// than the test workloads; beyond that we drop (and count) rather than grow.
constexpr size_t kRingCapacity = 1 << 16;

uint64_t WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_order{1};
// Cumulative simulated nanos charged process-wide: the "simulated disk"
// timeline position. Only advanced while tracing is enabled.
std::atomic<uint64_t> g_sim_position{0};

thread_local uint64_t tls_sim_charged = 0;
thread_local int tls_lane = 0;
thread_local uint64_t tls_task_order = 0;  // 0 = not inside a task scope
thread_local uint64_t tls_task_sub = 0;
thread_local uint64_t tls_event_seq = 0;   // flight-recorder event stream
thread_local uint64_t tls_task_parent = 0; // inherited spawning-span id
thread_local std::vector<uint64_t> tls_span_stack;

}  // namespace

/// One thread's bounded span sink. The owning thread appends; Drain (another
/// thread) swaps the vector out — both under the buffer's own mutex.
struct ThreadSpanBuffer {
  std::mutex mu;
  std::vector<Span> spans;
};

namespace {

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadSpanBuffer>> buffers;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadSpanBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadSpanBuffer> buffer = [] {
    auto b = std::make_shared<ThreadSpanBuffer>();
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(Span&& span) {
  ThreadSpanBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.spans.size() >= kRingCapacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.spans.push_back(std::move(span));
}

std::vector<Span> Tracer::Drain() {
  std::vector<Span> all;
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), std::make_move_iterator(buffer->spans.begin()),
               std::make_move_iterator(buffer->spans.end()));
    buffer->spans.clear();
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.order != b.order) return a.order < b.order;
    if (a.sub != b.sub) return a.sub < b.sub;
    return a.id < b.id;
  });
  return all;
}

void Tracer::Clear() {
  (void)Drain();
  dropped_.store(0, std::memory_order_relaxed);
}

uint64_t Tracer::AllocOrder() {
  return g_next_order.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::ResetIdsForTesting() {
  g_next_span_id.store(1, std::memory_order_relaxed);
  g_next_order.store(1, std::memory_order_relaxed);
  g_sim_position.store(0, std::memory_order_relaxed);
}

uint64_t Tracer::CurrentSpanId() {
  return tls_span_stack.empty() ? tls_task_parent : tls_span_stack.back();
}

uint64_t Tracer::CurrentTaskOrder() { return tls_task_order; }

uint64_t Tracer::NextTaskEventSeq() { return ++tls_event_seq; }

void Tracer::Instant(const char* name, const char* category,
                     std::vector<SpanArg> args) {
  Tracer& tracer = Global();
  if (!tracer.enabled()) return;
  Span span;
  span.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  span.parent_id = CurrentSpanId();
  span.name = name;
  span.category = category;
  span.lane = tls_lane;
  if (tls_task_order != 0) {
    span.order = tls_task_order;
    span.sub = ++tls_task_sub;
  } else {
    span.order = AllocOrder();
  }
  span.instant = true;
  span.wall_start_nanos = WallNanos();
  span.sim_start_nanos = g_sim_position.load(std::memory_order_relaxed);
  span.args = std::move(args);
  tracer.Record(std::move(span));
}

TraceSpan::TraceSpan(const char* name, const char* category) {
  Begin(name, category, 0, /*explicit_parent=*/false);
}

TraceSpan::TraceSpan(const char* name, const char* category,
                     uint64_t parent_id) {
  Begin(name, category, parent_id, /*explicit_parent=*/true);
}

void TraceSpan::Begin(const char* name, const char* category,
                      uint64_t parent_id, bool explicit_parent) {
  if (!Tracer::Global().enabled()) return;  // single relaxed load when off
  active_ = true;
  span_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  span_.parent_id = explicit_parent ? parent_id : Tracer::CurrentSpanId();
  span_.name = name;
  span_.category = category;
  span_.lane = tls_lane;
  if (tls_task_order != 0) {
    span_.order = tls_task_order;
    span_.sub = ++tls_task_sub;
  } else {
    span_.order = Tracer::AllocOrder();
  }
  span_.wall_start_nanos = WallNanos();
  span_.sim_start_nanos = g_sim_position.load(std::memory_order_relaxed);
  tls_sim_at_open_ = tls_sim_charged;
  tls_span_stack.push_back(span_.id);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  span_.wall_dur_nanos = WallNanos() - span_.wall_start_nanos;
  span_.sim_dur_nanos = tls_sim_charged - tls_sim_at_open_;
  if (!tls_span_stack.empty() && tls_span_stack.back() == span_.id) {
    tls_span_stack.pop_back();
  }
  Tracer::Global().Record(std::move(span_));
}

void TraceSpan::AddArg(const char* key, std::string value) {
  if (!active_) return;
  span_.args.push_back(SpanArg{key, std::move(value)});
}

void TraceSpan::AddArg(const char* key, uint64_t value) {
  if (!active_) return;
  span_.args.push_back(SpanArg{key, std::to_string(value)});
}

TaskTraceScope::TaskTraceScope(uint64_t order)
    : TaskTraceScope(order, tls_task_parent) {}

TaskTraceScope::TaskTraceScope(uint64_t order, uint64_t parent_span_id)
    : prev_order_(tls_task_order),
      prev_sub_(tls_task_sub),
      prev_event_seq_(tls_event_seq),
      prev_parent_(tls_task_parent) {
  tls_task_order = order;
  tls_task_sub = 0;
  tls_event_seq = 0;
  tls_task_parent = parent_span_id;
}

TaskTraceScope::~TaskTraceScope() {
  tls_task_order = prev_order_;
  tls_task_sub = prev_sub_;
  tls_event_seq = prev_event_seq_;
  tls_task_parent = prev_parent_;
}

void AddSimCharge(uint64_t nanos) {
  tls_sim_charged += nanos;
  // The shared timeline position is only needed while a trace is being
  // collected; keep the disabled path free of shared-cacheline traffic.
  if (Tracer::Global().enabled()) {
    g_sim_position.fetch_add(nanos, std::memory_order_relaxed);
  }
}

uint64_t ThreadSimCharged() { return tls_sim_charged; }

void SetCurrentThreadLane(int lane) { tls_lane = lane; }

int CurrentThreadLane() { return tls_lane; }

}  // namespace dex::obs
