#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace dex::obs {

namespace {

int BucketIndex(double value) {
  if (value < 1.0) return 0;
  const int idx = static_cast<int>(std::floor(std::log2(value)));
  return idx < 0 ? 0 : (idx > 63 ? 63 : idx);
}

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips but is noisy; %.9g is plenty for metrics output and
  // renders integers without a trailing ".000000".
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Label values land inside `{k=v,...}` keys; strip the delimiters so a
// hostile session name cannot forge another series' key.
std::string SanitizeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '{' || c == '}' || c == ',' || c == '=' || c == '\n') {
      out += '_';
    } else {
      out += c;
    }
  }
  return out;
}

std::string HistogramLine(const std::string& name,
                          const HistogramSnapshot& snap) {
  return name + " count=" + std::to_string(snap.count) +
         " sum=" + FormatDouble(snap.sum) + " min=" + FormatDouble(snap.min) +
         " max=" + FormatDouble(snap.max) + " avg=" + FormatDouble(snap.avg()) +
         " p50=" + FormatDouble(snap.p50()) +
         " p95=" + FormatDouble(snap.p95()) +
         " p99=" + FormatDouble(snap.p99()) + "\n";
}

}  // namespace

std::string MetricLabels::Render() const {
  if (empty()) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const char* k, const std::string& v) {
    if (!first) out += ",";
    out += k;
    out += "=";
    out += v;
    first = false;
  };
  if (priority >= 0) append("priority", std::to_string(priority));
  if (!query.empty()) append("query", SanitizeLabelValue(query));
  if (!session.empty()) append("session", SanitizeLabelValue(session));
  if (shard >= 0) append("shard", std::to_string(shard));
  out += "}";
  return out;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q <= 0) return min;
  if (q >= 1) return max;
  // Rank of the target observation (1-based), then walk the cumulative
  // bucket counts to the bucket containing it.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i < 64; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside [2^i, 2^(i+1)); bucket 0 also absorbs v < 1, so its
    // lower edge is the observed min.
    const double lo = i == 0 ? (min < 1.0 ? min : 1.0) : std::ldexp(1.0, i);
    const double hi = std::ldexp(1.0, i + 1);
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    double v = lo + (hi - lo) * frac;
    if (v < min) v = min;
    if (v > max) v = max;
    return v;
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::LabeledKeyLocked(const std::string& name,
                                              const MetricLabels& labels,
                                              char kind) {
  const std::string rendered = labels.Render();
  if (rendered.empty()) return name;
  const std::string key = name + rendered;
  // Bound the distinct label sets per (kind, base name). An existing series
  // may always be updated; only *new* series count against the bound.
  const std::string budget_key = std::string(1, kind) + name;
  bool exists = false;
  switch (kind) {
    case 'c': exists = counters_.count(key) != 0; break;
    case 'g': exists = gauges_.count(key) != 0; break;
    case 'h': exists = histograms_.count(key) != 0; break;
  }
  if (exists) return key;
  size_t& used = label_sets_[budget_key];
  if (used >= kMaxLabelSetsPerName) {
    counters_["obs.labels_dropped"] += 1;
    return name;  // fold into the base series; the total stays correct
  }
  used += 1;
  return key;
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 const MetricLabels& labels, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
  const std::string key = LabeledKeyLocked(name, labels, 'c');
  if (key != name) counters_[key] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::SetGauge(const std::string& name,
                               const MetricLabels& labels, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[LabeledKeyLocked(name, labels, 'g')] = value;
}

void MetricsRegistry::ObserveLocked(const std::string& key, double value) {
  Histogram& h = histograms_[key];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.count += 1;
  h.sum += value;
  h.buckets[BucketIndex(value)] += 1;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ObserveLocked(name, value);
}

void MetricsRegistry::Observe(const std::string& name,
                              const MetricLabels& labels, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ObserveLocked(name, value);
  const std::string key = LabeledKeyLocked(name, labels, 'h');
  if (key != name) ObserveLocked(key, value);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

uint64_t MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name + labels.Render());
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name + labels.Render());
  return it == gauges_.end() ? 0 : it->second;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  return histogram(name, MetricLabels{});
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name,
                                             const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  auto it = histograms_.find(name + labels.Render());
  if (it != histograms_.end()) {
    snap.count = it->second.count;
    snap.sum = it->second.sum;
    snap.min = it->second.min;
    snap.max = it->second.max;
    for (int i = 0; i < 64; ++i) snap.buckets[i] = it->second.buckets[i];
  }
  return snap;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    for (int i = 0; i < 64; ++i) snap.buckets[i] = h.buckets[i];
    out += HistogramLine(name, snap);
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + FormatDouble(value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    for (int i = 0; i < 64; ++i) snap.buckets[i] = h.buckets[i];
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(snap.count) + ", \"sum\": " + FormatDouble(snap.sum) +
           ", \"min\": " + FormatDouble(snap.min) +
           ", \"max\": " + FormatDouble(snap.max) +
           ", \"p50\": " + FormatDouble(snap.p50()) +
           ", \"p95\": " + FormatDouble(snap.p95()) +
           ", \"p99\": " + FormatDouble(snap.p99()) + "}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  label_sets_.clear();
}

}  // namespace dex::obs
