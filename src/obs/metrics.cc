#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace dex::obs {

namespace {

int BucketIndex(double value) {
  if (value < 1.0) return 0;
  const int idx = static_cast<int>(std::floor(std::log2(value)));
  return idx < 0 ? 0 : (idx > 63 ? 63 : idx);
}

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips but is noisy; %.9g is plenty for metrics output and
  // renders integers without a trailing ".000000".
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histograms_[name];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.count += 1;
  h.sum += value;
  h.buckets[BucketIndex(value)] += 1;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    snap.count = it->second.count;
    snap.sum = it->second.sum;
    snap.min = it->second.min;
    snap.max = it->second.max;
  }
  return snap;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + std::to_string(h.count) +
           " sum=" + FormatDouble(h.sum) + " min=" + FormatDouble(h.min) +
           " max=" + FormatDouble(h.max) + " avg=" +
           FormatDouble(h.count == 0 ? 0
                                     : h.sum / static_cast<double>(h.count)) +
           "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + FormatDouble(value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + FormatDouble(h.sum) +
           ", \"min\": " + FormatDouble(h.min) +
           ", \"max\": " + FormatDouble(h.max) + "}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace dex::obs
