#ifndef DEX_OBS_CHROME_TRACE_H_
#define DEX_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace dex::obs {

/// \brief Renders spans as Chrome trace-event JSON (the object form with a
/// "traceEvents" array), loadable in Perfetto or chrome://tracing.
///
/// Layout: pid 1, one lane (tid) per thread — 0 = the coordinating thread,
/// 1..N = worker lanes — plus a dedicated "simulated disk" lane where every
/// span that stalled on the simulated medium appears again, positioned on
/// the *simulated* timeline (cumulative sim-I/O nanos) instead of the wall
/// clock. Wall timestamps are rebased to the earliest span so traces start
/// at t=0.
std::string ChromeTraceJson(const std::vector<Span>& spans);

/// Writes ChromeTraceJson(spans) to `path`.
Status WriteChromeTrace(const std::string& path, const std::vector<Span>& spans);

}  // namespace dex::obs

#endif  // DEX_OBS_CHROME_TRACE_H_
