#ifndef DEX_OBS_METRICS_H_
#define DEX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dex::obs {

/// \brief Aggregated distribution of observed values (log2 buckets).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double avg() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// \brief A process-wide registry of named counters, gauges and histograms.
///
/// This is the single sink the system's stat structs (QueryStats,
/// TwoStageStats, Mounter::MountCounters, IoStats, ExecStats, CacheStats)
/// publish into, replacing ad-hoc hand-merging at every call site. Names are
/// dot-separated (`query.count`, `mount.records_decoded`, `io.sim_nanos`);
/// output is sorted by name so dumps are diffable.
///
/// Thread-safe; all operations take one internal mutex. Metric updates are
/// observability only — they never feed back into execution decisions, so
/// they cannot perturb determinism.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to a monotonically increasing counter.
  void AddCounter(const std::string& name, uint64_t delta);

  /// Sets a point-in-time value (last write wins).
  void SetGauge(const std::string& name, double value);

  /// Records one observation into a histogram.
  void Observe(const std::string& name, double value);

  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  HistogramSnapshot histogram(const std::string& name) const;

  /// Flat `name value` lines, sorted by name (histograms render their
  /// count/sum/min/max/avg).
  std::string ToText() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  void Clear();

 private:
  struct Histogram {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    // bucket[i] counts observations with floor(log2(v)) == i (v >= 1).
    uint64_t buckets[64] = {};
  };

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dex::obs

#endif  // DEX_OBS_METRICS_H_
