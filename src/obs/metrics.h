#ifndef DEX_OBS_METRICS_H_
#define DEX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dex::obs {

/// \brief The fixed label dimensions a metric series may carry.
///
/// The set is closed on purpose: `session` (serving session name),
/// `priority` (ThreadPool priority class), `shard` (virtual shard id) and
/// `query` (a caller-supplied short tag). A closed label vocabulary keeps
/// rendered keys canonical — labels always serialize in the same field
/// order, so the same logical series maps to the same string key no matter
/// who publishes it — and makes the cardinality bound enforceable.
///
/// Unset fields (empty string / -1) are omitted from the rendered key. A
/// fully-unset label set renders as "" and addresses the plain base series.
struct MetricLabels {
  std::string session;  // serving session name ("" = unset)
  int priority = -1;    // ThreadPool priority class (-1 = unset)
  int shard = -1;       // virtual shard id (-1 = unset)
  std::string query;    // short query tag ("" = unset)

  bool empty() const {
    return session.empty() && priority < 0 && shard < 0 && query.empty();
  }

  /// Canonical rendering, e.g. `{priority=2,session=shell,shard=3}`.
  /// Field order is fixed (priority, query, session, shard — alphabetical)
  /// so equal label sets always produce byte-equal keys.
  std::string Render() const;
};

/// \brief Aggregated distribution of observed values (log2 buckets).
///
/// Percentiles are estimated from the power-of-two buckets: the bucket
/// holding the q-th observation is located by cumulative count, then the
/// value is linearly interpolated inside the bucket's [2^i, 2^(i+1)) range
/// and clamped to the exact observed min/max. Good to a factor-of-two
/// resolution — plenty for latency attribution — and, unlike a reservoir,
/// deterministic: the same observations produce the same percentiles in
/// any order.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  uint64_t buckets[64] = {};  // buckets[i]: observations with floor(log2(v))==i
  double avg() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  /// Estimated value at quantile `q` in [0,1] (0 when the histogram is empty).
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }
};

/// \brief A process-wide registry of named counters, gauges and histograms.
///
/// This is the single sink the system's stat structs (QueryStats,
/// TwoStageStats, Mounter::MountCounters, IoStats, ExecStats, CacheStats)
/// publish into, replacing ad-hoc hand-merging at every call site. Names are
/// dot-separated (`query.count`, `mount.records_decoded`, `io.sim_nanos`);
/// output is sorted by name so dumps are diffable.
///
/// Dimensional series: every update may carry a `MetricLabels` set. A
/// labeled counter/histogram update lands in *two* series — the labeled one
/// (`serve.queries_admitted{priority=2,session=shell}`) and the unlabeled
/// base series, so totals never have to be hand-merged again and existing
/// consumers of the flat names keep working. Labeled gauges update only the
/// labeled series (gauges are not summable; publishers set the base total
/// explicitly when one is meaningful).
///
/// Cardinality is bounded: at most `kMaxLabelSetsPerName` distinct label
/// sets per base name per metric kind. Past the bound the update folds into
/// the base series only and `obs.labels_dropped` counts the fold — the
/// registry can never be grown without bound by unsanitized label values.
///
/// Thread-safe; all operations take one internal mutex. Metric updates are
/// observability only — they never feed back into execution decisions, so
/// they cannot perturb determinism; counter/histogram merges commute, so
/// totals are identical at any worker interleaving.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxLabelSetsPerName = 64;

  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to a monotonically increasing counter.
  void AddCounter(const std::string& name, uint64_t delta);
  /// Labeled variant: adds to both `name{labels}` and the base `name`.
  void AddCounter(const std::string& name, const MetricLabels& labels,
                  uint64_t delta);

  /// Sets a point-in-time value (last write wins).
  void SetGauge(const std::string& name, double value);
  /// Labeled variant: sets only `name{labels}` (gauges are not summable).
  void SetGauge(const std::string& name, const MetricLabels& labels,
                double value);

  /// Records one observation into a histogram.
  void Observe(const std::string& name, double value);
  /// Labeled variant: observes into both `name{labels}` and the base `name`.
  void Observe(const std::string& name, const MetricLabels& labels,
               double value);

  uint64_t counter(const std::string& name) const;
  uint64_t counter(const std::string& name, const MetricLabels& labels) const;
  double gauge(const std::string& name) const;
  double gauge(const std::string& name, const MetricLabels& labels) const;
  HistogramSnapshot histogram(const std::string& name) const;
  HistogramSnapshot histogram(const std::string& name,
                              const MetricLabels& labels) const;

  /// Flat `name value` lines, sorted by name (histograms render their
  /// count/sum/min/max/avg plus estimated p50/p95/p99). Labeled series sort
  /// right after their base series (`name` < `name{...}`).
  std::string ToText() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Labeled series appear under their rendered `name{...}` key; histogram
  /// objects carry count/sum/min/max and estimated p50/p95/p99.
  std::string ToJson() const;

  void Clear();

 private:
  struct Histogram {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    // bucket[i] counts observations with floor(log2(v)) == i (v >= 1).
    uint64_t buckets[64] = {};
  };

  // Returns the rendered series key for (name, labels), enforcing the
  // per-base-name cardinality bound for the given kind ("" = fold to base).
  // Caller holds mu_.
  std::string LabeledKeyLocked(const std::string& name,
                               const MetricLabels& labels, char kind);
  void ObserveLocked(const std::string& key, double value);

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  // Distinct labeled series per (kind, base name); enforces the bound.
  std::map<std::string, size_t> label_sets_;
};

/// \brief RAII guard that clears the global metrics registry on entry and
/// exit. Tests reading `MetricsRegistry::Global()` declare one first, so a
/// test asserts only counters *it* produced — PRs 3–7 accumulated tests
/// whose Global() reads silently included every prior test's traffic.
class ScopedMetricsReset {
 public:
  explicit ScopedMetricsReset(MetricsRegistry& registry = MetricsRegistry::Global())
      : registry_(&registry) {
    registry_->Clear();
  }
  ~ScopedMetricsReset() { registry_->Clear(); }

  ScopedMetricsReset(const ScopedMetricsReset&) = delete;
  ScopedMetricsReset& operator=(const ScopedMetricsReset&) = delete;

 private:
  MetricsRegistry* registry_;
};

}  // namespace dex::obs

#endif  // DEX_OBS_METRICS_H_
