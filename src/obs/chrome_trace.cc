#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace dex::obs {

namespace {

// The synthetic lane carrying the simulated-I/O timeline.
constexpr int kSimDiskLane = 999;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Micros(uint64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) / 1e3);
  return buf;
}

void AppendArgs(const Span& span, std::string* out) {
  *out += "\"args\":{";
  *out += "\"span_id\":" + std::to_string(span.id);
  if (span.parent_id != 0) {
    *out += ",\"parent_id\":" + std::to_string(span.parent_id);
  }
  *out += ",\"sim_ms\":" +
          std::to_string(static_cast<double>(span.sim_dur_nanos) / 1e6);
  for (const SpanArg& arg : span.args) {
    *out += ",\"" + JsonEscape(arg.key) + "\":\"" + JsonEscape(arg.value) + "\"";
  }
  *out += "}";
}

void AppendThreadName(int tid, const std::string& name, bool* first,
                      std::string* out) {
  *out += *first ? "\n" : ",\n";
  *first = false;
  *out += "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
          std::to_string(tid) + ",\"args\":{\"name\":\"" + JsonEscape(name) +
          "\"}}";
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  uint64_t wall_base = 0;
  bool have_base = false;
  std::set<int> lanes;
  for (const Span& span : spans) {
    if (!have_base || span.wall_start_nanos < wall_base) {
      wall_base = span.wall_start_nanos;
      have_base = true;
    }
    lanes.insert(span.lane);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;

  AppendThreadName(0, "main", &first, &out);
  for (int lane : lanes) {
    if (lane != 0) {
      AppendThreadName(lane, "worker-" + std::to_string(lane), &first, &out);
    }
  }
  AppendThreadName(kSimDiskLane, "simulated disk", &first, &out);

  for (const Span& span : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    const uint64_t rebased = span.wall_start_nanos - wall_base;
    out += "  {\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"" +
           JsonEscape(span.category) + "\",\"ph\":\"" +
           (span.instant ? "i" : "X") + "\",\"pid\":1,\"tid\":" +
           std::to_string(span.lane) + ",\"ts\":" + Micros(rebased);
    if (span.instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":" + Micros(span.wall_dur_nanos);
    }
    out += ",";
    AppendArgs(span, &out);
    out += "}";

    // Mirror simulated-I/O stalls onto the "simulated disk" lane, laid out
    // on the simulated timeline: ts = cumulative sim nanos at span open.
    if (span.sim_dur_nanos > 0) {
      out += ",\n  {\"name\":\"" + JsonEscape(span.name) +
             "\",\"cat\":\"sim-io\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
             std::to_string(kSimDiskLane) +
             ",\"ts\":" + Micros(span.sim_start_nanos) +
             ",\"dur\":" + Micros(span.sim_dur_nanos) + ",";
      AppendArgs(span, &out);
      out += "}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<Span>& spans) {
  const std::string json = ChromeTraceJson(spans);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace output file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace dex::obs
