#ifndef DEX_OBS_TRACE_H_
#define DEX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dex::obs {

/// \brief One key/value annotation attached to a span.
struct SpanArg {
  std::string key;
  std::string value;
};

/// \brief A completed span of the query lifecycle.
///
/// Every span carries **two clocks**:
///  - `wall_*`: real CPU/wall time measured with the steady clock, and
///  - `sim_*`: simulated I/O time, i.e. the stall time the simulated storage
///    medium charged *on this thread* while the span was open (the same
///    charges that `SimDisk::TaskTimeScope` routes into per-task buckets).
///
/// Wall timestamps vary run to run; the simulated clock and the span
/// structure (ids, names, parentage, drain order) are deterministic for a
/// deterministic workload.
struct Span {
  uint64_t id = 0;         // 1-based; 0 = none
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::string category;
  /// Worker lane the span ran on: 0 = the coordinating (main) thread,
  /// 1..N = thread-pool worker lanes (see SetCurrentThreadLane).
  int lane = 0;
  /// Deterministic drain order: `order` is allocated in program order on the
  /// coordinating thread (task roots receive theirs at *spawn* time, before
  /// the task is handed to a worker), `sub` sequences the spans a task opens
  /// internally. Sorting by (order, sub) therefore reproduces task-spawn
  /// order no matter how the OS interleaved the worker threads.
  uint64_t order = 0;
  uint64_t sub = 0;
  bool instant = false;  // zero-duration event (annotation)
  uint64_t wall_start_nanos = 0;
  uint64_t wall_dur_nanos = 0;
  /// Position on the simulated-I/O timeline when the span opened
  /// (cumulative sim nanos charged process-wide), and the sim time charged
  /// by this thread while the span was open.
  uint64_t sim_start_nanos = 0;
  uint64_t sim_dur_nanos = 0;
  std::vector<SpanArg> args;
};

/// \brief Process-wide span collector.
///
/// Completed spans land in per-thread ring buffers (bounded; overflow is
/// counted, never blocks) and are drained in deterministic task-spawn order.
/// Tracing is compiled in but near-zero-cost when disabled: an inactive
/// TraceSpan costs one relaxed atomic load.
class Tracer {
 public:
  static Tracer& Global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Moves every buffered span out, sorted by (order, sub). Thread-safe,
  /// but expects no spans to be concurrently open during the drain.
  std::vector<Span> Drain();

  /// Drops all buffered spans and resets the drop counter (the id/order
  /// counters keep running; span identity stays unique per process).
  void Clear();

  /// Spans discarded because a thread's ring buffer was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Allocates a deterministic drain-order key. Called on the coordinating
  /// thread — in particular at task-*spawn* time, so the key order is the
  /// spawn order, not the completion order.
  static uint64_t AllocOrder();

  /// The span id currently open on this thread (0 = none). Falls back to the
  /// inherited task parent (see TaskTraceScope) when no span is open, so a
  /// task that opens no span of its own still hands its spawner's span to
  /// anything *it* spawns. Capture before spawning a task to parent the
  /// task's spans across threads.
  static uint64_t CurrentSpanId();

  /// The deterministic order key of the task scope this thread is inside
  /// (0 = coordinator, outside any task).
  static uint64_t CurrentTaskOrder();

  /// Advances and returns this thread's task-local event sequence — a
  /// second (order, seq) stream alongside the span `sub` counter, consumed
  /// by the flight recorder. Keeping it separate means the recorded event
  /// stream is byte-identical whether span tracing was enabled or not.
  static uint64_t NextTaskEventSeq();

  /// Resets the process-global span-id and order counters to their initial
  /// values. For determinism tests that compare traces/flight dumps across
  /// repeated runs of the same workload in one process; NOT safe while any
  /// span is open or task in flight.
  static void ResetIdsForTesting();

  /// Records a zero-duration annotation (cache hit, retry, quarantine, ...)
  /// parented to the current span. No-op when disabled.
  static void Instant(const char* name, const char* category,
                      std::vector<SpanArg> args = {});

 private:
  friend class TraceSpan;
  friend class TaskTraceScope;
  friend struct ThreadSpanBuffer;
  Tracer() = default;

  void Record(Span&& span);  // pushes into this thread's ring buffer

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
};

/// \brief RAII scoped span. Inactive (and nearly free) when tracing is off.
///
/// Parent linkage is automatic through a thread-local span stack; a task
/// running on a worker thread passes the spawning span's id explicitly.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "query");
  /// Explicit parent (cross-thread linkage) and deterministic order key —
  /// the form task bodies use together with TaskTraceScope.
  TraceSpan(const char* name, const char* category, uint64_t parent_id);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  uint64_t id() const { return span_.id; }

  void AddArg(const char* key, std::string value);
  void AddArg(const char* key, uint64_t value);

 private:
  void Begin(const char* name, const char* category, uint64_t parent_id,
             bool explicit_parent);

  bool active_ = false;
  uint64_t tls_sim_at_open_ = 0;  // thread-local sim charge at open
  Span span_;
};

/// \brief RAII deterministic-order scope for a task running on a worker.
///
/// The spawner allocates `order = Tracer::AllocOrder()` at spawn time; the
/// task body installs this scope so every span it opens carries that order
/// key (with a task-local sub-sequence). This is what makes the drained
/// span stream identical whether the pool had 1 worker or 8.
///
/// The two-argument form additionally installs the spawning span's id as
/// the thread's *task parent*: spans the task opens without an explicit
/// parent link under it automatically. `TaskGroup::Spawn` captures both
/// values on the coordinator and installs this scope around every task, so
/// distributed parentage needs no per-call-site plumbing.
class TaskTraceScope {
 public:
  explicit TaskTraceScope(uint64_t order);
  TaskTraceScope(uint64_t order, uint64_t parent_span_id);
  ~TaskTraceScope();

  TaskTraceScope(const TaskTraceScope&) = delete;
  TaskTraceScope& operator=(const TaskTraceScope&) = delete;

 private:
  uint64_t prev_order_;
  uint64_t prev_sub_;
  uint64_t prev_event_seq_;
  uint64_t prev_parent_;
};

/// \brief Called by the simulated storage medium for every sim-time charge.
///
/// Always updates a thread-local cumulative counter (plain add) so spans can
/// compute their sim-clock durations; bumps the shared sim-timeline position
/// only while tracing is enabled.
void AddSimCharge(uint64_t nanos);

/// Cumulative simulated nanos charged by the *current thread* (monotone).
uint64_t ThreadSimCharged();

/// Tags the current thread with a worker-lane id for trace attribution
/// (0 = main/coordinator, 1..N = pool workers). Thread pools call this once
/// per worker at startup.
void SetCurrentThreadLane(int lane);
int CurrentThreadLane();

}  // namespace dex::obs

#endif  // DEX_OBS_TRACE_H_
