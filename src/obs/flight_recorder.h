#ifndef DEX_OBS_FLIGHT_RECORDER_H_
#define DEX_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace dex::obs {

/// \brief One structured control-plane event in the flight recorder.
///
/// Events capture the *decisions* the engine made — a query admitted or
/// shed, an epoch published, a file quarantined, a shard killed, a deadline
/// cutoff — not the data-plane work itself (that is what spans are for).
/// Each carries the simulated-clock position at emission plus the same
/// deterministic (order, seq) key the span tracer uses, so a dump sorts
/// into an order that is bit-identical at any worker or pool size.
struct FlightEvent {
  std::string kind;    // "admission_grant", "shed", "quarantine", ...
  std::string detail;  // free-form human line (uri, reason, sql prefix, ...)
  std::string session; // serving session name ("" = none)
  int priority = -1;   // ThreadPool priority class (-1 = none)
  int shard = -1;      // virtual shard id (-1 = none)
  // Filled by Record():
  uint64_t sim_nanos = 0;  // simulated clock at emission (0 without a clock)
  uint64_t order = 0;      // task order (0 = coordinator thread)
  uint64_t seq = 0;        // per-task-scope emission sequence
  int lane = 0;            // thread lane (coordinator 0, workers 1..N)
};

/// \brief Always-on bounded ring buffer of control-plane events.
///
/// The recorder is meant to answer "what was the system doing just before
/// this went wrong?" without anyone having asked for a trace in advance:
/// recording is on by default, costs one short mutex section per event
/// (events are rare — admission decisions, faults, epoch flips — never
/// per-row), and the ring overwrites its oldest entries so memory is fixed.
///
/// Determinism: events are stamped with (sim_nanos, order, seq, lane) —
/// sim_nanos from the clock a Database installs (its SimDisk's charged
/// simulated time), order/seq from the tracer's task-scope machinery.
/// Snapshot() sorts by that key, so for a deterministic workload the dump
/// is byte-identical at any worker/pool count. The `seq` stream is separate
/// from the span `sub` counter, so dumps do not change when span tracing is
/// toggled.
///
/// Auto-dump: failures call `AutoDump(trigger)`; when a dump path is
/// configured (shell `--events-dump=`, env `DEX_FLIGHT_OUT`) the current
/// ring is written there as JSON with the triggering condition recorded.
/// Without a path, AutoDump is a no-op — recording itself is unaffected.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Recording is on by default; the overhead bench flips it off to measure
  /// the recorder's own cost.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Installs the simulated clock events are stamped with. `owner` scopes
  /// the installation: UninstallClock(owner) clears the clock only if that
  /// owner still holds it, so a Database being destroyed never yanks a
  /// clock a newer Database installed. The function must be callable from
  /// any thread and must not re-enter the recorder.
  void InstallClock(const void* owner, std::function<uint64_t()> sim_clock);
  void UninstallClock(const void* owner);

  /// Where AutoDump writes ("" = auto-dump disabled).
  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// Records one event (fills sim_nanos/order/seq/lane). Cheap no-op when
  /// disabled.
  void Record(FlightEvent event);

  /// The current ring contents, sorted by (sim_nanos, order, seq, lane).
  std::vector<FlightEvent> Snapshot() const;

  /// Snapshot rendered as a JSON array of event objects. With
  /// `include_sim=false` the sim_nanos field is omitted — the
  /// shard-invariant canonical form (charged network time varies with the
  /// shard count; the event *sequence* does not).
  std::string ToJson(bool include_sim = true) const;

  /// Writes ToJson() wrapped with the triggering condition to the
  /// configured dump path; no-op when no path is set. Failures are counted,
  /// never thrown — the recorder must not turn an error path into a second
  /// error. Returns true when a dump was written.
  bool AutoDump(const std::string& trigger);

  void Clear();

  /// Events overwritten because the ring was full (monotone since Clear).
  uint64_t dropped() const;

 private:
  std::atomic<bool> enabled_{true};

  mutable std::mutex mu_;
  std::function<uint64_t()> clock_;      // guarded by mu_
  const void* clock_owner_ = nullptr;    // guarded by mu_
  std::string dump_path_;                // guarded by mu_
  std::vector<FlightEvent> ring_;        // guarded by mu_
  size_t next_ = 0;                      // guarded by mu_
  uint64_t dropped_ = 0;                 // guarded by mu_
};

}  // namespace dex::obs

#endif  // DEX_OBS_FLIGHT_RECORDER_H_
