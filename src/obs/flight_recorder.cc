#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dex::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendEventJson(std::string* out, const FlightEvent& e, bool include_sim) {
  *out += "{\"kind\": \"" + JsonEscape(e.kind) + "\"";
  if (include_sim) *out += ", \"sim_nanos\": " + std::to_string(e.sim_nanos);
  *out += ", \"order\": " + std::to_string(e.order) +
          ", \"seq\": " + std::to_string(e.seq);
  if (!e.session.empty()) {
    *out += ", \"session\": \"" + JsonEscape(e.session) + "\"";
  }
  if (e.priority >= 0) *out += ", \"priority\": " + std::to_string(e.priority);
  if (e.shard >= 0) *out += ", \"shard\": " + std::to_string(e.shard);
  if (!e.detail.empty()) {
    *out += ", \"detail\": \"" + JsonEscape(e.detail) + "\"";
  }
  *out += "}";
}

bool EventBefore(const FlightEvent& a, const FlightEvent& b) {
  if (a.sim_nanos != b.sim_nanos) return a.sim_nanos < b.sim_nanos;
  if (a.order != b.order) return a.order < b.order;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.lane < b.lane;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    // Env hookup mirrors DEX_TRACE_OUT / DEX_METRICS_OUT: benches and CI set
    // a dump path without touching the embedding program's flags.
    if (const char* path = std::getenv("DEX_FLIGHT_OUT")) {
      r->set_dump_path(path);
    }
    return r;
  }();
  return *recorder;
}

void FlightRecorder::InstallClock(const void* owner,
                                  std::function<uint64_t()> sim_clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(sim_clock);
  clock_owner_ = owner;
}

void FlightRecorder::UninstallClock(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clock_owner_ == owner) {
    clock_ = nullptr;
    clock_owner_ = nullptr;
  }
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dump_path_;
}

void FlightRecorder::Record(FlightEvent event) {
  if (!enabled()) return;
  // Stamp the deterministic (order, seq) key from the tracer's task-scope
  // thread-locals before touching any lock.
  event.order = Tracer::CurrentTaskOrder();
  event.seq = Tracer::NextTaskEventSeq();
  event.lane = CurrentThreadLane();
  // Read the clock outside mu_: the clock closure typically takes the
  // SimDisk stats mutex, and nesting it under the recorder's would impose a
  // lock order on every caller.
  std::function<uint64_t()> clock;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clock = clock_;
  }
  event.sim_nanos = clock ? clock() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < kDefaultCapacity) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % kDefaultCapacity;
    dropped_ += 1;
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = ring_;
  }
  std::stable_sort(events.begin(), events.end(), EventBefore);
  return events;
}

std::string FlightRecorder::ToJson(bool include_sim) const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& e : events) {
    out += first ? "\n  " : ",\n  ";
    AppendEventJson(&out, e, include_sim);
    first = false;
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

bool FlightRecorder::AutoDump(const std::string& trigger) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = dump_path_;
  }
  if (path.empty()) return false;
  std::string body = "{\n\"trigger\": \"" + JsonEscape(trigger) +
                     "\",\n\"dropped\": " + std::to_string(dropped()) +
                     ",\n\"events\": " + ToJson(/*include_sim=*/true) + "}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MetricsRegistry::Global().AddCounter("obs.flight_dump_failures", 1);
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    MetricsRegistry::Global().AddCounter("obs.flight_dump_failures", 1);
    return false;
  }
  MetricsRegistry::Global().AddCounter("obs.flight_autodumps", 1);
  return true;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace dex::obs
