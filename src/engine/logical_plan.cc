#include "engine/logical_plan.h"

#include "common/logging.h"

namespace dex {

const char* AggFuncToString(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

PlanPtr MakeScan(std::string table_name) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kScan;
  p->table_name = std::move(table_name);
  return p;
}

PlanPtr MakeFilter(ExprPtr predicate, PlanPtr child) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kFilter;
  p->predicate = std::move(predicate);
  p->children = {std::move(child)};
  return p;
}

PlanPtr MakeProject(std::vector<ExprPtr> exprs, std::vector<std::string> names,
                    PlanPtr child) {
  DEX_CHECK_EQ(exprs.size(), names.size());
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kProject;
  p->project_exprs = std::move(exprs);
  p->project_names = std::move(names);
  p->children = {std::move(child)};
  return p;
}

PlanPtr MakeJoin(ExprPtr condition, PlanPtr left, PlanPtr right) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kJoin;
  p->predicate = std::move(condition);
  p->children = {std::move(left), std::move(right)};
  return p;
}

PlanPtr MakeAggregate(std::vector<ExprPtr> group_by, std::vector<AggSpec> aggs,
                      PlanPtr child) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kAggregate;
  p->group_by = std::move(group_by);
  p->aggregates = std::move(aggs);
  p->children = {std::move(child)};
  return p;
}

PlanPtr MakeSort(std::vector<SortKey> keys, PlanPtr child) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kSort;
  p->sort_keys = std::move(keys);
  p->children = {std::move(child)};
  return p;
}

PlanPtr MakeLimit(int64_t limit, PlanPtr child) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kLimit;
  p->limit = limit;
  p->children = {std::move(child)};
  return p;
}

PlanPtr MakeUnion(std::vector<PlanPtr> children) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kUnion;
  p->children = std::move(children);
  return p;
}

PlanPtr MakeResultScan(std::string result_id, SchemaPtr schema) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kResultScan;
  p->result_id = std::move(result_id);
  p->output_schema = std::move(schema);
  return p;
}

PlanPtr MakeMount(std::string table_name, std::string uri) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kMount;
  p->table_name = std::move(table_name);
  p->uri = std::move(uri);
  return p;
}

PlanPtr MakeCacheScan(std::string table_name, std::string uri) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kCacheScan;
  p->table_name = std::move(table_name);
  p->uri = std::move(uri);
  return p;
}

PlanPtr MakeStageBreak(PlanPtr child) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kStageBreak;
  p->children = {std::move(child)};
  return p;
}

PlanPtr ClonePlan(const PlanPtr& plan) {
  if (plan == nullptr) return nullptr;
  auto copy = std::make_shared<LogicalPlan>(*plan);
  copy->children.clear();
  for (const PlanPtr& c : plan->children) {
    copy->children.push_back(ClonePlan(c));
  }
  return copy;
}

namespace {

Status AnalyzeAggregate(LogicalPlan* plan, const Schema& input) {
  auto schema = std::make_shared<Schema>();
  for (const ExprPtr& g : plan->group_by) {
    DEX_ASSIGN_OR_RETURN(ExprPtr bound, g->Bind(input));
    // Group-by keys keep their source name when they are plain columns.
    std::string name = g->kind() == ExprKind::kColumnRef
                           ? g->column_name()
                           : g->ToString();
    // Strip any qualifier for the output field; keep it resolvable.
    std::string qualifier;
    const size_t dot = name.find('.');
    if (dot != std::string::npos) {
      qualifier = name.substr(0, dot);
      name = name.substr(dot + 1);
    }
    schema->AddField({name, bound->output_type(), qualifier});
  }
  for (const AggSpec& agg : plan->aggregates) {
    DataType out_type = DataType::kDouble;
    if (agg.fn == AggFunc::kCount) {
      out_type = DataType::kInt64;
    } else if (agg.arg != nullptr) {
      DEX_ASSIGN_OR_RETURN(ExprPtr bound, agg.arg->Bind(input));
      if (agg.fn == AggFunc::kMin || agg.fn == AggFunc::kMax) {
        out_type = bound->output_type();
      } else if (agg.fn == AggFunc::kSum &&
                 bound->output_type() != DataType::kDouble) {
        out_type = DataType::kInt64;
      }
    } else {
      return Status::InvalidArgument(std::string(AggFuncToString(agg.fn)) +
                                     " requires an argument");
    }
    schema->AddField({agg.name, out_type, ""});
  }
  plan->output_schema = std::move(schema);
  return Status::OK();
}

}  // namespace

Status AnalyzePlan(const PlanPtr& plan, const Catalog& catalog) {
  for (const PlanPtr& c : plan->children) {
    DEX_RETURN_NOT_OK(AnalyzePlan(c, catalog));
  }
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kMount:
    case PlanKind::kCacheScan: {
      DEX_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(plan->table_name));
      plan->output_schema = table->schema();
      return Status::OK();
    }
    case PlanKind::kFilter: {
      const Schema& input = *plan->children[0]->output_schema;
      // Validate the predicate binds and is boolean.
      DEX_ASSIGN_OR_RETURN(ExprPtr bound, plan->predicate->Bind(input));
      if (bound->output_type() != DataType::kBool) {
        return Status::InvalidArgument("filter predicate is not boolean: " +
                                       plan->predicate->ToString());
      }
      plan->output_schema = plan->children[0]->output_schema;
      return Status::OK();
    }
    case PlanKind::kProject: {
      const Schema& input = *plan->children[0]->output_schema;
      auto schema = std::make_shared<Schema>();
      for (size_t i = 0; i < plan->project_exprs.size(); ++i) {
        DEX_ASSIGN_OR_RETURN(ExprPtr bound, plan->project_exprs[i]->Bind(input));
        schema->AddField({plan->project_names[i], bound->output_type(), ""});
      }
      plan->output_schema = std::move(schema);
      return Status::OK();
    }
    case PlanKind::kJoin: {
      plan->output_schema = Schema::Concat(*plan->children[0]->output_schema,
                                           *plan->children[1]->output_schema);
      DEX_ASSIGN_OR_RETURN(ExprPtr bound,
                           plan->predicate->Bind(*plan->output_schema));
      if (bound->output_type() != DataType::kBool) {
        return Status::InvalidArgument("join condition is not boolean");
      }
      return Status::OK();
    }
    case PlanKind::kAggregate:
      return AnalyzeAggregate(plan.get(), *plan->children[0]->output_schema);
    case PlanKind::kSort: {
      const Schema& input = *plan->children[0]->output_schema;
      for (const SortKey& k : plan->sort_keys) {
        DEX_RETURN_NOT_OK(k.expr->Bind(input).status());
      }
      plan->output_schema = plan->children[0]->output_schema;
      return Status::OK();
    }
    case PlanKind::kLimit:
    case PlanKind::kStageBreak:
      plan->output_schema = plan->children[0]->output_schema;
      return Status::OK();
    case PlanKind::kUnion: {
      if (plan->children.empty()) {
        return Status::InvalidArgument("UNION requires at least one child");
      }
      const SchemaPtr& first = plan->children[0]->output_schema;
      for (const PlanPtr& c : plan->children) {
        if (c->output_schema->num_fields() != first->num_fields()) {
          return Status::InvalidArgument("UNION children have different widths");
        }
        for (size_t i = 0; i < first->num_fields(); ++i) {
          if (c->output_schema->field(i).type != first->field(i).type) {
            return Status::InvalidArgument("UNION children have different types");
          }
        }
      }
      plan->output_schema = first;
      return Status::OK();
    }
    case PlanKind::kResultScan:
      if (plan->output_schema == nullptr) {
        return Status::Internal("result-scan '" + plan->result_id +
                                "' has no schema");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable plan kind");
}

void CollectTableNames(const PlanPtr& plan, std::vector<std::string>* out) {
  if (plan->kind == PlanKind::kScan || plan->kind == PlanKind::kMount ||
      plan->kind == PlanKind::kCacheScan) {
    out->push_back(plan->table_name);
  }
  for (const PlanPtr& c : plan->children) CollectTableNames(c, out);
}

std::string LogicalPlan::LabelString() const {
  std::string out;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan(" + table_name + ")";
      break;
    case PlanKind::kFilter:
      out += "Filter[" + predicate->ToString() + "]";
      break;
    case PlanKind::kProject: {
      out += "Project[";
      for (size_t i = 0; i < project_exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += project_exprs[i]->ToString() + " AS " + project_names[i];
      }
      out += "]";
      break;
    }
    case PlanKind::kJoin:
      out += "Join[" + predicate->ToString() + "]";
      break;
    case PlanKind::kAggregate: {
      out += "Aggregate[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i]->ToString();
      }
      if (!group_by.empty() && !aggregates.empty()) out += "; ";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(AggFuncToString(aggregates[i].fn)) + "(" +
               (aggregates[i].arg ? aggregates[i].arg->ToString() : "*") + ")";
      }
      out += "]";
      break;
    }
    case PlanKind::kSort:
      out += limit >= 0 ? "TopK[" + std::to_string(limit) + "]" : "Sort";
      break;
    case PlanKind::kLimit:
      out += "Limit[" + std::to_string(limit) + "]";
      break;
    case PlanKind::kUnion:
      out += "Union";
      break;
    case PlanKind::kResultScan:
      out += "ResultScan(" + result_id + ")";
      break;
    case PlanKind::kCacheScan:
      out += "CacheScan(" + table_name + " <- " + uri + ")";
      break;
    case PlanKind::kMount:
      out += "Mount(" + table_name + " <- " + uri + ")";
      if (predicate != nullptr) out += " σ[" + predicate->ToString() + "]";
      break;
    case PlanKind::kStageBreak:
      out += "StageBreak  -- Q_f below";
      break;
  }
  return out;
}

std::string LogicalPlan::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += LabelString();
  out += "\n";
  for (const PlanPtr& c : children) {
    out += c->ToString(indent + 1);
  }
  return out;
}

}  // namespace dex
