#include "engine/optimizer.h"

#include <algorithm>

#include "common/logging.h"

namespace dex {

namespace {

/// Recursively pushes the pending conjuncts into `plan`. Returns the new
/// subtree; conjuncts that cannot sink past a node wrap it in a Filter.
PlanPtr PushDown(const PlanPtr& plan, std::vector<ExprPtr> pending) {
  auto wrap = [&](PlanPtr p) {
    return pending.empty() ? p : MakeFilter(Expr::AndAll(pending), std::move(p));
  };

  switch (plan->kind) {
    case PlanKind::kFilter: {
      Expr::SplitConjuncts(plan->predicate, &pending);
      return PushDown(plan->children[0], std::move(pending));
    }
    case PlanKind::kJoin: {
      const Schema& left_schema = *plan->children[0]->output_schema;
      const Schema& right_schema = *plan->children[1]->output_schema;
      std::vector<ExprPtr> left_preds, right_preds, join_preds;
      for (const ExprPtr& p : pending) {
        if (p->AllColumnsIn(left_schema)) {
          left_preds.push_back(p);
        } else if (p->AllColumnsIn(right_schema)) {
          right_preds.push_back(p);
        } else {
          join_preds.push_back(p);  // references both sides
        }
      }
      // The ON condition's single-side conjuncts sink too.
      std::vector<ExprPtr> on_conjuncts;
      Expr::SplitConjuncts(plan->predicate, &on_conjuncts);
      std::vector<ExprPtr> kept_on;
      for (const ExprPtr& p : on_conjuncts) {
        if (p->AllColumnsIn(left_schema)) {
          left_preds.push_back(p);
        } else if (p->AllColumnsIn(right_schema)) {
          right_preds.push_back(p);
        } else {
          kept_on.push_back(p);
        }
      }
      kept_on.insert(kept_on.end(), join_preds.begin(), join_preds.end());
      PlanPtr left = PushDown(plan->children[0], std::move(left_preds));
      PlanPtr right = PushDown(plan->children[1], std::move(right_preds));
      return MakeJoin(Expr::AndAll(kept_on), std::move(left), std::move(right));
    }
    case PlanKind::kUnion: {
      std::vector<PlanPtr> children;
      for (const PlanPtr& c : plan->children) {
        children.push_back(PushDown(c, pending));
      }
      return MakeUnion(std::move(children));
    }
    case PlanKind::kStageBreak:
      return MakeStageBreak(PushDown(plan->children[0], std::move(pending)));
    case PlanKind::kScan:
    case PlanKind::kMount:
    case PlanKind::kCacheScan:
    case PlanKind::kResultScan:
      return wrap(ClonePlan(plan));
    default: {
      // Project/Aggregate/Sort/Limit: optimize below, keep filters above
      // (they may reference computed columns).
      auto copy = std::make_shared<LogicalPlan>(*plan);
      copy->children.clear();
      for (const PlanPtr& c : plan->children) {
        copy->children.push_back(PushDown(c, {}));
      }
      return wrap(copy);
    }
  }
}

PlanPtr PushUnions(const PlanPtr& plan) {
  auto copy = std::make_shared<LogicalPlan>(*plan);
  copy->children.clear();
  for (const PlanPtr& c : plan->children) {
    copy->children.push_back(PushUnions(c));
  }
  if (copy->kind == PlanKind::kFilter &&
      copy->children[0]->kind == PlanKind::kUnion) {
    std::vector<PlanPtr> branches;
    for (const PlanPtr& b : copy->children[0]->children) {
      branches.push_back(MakeFilter(copy->predicate, b));
    }
    return MakeUnion(std::move(branches));
  }
  return copy;
}

}  // namespace

Result<PlanPtr> PushDownPredicates(const PlanPtr& plan, const Catalog& catalog) {
  PlanPtr out = PushDown(plan, {});
  DEX_RETURN_NOT_OK(AnalyzePlan(out, catalog));
  return out;
}

Result<PlanPtr> PushSelectionsIntoUnions(const PlanPtr& plan,
                                         const Catalog& catalog) {
  PlanPtr out = PushUnions(plan);
  DEX_RETURN_NOT_OK(AnalyzePlan(out, catalog));
  return out;
}

namespace {

PlanPtr FuseTopKImpl(const PlanPtr& plan) {
  auto copy = std::make_shared<LogicalPlan>(*plan);
  copy->children.clear();
  for (const PlanPtr& c : plan->children) {
    copy->children.push_back(FuseTopKImpl(c));
  }
  if (copy->kind == PlanKind::kLimit && copy->limit >= 0 &&
      copy->children[0]->kind == PlanKind::kSort) {
    PlanPtr sort = copy->children[0];
    // Keep the smaller limit if the sort was already fused.
    sort->limit = sort->limit < 0 ? copy->limit
                                  : std::min(sort->limit, copy->limit);
    return sort;
  }
  return copy;
}

}  // namespace

Result<PlanPtr> FuseTopK(const PlanPtr& plan, const Catalog& catalog) {
  PlanPtr out = FuseTopKImpl(plan);
  DEX_RETURN_NOT_OK(AnalyzePlan(out, catalog));
  return out;
}

}  // namespace dex
