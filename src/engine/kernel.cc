#include "engine/kernel.h"

#include <algorithm>

namespace dex::kernel {

namespace {

// The branchless selection idiom: unconditionally store the candidate index,
// then advance the cursor by the comparison result. The loop body has no
// data-dependent branch, so the autovectorizer can turn it into compressed
// stores / masked adds.
template <typename T, typename Cmp>
size_t FilterDense(const T* v, size_t n, T lit, uint32_t* sel, Cmp cmp) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += cmp(v[i], lit) ? 1 : 0;
  }
  return k;
}

template <typename T, typename Cmp>
size_t RefineSel(const T* v, T lit, uint32_t* sel, size_t k, Cmp cmp) {
  size_t out = 0;
  for (size_t i = 0; i < k; ++i) {
    const uint32_t row = sel[i];
    sel[out] = row;
    out += cmp(v[row], lit) ? 1 : 0;
  }
  return out;
}

// One switch per batch, not per row: dispatch to a monomorphized loop.
template <typename T>
size_t FilterDispatch(const T* v, size_t n, CompareOp op, T lit,
                      uint32_t* sel) {
  switch (op) {
    case CompareOp::kEq:
      return FilterDense(v, n, lit, sel, [](T a, T b) { return a == b; });
    case CompareOp::kNe:
      return FilterDense(v, n, lit, sel, [](T a, T b) { return a != b; });
    case CompareOp::kLt:
      return FilterDense(v, n, lit, sel, [](T a, T b) { return a < b; });
    case CompareOp::kLe:
      return FilterDense(v, n, lit, sel, [](T a, T b) { return a <= b; });
    case CompareOp::kGt:
      return FilterDense(v, n, lit, sel, [](T a, T b) { return a > b; });
    case CompareOp::kGe:
      return FilterDense(v, n, lit, sel, [](T a, T b) { return a >= b; });
  }
  return 0;
}

template <typename T>
size_t RefineDispatch(const T* v, CompareOp op, T lit, uint32_t* sel,
                      size_t k) {
  switch (op) {
    case CompareOp::kEq:
      return RefineSel(v, lit, sel, k, [](T a, T b) { return a == b; });
    case CompareOp::kNe:
      return RefineSel(v, lit, sel, k, [](T a, T b) { return a != b; });
    case CompareOp::kLt:
      return RefineSel(v, lit, sel, k, [](T a, T b) { return a < b; });
    case CompareOp::kLe:
      return RefineSel(v, lit, sel, k, [](T a, T b) { return a <= b; });
    case CompareOp::kGt:
      return RefineSel(v, lit, sel, k, [](T a, T b) { return a > b; });
    case CompareOp::kGe:
      return RefineSel(v, lit, sel, k, [](T a, T b) { return a >= b; });
  }
  return 0;
}

}  // namespace

size_t FilterF64(const double* v, size_t n, CompareOp op, double lit,
                 uint32_t* sel) {
  return FilterDispatch(v, n, op, lit, sel);
}

size_t FilterI64(const int64_t* v, size_t n, CompareOp op, int64_t lit,
                 uint32_t* sel) {
  return FilterDispatch(v, n, op, lit, sel);
}

size_t RefineF64(const double* v, CompareOp op, double lit, uint32_t* sel,
                 size_t k) {
  return RefineDispatch(v, op, lit, sel, k);
}

size_t RefineI64(const int64_t* v, CompareOp op, int64_t lit, uint32_t* sel,
                 size_t k) {
  return RefineDispatch(v, op, lit, sel, k);
}

NumericAgg AggF64(const double* v, size_t n) {
  NumericAgg out;
  if (n == 0) return out;
  double mn = v[0], mx = v[0], sum = 0;
  for (size_t i = 0; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
    sum += v[i];
  }
  out.min = mn;
  out.max = mx;
  out.sum = sum;
  out.count = n;
  return out;
}

NumericAgg AggI64(const int64_t* v, size_t n) {
  NumericAgg out;
  if (n == 0) return out;
  int64_t mn = v[0], mx = v[0], isum = 0;
  for (size_t i = 0; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
    isum += v[i];
  }
  out.min = static_cast<double>(mn);
  out.max = static_cast<double>(mx);
  out.imin = mn;
  out.imax = mx;
  out.isum = isum;
  out.sum = static_cast<double>(isum);
  out.count = n;
  return out;
}

NumericAgg AggI32(const int32_t* v, size_t n) {
  NumericAgg out;
  if (n == 0) return out;
  int32_t mn = v[0], mx = v[0];
  int64_t isum = 0;
  for (size_t i = 0; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
    isum += v[i];
  }
  out.min = static_cast<double>(mn);
  out.max = static_cast<double>(mx);
  out.imin = mn;
  out.imax = mx;
  out.isum = isum;
  out.sum = static_cast<double>(isum);
  out.count = n;
  return out;
}

NumericAgg AggF64Selected(const double* v, const uint32_t* sel, size_t k) {
  NumericAgg out;
  if (k == 0) return out;
  double mn = v[sel[0]], mx = v[sel[0]], sum = 0;
  for (size_t i = 0; i < k; ++i) {
    const double x = v[sel[i]];
    mn = std::min(mn, x);
    mx = std::max(mx, x);
    sum += x;
  }
  out.min = mn;
  out.max = mx;
  out.sum = sum;
  out.count = k;
  return out;
}

NumericAgg AggI64Selected(const int64_t* v, const uint32_t* sel, size_t k) {
  NumericAgg out;
  if (k == 0) return out;
  int64_t mn = v[sel[0]], mx = v[sel[0]], isum = 0;
  for (size_t i = 0; i < k; ++i) {
    const int64_t x = v[sel[i]];
    mn = std::min(mn, x);
    mx = std::max(mx, x);
    isum += x;
  }
  out.min = static_cast<double>(mn);
  out.max = static_cast<double>(mx);
  out.imin = mn;
  out.imax = mx;
  out.isum = isum;
  out.sum = static_cast<double>(isum);
  out.count = k;
  return out;
}

void GroupByCodes(const int32_t* codes, const uint32_t* sel, size_t k,
                  size_t n, std::vector<int32_t>* code_to_group,
                  std::vector<int32_t>* group_codes, uint32_t* out_gid) {
  const size_t rows = sel != nullptr ? k : n;
  for (size_t i = 0; i < rows; ++i) {
    const uint32_t row = sel != nullptr ? sel[i] : static_cast<uint32_t>(i);
    const int32_t code = codes[row];
    if (static_cast<size_t>(code) >= code_to_group->size()) {
      code_to_group->resize(static_cast<size_t>(code) + 1, -1);
    }
    int32_t slot = (*code_to_group)[static_cast<size_t>(code)];
    if (slot < 0) {
      slot = static_cast<int32_t>(group_codes->size());
      (*code_to_group)[static_cast<size_t>(code)] = slot;
      group_codes->push_back(code);
    }
    out_gid[i] = static_cast<uint32_t>(slot);
  }
}

void GroupAccumF64(const double* v, const uint32_t* sel, size_t k,
                   const uint32_t* gid, double* min, double* max, double* sum,
                   uint64_t* count, uint8_t* seen) {
  for (size_t i = 0; i < k; ++i) {
    const uint32_t row = sel != nullptr ? sel[i] : static_cast<uint32_t>(i);
    const double x = v[row];
    const uint32_t g = gid[i];
    if (!seen[g]) {
      seen[g] = 1;
      min[g] = x;
      max[g] = x;
    } else {
      min[g] = std::min(min[g], x);
      max[g] = std::max(max[g], x);
    }
    sum[g] += x;
    ++count[g];
  }
}

void GroupAccumI64(const int64_t* v, const uint32_t* sel, size_t k,
                   const uint32_t* gid, int64_t* imin, int64_t* imax,
                   double* sum, int64_t* isum, uint64_t* count,
                   uint8_t* seen) {
  for (size_t i = 0; i < k; ++i) {
    const uint32_t row = sel != nullptr ? sel[i] : static_cast<uint32_t>(i);
    const int64_t x = v[row];
    const uint32_t g = gid[i];
    if (!seen[g]) {
      seen[g] = 1;
      imin[g] = x;
      imax[g] = x;
    } else {
      imin[g] = std::min(imin[g], x);
      imax[g] = std::max(imax[g], x);
    }
    sum[g] += static_cast<double>(x);
    isum[g] += x;
    ++count[g];
  }
}

}  // namespace dex::kernel
