#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "common/logging.h"
#include "engine/batch.h"
#include "engine/kernel.h"
#include "engine/plan_profile.h"

namespace dex {

namespace {

// ---------------------------------------------------------------------------
// Operator protocol: Open() once, then Next(&batch) until it returns false.
// ---------------------------------------------------------------------------
class PhysOp {
 public:
  virtual ~PhysOp() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(Batch* out) = 0;
  const SchemaPtr& schema() const { return schema_; }

 protected:
  explicit PhysOp(SchemaPtr schema) : schema_(std::move(schema)) {}
  SchemaPtr schema_;
};

using PhysOpPtr = std::unique_ptr<PhysOp>;

bool CellsEqual(const Column& a, size_t i, const Column& b, size_t j) {
  if (a.type() == DataType::kString || b.type() == DataType::kString) {
    if (a.type() != b.type()) return false;
    if (a.dict() == b.dict()) return a.GetStringCode(i) == b.GetStringCode(j);
    return a.GetString(i) == b.GetString(j);
  }
  if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
    return a.GetNumeric(i) == b.GetNumeric(j);
  }
  return a.GetInt64(i) == b.GetInt64(j);
}

uint64_t HashCell(const Column& col, size_t row) {
  switch (col.type()) {
    case DataType::kDouble: {
      const double d = col.GetDouble(row);
      // Hash doubles by numeric value so 1.0 matches int 1 across columns.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string>{}(col.GetString(row));
    default:
      return std::hash<int64_t>{}(col.GetInt64(row));
  }
}

uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

uint64_t HashKeyRow(const std::vector<ColumnPtr>& keys, size_t row) {
  uint64_t h = 0;
  for (const ColumnPtr& k : keys) h = HashCombine(h, HashCell(*k, row));
  return h;
}

// ---------------------------------------------------------------------------
// Kernel lowering: which predicates/aggregations the branchless kernels in
// engine/kernel.h can run. Decided once per operator (at Open), never per row.
// ---------------------------------------------------------------------------

/// One kernel-runnable conjunct: physical column `col` `op` typed literal.
struct KernelConjunct {
  int col = -1;
  CompareOp op = CompareOp::kEq;
  bool is_f64 = false;
  double f64 = 0;
  int64_t i64 = 0;
};

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;
  }
}

/// Lowers one bound conjunct to a KernelConjunct against `schema`, or
/// returns false when only the scalar interpreter can run it.
bool LowerConjunct(const ExprPtr& e, const Schema& schema,
                   KernelConjunct* out) {
  if (e == nullptr || e->kind() != ExprKind::kComparison) return false;
  const ExprPtr& a = e->children()[0];
  const ExprPtr& b = e->children()[1];
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = e->compare_op();
  if (a->kind() == ExprKind::kColumnRef && b->kind() == ExprKind::kLiteral) {
    col = a.get();
    lit = b.get();
  } else if (a->kind() == ExprKind::kLiteral &&
             b->kind() == ExprKind::kColumnRef) {
    col = b.get();
    lit = a.get();
    op = FlipCompare(op);
  } else {
    return false;
  }
  if (col->column_index() < 0 ||
      static_cast<size_t>(col->column_index()) >= schema.num_fields()) {
    return false;
  }
  const DataType ct = schema.field(col->column_index()).type;
  const Value& v = lit->literal();
  if (v.is_null()) return false;
  out->col = col->column_index();
  out->op = op;
  if (ct == DataType::kDouble) {
    auto d = v.AsDouble();
    if (!d.ok()) return false;
    out->is_f64 = true;
    out->f64 = *d;
    return true;
  }
  if (ct == DataType::kInt64 || ct == DataType::kTimestamp) {
    if (v.type() == DataType::kInt64 || v.type() == DataType::kTimestamp) {
      out->i64 = v.int64();
    } else if (v.type() == DataType::kDouble) {
      // Only exactly-representable literals lower; `v < 3.5` over ints keeps
      // the scalar path rather than silently rounding the bound.
      const double d = v.dbl();
      if (d != static_cast<double>(static_cast<int64_t>(d))) return false;
      out->i64 = static_cast<int64_t>(d);
    } else {
      return false;
    }
    out->is_f64 = false;
    return true;
  }
  return false;
}

/// Lowers a full bound predicate into kernel conjuncts (AND of comparisons).
bool LowerPredicate(const ExprPtr& pred, const Schema& schema,
                    std::vector<KernelConjunct>* out) {
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(pred, &conjuncts);
  if (conjuncts.empty()) return false;
  out->clear();
  for (const ExprPtr& c : conjuncts) {
    KernelConjunct kc;
    if (!LowerConjunct(c, schema, &kc)) return false;
    out->push_back(kc);
  }
  return true;
}

/// Materializes everything an operator produces into a Table.
Result<TablePtr> Drain(PhysOp* op, const std::string& name) {
  auto table = std::make_shared<Table>(name, op->schema());
  Batch batch;
  DEX_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
  while (more) {
    batch.Compact();  // materialization boundary of the selection contract
    const size_t n = batch.num_rows();
    for (size_t c = 0; c < batch.columns.size(); ++c) {
      table->mutable_column(c)->AppendRange(*batch.columns[c], 0, n);
    }
    DEX_RETURN_NOT_OK(table->CommitAppendedRows(n));
    DEX_ASSIGN_OR_RETURN(more, op->Next(&batch));
  }
  return table;
}

// ---------------------------------------------------------------------------
// Source operators
// ---------------------------------------------------------------------------

/// Streams a materialized table in kBatchSize chunks. The workhorse behind
/// scan, result-scan, cache-scan and (post-ingestion) mount.
class TableSourceOp : public PhysOp {
 public:
  TableSourceOp(SchemaPtr schema, TablePtr table)
      : PhysOp(std::move(schema)), table_(std::move(table)) {}

  Status Open() override { return Status::OK(); }

  Result<bool> Next(Batch* out) override {
    if (table_ == nullptr || pos_ >= table_->num_rows()) return false;
    const size_t n = std::min(kBatchSize, table_->num_rows() - pos_);
    out->schema = schema_;
    out->columns.clear();
    for (size_t c = 0; c < table_->num_columns(); ++c) {
      auto col = std::make_shared<Column>(table_->column(c)->type());
      col->AppendRange(*table_->column(c), pos_, n);
      out->columns.push_back(std::move(col));
    }
    pos_ += n;
    return true;
  }

 protected:
  TablePtr table_;
  size_t pos_ = 0;
};

class ScanOp : public TableSourceOp {
 public:
  ScanOp(SchemaPtr schema, TablePtr table, std::string table_name, ExecContext* ctx)
      : TableSourceOp(std::move(schema), std::move(table)),
        table_name_(std::move(table_name)),
        ctx_(ctx) {}

  Status Open() override {
    if (ctx_->charge_io) {
      DEX_RETURN_NOT_OK(ctx_->catalog->ChargeTableScan(table_name_));
    }
    return Status::OK();
  }

  Result<bool> Next(Batch* out) override {
    DEX_ASSIGN_OR_RETURN(bool more, TableSourceOp::Next(out));
    if (more) ctx_->stats.rows_scanned += out->num_rows();
    return more;
  }

 private:
  std::string table_name_;
  ExecContext* ctx_;
};

/// ALi's mount access path: ingestion happens inside query execution, on
/// first pull. The callback owns extraction/transformation; failures (e.g.
/// the file vanished between stage 1 and stage 2) surface as query errors.
class MountOp : public TableSourceOp {
 public:
  MountOp(SchemaPtr schema, std::string table_name, std::string uri,
          ExprPtr fused_predicate, ExecContext* ctx)
      : TableSourceOp(std::move(schema), nullptr),
        table_name_(std::move(table_name)),
        uri_(std::move(uri)),
        fused_predicate_(std::move(fused_predicate)),
        ctx_(ctx) {}

  Status Open() override {
    if (!ctx_->mount_fn) {
      return Status::Internal("mount operator present but no mount_fn set");
    }
    DEX_ASSIGN_OR_RETURN(table_,
                         ctx_->mount_fn(table_name_, uri_, fused_predicate_));
    ctx_->stats.files_mounted += 1;
    ctx_->stats.mounted_rows += table_->num_rows();
    return Status::OK();
  }

 private:
  std::string table_name_;
  std::string uri_;
  ExprPtr fused_predicate_;
  ExecContext* ctx_;
};

class CacheScanOp : public TableSourceOp {
 public:
  CacheScanOp(SchemaPtr schema, std::string table_name, std::string uri,
              ExecContext* ctx)
      : TableSourceOp(std::move(schema), nullptr),
        table_name_(std::move(table_name)),
        uri_(std::move(uri)),
        ctx_(ctx) {}

  Status Open() override {
    if (!ctx_->cache_fn) {
      return Status::Internal("cache-scan operator present but no cache_fn set");
    }
    auto cached = ctx_->cache_fn(table_name_, uri_);
    if (cached.ok()) {
      table_ = std::move(cached).ValueUnsafe();
      ctx_->stats.cache_scans += 1;
      return Status::OK();
    }
    if (cached.status().IsNotFound() && ctx_->mount_fn) {
      // The entry was evicted between the run-time rewrite and this branch's
      // execution (e.g. this query's own mounts churned a small LRU cache).
      // Fall back to mounting; any selection sits in the Filter above us.
      DEX_ASSIGN_OR_RETURN(table_, ctx_->mount_fn(table_name_, uri_, nullptr));
      ctx_->stats.files_mounted += 1;
      ctx_->stats.mounted_rows += table_->num_rows();
      return Status::OK();
    }
    return cached.status();
  }

 private:
  std::string table_name_;
  std::string uri_;
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

/// Filter emits *selection vectors*, not gathered copies: the output batch
/// shares the child's columns and carries the surviving row indices (see the
/// contract in engine/batch.h). Kernel-eligible predicates (conjunctions of
/// column-vs-literal comparisons over numeric columns) run through the
/// branchless kernels; everything else evaluates via the expression
/// interpreter and converts its mask to a selection.
class FilterOp : public PhysOp {
 public:
  FilterOp(SchemaPtr schema, ExprPtr bound_pred, PhysOpPtr child,
           ExecContext* ctx)
      : PhysOp(std::move(schema)),
        predicate_(std::move(bound_pred)),
        child_(std::move(child)),
        ctx_(ctx) {}

  Status Open() override {
    kernel_mode_ = ctx_->use_simd_kernels &&
                   LowerPredicate(predicate_, *child_->schema(), &conjuncts_);
    return child_->Open();
  }

  Result<bool> Next(Batch* out) override {
    while (true) {
      Batch in;
      DEX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) return false;
      std::vector<uint32_t> selected;
      if (kernel_mode_) {
        RunKernels(in, &selected);
        ctx_->stats.kernel_filter_batches += 1;
      } else {
        // Scalar fallback: the interpreter wants dense physical rows.
        if (in.Compact()) ctx_->stats.selection_compactions += 1;
        DEX_ASSIGN_OR_RETURN(ColumnPtr mask, predicate_->Evaluate(in));
        selected.reserve(in.num_rows());
        const int64_t* bits = mask->data_i64();
        for (size_t i = 0; i < in.num_rows(); ++i) {
          if (bits[i] != 0) selected.push_back(static_cast<uint32_t>(i));
        }
        ctx_->stats.scalar_filter_batches += 1;
      }
      if (selected.empty()) continue;
      out->schema = schema_;
      out->columns = in.columns;  // shared per the selection contract
      if (selected.size() == in.physical_rows()) {
        // All physical rows pass: dense zero-copy pass-through.
        out->selection.clear();
        out->has_selection = false;
        return true;
      }
      out->selection = std::move(selected);
      out->has_selection = true;
      return true;
    }
  }

 private:
  /// Applies the lowered conjuncts: the first builds the selection (or the
  /// child's incoming selection seeds it), the rest refine it in place.
  void RunKernels(Batch& in, std::vector<uint32_t>* selected) {
    const size_t n = in.physical_rows();
    size_t k;
    size_t first = 0;
    if (in.has_selection) {
      *selected = std::move(in.selection);
      in.has_selection = false;
      k = selected->size();
    } else {
      selected->resize(n);
      const KernelConjunct& c = conjuncts_[0];
      const Column& col = *in.columns[c.col];
      k = c.is_f64
              ? kernel::FilterF64(col.data_f64(), n, c.op, c.f64,
                                  selected->data())
              : kernel::FilterI64(col.data_i64(), n, c.op, c.i64,
                                  selected->data());
      first = 1;
    }
    for (size_t ci = first; ci < conjuncts_.size() && k > 0; ++ci) {
      const KernelConjunct& c = conjuncts_[ci];
      const Column& col = *in.columns[c.col];
      k = c.is_f64 ? kernel::RefineF64(col.data_f64(), c.op, c.f64,
                                       selected->data(), k)
                   : kernel::RefineI64(col.data_i64(), c.op, c.i64,
                                       selected->data(), k);
    }
    selected->resize(k);
  }

  ExprPtr predicate_;
  PhysOpPtr child_;
  ExecContext* ctx_;
  bool kernel_mode_ = false;
  std::vector<KernelConjunct> conjuncts_;
};

class ProjectOp : public PhysOp {
 public:
  ProjectOp(SchemaPtr schema, std::vector<ExprPtr> bound_exprs, PhysOpPtr child,
            ExecContext* ctx)
      : PhysOp(std::move(schema)),
        exprs_(std::move(bound_exprs)),
        child_(std::move(child)),
        ctx_(ctx) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Batch* out) override {
    Batch in;
    DEX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    if (in.Compact()) ctx_->stats.selection_compactions += 1;
    out->schema = schema_;
    out->columns.clear();
    for (const ExprPtr& e : exprs_) {
      DEX_ASSIGN_OR_RETURN(ColumnPtr col, e->Evaluate(in));
      out->columns.push_back(std::move(col));
    }
    return true;
  }

 private:
  std::vector<ExprPtr> exprs_;
  PhysOpPtr child_;
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Equality pairs extracted from a join condition: left_exprs bind to the
/// left schema, right_exprs to the right; residual applies to the concat.
struct JoinKeys {
  std::vector<ExprPtr> left_exprs;
  std::vector<ExprPtr> right_exprs;
  ExprPtr residual;  // bound to the concatenated schema; may be TRUE
};

Result<JoinKeys> ExtractJoinKeys(const ExprPtr& condition, const Schema& left,
                                 const Schema& right, const Schema& concat) {
  JoinKeys keys;
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(condition, &conjuncts);
  std::vector<ExprPtr> residuals;
  for (const ExprPtr& c : conjuncts) {
    bool is_key = false;
    if (c->kind() == ExprKind::kComparison &&
        c->compare_op() == CompareOp::kEq) {
      const ExprPtr& a = c->children()[0];
      const ExprPtr& b = c->children()[1];
      if (a->AllColumnsIn(left) && b->AllColumnsIn(right)) {
        DEX_ASSIGN_OR_RETURN(ExprPtr la, a->Bind(left));
        DEX_ASSIGN_OR_RETURN(ExprPtr rb, b->Bind(right));
        keys.left_exprs.push_back(std::move(la));
        keys.right_exprs.push_back(std::move(rb));
        is_key = true;
      } else if (b->AllColumnsIn(left) && a->AllColumnsIn(right)) {
        DEX_ASSIGN_OR_RETURN(ExprPtr lb, b->Bind(left));
        DEX_ASSIGN_OR_RETURN(ExprPtr ra, a->Bind(right));
        keys.left_exprs.push_back(std::move(lb));
        keys.right_exprs.push_back(std::move(ra));
        is_key = true;
      }
    }
    if (!is_key) residuals.push_back(c);
  }
  if (!residuals.empty()) {
    DEX_ASSIGN_OR_RETURN(keys.residual, Expr::AndAll(residuals)->Bind(concat));
  }
  return keys;
}

/// Hash join: materializes+hashes the right (build) side, streams the left
/// (probe) side. Falls back to nested-loop when the condition has no
/// equality pairs (the paper's "Q_f might contain cartesian products").
class HashJoinOp : public PhysOp {
 public:
  HashJoinOp(SchemaPtr schema, JoinKeys keys, PhysOpPtr left, PhysOpPtr right,
             ExecContext* ctx)
      : PhysOp(std::move(schema)),
        keys_(std::move(keys)),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    DEX_RETURN_NOT_OK(left_->Open());
    DEX_RETURN_NOT_OK(right_->Open());
    DEX_ASSIGN_OR_RETURN(build_, Drain(right_.get(), "join_build"));
    // Evaluate build-side key columns over the whole build table at once.
    Batch all;
    all.schema = right_->schema();
    for (size_t c = 0; c < build_->num_columns(); ++c) {
      all.columns.push_back(build_->column(c));
    }
    for (const ExprPtr& e : keys_.right_exprs) {
      DEX_ASSIGN_OR_RETURN(ColumnPtr col, e->Evaluate(all));
      build_keys_.push_back(std::move(col));
    }
    // Flat sorted (hash, row) arrays: node-based hash maps fall over when
    // the build side is large (per-node allocation dominates); sorting keeps
    // the build linear-ish and probes cache-friendly.
    const size_t n = build_->num_rows();
    hashes_.resize(n);
    rows_.resize(n);
    for (size_t r = 0; r < n; ++r) {
      hashes_[r] = HashKeyRow(build_keys_, r);
      rows_[r] = static_cast<uint32_t>(r);
    }
    std::vector<uint32_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      return hashes_[a] < hashes_[b];
    });
    std::vector<uint64_t> sorted_hashes(n);
    std::vector<uint32_t> sorted_rows(n);
    for (size_t i = 0; i < n; ++i) {
      sorted_hashes[i] = hashes_[perm[i]];
      sorted_rows[i] = rows_[perm[i]];
    }
    hashes_ = std::move(sorted_hashes);
    rows_ = std::move(sorted_rows);
    return Status::OK();
  }

  Result<bool> Next(Batch* out) override {
    while (true) {
      Batch in;
      DEX_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
      if (!more) return false;
      if (in.Compact()) ctx_->stats.selection_compactions += 1;
      std::vector<ColumnPtr> probe_keys;
      for (const ExprPtr& e : keys_.left_exprs) {
        DEX_ASSIGN_OR_RETURN(ColumnPtr col, e->Evaluate(in));
        probe_keys.push_back(std::move(col));
      }
      std::vector<uint32_t> probe_rows, build_rows;
      if (keys_.left_exprs.empty()) {
        // Cartesian product.
        for (size_t i = 0; i < in.num_rows(); ++i) {
          for (size_t j = 0; j < build_->num_rows(); ++j) {
            probe_rows.push_back(static_cast<uint32_t>(i));
            build_rows.push_back(static_cast<uint32_t>(j));
          }
        }
      } else {
        for (size_t i = 0; i < in.num_rows(); ++i) {
          const uint64_t h = HashKeyRow(probe_keys, i);
          auto it = std::lower_bound(hashes_.begin(), hashes_.end(), h);
          for (; it != hashes_.end() && *it == h; ++it) {
            const uint32_t r = rows_[it - hashes_.begin()];
            bool match = true;
            for (size_t k = 0; k < probe_keys.size(); ++k) {
              if (!CellsEqual(*probe_keys[k], i, *build_keys_[k], r)) {
                match = false;
                break;
              }
            }
            if (match) {
              probe_rows.push_back(static_cast<uint32_t>(i));
              build_rows.push_back(r);
            }
          }
        }
      }
      if (probe_rows.empty()) continue;
      Batch joined;
      joined.schema = schema_;
      for (const ColumnPtr& c : in.columns) {
        auto col = std::make_shared<Column>(c->type());
        col->AppendGather(*c, probe_rows);
        joined.columns.push_back(std::move(col));
      }
      for (size_t c = 0; c < build_->num_columns(); ++c) {
        auto col = std::make_shared<Column>(build_->column(c)->type());
        col->AppendGather(*build_->column(c), build_rows);
        joined.columns.push_back(std::move(col));
      }
      if (keys_.residual != nullptr) {
        DEX_ASSIGN_OR_RETURN(ColumnPtr mask, keys_.residual->Evaluate(joined));
        std::vector<uint32_t> selected;
        const int64_t* bits = mask->data_i64();
        for (size_t i = 0; i < joined.num_rows(); ++i) {
          if (bits[i] != 0) selected.push_back(static_cast<uint32_t>(i));
        }
        if (selected.empty()) continue;
        if (selected.size() != joined.num_rows()) {
          Batch filtered;
          filtered.schema = schema_;
          for (const ColumnPtr& c : joined.columns) {
            auto col = std::make_shared<Column>(c->type());
            col->AppendGather(*c, selected);
            filtered.columns.push_back(std::move(col));
          }
          joined = std::move(filtered);
        }
      }
      *out = std::move(joined);
      return true;
    }
  }

 private:
  JoinKeys keys_;
  PhysOpPtr left_;
  PhysOpPtr right_;
  ExecContext* ctx_;
  TablePtr build_;
  std::vector<ColumnPtr> build_keys_;
  // Parallel arrays sorted by hash.
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> rows_;
};

/// Index nested-loop join against a persistent, indexed base table: the Ei
/// baseline's hot path. Probing charges point reads on the base table and a
/// one-time read of the index pages ("the foreign key indexes have to be
/// brought into main memory to compute the joins").
class IndexJoinOp : public PhysOp {
 public:
  IndexJoinOp(SchemaPtr schema, JoinKeys keys, PhysOpPtr left,
              std::string right_table_name, TablePtr right_table,
              const HashIndex* index, ExprPtr right_filter, ExecContext* ctx)
      : PhysOp(std::move(schema)),
        keys_(std::move(keys)),
        left_(std::move(left)),
        right_table_name_(std::move(right_table_name)),
        right_table_(std::move(right_table)),
        index_(index),
        right_filter_(std::move(right_filter)),
        ctx_(ctx) {}

  Status Open() override {
    DEX_RETURN_NOT_OK(left_->Open());
    if (ctx_->charge_io) {
      DEX_RETURN_NOT_OK(ctx_->catalog->ChargeIndexRead(right_table_name_));
    }
    return Status::OK();
  }

  Result<bool> Next(Batch* out) override {
    while (true) {
      Batch in;
      DEX_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
      if (!more) return false;
      if (in.Compact()) ctx_->stats.selection_compactions += 1;
      std::vector<ColumnPtr> probe_keys;
      for (const ExprPtr& e : keys_.left_exprs) {
        DEX_ASSIGN_OR_RETURN(ColumnPtr col, e->Evaluate(in));
        probe_keys.push_back(std::move(col));
      }
      std::vector<uint32_t> probe_rows, fetch_rows;
      std::vector<Value> key(probe_keys.size());
      std::vector<uint32_t> matches;
      for (size_t i = 0; i < in.num_rows(); ++i) {
        for (size_t k = 0; k < probe_keys.size(); ++k) {
          key[k] = probe_keys[k]->GetValue(i);
        }
        matches.clear();
        DEX_RETURN_NOT_OK(index_->Probe(key, &matches));
        ctx_->stats.index_probes += 1;
        for (uint32_t r : matches) {
          probe_rows.push_back(static_cast<uint32_t>(i));
          fetch_rows.push_back(r);
        }
      }
      if (probe_rows.empty()) continue;
      if (ctx_->charge_io) {
        DEX_RETURN_NOT_OK(
            ctx_->catalog->ChargeRowsRead(right_table_name_, fetch_rows));
      }
      Batch joined;
      joined.schema = schema_;
      for (const ColumnPtr& c : in.columns) {
        auto col = std::make_shared<Column>(c->type());
        col->AppendGather(*c, probe_rows);
        joined.columns.push_back(std::move(col));
      }
      for (size_t c = 0; c < right_table_->num_columns(); ++c) {
        auto col = std::make_shared<Column>(right_table_->column(c)->type());
        col->AppendGather(*right_table_->column(c), fetch_rows);
        joined.columns.push_back(std::move(col));
      }
      // Residual join predicates plus any filter that sat on the right scan.
      ExprPtr post = keys_.residual;
      if (right_filter_ != nullptr) {
        post = post ? Expr::And(post, right_filter_) : right_filter_;
      }
      if (post != nullptr) {
        DEX_ASSIGN_OR_RETURN(ExprPtr bound, post->Bind(*schema_));
        DEX_ASSIGN_OR_RETURN(ColumnPtr mask, bound->Evaluate(joined));
        std::vector<uint32_t> selected;
        const int64_t* bits = mask->data_i64();
        for (size_t i = 0; i < joined.num_rows(); ++i) {
          if (bits[i] != 0) selected.push_back(static_cast<uint32_t>(i));
        }
        if (selected.empty()) continue;
        if (selected.size() != joined.num_rows()) {
          Batch filtered;
          filtered.schema = schema_;
          for (const ColumnPtr& c : joined.columns) {
            auto col = std::make_shared<Column>(c->type());
            col->AppendGather(*c, selected);
            filtered.columns.push_back(std::move(col));
          }
          joined = std::move(filtered);
        }
      }
      *out = std::move(joined);
      return true;
    }
  }

 private:
  JoinKeys keys_;
  PhysOpPtr left_;
  std::string right_table_name_;
  TablePtr right_table_;
  const HashIndex* index_;
  ExprPtr right_filter_;  // unbound; bound against output schema lazily
  ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

struct AggAccumulator {
  int64_t count = 0;
  double sum = 0.0;
  int64_t isum = 0;
  Value min;
  Value max;
};

class HashAggOp : public PhysOp {
 public:
  HashAggOp(SchemaPtr schema, std::vector<ExprPtr> bound_groups,
            std::vector<AggSpec> aggs, std::vector<ExprPtr> bound_args,
            PhysOpPtr child, ExecContext* ctx)
      : PhysOp(std::move(schema)),
        groups_(std::move(bound_groups)),
        aggs_(std::move(aggs)),
        args_(std::move(bound_args)),
        child_(std::move(child)),
        ctx_(ctx) {}

  Status Open() override {
    kernel_mode_ = ctx_->use_simd_kernels && KernelEligible();
    return child_->Open();
  }

  Result<bool> Next(Batch* out) override {
    if (done_) return false;
    done_ = true;
    if (kernel_mode_) {
      DEX_RETURN_NOT_OK(AccumulateKernel());
      return EmitKernel(out);
    }
    DEX_RETURN_NOT_OK(Accumulate());
    return Emit(out);
  }

 private:
  /// The kernel path covers the dominant shapes: GROUP BY nothing or one
  /// dictionary-encoded string column, aggregating plain numeric columns
  /// (or COUNT(*)). Anything else — computed keys, multi-column groups,
  /// string aggregates — keeps the Value-based interpreter.
  bool KernelEligible() const {
    if (groups_.size() > 1) return false;
    if (groups_.size() == 1) {
      const ExprPtr& g = groups_[0];
      if (g->kind() != ExprKind::kColumnRef || g->column_index() < 0 ||
          g->output_type() != DataType::kString) {
        return false;
      }
    }
    for (const ExprPtr& a : args_) {
      if (a == nullptr) continue;  // COUNT(*)
      if (a->kind() != ExprKind::kColumnRef || a->column_index() < 0) {
        return false;
      }
      const DataType t = a->output_type();
      if (t != DataType::kDouble && t != DataType::kInt64 &&
          t != DataType::kTimestamp) {
        return false;
      }
    }
    return true;
  }

  /// Per-agg accumulator arrays, parallel over global group slots.
  struct KernelAgg {
    std::vector<double> min, max, sum;
    std::vector<int64_t> imin, imax, isum;
    std::vector<uint64_t> count;
    std::vector<uint8_t> seen;
    void Grow(size_t n) {
      min.resize(n, 0);
      max.resize(n, 0);
      sum.resize(n, 0);
      imin.resize(n, 0);
      imax.resize(n, 0);
      isum.resize(n, 0);
      count.resize(n, 0);
      seen.resize(n, 0);
    }
  };

  Status AccumulateKernel() {
    kernel_aggs_.resize(aggs_.size());
    Batch in;
    DEX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    while (more) {
      const size_t rows = in.num_rows();
      if (rows == 0) {
        DEX_ASSIGN_OR_RETURN(more, child_->Next(&in));
        continue;
      }
      const uint32_t* sel = in.has_selection ? in.selection.data() : nullptr;
      gid_.resize(rows);
      if (!groups_.empty()) {
        // Dictionaries are batch-local (different mounts intern
        // independently), so codes are grouped per batch and each distinct
        // code resolves its string to a global slot once — not once per row.
        const Column& gcol = *in.columns[groups_[0]->column_index()];
        local_code_to_slot_.clear();
        local_codes_.clear();
        kernel::GroupByCodes(gcol.codes(), sel, rows, in.physical_rows(),
                             &local_code_to_slot_, &local_codes_, gid_.data());
        local_to_global_.resize(local_codes_.size());
        for (size_t ls = 0; ls < local_codes_.size(); ++ls) {
          const std::string& s = gcol.dict()->At(local_codes_[ls]);
          auto [it, inserted] =
              group_index_.try_emplace(s, kernel_keys_.size());
          if (inserted) {
            kernel_keys_.push_back(Value::String(s));
            GrowKernelGroups();
          }
          local_to_global_[ls] = static_cast<uint32_t>(it->second);
        }
        for (size_t r = 0; r < rows; ++r) gid_[r] = local_to_global_[gid_[r]];
      } else {
        if (kernel_keys_.empty()) {
          kernel_keys_.emplace_back();  // the single global group
          GrowKernelGroups();
        }
        std::fill(gid_.begin(), gid_.end(), 0u);
      }
      for (size_t r = 0; r < rows; ++r) ++group_rows_[gid_[r]];
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (args_[a] == nullptr) continue;
        const Column& col = *in.columns[args_[a]->column_index()];
        KernelAgg& k = kernel_aggs_[a];
        if (col.type() == DataType::kDouble) {
          kernel::GroupAccumF64(col.data_f64(), sel, rows, gid_.data(),
                                k.min.data(), k.max.data(), k.sum.data(),
                                k.count.data(), k.seen.data());
        } else {
          kernel::GroupAccumI64(col.data_i64(), sel, rows, gid_.data(),
                                k.imin.data(), k.imax.data(), k.sum.data(),
                                k.isum.data(), k.count.data(), k.seen.data());
        }
      }
      ctx_->stats.kernel_agg_batches += 1;
      DEX_ASSIGN_OR_RETURN(more, child_->Next(&in));
    }
    return Status::OK();
  }

  void GrowKernelGroups() {
    group_rows_.resize(kernel_keys_.size(), 0);
    for (KernelAgg& k : kernel_aggs_) k.Grow(kernel_keys_.size());
  }

  Result<bool> EmitKernel(Batch* out) {
    if (kernel_keys_.empty() && !groups_.empty()) return false;
    bool empty_input = false;
    if (kernel_keys_.empty()) {
      kernel_keys_.emplace_back();
      GrowKernelGroups();
      empty_input = true;
    }
    *out = Batch::Empty(schema_);
    for (size_t g = 0; g < kernel_keys_.size(); ++g) {
      size_t c = 0;
      if (!groups_.empty()) {
        DEX_RETURN_NOT_OK(out->columns[c++]->AppendValue(kernel_keys_[g]));
      }
      for (size_t a = 0; a < aggs_.size(); ++a, ++c) {
        const KernelAgg& k = kernel_aggs_[a];
        const DataType out_type = schema_->field(c).type;
        const bool is_f64 =
            args_[a] != nullptr && args_[a]->output_type() == DataType::kDouble;
        const uint64_t rows = group_rows_[g];
        Value v;
        switch (aggs_[a].fn) {
          case AggFunc::kCount:
            v = Value::Int64(empty_input ? 0 : static_cast<int64_t>(rows));
            break;
          case AggFunc::kSum:
            v = out_type == DataType::kInt64
                    ? Value::Int64(k.isum[g])
                    : Value::Double(is_f64 ? k.sum[g]
                                           : static_cast<double>(k.isum[g]));
            break;
          case AggFunc::kAvg:
            v = Value::Double(rows == 0 ? 0.0
                                        : k.sum[g] / static_cast<double>(rows));
            break;
          case AggFunc::kMin:
          case AggFunc::kMax: {
            const bool want_min = aggs_[a].fn == AggFunc::kMin;
            if (!k.seen[g]) {
              // Empty group: the scalar path emits a zero of the output type.
              v = out_type == DataType::kDouble ? Value::Double(0.0)
                                                : Value::Int64(0);
              if (out_type == DataType::kTimestamp) v = Value::Timestamp(0);
              break;
            }
            if (is_f64) {
              v = Value::Double(want_min ? k.min[g] : k.max[g]);
            } else {
              const int64_t iv = want_min ? k.imin[g] : k.imax[g];
              v = out_type == DataType::kTimestamp ? Value::Timestamp(iv)
                                                   : Value::Int64(iv);
            }
            break;
          }
        }
        DEX_RETURN_NOT_OK(out->columns[c]->AppendValue(v));
      }
    }
    return true;
  }

  Status Accumulate() {
    Batch in;
    DEX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    while (more) {
      if (in.Compact()) ctx_->stats.selection_compactions += 1;
      ctx_->stats.scalar_agg_batches += 1;
      std::vector<ColumnPtr> group_cols;
      for (const ExprPtr& g : groups_) {
        DEX_ASSIGN_OR_RETURN(ColumnPtr col, g->Evaluate(in));
        group_cols.push_back(std::move(col));
      }
      std::vector<ColumnPtr> arg_cols(args_.size());
      for (size_t a = 0; a < args_.size(); ++a) {
        if (args_[a] != nullptr) {
          DEX_ASSIGN_OR_RETURN(arg_cols[a], args_[a]->Evaluate(in));
        }
      }
      std::string key;
      for (size_t i = 0; i < in.num_rows(); ++i) {
        key.clear();
        EncodeKey(group_cols, i, &key);
        auto [it, inserted] = group_index_.try_emplace(key, groups_state_.size());
        if (inserted) {
          groups_state_.emplace_back();
          auto& st = groups_state_.back();
          st.accs.resize(aggs_.size());
          for (size_t g = 0; g < group_cols.size(); ++g) {
            st.key_values.push_back(group_cols[g]->GetValue(i));
          }
        }
        auto& st = groups_state_[it->second];
        for (size_t a = 0; a < aggs_.size(); ++a) {
          AggAccumulator& acc = st.accs[a];
          acc.count += 1;
          if (arg_cols[a] != nullptr) {
            const Column& col = *arg_cols[a];
            if (col.type() != DataType::kString) {
              const double v = col.GetNumeric(i);
              acc.sum += v;
              if (col.type() != DataType::kDouble) acc.isum += col.GetInt64(i);
            }
            const Value v = col.GetValue(i);
            if (acc.min.is_null() || ValueLess(v, acc.min)) acc.min = v;
            if (acc.max.is_null() || ValueLess(acc.max, v)) acc.max = v;
          }
        }
      }
      DEX_ASSIGN_OR_RETURN(more, child_->Next(&in));
    }
    return Status::OK();
  }

  static bool ValueLess(const Value& a, const Value& b) {
    if (a.type() == DataType::kString && b.type() == DataType::kString) {
      return a.str() < b.str();
    }
    const auto da = a.AsDouble();
    const auto db = b.AsDouble();
    if (da.ok() && db.ok()) return *da < *db;
    return false;
  }

  static void EncodeKey(const std::vector<ColumnPtr>& cols, size_t row,
                        std::string* key) {
    for (const ColumnPtr& c : cols) {
      switch (c->type()) {
        case DataType::kString: {
          const std::string& s = c->GetString(row);
          key->append(s);
          key->push_back('\0');
          break;
        }
        case DataType::kDouble: {
          const double d = c->GetDouble(row);
          key->append(reinterpret_cast<const char*>(&d), sizeof(d));
          break;
        }
        default: {
          const int64_t v = c->GetInt64(row);
          key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        }
      }
    }
  }

  Result<bool> Emit(Batch* out) {
    // Aggregation without GROUP BY yields one row even on empty input
    // (COUNT=0; other aggregates are NULL-ish, rendered as 0/NaN-free by
    // convention: we return an empty result instead, matching MonetDB's
    // behaviour for AVG over empty input with no groups producing NULL).
    if (groups_state_.empty() && !groups_.empty()) return false;
    if (groups_state_.empty()) {
      groups_state_.emplace_back();
      groups_state_.back().accs.resize(aggs_.size());
      empty_input_ = true;
    }
    *out = Batch::Empty(schema_);
    for (const auto& st : groups_state_) {
      size_t c = 0;
      for (const Value& v : st.key_values) {
        DEX_RETURN_NOT_OK(out->columns[c++]->AppendValue(v));
      }
      for (size_t a = 0; a < aggs_.size(); ++a, ++c) {
        const AggAccumulator& acc = st.accs[a];
        const DataType out_type = schema_->field(c).type;
        Value v;
        switch (aggs_[a].fn) {
          case AggFunc::kCount:
            v = Value::Int64(empty_input_ ? 0 : acc.count);
            break;
          case AggFunc::kSum:
            v = out_type == DataType::kInt64 ? Value::Int64(acc.isum)
                                             : Value::Double(acc.sum);
            break;
          case AggFunc::kAvg:
            v = Value::Double(acc.count == 0 ? 0.0
                                             : acc.sum / static_cast<double>(
                                                             acc.count));
            break;
          case AggFunc::kMin:
            v = acc.min;
            break;
          case AggFunc::kMax:
            v = acc.max;
            break;
        }
        if (v.is_null()) {
          // MIN/MAX over empty input: emit a zero of the right type.
          v = out_type == DataType::kString ? Value::String("") :
              out_type == DataType::kDouble ? Value::Double(0.0)
                                            : Value::Int64(0);
        }
        DEX_RETURN_NOT_OK(out->columns[c]->AppendValue(v));
      }
    }
    return true;
  }

  struct GroupState {
    std::vector<Value> key_values;
    std::vector<AggAccumulator> accs;
  };

  std::vector<ExprPtr> groups_;
  std::vector<AggSpec> aggs_;
  std::vector<ExprPtr> args_;
  PhysOpPtr child_;
  ExecContext* ctx_;
  std::unordered_map<std::string, size_t> group_index_;
  std::vector<GroupState> groups_state_;
  bool done_ = false;
  bool empty_input_ = false;

  // Kernel-path state (see AccumulateKernel).
  bool kernel_mode_ = false;
  std::vector<Value> kernel_keys_;       // group key per global slot
  std::vector<uint64_t> group_rows_;     // rows per global slot
  std::vector<KernelAgg> kernel_aggs_;   // parallel accumulators per agg
  std::vector<uint32_t> gid_;            // per-row group ids (batch scratch)
  std::vector<int32_t> local_code_to_slot_;
  std::vector<int32_t> local_codes_;
  std::vector<uint32_t> local_to_global_;
};

// ---------------------------------------------------------------------------
// Sort / Limit / Union
// ---------------------------------------------------------------------------

class SortOp : public PhysOp {
 public:
  /// `limit` >= 0 turns the operator into a top-K sort: only the first
  /// `limit` rows of the order are materialized (partial sort).
  SortOp(SchemaPtr schema, std::vector<SortKey> keys, int64_t limit,
         PhysOpPtr child)
      : PhysOp(std::move(schema)),
        keys_(std::move(keys)),
        limit_(limit),
        child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Batch* out) override {
    if (done_) return false;
    done_ = true;
    DEX_ASSIGN_OR_RETURN(TablePtr all, Drain(child_.get(), "sort_input"));
    if (all->num_rows() == 0) return false;
    Batch full;
    full.schema = schema_;
    for (size_t c = 0; c < all->num_columns(); ++c) {
      full.columns.push_back(all->column(c));
    }
    std::vector<ColumnPtr> key_cols;
    std::vector<bool> asc;
    for (const SortKey& k : keys_) {
      DEX_ASSIGN_OR_RETURN(ExprPtr bound, k.expr->Bind(*schema_));
      DEX_ASSIGN_OR_RETURN(ColumnPtr col, bound->Evaluate(full));
      key_cols.push_back(std::move(col));
      asc.push_back(k.ascending);
    }
    std::vector<uint32_t> order(all->num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
    auto less = [&](uint32_t a, uint32_t b) {
      for (size_t k = 0; k < key_cols.size(); ++k) {
        const Column& col = *key_cols[k];
        int cmp = 0;
        if (col.type() == DataType::kString) {
          cmp = col.GetString(a).compare(col.GetString(b));
        } else {
          const double va = col.GetNumeric(a);
          const double vb = col.GetNumeric(b);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
        }
        if (cmp != 0) return asc[k] ? cmp < 0 : cmp > 0;
      }
      return a < b;  // stable tiebreak on the original position
    };
    if (limit_ >= 0 && static_cast<size_t>(limit_) < order.size()) {
      std::partial_sort(order.begin(), order.begin() + limit_, order.end(),
                        less);
      order.resize(static_cast<size_t>(limit_));
    } else {
      std::sort(order.begin(), order.end(), less);
    }
    out->schema = schema_;
    out->columns.clear();
    for (size_t c = 0; c < all->num_columns(); ++c) {
      auto col = std::make_shared<Column>(all->column(c)->type());
      col->AppendGather(*all->column(c), order);
      out->columns.push_back(std::move(col));
    }
    return true;
  }

 private:
  std::vector<SortKey> keys_;
  int64_t limit_;
  PhysOpPtr child_;
  bool done_ = false;
};

class LimitOp : public PhysOp {
 public:
  LimitOp(SchemaPtr schema, int64_t limit, PhysOpPtr child)
      : PhysOp(std::move(schema)), remaining_(limit), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Batch* out) override {
    if (remaining_ <= 0) return false;
    Batch in;
    DEX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    // LIMIT slices by physical position; materialize the selection first.
    in.Compact();
    if (static_cast<int64_t>(in.num_rows()) <= remaining_) {
      remaining_ -= static_cast<int64_t>(in.num_rows());
      *out = std::move(in);
      return true;
    }
    out->schema = schema_;
    out->columns.clear();
    for (const ColumnPtr& c : in.columns) {
      auto col = std::make_shared<Column>(c->type());
      col->AppendRange(*c, 0, static_cast<size_t>(remaining_));
      out->columns.push_back(std::move(col));
    }
    remaining_ = 0;
    return true;
  }

 private:
  int64_t remaining_;
  PhysOpPtr child_;
};

/// Bag union; also the hub of ALi's rewritten scans (a union of mounts and
/// cache-scans). Children run sequentially — the paper's strategy (b)
/// "run higher operators on sub-tables and then merge" corresponds to
/// pushing operators into these branches before execution.
class UnionOp : public PhysOp {
 public:
  UnionOp(SchemaPtr schema, std::vector<PhysOpPtr> children)
      : PhysOp(std::move(schema)), children_(std::move(children)) {}

  Status Open() override {
    // Children are opened lazily so mounts happen one file at a time.
    return Status::OK();
  }

  Result<bool> Next(Batch* out) override {
    while (current_ < children_.size()) {
      if (!opened_) {
        DEX_RETURN_NOT_OK(children_[current_]->Open());
        opened_ = true;
      }
      Batch in;
      DEX_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(&in));
      if (more) {
        // Normalize column order: children were analyzed against the same
        // width/types, so pass through.
        in.schema = schema_;
        *out = std::move(in);
        return true;
      }
      ++current_;
      opened_ = false;
    }
    return false;
  }

 private:
  std::vector<PhysOpPtr> children_;
  size_t current_ = 0;
  bool opened_ = false;
};

// ---------------------------------------------------------------------------
// Profiling decorator (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

/// Wraps any operator and attributes its Open/Next wall time plus emitted
/// rows/batches to the logical node that produced it. Times are inclusive of
/// children — the child's decorator subtracts nothing; readers interpret the
/// tree Postgres-style ("actual time" at a node covers its subtree).
class ProfiledOp : public PhysOp {
 public:
  ProfiledOp(PhysOpPtr inner, OpProfile* profile)
      : PhysOp(inner->schema()), inner_(std::move(inner)), profile_(profile) {}

  Status Open() override {
    const auto t0 = std::chrono::steady_clock::now();
    Status s = inner_->Open();
    profile_->open_nanos += Elapsed(t0);
    profile_->opens += 1;
    return s;
  }

  Result<bool> Next(Batch* out) override {
    const auto t0 = std::chrono::steady_clock::now();
    Result<bool> r = inner_->Next(out);
    profile_->next_nanos += Elapsed(t0);
    if (r.ok() && r.ValueUnsafe()) {
      profile_->batches += 1;
      profile_->rows_out += out->num_rows();
    }
    return r;
  }

 private:
  static uint64_t Elapsed(std::chrono::steady_clock::time_point t0) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  PhysOpPtr inner_;
  OpProfile* profile_;
};

// ---------------------------------------------------------------------------
// Cancellation decorator
// ---------------------------------------------------------------------------

/// Polls `ExecContext::interrupt_fn` once per Open/Next so a cancelled or
/// deadline-failed query stops between batches instead of running to
/// completion. The check is one std::function call + an atomic load per
/// batch (~1024 rows) — negligible against batch processing cost.
class InterruptCheckOp : public PhysOp {
 public:
  InterruptCheckOp(PhysOpPtr inner, const ExecContext* ctx)
      : PhysOp(inner->schema()), inner_(std::move(inner)), ctx_(ctx) {}

  Status Open() override {
    DEX_RETURN_NOT_OK(ctx_->interrupt_fn());
    return inner_->Open();
  }

  Result<bool> Next(Batch* out) override {
    DEX_RETURN_NOT_OK(ctx_->interrupt_fn());
    return inner_->Next(out);
  }

 private:
  PhysOpPtr inner_;
  const ExecContext* ctx_;
};

// ---------------------------------------------------------------------------
// Physical planner
// ---------------------------------------------------------------------------

Result<PhysOpPtr> BuildOp(const PlanPtr& plan, ExecContext* ctx);

/// Ei fast path: Join(left, Scan(t)) or Join(left, Filter(Scan(t))) where t
/// has an index exactly matching the right-side equi-key columns.
Result<PhysOpPtr> TryBuildIndexJoin(const PlanPtr& plan, const JoinKeys& keys,
                                    ExecContext* ctx) {
  if (!ctx->use_index_joins || keys.right_exprs.empty()) return PhysOpPtr{};
  const PlanPtr& right = plan->children[1];
  PlanPtr scan = right;
  ExprPtr right_filter;
  if (right->kind == PlanKind::kFilter &&
      right->children[0]->kind == PlanKind::kScan) {
    right_filter = right->predicate;
    scan = right->children[0];
  } else if (right->kind != PlanKind::kScan) {
    return PhysOpPtr{};
  }
  // All right key exprs must be plain column refs for an index to apply.
  std::vector<size_t> cols;
  for (const ExprPtr& e : keys.right_exprs) {
    if (e->kind() != ExprKind::kColumnRef || e->column_index() < 0) {
      return PhysOpPtr{};
    }
    cols.push_back(static_cast<size_t>(e->column_index()));
  }
  const HashIndex* index = ctx->catalog->FindIndex(scan->table_name, cols);
  if (index == nullptr) return PhysOpPtr{};
  DEX_ASSIGN_OR_RETURN(TablePtr table, ctx->catalog->GetTable(scan->table_name));
  DEX_ASSIGN_OR_RETURN(PhysOpPtr left, BuildOp(plan->children[0], ctx));
  return PhysOpPtr(new IndexJoinOp(plan->output_schema, keys, std::move(left),
                                   scan->table_name, std::move(table), index,
                                   right_filter, ctx));
}

Result<PhysOpPtr> BuildOpInner(const PlanPtr& plan, ExecContext* ctx) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      DEX_ASSIGN_OR_RETURN(TablePtr table, ctx->catalog->GetTable(plan->table_name));
      return PhysOpPtr(
          new ScanOp(plan->output_schema, std::move(table), plan->table_name, ctx));
    }
    case PlanKind::kResultScan: {
      auto it = ctx->named_results.find(plan->result_id);
      if (it == ctx->named_results.end()) {
        return Status::Internal("no materialized result named '" +
                                plan->result_id + "'");
      }
      return PhysOpPtr(new TableSourceOp(plan->output_schema, it->second));
    }
    case PlanKind::kMount:
      return PhysOpPtr(new MountOp(plan->output_schema, plan->table_name,
                                   plan->uri, plan->predicate, ctx));
    case PlanKind::kCacheScan:
      return PhysOpPtr(
          new CacheScanOp(plan->output_schema, plan->table_name, plan->uri, ctx));
    case PlanKind::kFilter: {
      DEX_ASSIGN_OR_RETURN(PhysOpPtr child, BuildOp(plan->children[0], ctx));
      DEX_ASSIGN_OR_RETURN(
          ExprPtr bound, plan->predicate->Bind(*plan->children[0]->output_schema));
      return PhysOpPtr(new FilterOp(plan->output_schema, std::move(bound),
                                    std::move(child), ctx));
    }
    case PlanKind::kProject: {
      DEX_ASSIGN_OR_RETURN(PhysOpPtr child, BuildOp(plan->children[0], ctx));
      std::vector<ExprPtr> bound;
      for (const ExprPtr& e : plan->project_exprs) {
        DEX_ASSIGN_OR_RETURN(ExprPtr b,
                             e->Bind(*plan->children[0]->output_schema));
        bound.push_back(std::move(b));
      }
      return PhysOpPtr(new ProjectOp(plan->output_schema, std::move(bound),
                                     std::move(child), ctx));
    }
    case PlanKind::kJoin: {
      const Schema& left_schema = *plan->children[0]->output_schema;
      const Schema& right_schema = *plan->children[1]->output_schema;
      DEX_ASSIGN_OR_RETURN(
          JoinKeys keys, ExtractJoinKeys(plan->predicate, left_schema,
                                         right_schema, *plan->output_schema));
      DEX_ASSIGN_OR_RETURN(PhysOpPtr index_join,
                           TryBuildIndexJoin(plan, keys, ctx));
      if (index_join != nullptr) return index_join;
      DEX_ASSIGN_OR_RETURN(PhysOpPtr left, BuildOp(plan->children[0], ctx));
      DEX_ASSIGN_OR_RETURN(PhysOpPtr right, BuildOp(plan->children[1], ctx));
      return PhysOpPtr(new HashJoinOp(plan->output_schema, std::move(keys),
                                      std::move(left), std::move(right), ctx));
    }
    case PlanKind::kAggregate: {
      DEX_ASSIGN_OR_RETURN(PhysOpPtr child, BuildOp(plan->children[0], ctx));
      const Schema& input = *plan->children[0]->output_schema;
      std::vector<ExprPtr> groups;
      for (const ExprPtr& g : plan->group_by) {
        DEX_ASSIGN_OR_RETURN(ExprPtr b, g->Bind(input));
        groups.push_back(std::move(b));
      }
      std::vector<ExprPtr> args;
      for (const AggSpec& a : plan->aggregates) {
        if (a.arg != nullptr) {
          DEX_ASSIGN_OR_RETURN(ExprPtr b, a.arg->Bind(input));
          args.push_back(std::move(b));
        } else {
          args.push_back(nullptr);
        }
      }
      return PhysOpPtr(new HashAggOp(plan->output_schema, std::move(groups),
                                     plan->aggregates, std::move(args),
                                     std::move(child), ctx));
    }
    case PlanKind::kSort: {
      DEX_ASSIGN_OR_RETURN(PhysOpPtr child, BuildOp(plan->children[0], ctx));
      return PhysOpPtr(new SortOp(plan->output_schema, plan->sort_keys,
                                  plan->limit, std::move(child)));
    }
    case PlanKind::kLimit: {
      DEX_ASSIGN_OR_RETURN(PhysOpPtr child, BuildOp(plan->children[0], ctx));
      return PhysOpPtr(new LimitOp(plan->output_schema, plan->limit, std::move(child)));
    }
    case PlanKind::kUnion: {
      std::vector<PhysOpPtr> children;
      for (const PlanPtr& c : plan->children) {
        DEX_ASSIGN_OR_RETURN(PhysOpPtr op, BuildOp(c, ctx));
        children.push_back(std::move(op));
      }
      return PhysOpPtr(new UnionOp(plan->output_schema, std::move(children)));
    }
    case PlanKind::kStageBreak:
      // Transparent in single-stage execution.
      return BuildOp(plan->children[0], ctx);
  }
  return Status::Internal("unreachable plan kind in BuildOp");
}

Result<PhysOpPtr> BuildOp(const PlanPtr& plan, ExecContext* ctx) {
  DEX_ASSIGN_OR_RETURN(PhysOpPtr op, BuildOpInner(plan, ctx));
  // StageBreak is transparent (its child is already wrapped); profiling it
  // again would only double the decorator overhead on the same pull path.
  if (ctx->profiler != nullptr && plan->kind != PlanKind::kStageBreak) {
    op = PhysOpPtr(
        new ProfiledOp(std::move(op), ctx->profiler->ProfileFor(plan.get())));
  }
  if (ctx->interrupt_fn && plan->kind != PlanKind::kStageBreak) {
    op = PhysOpPtr(new InterruptCheckOp(std::move(op), ctx));
  }
  return op;
}

}  // namespace

Result<TablePtr> ExecutePlan(const PlanPtr& plan, ExecContext* ctx) {
  if (plan->output_schema == nullptr) {
    return Status::Internal("plan was not analyzed before execution");
  }
  DEX_ASSIGN_OR_RETURN(PhysOpPtr root, BuildOp(plan, ctx));
  DEX_RETURN_NOT_OK(root->Open());
  DEX_ASSIGN_OR_RETURN(TablePtr result, Drain(root.get(), "result"));
  ctx->stats.rows_output += result->num_rows();
  return result;
}

}  // namespace dex
