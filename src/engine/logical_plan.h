#ifndef DEX_ENGINE_LOGICAL_PLAN_H_
#define DEX_ENGINE_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/expr.h"
#include "storage/catalog.h"
#include "storage/schema.h"

namespace dex {

struct LogicalPlan;
using PlanPtr = std::shared_ptr<LogicalPlan>;

/// Node kinds. The last four are the paper's additions: result-scan,
/// cache-scan and mount are the new access paths (§3 "Access Paths"), and
/// stage-break marks the boundary between Q_f and Q_s in a decomposed plan.
enum class PlanKind {
  kScan,        // scan(table)
  kFilter,      // σ_pred(child)
  kProject,     // π_exprs(child)
  kJoin,        // child0 ⋈_cond child1 (inner equi-join + residual)
  kAggregate,   // γ_groups;aggs(child)
  kSort,        // order by
  kLimit,
  kUnion,       // bag union of schema-compatible children
  kResultScan,  // re-reads the materialized result of a named sub-plan
  kCacheScan,   // reads one file's ingested data from the cache
  kMount,       // ALi: extract/transform/ingest one external file
  kStageBreak,  // marks the root of Q_f (the metadata branch)
};

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc fn);

/// \brief One aggregate computation: fn(arg) AS name. arg == nullptr means
/// COUNT(*).
struct AggSpec {
  AggFunc fn;
  ExprPtr arg;
  std::string name;
};

/// \brief One ORDER BY key.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// \brief A node of the relational query plan (logical algebra tree).
///
/// Plain aggregate struct by design: the plan splitter and the run-time
/// rewriter (src/core) restructure these trees heavily, and builder
/// functions below keep construction safe.
struct LogicalPlan {
  PlanKind kind;
  std::vector<PlanPtr> children;

  // kScan / kMount / kCacheScan: the table being produced.
  std::string table_name;
  // kMount / kCacheScan: which file of interest.
  std::string uri;
  // kFilter: predicate. kJoin: join condition (conjunction; equalities
  // between the two sides become hash keys, the rest is residual).
  ExprPtr predicate;
  // kProject
  std::vector<ExprPtr> project_exprs;
  std::vector<std::string> project_names;
  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggregates;
  // kSort
  std::vector<SortKey> sort_keys;
  // kLimit
  int64_t limit = -1;
  // kResultScan: key into the executor's named-results map.
  std::string result_id;

  /// Output schema; filled by AnalyzePlan.
  SchemaPtr output_schema;

  /// One-line label of this node alone (no indentation, no children) —
  /// the building block of ToString and of EXPLAIN ANALYZE rendering.
  std::string LabelString() const;

  /// Multi-line EXPLAIN-style rendering.
  std::string ToString(int indent = 0) const;
};

// -- Builders -------------------------------------------------------------
PlanPtr MakeScan(std::string table_name);
PlanPtr MakeFilter(ExprPtr predicate, PlanPtr child);
PlanPtr MakeProject(std::vector<ExprPtr> exprs, std::vector<std::string> names,
                    PlanPtr child);
PlanPtr MakeJoin(ExprPtr condition, PlanPtr left, PlanPtr right);
PlanPtr MakeAggregate(std::vector<ExprPtr> group_by, std::vector<AggSpec> aggs,
                      PlanPtr child);
PlanPtr MakeSort(std::vector<SortKey> keys, PlanPtr child);
PlanPtr MakeLimit(int64_t limit, PlanPtr child);
PlanPtr MakeUnion(std::vector<PlanPtr> children);
PlanPtr MakeResultScan(std::string result_id, SchemaPtr schema);
PlanPtr MakeMount(std::string table_name, std::string uri);
PlanPtr MakeCacheScan(std::string table_name, std::string uri);
PlanPtr MakeStageBreak(PlanPtr child);

/// \brief Deep-copies the plan tree (expressions are shared; they are
/// immutable).
PlanPtr ClonePlan(const PlanPtr& plan);

/// \brief Computes and stores output schemas bottom-up. Scans resolve
/// against `catalog`; mount/cache-scan resolve to their table's schema.
Status AnalyzePlan(const PlanPtr& plan, const Catalog& catalog);

/// \brief Collects the names of all base tables scanned/mounted in the tree.
void CollectTableNames(const PlanPtr& plan, std::vector<std::string>* out);

}  // namespace dex

#endif  // DEX_ENGINE_LOGICAL_PLAN_H_
