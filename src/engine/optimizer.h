#ifndef DEX_ENGINE_OPTIMIZER_H_
#define DEX_ENGINE_OPTIMIZER_H_

#include "engine/logical_plan.h"

namespace dex {

/// \brief Compile-time logical rewrites shared by both execution modes.
///
/// These are the paper's "usual compile-time optimizations (e.g. pushing
/// down selections and projections)": selection conjuncts are split and
/// pushed as close to their source scans as possible; predicates referencing
/// both join sides merge into the join condition. The input plan must have
/// been analyzed; the returned plan is re-analyzed by the caller.
Result<PlanPtr> PushDownPredicates(const PlanPtr& plan, const Catalog& catalog);

/// \brief Pushes a selection into every branch of a union —
/// σ_p(∪ b_i) → ∪ σ_p(b_i) — the paper's run-time rewrite that creates the
/// combined select-mount and select-cache-scan access paths. Works on any
/// plan shape; no-op where there is no filter-over-union.
Result<PlanPtr> PushSelectionsIntoUnions(const PlanPtr& plan,
                                         const Catalog& catalog);

/// \brief Fuses Limit(n, Sort(keys, child)) into a top-K sort: the sort
/// operator then partial-sorts and materializes only n rows instead of the
/// whole input — the common "ORDER BY ... LIMIT n" exploration pattern.
Result<PlanPtr> FuseTopK(const PlanPtr& plan, const Catalog& catalog);

}  // namespace dex

#endif  // DEX_ENGINE_OPTIMIZER_H_
