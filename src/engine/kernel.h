#ifndef DEX_ENGINE_KERNEL_H_
#define DEX_ENGINE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/expr.h"

namespace dex::kernel {

/// \brief SIMD-friendly tight-loop kernels for the post-prune residual.
///
/// Every kernel is a branch-free (data-independent control flow) loop over a
/// contiguous span, written so the autovectorizer can keep it in vector
/// registers: comparisons become masks added to a running selection cursor,
/// aggregates are straight-line min/max/sum reductions. No allocation, no
/// virtual dispatch, no Status plumbing — eligibility is decided once per
/// batch by the caller (FilterOp/HashAggOp), which falls back to the scalar
/// expression interpreter for anything these kernels do not cover.
///
/// Selection vectors are ascending row indices into the span (see
/// engine/batch.h for the ownership contract). All kernels are pure
/// functions and thread-safe.

// -- Predicate → selection vector ------------------------------------------

/// Appends the indices in [0, n) whose value satisfies `v[i] op lit` to
/// `sel` (caller guarantees capacity ≥ n). Returns the match count.
size_t FilterF64(const double* v, size_t n, CompareOp op, double lit,
                 uint32_t* sel);
size_t FilterI64(const int64_t* v, size_t n, CompareOp op, int64_t lit,
                 uint32_t* sel);

/// Refines an existing selection in place: keeps only the rows of
/// `sel[0..k)` whose value satisfies the predicate (logical AND of
/// conjuncts). Returns the surviving count.
size_t RefineF64(const double* v, CompareOp op, double lit, uint32_t* sel,
                 size_t k);
size_t RefineI64(const int64_t* v, CompareOp op, int64_t lit, uint32_t* sel,
                 size_t k);

// -- Aggregates over contiguous spans --------------------------------------

/// min/max/sum/count of a numeric span. The `i*` fields carry exact integer
/// results for int64 inputs (doubles leave them 0).
struct NumericAgg {
  double min = 0;
  double max = 0;
  double sum = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  int64_t isum = 0;
  uint64_t count = 0;
};

NumericAgg AggF64(const double* v, size_t n);
NumericAgg AggI64(const int64_t* v, size_t n);
/// int32 spans (decoded Steim samples) — one pass, no widening copy.
NumericAgg AggI32(const int32_t* v, size_t n);
/// Same, restricted to the rows of `sel[0..k)`.
NumericAgg AggF64Selected(const double* v, const uint32_t* sel, size_t k);
NumericAgg AggI64Selected(const int64_t* v, const uint32_t* sel, size_t k);

// -- Compact group-by over dictionary codes --------------------------------

/// Assigns each (selected) row a dense group id keyed by its dictionary
/// code — an array lookup instead of a string-keyed hash probe. `sel` may be
/// null (dense span of n rows). `code_to_group` is the caller-owned
/// code→slot table, grown on demand (-1 = unseen); `group_codes` records the
/// code of each slot in first-seen order, so group emission order matches
/// the hash-map path's insertion order exactly. Writes one group id per
/// processed row into `out_gid` (capacity: k, or n when sel is null).
void GroupByCodes(const int32_t* codes, const uint32_t* sel, size_t k,
                  size_t n, std::vector<int32_t>* code_to_group,
                  std::vector<int32_t>* group_codes, uint32_t* out_gid);

/// Grouped accumulation: folds `v[row]` into per-group accumulators, where
/// row r of the processed set has group id `gid[r]`. Accumulator arrays are
/// parallel, sized `num_groups`; `seen` tracks whether a group already has a
/// value (min/max seeding).
void GroupAccumF64(const double* v, const uint32_t* sel, size_t k,
                   const uint32_t* gid, double* min, double* max, double* sum,
                   uint64_t* count, uint8_t* seen);
/// Int64 variant keeps exact integer min/max/sum alongside the double sum
/// (AVG needs the double; MIN/MAX/SUM of int columns must stay exact).
void GroupAccumI64(const int64_t* v, const uint32_t* sel, size_t k,
                   const uint32_t* gid, int64_t* imin, int64_t* imax,
                   double* sum, int64_t* isum, uint64_t* count,
                   uint8_t* seen);

}  // namespace dex::kernel

#endif  // DEX_ENGINE_KERNEL_H_
