#ifndef DEX_ENGINE_EXPR_H_
#define DEX_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/batch.h"
#include "storage/schema.h"

namespace dex {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kArithmetic,
  kLike,  // string pattern match: operand LIKE 'pat%' (% = any run, _ = any char)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// \brief An immutable scalar expression tree.
///
/// Expressions appear unbound (column refs by name) in logical plans and are
/// bound (refs resolved to column indices against a concrete input schema)
/// when physical operators are constructed. `Bind` returns a new tree; the
/// original stays reusable, which matters because the two-stage rewriter
/// moves predicates between sub-plans with different schemas.
class Expr {
 public:
  // -- Construction -----------------------------------------------------
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Lit(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  /// SQL LIKE with '%' (any run) and '_' (any single char) wildcards.
  static ExprPtr Like(ExprPtr operand, std::string pattern);

  /// Conjunction of `terms` (returns TRUE literal when empty).
  static ExprPtr AndAll(const std::vector<ExprPtr>& terms);

  /// Splits nested ANDs into a conjunct list.
  static void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

  // -- Introspection ------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return column_name_; }
  int column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::string& like_pattern() const { return like_pattern_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  bool bound() const { return kind_ != ExprKind::kColumnRef || column_index_ >= 0; }

  /// Output type; only meaningful on bound expressions.
  DataType output_type() const { return output_type_; }

  /// Collects the (possibly qualified) names of all referenced columns.
  void CollectColumnNames(std::vector<std::string>* out) const;

  /// True if every referenced column resolves in `schema`.
  bool AllColumnsIn(const Schema& schema) const;

  /// Resolves column refs against `schema`; coerces ISO-8601 string literals
  /// compared with TIMESTAMP columns. Returns a bound copy.
  Result<ExprPtr> Bind(const Schema& schema) const;

  /// Vectorized evaluation over a batch (expression must be bound).
  Result<ColumnPtr> Evaluate(const Batch& batch) const;

  /// Row-wise evaluation (used at edges, e.g. informativeness estimation).
  Result<Value> EvaluateRow(const Batch& batch, size_t row) const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string column_name_;
  int column_index_ = -1;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::string like_pattern_;
  std::vector<ExprPtr> children_;
  DataType output_type_ = DataType::kBool;
};

const char* CompareOpToString(CompareOp op);
const char* ArithOpToString(ArithOp op);

}  // namespace dex

#endif  // DEX_ENGINE_EXPR_H_
