#include "engine/expr.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/time_utils.h"

namespace dex {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->output_type_ = v.type();
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kComparison;
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->output_type_ = DataType::kBool;
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->output_type_ = DataType::kBool;
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOr;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->output_type_ = DataType::kBool;
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(operand)};
  e->output_type_ = DataType::kBool;
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArithmetic;
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Like(ExprPtr operand, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLike;
  e->children_ = {std::move(operand)};
  e->like_pattern_ = std::move(pattern);
  e->output_type_ = DataType::kBool;
  return e;
}

namespace {

/// Iterative LIKE matcher ('%' any run, '_' any single char), the classic
/// two-pointer algorithm with backtracking to the last '%'.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

ExprPtr Expr::AndAll(const std::vector<ExprPtr>& terms) {
  if (terms.empty()) return Lit(Value::Bool(true));
  ExprPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) acc = And(acc, terms[i]);
  return acc;
}

void Expr::SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind_ == ExprKind::kAnd) {
    SplitConjuncts(e->children_[0], out);
    SplitConjuncts(e->children_[1], out);
  } else {
    out->push_back(e);
  }
}

void Expr::CollectColumnNames(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->push_back(column_name_);
    return;
  }
  for (const ExprPtr& c : children_) c->CollectColumnNames(out);
}

bool Expr::AllColumnsIn(const Schema& schema) const {
  std::vector<std::string> names;
  CollectColumnNames(&names);
  for (const std::string& n : names) {
    if (schema.FindFieldIndex(n) < 0) return false;
  }
  return true;
}

Result<ExprPtr> Expr::Bind(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      DEX_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_name_));
      auto e = std::shared_ptr<Expr>(new Expr());
      e->kind_ = ExprKind::kColumnRef;
      e->column_name_ = column_name_;
      e->column_index_ = static_cast<int>(idx);
      e->output_type_ = schema.field(idx).type;
      return ExprPtr(e);
    }
    case ExprKind::kLiteral: {
      auto e = std::shared_ptr<Expr>(new Expr());
      e->kind_ = ExprKind::kLiteral;
      e->literal_ = literal_;
      e->output_type_ = literal_.type();
      return ExprPtr(e);
    }
    default:
      break;
  }
  std::vector<ExprPtr> bound;
  for (const ExprPtr& c : children_) {
    DEX_ASSIGN_OR_RETURN(ExprPtr b, c->Bind(schema));
    bound.push_back(std::move(b));
  }
  // Timestamp coercion: '<iso>' literal compared against a TIMESTAMP column.
  if (kind_ == ExprKind::kComparison) {
    for (int side = 0; side < 2; ++side) {
      const ExprPtr& lit = bound[side];
      const ExprPtr& other = bound[1 - side];
      if (lit->kind_ == ExprKind::kLiteral &&
          lit->literal_.type() == DataType::kString &&
          other->output_type_ == DataType::kTimestamp &&
          LooksLikeIso8601(lit->literal_.str())) {
        DEX_ASSIGN_OR_RETURN(int64_t ms, ParseIso8601(lit->literal_.str()));
        auto e = std::shared_ptr<Expr>(new Expr());
        e->kind_ = ExprKind::kLiteral;
        e->literal_ = Value::Timestamp(ms);
        e->output_type_ = DataType::kTimestamp;
        bound[side] = e;
      }
    }
    if (!AreComparable(bound[0]->output_type_, bound[1]->output_type_)) {
      return Status::InvalidArgument(
          "cannot compare " + std::string(DataTypeToString(bound[0]->output_type_)) +
          " with " + DataTypeToString(bound[1]->output_type_) + " in " + ToString());
    }
  }
  if (kind_ == ExprKind::kLike &&
      bound[0]->output_type() != DataType::kString) {
    return Status::InvalidArgument("LIKE requires a string operand, got " +
                                   std::string(DataTypeToString(
                                       bound[0]->output_type())));
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind_;
  e->compare_op_ = compare_op_;
  e->arith_op_ = arith_op_;
  e->like_pattern_ = like_pattern_;
  e->children_ = std::move(bound);
  if (kind_ == ExprKind::kArithmetic) {
    const DataType lt = e->children_[0]->output_type_;
    const DataType rt = e->children_[1]->output_type_;
    e->output_type_ = (lt == DataType::kDouble || rt == DataType::kDouble ||
                       arith_op_ == ArithOp::kDiv)
                          ? DataType::kDouble
                          : DataType::kInt64;
  } else {
    e->output_type_ = DataType::kBool;
  }
  return ExprPtr(e);
}

namespace {

/// Comparison kernel over two evaluated operand columns.
template <typename GetFn, typename Cmp>
void CompareLoop(size_t n, GetFn get, Cmp cmp, Column* out) {
  for (size_t i = 0; i < n; ++i) {
    auto [a, b] = get(i);
    out->AppendInt64(cmp(a, b) ? 1 : 0);
  }
}

template <typename T>
bool ApplyCmp(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<ColumnPtr> Expr::Evaluate(const Batch& batch) const {
  const size_t n = batch.num_rows();
  switch (kind_) {
    case ExprKind::kColumnRef: {
      if (column_index_ < 0) {
        return Status::Internal("evaluating unbound column ref '" + column_name_ +
                                "'");
      }
      return batch.columns[column_index_];
    }
    case ExprKind::kLiteral: {
      auto out = std::make_shared<Column>(output_type_);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        DEX_RETURN_NOT_OK(out->AppendValue(literal_));
      }
      return out;
    }
    case ExprKind::kComparison: {
      DEX_ASSIGN_OR_RETURN(ColumnPtr lhs, children_[0]->Evaluate(batch));
      DEX_ASSIGN_OR_RETURN(ColumnPtr rhs, children_[1]->Evaluate(batch));
      auto out = std::make_shared<Column>(DataType::kBool);
      out->Reserve(n);
      const CompareOp op = compare_op_;
      if (lhs->type() == DataType::kString || rhs->type() == DataType::kString) {
        if (lhs->type() != rhs->type()) {
          return Status::InvalidArgument("string compared with non-string");
        }
        if (lhs->dict() == rhs->dict() &&
            (op == CompareOp::kEq || op == CompareOp::kNe)) {
          // Fast path: same dictionary, codes compare directly.
          CompareLoop(
              n,
              [&](size_t i) {
                return std::pair<int32_t, int32_t>(lhs->GetStringCode(i),
                                                   rhs->GetStringCode(i));
              },
              [&](int32_t a, int32_t b) { return ApplyCmp(op, a, b); }, out.get());
        } else {
          CompareLoop(
              n,
              [&](size_t i) {
                return std::pair<const std::string*, const std::string*>(
                    &lhs->GetString(i), &rhs->GetString(i));
              },
              [&](const std::string* a, const std::string* b) {
                return ApplyCmp(op, *a, *b);
              },
              out.get());
        }
      } else if (lhs->type() == DataType::kDouble ||
                 rhs->type() == DataType::kDouble) {
        CompareLoop(
            n,
            [&](size_t i) {
              return std::pair<double, double>(lhs->GetNumeric(i),
                                               rhs->GetNumeric(i));
            },
            [&](double a, double b) { return ApplyCmp(op, a, b); }, out.get());
      } else {
        CompareLoop(
            n,
            [&](size_t i) {
              return std::pair<int64_t, int64_t>(lhs->GetInt64(i),
                                                 rhs->GetInt64(i));
            },
            [&](int64_t a, int64_t b) { return ApplyCmp(op, a, b); }, out.get());
      }
      return out;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      DEX_ASSIGN_OR_RETURN(ColumnPtr lhs, children_[0]->Evaluate(batch));
      DEX_ASSIGN_OR_RETURN(ColumnPtr rhs, children_[1]->Evaluate(batch));
      auto out = std::make_shared<Column>(DataType::kBool);
      out->Reserve(n);
      const bool is_and = kind_ == ExprKind::kAnd;
      for (size_t i = 0; i < n; ++i) {
        const bool a = lhs->GetInt64(i) != 0;
        const bool b = rhs->GetInt64(i) != 0;
        out->AppendInt64((is_and ? (a && b) : (a || b)) ? 1 : 0);
      }
      return out;
    }
    case ExprKind::kNot: {
      DEX_ASSIGN_OR_RETURN(ColumnPtr operand, children_[0]->Evaluate(batch));
      auto out = std::make_shared<Column>(DataType::kBool);
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->AppendInt64(operand->GetInt64(i) != 0 ? 0 : 1);
      }
      return out;
    }
    case ExprKind::kLike: {
      DEX_ASSIGN_OR_RETURN(ColumnPtr operand, children_[0]->Evaluate(batch));
      if (operand->type() != DataType::kString) {
        return Status::InvalidArgument("LIKE on non-string column");
      }
      auto out = std::make_shared<Column>(DataType::kBool);
      out->Reserve(n);
      // Dictionary fast path: match each distinct string once.
      std::unordered_map<int32_t, bool> verdicts;
      for (size_t i = 0; i < n; ++i) {
        const int32_t code = operand->GetStringCode(i);
        auto it = verdicts.find(code);
        if (it == verdicts.end()) {
          it = verdicts.emplace(code, LikeMatch(operand->GetString(i),
                                                like_pattern_)).first;
        }
        out->AppendInt64(it->second ? 1 : 0);
      }
      return out;
    }
    case ExprKind::kArithmetic: {
      DEX_ASSIGN_OR_RETURN(ColumnPtr lhs, children_[0]->Evaluate(batch));
      DEX_ASSIGN_OR_RETURN(ColumnPtr rhs, children_[1]->Evaluate(batch));
      if (lhs->type() == DataType::kString || rhs->type() == DataType::kString) {
        return Status::InvalidArgument("arithmetic on strings");
      }
      auto out = std::make_shared<Column>(output_type_);
      out->Reserve(n);
      const ArithOp op = arith_op_;
      if (output_type_ == DataType::kDouble) {
        for (size_t i = 0; i < n; ++i) {
          const double a = lhs->GetNumeric(i);
          const double b = rhs->GetNumeric(i);
          double v = 0;
          switch (op) {
            case ArithOp::kAdd:
              v = a + b;
              break;
            case ArithOp::kSub:
              v = a - b;
              break;
            case ArithOp::kMul:
              v = a * b;
              break;
            case ArithOp::kDiv:
              if (b == 0) return Status::InvalidArgument("division by zero");
              v = a / b;
              break;
          }
          out->AppendDouble(v);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          const int64_t a = lhs->GetInt64(i);
          const int64_t b = rhs->GetInt64(i);
          int64_t v = 0;
          switch (op) {
            case ArithOp::kAdd:
              v = a + b;
              break;
            case ArithOp::kSub:
              v = a - b;
              break;
            case ArithOp::kMul:
              v = a * b;
              break;
            case ArithOp::kDiv:
              return Status::Internal("integer division should output double");
          }
          out->AppendInt64(v);
        }
      }
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<Value> Expr::EvaluateRow(const Batch& batch, size_t row) const {
  // Row-wise path via a single-row evaluation; fine for edge uses.
  switch (kind_) {
    case ExprKind::kColumnRef:
      if (column_index_ < 0) {
        return Status::Internal("evaluating unbound column ref");
      }
      return batch.columns[column_index_]->GetValue(row);
    case ExprKind::kLiteral:
      return literal_;
    default: {
      // Build a one-row batch and reuse the vectorized path.
      Batch one = Batch::Empty(batch.schema);
      for (size_t c = 0; c < batch.columns.size(); ++c) {
        one.columns[c]->AppendFrom(*batch.columns[c], row);
      }
      DEX_ASSIGN_OR_RETURN(ColumnPtr col, Evaluate(one));
      return col->GetValue(0);
    }
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return column_name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kComparison:
      return "(" + children_[0]->ToString() + " " +
             CompareOpToString(compare_op_) + " " + children_[1]->ToString() + ")";
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " + children_[1]->ToString() +
             ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " + children_[1]->ToString() +
             ")";
    case ExprKind::kNot:
      return "(NOT " + children_[0]->ToString() + ")";
    case ExprKind::kArithmetic:
      return "(" + children_[0]->ToString() + " " + ArithOpToString(arith_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kLike:
      return "(" + children_[0]->ToString() + " LIKE '" + like_pattern_ + "')";
  }
  return "?";
}

}  // namespace dex
