#ifndef DEX_ENGINE_EXECUTOR_H_
#define DEX_ENGINE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "engine/logical_plan.h"
#include "storage/catalog.h"

namespace dex {

class PlanProfiler;

/// \brief Counters filled during plan execution.
struct ExecStats {
  uint64_t rows_scanned = 0;    // rows streamed out of base-table scans
  uint64_t rows_output = 0;     // rows in the final result
  uint64_t files_mounted = 0;   // ALi mounts performed
  uint64_t mounted_rows = 0;    // rows ingested by mounts
  uint64_t cache_scans = 0;     // cache-scan access paths taken
  uint64_t index_probes = 0;    // index-join probe rows

  // Vectorized-kernel coverage (engine/kernel.h): batches that ran on the
  // branchless SIMD path vs. batches that fell back to the scalar
  // expression interpreter, and selection vectors materialized at
  // kernel-unaware operator boundaries.
  uint64_t kernel_filter_batches = 0;
  uint64_t scalar_filter_batches = 0;
  uint64_t kernel_agg_batches = 0;
  uint64_t scalar_agg_batches = 0;
  uint64_t selection_compactions = 0;

  ExecStats& operator+=(const ExecStats& o) {
    rows_scanned += o.rows_scanned;
    rows_output += o.rows_output;
    files_mounted += o.files_mounted;
    mounted_rows += o.mounted_rows;
    cache_scans += o.cache_scans;
    index_probes += o.index_probes;
    kernel_filter_batches += o.kernel_filter_batches;
    scalar_filter_batches += o.scalar_filter_batches;
    kernel_agg_batches += o.kernel_agg_batches;
    scalar_agg_batches += o.scalar_agg_batches;
    selection_compactions += o.selection_compactions;
    return *this;
  }
};

/// \brief Everything a physical plan needs at run time.
///
/// The engine stays decoupled from the mSEED substrate: mounting and cache
/// lookups are injected as callbacks by the core library (the `mount`
/// operator "extracts, transforms and ingests actual data from individual
/// external files" — how, is the format adapter's business).
struct ExecContext {
  Catalog* catalog = nullptr;

  /// Materialized results addressable by result-scan nodes (the paper's
  /// result-scan access path; stage 2 reads Q_f's result through this).
  std::unordered_map<std::string, TablePtr> named_results;

  /// mount(uri) -> dangling partial table with `table`'s schema. The third
  /// argument is an optional selection fused into the mount (the paper's
  /// combined select-mount access path); nullptr mounts the whole file.
  std::function<Result<TablePtr>(const std::string& table, const std::string& uri,
                                 const ExprPtr& fused_predicate)>
      mount_fn;
  /// cache-scan(uri) -> previously ingested partial table.
  std::function<Result<TablePtr>(const std::string& table, const std::string& uri)>
      cache_fn;

  /// Ei option: use prebuilt hash indexes for joins against indexed base
  /// tables instead of building a hash table on the fly.
  bool use_index_joins = false;

  /// Route eligible filters/aggregations through the branchless kernels in
  /// engine/kernel.h (selection vectors, compact group-by). Off = always use
  /// the scalar expression interpreter (PruningOptions::use_simd_kernels).
  bool use_simd_kernels = true;

  /// Charge SimDisk I/O for base-table scans / index reads (disabled in
  /// pure-logic tests).
  bool charge_io = true;

  /// When set (EXPLAIN ANALYZE), every built operator is wrapped in a
  /// profiling decorator that records rows/batches/wall time per plan node.
  PlanProfiler* profiler = nullptr;

  /// When set, every built operator polls this before producing a batch and
  /// aborts the plan on a non-OK return — the cooperative-cancellation seam
  /// for query deadlines and CancelToken (injected by the core library, like
  /// mount_fn, so the engine stays decoupled from QueryContext).
  std::function<Status()> interrupt_fn;

  ExecStats stats;
};

/// \brief Executes an analyzed logical plan to a materialized table.
///
/// StageBreak nodes are transparent here; the two-stage executor in
/// src/core intercepts them before calling this.
Result<TablePtr> ExecutePlan(const PlanPtr& plan, ExecContext* ctx);

}  // namespace dex

#endif  // DEX_ENGINE_EXECUTOR_H_
