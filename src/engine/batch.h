#ifndef DEX_ENGINE_BATCH_H_
#define DEX_ENGINE_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"

namespace dex {

/// \brief The unit of data flowing between physical operators: a horizontal
/// chunk of rows, stored column-wise, with an optional selection vector.
///
/// Columns are shared pointers so operators that do not touch a column can
/// pass it through without copying (MonetDB-style column-at-a-time execution,
/// chunked to bound memory).
///
/// ## Selection-vector contract
///
/// A batch may carry a *selection vector*: a strictly ascending list of row
/// indices into the underlying columns. When `selection` is non-empty the
/// batch logically contains only those rows, in that order, even though the
/// columns still physically hold every row. This lets FilterOp express a
/// predicate as an index list (built by the branchless kernels in
/// engine/kernel.h) without materializing a gathered copy of every column.
///
/// Rules:
///  - `selection` indices are < physical_rows(), strictly ascending, no
///    duplicates. An *empty* vector means "all rows selected" only when
///    `has_selection` is false; `has_selection == true` with an empty vector
///    means zero logical rows.
///  - Ownership: the selection belongs to the batch and dies with it. Columns
///    remain shared and immutable while selected — an operator must never
///    mutate a column of a batch that carries a selection (downstream holders
///    of the same ColumnPtr would observe the change).
///  - Consumers that understand selections (HashAggOp's kernel path) read
///    through `selection` directly. Everything else calls `Compact()` first,
///    which gathers the selected rows into fresh columns and drops the
///    vector. Producers that hand a batch to a selection-unaware operator
///    (joins, sorts, sinks, projections) MUST compact at that boundary;
///    FilterOp does this automatically unless its consumer opts in.
///  - num_rows() is always the *logical* row count. Code indexing columns
///    positionally must use physical row indices (via `selection[i]` when
///    has_selection).
struct Batch {
  SchemaPtr schema;
  std::vector<ColumnPtr> columns;
  /// Physical row indices logically present; see contract above.
  std::vector<uint32_t> selection;
  bool has_selection = false;

  /// Logical rows: selection size when filtered, physical size otherwise.
  size_t num_rows() const {
    if (has_selection) return selection.size();
    return columns.empty() ? 0 : columns[0]->size();
  }
  /// Rows physically present in the columns, ignoring any selection.
  size_t physical_rows() const {
    return columns.empty() ? 0 : columns[0]->size();
  }
  size_t num_columns() const { return columns.size(); }

  /// Materializes the selection: gathers selected rows into fresh columns and
  /// clears the vector. No-op (and no copy) for unselected batches. Called at
  /// every boundary into a selection-unaware operator. Returns true when a
  /// gather actually happened (ExecStats::selection_compactions).
  bool Compact() {
    if (!has_selection) return false;
    std::vector<ColumnPtr> gathered;
    gathered.reserve(columns.size());
    for (const ColumnPtr& col : columns) {
      auto out = std::make_shared<Column>(col->type());
      out->AppendGather(*col, selection);
      gathered.push_back(std::move(out));
    }
    columns = std::move(gathered);
    selection.clear();
    has_selection = false;
    return true;
  }

  /// An empty batch with fresh, appendable columns matching `schema`.
  static Batch Empty(const SchemaPtr& schema) {
    Batch b;
    b.schema = schema;
    b.columns.reserve(schema->num_fields());
    for (const Field& f : schema->fields()) {
      b.columns.push_back(std::make_shared<Column>(f.type));
    }
    return b;
  }
};

/// Default number of rows per batch.
constexpr size_t kBatchSize = 4096;

}  // namespace dex

#endif  // DEX_ENGINE_BATCH_H_
