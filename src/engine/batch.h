#ifndef DEX_ENGINE_BATCH_H_
#define DEX_ENGINE_BATCH_H_

#include <memory>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"

namespace dex {

/// \brief The unit of data flowing between physical operators: a horizontal
/// chunk of rows, stored column-wise.
///
/// Columns are shared pointers so operators that do not touch a column can
/// pass it through without copying (MonetDB-style column-at-a-time execution,
/// chunked to bound memory).
struct Batch {
  SchemaPtr schema;
  std::vector<ColumnPtr> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0]->size(); }
  size_t num_columns() const { return columns.size(); }

  /// An empty batch with fresh, appendable columns matching `schema`.
  static Batch Empty(const SchemaPtr& schema) {
    Batch b;
    b.schema = schema;
    b.columns.reserve(schema->num_fields());
    for (const Field& f : schema->fields()) {
      b.columns.push_back(std::make_shared<Column>(f.type));
    }
    return b;
  }
};

/// Default number of rows per batch.
constexpr size_t kBatchSize = 4096;

}  // namespace dex

#endif  // DEX_ENGINE_BATCH_H_
