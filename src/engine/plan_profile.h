#ifndef DEX_ENGINE_PLAN_PROFILE_H_
#define DEX_ENGINE_PLAN_PROFILE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/logical_plan.h"

namespace dex {

/// \brief Per-operator run-time counters for one LogicalPlan node.
///
/// Wall time is inclusive of children (the conventional EXPLAIN ANALYZE
/// reading: "time spent with this operator on top of the stack or below").
struct OpProfile {
  uint64_t rows_out = 0;     // rows emitted by this operator
  uint64_t batches = 0;      // batches emitted
  uint64_t opens = 0;        // Open() calls (union branches open lazily)
  uint64_t open_nanos = 0;   // wall time inside Open(), children included
  uint64_t next_nanos = 0;   // wall time inside Next(), children included
};

/// \brief Collects OpProfiles across one query's plan executions and renders
/// them as an EXPLAIN ANALYZE tree.
///
/// A query may execute several plans (stage 1's Q_f, then the rewritten
/// stage 2 — possibly once per batch); each is registered as a labeled root.
/// Profiles are keyed by node identity, so the rewritten stage-2 tree (fresh
/// nodes) never collides with the original plan.
///
/// ProfileFor is mutex-protected so plans built concurrently stay safe; the
/// counter increments themselves happen on the single thread that drives the
/// operator tree.
class PlanProfiler {
 public:
  /// Returns the (lazily created) profile slot for `node`. The pointer stays
  /// valid for the profiler's lifetime.
  OpProfile* ProfileFor(const LogicalPlan* node);

  /// Registers an executed plan root under a display label ("stage 1 (Q_f)",
  /// "stage 2", ...). Keeps the tree alive for rendering.
  void AddRoot(std::string label, PlanPtr plan);

  /// Renders all roots: one indented tree per root, each node annotated with
  /// its actual row/batch counts and wall times.
  std::string Render() const;

  bool empty() const;

 private:
  mutable std::mutex mu_;
  // node -> profile; deque-like stability comes from unordered_map's
  // guarantee that rehashing never moves mapped values.
  std::unordered_map<const LogicalPlan*, OpProfile> profiles_;
  std::vector<std::pair<std::string, PlanPtr>> roots_;
};

}  // namespace dex

#endif  // DEX_ENGINE_PLAN_PROFILE_H_
