#include "engine/plan_profile.h"

#include <cinttypes>
#include <cstdio>

namespace dex {

namespace {

std::string FormatMillis(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) / 1e6);
  return buf;
}

void RenderNode(const LogicalPlan* node,
                const std::unordered_map<const LogicalPlan*, OpProfile>& profiles,
                int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(node->LabelString());
  auto it = profiles.find(node);
  if (it == profiles.end()) {
    // Built but never pulled (e.g. a union branch pruned by LIMIT).
    out->append("  (never executed)");
  } else {
    const OpProfile& p = it->second;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  (rows=%" PRIu64 " batches=%" PRIu64 " open=%sms next=%sms)",
                  p.rows_out, p.batches, FormatMillis(p.open_nanos).c_str(),
                  FormatMillis(p.next_nanos).c_str());
    out->append(buf);
  }
  out->push_back('\n');
  for (const PlanPtr& c : node->children) {
    RenderNode(c.get(), profiles, indent + 1, out);
  }
}

}  // namespace

OpProfile* PlanProfiler::ProfileFor(const LogicalPlan* node) {
  std::lock_guard<std::mutex> lock(mu_);
  return &profiles_[node];
}

void PlanProfiler::AddRoot(std::string label, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.emplace_back(std::move(label), std::move(plan));
}

std::string PlanProfiler::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [label, plan] : roots_) {
    out += label;
    out += ":\n";
    RenderNode(plan.get(), profiles_, 1, &out);
  }
  return out;
}

bool PlanProfiler::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.empty();
}

}  // namespace dex
