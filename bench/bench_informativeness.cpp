// Ablation A4 — interactive query execution (paper §5):
//
//   "we can let the explorer learn expected time and resource consumption of
//    his query at the breakpoint and let him even change the destiny of his
//    query" — towards one-minute database kernels.
//
// Part 1 quantifies the informativeness estimate's accuracy (estimated vs
// actual ingested rows / result rows / stage-2 time) across query shapes.
// Part 2 measures what aborting at the breakpoint saves for a non-
// informative query (the paper's "millions of rows with arbitrary numbers").

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A4 — Informativeness at the breakpoint: accuracy and savings");

  auto db = MustOpen(dir, DatabaseOptions{});

  const struct {
    const char* label;
    std::string sql;
  } workloads[] = {
      {"Query 1", Query1()},
      {"Query 2", Query2()},
      {"one station, full span",
       "SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri "
       "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
       "WHERE F.station = 'ANK' "
       "AND D.sample_time > '2010-01-02T00:00:00.000' "
       "AND D.sample_time < '2010-01-02T12:00:00.000';"},
      {"everything (worst case)",
       "SELECT COUNT(*) FROM F JOIN R ON F.uri = R.uri "
       "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id;"},
  };

  std::printf("%-26s %14s %14s %12s %12s %12s\n", "workload", "est rows",
              "actual rows", "est result", "actual", "est s2(s)");
  for (const auto& w : workloads) {
    const Timing t = TimeQuery(db.get(), w.sql);
    const BreakpointInfo& bp = t.stats.two_stage.breakpoint;
    std::printf("%-26s %14llu %14llu %12llu %12llu %12.3f\n", w.label,
                static_cast<unsigned long long>(bp.est_rows_to_ingest),
                static_cast<unsigned long long>(t.stats.mount.samples_decoded),
                static_cast<unsigned long long>(bp.est_result_rows),
                static_cast<unsigned long long>(t.stats.result_rows),
                bp.est_stage2_seconds);
  }

  // Part 2: abort a poorly phrased query at the breakpoint.
  const std::string bad_query =
      "SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri "
      "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id;";
  const auto t0 = std::chrono::steady_clock::now();
  QueryOptions abort_policy;
  abort_policy.breakpoint = [](const BreakpointInfo& info) {
    // Policy: refuse queries expected to return more than a million rows.
    return info.est_result_rows > 1000000 ? BreakpointDecision::kAbort
                                          : BreakpointDecision::kContinue;
  };
  auto aborted = db->Query(bad_query, abort_policy);
  const double abort_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const Timing full = TimeQuery(db.get(), bad_query);
  std::printf("\nnon-informative full-repository retrieval:\n");
  std::printf("  run to completion : %9.4f s, %llu rows\n", full.total(),
              static_cast<unsigned long long>(full.stats.result_rows));
  std::printf("  abort at breakpoint: %8.4f s (%s) — %.0fx of the time saved\n",
              abort_s,
              aborted.status().IsAborted() ? "aborted as expected" : "UNEXPECTED",
              full.total() / abort_s);
  return 0;
}
