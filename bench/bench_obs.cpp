// A12 — telemetry overhead: what the dimensional metrics pipeline and the
// always-on flight recorder cost on the hot path.
//
// Three legs, each emitting one JSON row (CI consolidates them into
// BENCH_obs.json):
//
//   flight_record    — ns per FlightRecorder::Record() with the recorder
//                      enabled vs disabled (a local ring with a trivial
//                      clock, so the number is the ring + stamp cost, not
//                      the workload's).
//   labeled_metrics  — ns per labeled vs unlabeled counter update and per
//                      labeled histogram observation on a local registry.
//   query_overhead   — end-to-end: the same cached labeled query timed in
//                      interleaved batches with the global recorder enabled
//                      and disabled; min-of-batches on both sides so a CI
//                      scheduling hiccup cannot fake a regression.
//
// Self-gating: exits non-zero if the recorder-enabled end-to-end time is
// more than 5% above the disabled time (the acceptance bound for always-on
// telemetry), or if a single Record() costs more than 2µs.

#include <algorithm>
#include <chrono>

#include "bench/bench_common.h"
#include "obs/flight_recorder.h"

using namespace dex;
using namespace dex::bench;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per Record() call against a local ring with a counter clock.
double TimeFlightRecord(bool enabled, int events) {
  obs::FlightRecorder recorder;
  recorder.set_enabled(enabled);
  uint64_t ticks = 0;
  recorder.InstallClock(&recorder, [&ticks] { return ++ticks; });
  const double t0 = NowSeconds();
  for (int i = 0; i < events; ++i) {
    obs::FlightEvent ev;
    ev.kind = "bench_event";
    ev.detail = "synthetic";
    ev.session = "bench";
    ev.priority = 1;
    ev.shard = i & 3;
    recorder.Record(std::move(ev));
  }
  const double t1 = NowSeconds();
  recorder.UninstallClock(&recorder);
  return (t1 - t0) * 1e9 / events;
}

/// Min-of-batches wall seconds for `iters` runs of a cached labeled query.
double TimeQueryBatches(Database* db, const std::string& sql,
                        const QueryOptions& options, int iters, int batches) {
  double best = 1e30;
  for (int b = 0; b < batches; ++b) {
    const double t0 = NowSeconds();
    for (int i = 0; i < iters; ++i) {
      auto r = db->Query(sql, options);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
    best = std::min(best, NowSeconds() - t0);
  }
  return best;
}

}  // namespace

int main() {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);
  int failures = 0;

  PrintHeader("A12 — Telemetry overhead (dimensional metrics + flight recorder)");

  // Leg 1: the recorder's own per-event cost.
  constexpr int kEvents = 200000;
  const double rec_on_ns = TimeFlightRecord(true, kEvents);
  const double rec_off_ns = TimeFlightRecord(false, kEvents);
  std::printf("FlightRecorder::Record   enabled %8.1f ns/event   disabled %6.1f ns/event\n",
              rec_on_ns, rec_off_ns);
  std::printf(
      "{\"bench\":\"obs\",\"row\":\"flight_record\",\"enabled_ns\":%.1f,"
      "\"disabled_ns\":%.1f,\"events\":%d}\n",
      rec_on_ns, rec_off_ns, kEvents);
  if (rec_on_ns > 2000.0) {
    std::fprintf(stderr, "FAIL: Record() costs %.1f ns/event (gate: 2000)\n",
                 rec_on_ns);
    ++failures;
  }

  // Leg 2: labeled vs unlabeled registry updates.
  constexpr int kOps = 200000;
  obs::MetricsRegistry registry;
  obs::MetricLabels labels;
  labels.session = "bench";
  labels.priority = 1;
  labels.query = "hot";
  double t0 = NowSeconds();
  for (int i = 0; i < kOps; ++i) registry.AddCounter("bench.plain", 1);
  const double plain_ns = (NowSeconds() - t0) * 1e9 / kOps;
  t0 = NowSeconds();
  for (int i = 0; i < kOps; ++i) registry.AddCounter("bench.labeled", labels, 1);
  const double labeled_ns = (NowSeconds() - t0) * 1e9 / kOps;
  t0 = NowSeconds();
  for (int i = 0; i < kOps; ++i) {
    registry.Observe("bench.hist", labels, static_cast<double>(i & 1023));
  }
  const double observe_ns = (NowSeconds() - t0) * 1e9 / kOps;
  std::printf("MetricsRegistry update   plain %10.1f ns/op      labeled %7.1f ns/op   labeled observe %.1f ns/op\n",
              plain_ns, labeled_ns, observe_ns);
  std::printf(
      "{\"bench\":\"obs\",\"row\":\"labeled_metrics\",\"unlabeled_counter_ns\":%.1f,"
      "\"labeled_counter_ns\":%.1f,\"labeled_observe_ns\":%.1f,\"ops\":%d}\n",
      plain_ns, labeled_ns, observe_ns, kOps);

  // Leg 3: end-to-end — the recorder's presence on a cached labeled query.
  auto db = MustOpen(dir, DatabaseOptions{});
  QueryOptions options;
  options.session = "bench";
  options.query_label = "hot";
  const std::string sql = Query1();
  {  // Warm: mount everything the query touches so batches hit the cache.
    auto r = db->Query(sql, options);
    if (!r.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  constexpr int kIters = 40;
  constexpr int kBatches = 6;
  auto& recorder = obs::FlightRecorder::Global();
  double on_s = 1e30, off_s = 1e30;
  // Interleave the legs so clock drift and cache warmth hit both equally.
  for (int b = 0; b < kBatches; ++b) {
    recorder.set_enabled(true);
    on_s = std::min(on_s, TimeQueryBatches(db.get(), sql, options, kIters, 1));
    recorder.set_enabled(false);
    off_s = std::min(off_s, TimeQueryBatches(db.get(), sql, options, kIters, 1));
  }
  recorder.set_enabled(true);
  const double overhead_pct = (on_s - off_s) / off_s * 100.0;
  std::printf("cached query (x%d)       recorder on %8.3f ms     off %8.3f ms   overhead %+.2f%%\n",
              kIters, on_s * 1e3, off_s * 1e3, overhead_pct);
  std::printf(
      "{\"bench\":\"obs\",\"row\":\"query_overhead\",\"recorder_on_ms\":%.4f,"
      "\"recorder_off_ms\":%.4f,\"overhead_pct\":%.3f,\"iters\":%d,"
      "\"batches\":%d}\n",
      on_s * 1e3, off_s * 1e3, overhead_pct, kIters, kBatches);
  if (overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "FAIL: recorder-enabled queries %.2f%% slower (gate: 5%%)\n",
                 overhead_pct);
    ++failures;
  }

  std::printf(
      "\nreading the table: Record() is one short mutex section plus a clock\n"
      "read; the hot query path emits *zero* events when nothing goes wrong,\n"
      "so the end-to-end delta is mutex-free noise — the always-on recorder\n"
      "is paid for only at control-plane decision points (admission, faults,\n"
      "epoch flips), never per row.\n");

  if (failures > 0) {
    std::fprintf(stderr, "\n%d telemetry gate(s) failed\n", failures);
    return 1;
  }
  std::printf("\nall telemetry overhead gates held\n");
  return 0;
}
