// Ablation A3 — "Extending metadata" (paper §5):
//
//   "we can derive metadata as a side-effect of ALi or actual data
//    processing, without the explorer noticing, in order to address lack of
//    metadata exploitation and long exploration."
//
// Scenario: an outlier hunt. The explorer sweeps stations looking for
// extreme samples (seismic events). With derived metadata enabled, the first
// pass records per-record min/max as a side effect; later passes prune files
// whose stats prove they cannot match, and summary queries are answered from
// the DM table without touching actual data at all.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

namespace {

const char* kWarmup =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK' "
    "OR F.station = 'ANK' OR F.station = 'IZM';";

std::string OutlierHunt(double threshold) {
  return "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
         "WHERE (F.station = 'ISK' OR F.station = 'ANK' OR F.station = 'IZM') "
         "AND D.sample_value > " + std::to_string(threshold) + ";";
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A3 — Derived metadata: outlier hunts with and without it");

  DatabaseOptions plain;
  auto db_plain = MustOpen(dir, plain);

  DatabaseOptions derived;
  derived.collect_derived_metadata = true;
  derived.two_stage.pruning.file_level = true;
  auto db_derived = MustOpen(dir, derived);

  // First pass on both systems: same work, but the derived system records
  // per-record stats as a side effect of the mounts.
  const Timing warm_plain = TimeQuery(db_plain.get(), kWarmup);
  const Timing warm_derived = TimeQuery(db_derived.get(), kWarmup);
  std::printf("first exploration pass: plain %.4fs, derived %.4fs "
              "(side-effect collection overhead: %+.1f%%)\n",
              warm_plain.total(), warm_derived.total(),
              100.0 * (warm_derived.total() / warm_plain.total() - 1.0));

  std::printf("\n%-24s %12s %8s %12s %8s %8s\n", "outlier threshold",
              "plain(s)", "mounts", "derived(s)", "mounts", "pruned");
  for (double threshold : {500.0, 2000.0, 8000.0, 50000.0}) {
    const std::string sql = OutlierHunt(threshold);
    const Timing plain_t = TimeQuery(db_plain.get(), sql);
    const Timing derived_t = TimeQuery(db_derived.get(), sql);
    std::printf("value > %-16.0f %12.4f %8llu %12.4f %8llu %8zu\n", threshold,
                plain_t.total(),
                static_cast<unsigned long long>(plain_t.stats.mount.mounts),
                derived_t.total(),
                static_cast<unsigned long long>(derived_t.stats.mount.mounts),
                derived_t.stats.two_stage.files_pruned);
  }

  // Summary queries answered purely from derived metadata (stage 1 only).
  const Timing dm = TimeQuery(
      db_derived.get(),
      "SELECT COUNT(*) AS records, MAX(DM.max_value) AS peak FROM DM;");
  std::printf("\npeak amplitude from DM table alone: %.4fs, stage1_only=%s, "
              "0 mounts\n",
              dm.total(), dm.stats.two_stage.stage1_only ? "yes" : "no");
  std::printf(
      "\nreading the table: the higher the threshold, the more files the\n"
      "derived stats exclude; queries that once re-mounted whole stations\n"
      "run from metadata alone — the paper's 'may even eliminate some of\n"
      "the long running queries'.\n");
  return 0;
}
