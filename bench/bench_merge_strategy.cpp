// Ablation A2 — the paper's run-time optimization question (§3):
//
//   "(a) we should merge the actual data taken from each file ... into
//    comprehensive table(s) and then apply the higher operators in the plan
//    in bulk fashion or (b) we should run higher operators on sub-tables and
//    then merge the results."
//
// Strategy (a) is the default (the union of mounts streams into one join);
// strategy (b) distributes the join with Q_f's result over the union. We
// also toggle the selection pushdown into the union (σ fused into mounts).

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

namespace {

double RunConfig(const std::string& dir, bool distribute, bool push_selection,
                 const std::string& sql) {
  DatabaseOptions opts;
  opts.two_stage.distribute_join_over_union = distribute;
  opts.two_stage.push_selection_into_union = push_selection;
  auto db = MustOpen(dir, opts);
  (void)TimeQuery(db.get(), sql);  // warm buffers
  return TimeQueryAvg(db.get(), sql, 3).total();
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A2 — Merge strategy (a) vs (b), selection pushdown on/off");

  const struct {
    const char* label;
    std::string sql;
  } workloads[] = {
      {"Query 1 (1 file)", Query1()},
      {"Query 2 (few files)", Query2()},
      {"station scan (many files)",
       "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
       "WHERE F.station = 'ISK' AND D.sample_value > 0;"},
  };

  std::printf("%-28s %14s %14s %14s\n", "workload", "(a) bulk", "(b) per-file",
              "(a) no-pushdown");
  for (const auto& w : workloads) {
    const double bulk = RunConfig(dir, false, true, w.sql);
    const double per_file = RunConfig(dir, true, true, w.sql);
    const double no_push = RunConfig(dir, false, false, w.sql);
    std::printf("%-28s %13.4fs %13.4fs %13.4fs\n", w.label, bulk, per_file,
                no_push);
  }
  std::printf(
      "\nreading the table: per-file joins (b) pay one join-build per union\n"
      "branch and win only when per-file results are tiny; bulk merging (a)\n"
      "amortizes one build across all mounted data. Disabling the selection\n"
      "pushdown ingests every tuple of every file of interest before\n"
      "filtering — the cost of skipping the paper's run-time rewrite.\n");
  return 0;
}
