// Reproduces the paper's best/worst-case analysis of ALi (§4):
//
//   "Intuitively, the best case is that the first stage of execution yields
//    an empty set of files of interest, where no actual data is ever
//    ingested. The worst case is that the data of interest is the entire
//    repository, where then the performance becomes similar to the loading
//    of Ei."
//
// We sweep the fraction of files of interest from 0% to 100% by widening the
// station predicate, and report ALi query time against Ei's hot query time
// and Ei's one-time load cost.

#include "bench/bench_common.h"
#include "mseed/generator.h"

using namespace dex;
using namespace dex::bench;

namespace {

std::string StationSweepQuery(const std::vector<std::string>& stations) {
  std::string sql =
      "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri";
  if (stations.empty()) {
    sql += " WHERE F.station = 'NO_SUCH_STATION'";
  } else {
    sql += " WHERE (";
    for (size_t i = 0; i < stations.size(); ++i) {
      if (i > 0) sql += " OR ";
      sql += "F.station = '" + stations[i] + "'";
    }
    sql += ")";
  }
  return sql + ";";
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);
  const auto all_stations =
      mseed::GeneratorStationCodes(config.stations);

  PrintHeader("C3 — ALi cost vs size of the data of interest (best/worst case)");

  DatabaseOptions eager;
  eager.mode = IngestionMode::kEager;
  auto ei = MustOpen(dir, eager);
  const double ei_load_s = ei->open_stats().load_nanos / 1e9 +
                           ei->open_stats().index_nanos / 1e9 +
                           ei->open_stats().sim_io_nanos / 1e9;
  auto ali = MustOpen(dir, DatabaseOptions{});

  std::printf("%-12s %-10s %-12s %-12s %-12s\n", "stations", "files", "ALi hot(s)",
              "Ei hot(s)", "ALi/Ei");
  for (size_t k = 0; k <= all_stations.size(); ++k) {
    const std::vector<std::string> subset(all_stations.begin(),
                                          all_stations.begin() + k);
    const std::string sql = StationSweepQuery(subset);
    const Timing ali_t = TimeQueryAvg(ali.get(), sql, 2);
    const Timing ei_t = TimeQueryAvg(ei.get(), sql, 2);
    std::printf("%-12zu %-10zu %-12.4f %-12.4f %-12.2f\n", k,
                ali_t.stats.two_stage.files_of_interest, ali_t.total(),
                ei_t.total(), ali_t.total() / ei_t.total());
  }
  std::printf("\nEi one-time load+index cost: %.3f s\n", ei_load_s);
  std::printf("shape checks: ALi time grows with the files of interest;\n"
              "  at 0%% selectivity no file is mounted (best case), at 100%%\n"
              "  the mounted volume equals the repository, approaching Ei's\n"
              "  load work (worst case).\n");
  return 0;
}
