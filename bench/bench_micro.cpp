// M1 — micro-benchmarks (google-benchmark) for the building blocks whose
// costs drive every experiment: Steim1 codec, mount (extract+transform),
// hash join, aggregation, expression evaluation, metadata scan.

#include <benchmark/benchmark.h>

#include "core/seismic_schema.h"
#include "engine/executor.h"
#include "io/file_io.h"
#include "mseed/generator.h"
#include "mseed/reader.h"
#include "mseed/steim.h"
#include "mseed/steim2.h"
#include "mseed/writer.h"

namespace dex {
namespace {

std::vector<int32_t> Waveform(size_t n) {
  return mseed::SynthesizeWaveform(7, n, true);
}

void BM_SteimEncode(benchmark::State& state) {
  const auto samples = Waveform(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mseed::Steim1::Encode(samples));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteimEncode)->Arg(1024)->Arg(86400);

void BM_SteimDecode(benchmark::State& state) {
  const auto samples = Waveform(static_cast<size_t>(state.range(0)));
  const std::string encoded = mseed::Steim1::Encode(samples);
  for (auto _ : state) {
    auto decoded = mseed::Steim1::Decode(encoded, samples.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteimDecode)->Arg(1024)->Arg(86400);

void BM_Steim2Encode(benchmark::State& state) {
  const auto samples = Waveform(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto encoded = mseed::Steim2::Encode(samples);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Steim2Encode)->Arg(86400);

void BM_Steim2Decode(benchmark::State& state) {
  const auto samples = Waveform(static_cast<size_t>(state.range(0)));
  const auto encoded = mseed::Steim2::Encode(samples);
  for (auto _ : state) {
    auto decoded = mseed::Steim2::Decode(*encoded, samples.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Steim2Decode)->Arg(86400);

void BM_MountTransform(benchmark::State& state) {
  // Extract+transform one decoded record into D-schema columns.
  mseed::DecodedRecord rec;
  rec.samples = Waveform(static_cast<size_t>(state.range(0)));
  rec.header.sample_rate_hz = 1.0;
  rec.header.start_time_ms = 0;
  for (auto _ : state) {
    Table table("D", MakeDataSchema());
    benchmark::DoNotOptimize(
        AppendSamplesToDataTable("/repo/f.mseed", 0, rec, &table));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MountTransform)->Arg(86400);

TablePtr MakeProbeTable(size_t rows, size_t distinct_keys) {
  auto schema = std::make_shared<Schema>(
      Schema({{"uri", DataType::kString, "D"}, {"v", DataType::kDouble, "D"}}));
  auto t = std::make_shared<Table>("D", schema);
  Column* uri = t->mutable_column(0);
  Column* val = t->mutable_column(1);
  for (size_t i = 0; i < rows; ++i) {
    uri->AppendString("file_" + std::to_string(i % distinct_keys));
    val->AppendDouble(static_cast<double>(i));
  }
  (void)t->CommitAppendedRows(rows);
  return t;
}

TablePtr MakeBuildTable(size_t keys) {
  auto schema = std::make_shared<Schema>(
      Schema({{"uri", DataType::kString, "F"}}));
  auto t = std::make_shared<Table>("F", schema);
  for (size_t i = 0; i < keys; ++i) {
    (void)t->AppendRow({Value::String("file_" + std::to_string(i))});
  }
  return t;
}

void BM_HashJoinProbe(benchmark::State& state) {
  SimDisk disk;
  Catalog catalog(&disk);
  (void)catalog.AddTable(MakeProbeTable(static_cast<size_t>(state.range(0)), 64),
                         TableKind::kActual);
  (void)catalog.AddTable(MakeBuildTable(16), TableKind::kMetadata);
  PlanPtr plan = MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("D.uri"),
                    Expr::ColumnRef("F.uri")),
      MakeScan("D"), MakeScan("F"));
  (void)AnalyzePlan(plan, catalog);
  for (auto _ : state) {
    ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.charge_io = false;
    auto result = ExecutePlan(plan, &ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinProbe)->Arg(100000)->Arg(1000000);

void BM_HashAggregate(benchmark::State& state) {
  SimDisk disk;
  Catalog catalog(&disk);
  (void)catalog.AddTable(MakeProbeTable(static_cast<size_t>(state.range(0)), 64),
                         TableKind::kActual);
  PlanPtr plan = MakeAggregate(
      {Expr::ColumnRef("uri")},
      {{AggFunc::kAvg, Expr::ColumnRef("v"), "a"},
       {AggFunc::kCount, nullptr, "n"}},
      MakeScan("D"));
  (void)AnalyzePlan(plan, catalog);
  for (auto _ : state) {
    ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.charge_io = false;
    auto result = ExecutePlan(plan, &ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(100000)->Arg(1000000);

void BM_PredicateEvaluation(benchmark::State& state) {
  const TablePtr t = MakeProbeTable(static_cast<size_t>(state.range(0)), 64);
  Batch batch;
  batch.schema = t->schema();
  for (size_t c = 0; c < t->num_columns(); ++c) batch.columns.push_back(t->column(c));
  const ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("v"),
                    Expr::Lit(Value::Double(100.0))),
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("uri"),
                    Expr::Lit(Value::String("file_3"))));
  auto bound = pred->Bind(*batch.schema);
  for (auto _ : state) {
    auto mask = (*bound)->Evaluate(batch);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredicateEvaluation)->Arg(1000000);

void BM_TopKVsFullSort(benchmark::State& state) {
  // range(0) = limit, or -1 for a full sort.
  SimDisk disk;
  Catalog catalog(&disk);
  (void)catalog.AddTable(MakeProbeTable(500000, 64), TableKind::kActual);
  PlanPtr plan = MakeSort({{Expr::ColumnRef("v"), true}}, MakeScan("D"));
  plan->limit = state.range(0);
  (void)AnalyzePlan(plan, catalog);
  for (auto _ : state) {
    ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.charge_io = false;
    auto result = ExecutePlan(plan, &ctx);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 500000);
}
BENCHMARK(BM_TopKVsFullSort)->Arg(-1)->Arg(10)->Arg(1000);

void BM_LikeEvaluation(benchmark::State& state) {
  const TablePtr t = MakeProbeTable(1000000, 64);
  Batch batch;
  batch.schema = t->schema();
  for (size_t c = 0; c < t->num_columns(); ++c) batch.columns.push_back(t->column(c));
  auto bound = Expr::Like(Expr::ColumnRef("uri"), "file_1%")->Bind(*batch.schema);
  for (auto _ : state) {
    auto mask = (*bound)->Evaluate(batch);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(BM_LikeEvaluation);

void BM_HeaderScan(benchmark::State& state) {
  // Metadata extraction cost per file: what ALi pays up-front per file.
  std::vector<mseed::RecordData> records;
  for (int r = 0; r < 4; ++r) {
    mseed::RecordData rec;
    rec.network = "OR";
    rec.station = "ISK";
    rec.channel = "BHE";
    rec.location = "00";
    rec.start_time_ms = r * 1000000;
    rec.sample_rate_hz = 1.0;
    rec.samples = Waveform(21600);
    records.push_back(std::move(rec));
  }
  const std::string image = mseed::SerializeFile(records);
  for (auto _ : state) {
    auto infos = mseed::Reader::ScanHeadersInMemory(image);
    benchmark::DoNotOptimize(infos);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeaderScan);

}  // namespace
}  // namespace dex

BENCHMARK_MAIN();
