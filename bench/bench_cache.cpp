// Ablation A1 — cache management for lazily ingested data.
//
// The paper's preliminary design discards mounted data after every query and
// flags caching as an open question, including the granularity trade-off
// (§3): file-granular entries serve any later query over the file;
// tuple-granular entries are smaller but can only serve selections they
// cover. We replay an exploration session (repeat, zoom-out, shifted window)
// under each policy/granularity and report mounts, hits and total time.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

namespace {

struct SessionResult {
  double seconds = 0;
  uint64_t mounts = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_bytes = 0;
};

SessionResult RunSession(const std::string& dir, const CacheManager::Options& cache) {
  DatabaseOptions opts;
  opts.cache = cache;
  auto db = MustOpen(dir, opts);
  const std::vector<std::string> session = {
      Query1("2010-01-03"),  // look at one channel
      Query1("2010-01-03"),  // repeat (visualize again)
      Query2("2010-01-03"),  // zoom out to all channels, same day
      Query2("2010-01-03"),  // repeat
      Query1("2010-01-04"),  // move to the next day
      Query2("2010-01-04"),  // widen again
      Query1("2010-01-04"),  // zoom back in: its window ⊆ Query 2's window,
                             // so tuple caches serve it by subsumption
  };
  SessionResult result;
  for (const std::string& sql : session) {
    const Timing t = TimeQuery(db.get(), sql);
    result.seconds += t.total();
    result.mounts += t.stats.mount.mounts;
  }
  result.cache_hits = db->cache()->stats().hits;
  result.cache_bytes = db->cache()->bytes_used();
  return result;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A1 — Cache policy & granularity over an exploration session");
  std::printf("%-28s %10s %8s %8s %12s\n", "configuration", "time(s)", "mounts",
              "hits", "cache bytes");

  struct Config {
    const char* label;
    CacheManager::Options options;
  };
  const Config configs[] = {
      {"none (paper default)",
       {CachePolicy::kNone, CacheGranularity::kFile, 0}},
      {"all, file-granular",
       {CachePolicy::kAll, CacheGranularity::kFile, 0}},
      {"all, tuple-granular",
       {CachePolicy::kAll, CacheGranularity::kTuple, 0}},
      {"lru 4MB, file-granular",
       {CachePolicy::kLru, CacheGranularity::kFile, 4ull << 20}},
      {"lru 64MB, file-granular",
       {CachePolicy::kLru, CacheGranularity::kFile, 64ull << 20}},
  };
  for (const Config& c : configs) {
    const SessionResult r = RunSession(dir, c.options);
    std::printf("%-28s %10.4f %8llu %8llu %12llu\n", c.label, r.seconds,
                static_cast<unsigned long long>(r.mounts),
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_bytes));
  }
  std::printf(
      "\nreading the table: file-granular caching eliminates re-mounts on\n"
      "repeats AND on zoom-outs over the same files; tuple-granular caching\n"
      "holds far fewer bytes and covers exact repeats plus any query whose\n"
      "time window lies inside a cached one (window subsumption) — but a\n"
      "widened selection still re-mounts whole files (the paper: 'we need\n"
      "to mount the whole file even if there is one required tuple missing\n"
      "in the cache'). LRU trades hits for a memory bound.\n");
  return 0;
}
