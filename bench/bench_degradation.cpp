// A10 — graceful degradation under a simulated-time deadline.
//
// A cold scan over every file is run under deadlines of 25/50/75/100% of its
// full simulated cost, at 1/4/8 workers. The rows returned and the
// completeness (files mounted / files of interest) must be identical across
// worker counts — governed admission is decided on the simulated clock, so
// the cutoff is a property of the workload, not of the machine. Each
// configuration also emits one machine-readable JSON row.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

int main() {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  BenchConfig config = BenchConfig::FromEnv();
  if (std::getenv("DEX_BENCH_STATIONS") == nullptr &&
      std::getenv("DEX_BENCH_CHANNELS") == nullptr &&
      std::getenv("DEX_BENCH_DAYS") == nullptr) {
    config.stations = 4;
    config.channels = 4;
    config.days = 4;
  }
  const std::string dir = EnsureRepo(config);
  const size_t num_files =
      static_cast<size_t>(config.stations) * config.channels * config.days;

  PrintHeader("A10 — Partial results under a deadline");
  std::printf("workload: %d stations x %d channels x %d days = %zu files\n\n",
              config.stations, config.channels, config.days, num_files);

  const std::string scan_all = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";

  // The yardstick: the full ungoverned simulated cost of the cold scan.
  uint64_t full_sim_nanos = 0;
  {
    DatabaseOptions opts;
    opts.two_stage.num_threads = 1;
    auto db = MustOpen(dir, opts);
    db->FlushBuffers();
    const Timing t = TimeQuery(db.get(), scan_all);
    full_sim_nanos = t.stats.sim_io_nanos;
    std::printf("full scan: %.4fs simulated I/O, %llu rows\n\n",
                t.sim_io_seconds,
                static_cast<unsigned long long>(t.stats.result_rows));
  }

  std::printf("%-8s %9s %9s %9s %9s %13s %9s\n", "workers", "deadline",
              "mounted", "skipped", "rows", "completeness", "partial");
  for (size_t workers : {1u, 4u, 8u}) {
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      DatabaseOptions opts;
      opts.two_stage.num_threads = workers;
      opts.two_stage.sim_deadline_nanos =
          static_cast<uint64_t>(static_cast<double>(full_sim_nanos) * frac);
      auto db = MustOpen(dir, opts);
      db->FlushBuffers();
      auto r = db->Query(scan_all);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      const TwoStageStats& ts = r->stats.two_stage;
      const uint64_t mounted = r->stats.mount.mounts;
      // The result row of COUNT(*) carries the actual row count ingested.
      const uint64_t rows =
          r->table->num_rows() > 0
              ? static_cast<uint64_t>(r->table->GetValue(0, 0).int64())
              : 0;
      const double completeness =
          ts.files_of_interest > 0
              ? 100.0 * static_cast<double>(mounted) /
                    static_cast<double>(ts.files_of_interest)
              : 100.0;
      std::printf("%-8zu %8.0f%% %9llu %9zu %9llu %12.1f%% %9s\n", workers,
                  frac * 100, static_cast<unsigned long long>(mounted),
                  ts.files_skipped_deadline,
                  static_cast<unsigned long long>(rows), completeness,
                  ts.is_partial ? "yes" : "no");
      std::printf(
          "{\"bench\":\"degradation\",\"workers\":%zu,\"deadline_frac\":%.2f,"
          "\"files_of_interest\":%zu,\"files_mounted\":%llu,"
          "\"files_skipped_deadline\":%zu,\"rows\":%llu,"
          "\"completeness_pct\":%.2f,\"is_partial\":%s,\"sim_io_s\":%.6f}\n",
          workers, frac, ts.files_of_interest,
          static_cast<unsigned long long>(mounted), ts.files_skipped_deadline,
          static_cast<unsigned long long>(rows), completeness,
          ts.is_partial ? "true" : "false",
          static_cast<double>(r->stats.sim_io_nanos) / 1e9);
    }
  }

  std::printf(
      "\nreading the table: every (deadline, *) row is identical across\n"
      "worker counts — the cutoff is decided on the simulated timeline in\n"
      "admission order, so degradation is reproducible. The 100%% row may\n"
      "still be partial: the deadline equals the full cost, so the last\n"
      "file's admission check sits exactly on the boundary.\n");
  return 0;
}
