// A10 — parallel stage-1 metadata refresh: what worker lanes buy a rescan.
//
// Every file's mtime is bumped between Open() and Refresh(), so the refresh
// has to re-parse all 64 headers. The scan runs them as parallel tasks; the
// *charged* simulated time is the worker-invariant serial sum (Open/Refresh
// cost must not drift with the machine's core count), while the reported
// critical path over the worker lanes is the speedup a medium with that much
// overlap would deliver. We sweep 1/2/4/8 workers and emit one JSON row per
// configuration; CI asserts the catalog hash and the charged simulated I/O
// are identical across the sweep and that 4 workers at least halve the
// critical path.

#include <fcntl.h>
#include <sys/stat.h>

#include <ctime>

#include "bench/bench_common.h"
#include "common/fnv.h"

using namespace dex;
using namespace dex::bench;

namespace {

/// FNV-1a over the full catalog rendering — the cross-worker identity
/// witness CI compares.
uint64_t CatalogHash(Database* db) {
  std::string dump;
  for (const char* name : {"F", "R", "QUARANTINE"}) {
    auto t = db->catalog()->GetTable(name);
    if (t.ok()) dump += (*t)->ToString(1u << 20);
  }
  return Fnv1aString(dump);
}

void BumpMtimes(const std::vector<std::string>& files, int64_t seconds_ahead) {
  struct timespec times[2] = {{0, 0}, {0, 0}};
  times[0].tv_sec = times[1].tv_sec = ::time(nullptr) + seconds_ahead;
  for (const std::string& f : files) {
    if (::utimensat(AT_FDCWD, f.c_str(), times, 0) != 0) {
      std::fprintf(stderr, "utimensat failed for %s\n", f.c_str());
      std::exit(1);
    }
  }
}

}  // namespace

int main() {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  BenchConfig config = BenchConfig::FromEnv();
  // Default to the 64-file workload (4 x 4 x 4) unless the environment
  // asked for a specific scale.
  if (std::getenv("DEX_BENCH_STATIONS") == nullptr &&
      std::getenv("DEX_BENCH_CHANNELS") == nullptr &&
      std::getenv("DEX_BENCH_DAYS") == nullptr) {
    config.stations = 4;
    config.channels = 4;
    config.days = 4;
  }
  const std::string dir = EnsureRepo(config);
  auto files = ListFiles(dir, ".mseed");
  if (!files.ok()) {
    std::fprintf(stderr, "%s\n", files.status().ToString().c_str());
    return 1;
  }

  PrintHeader("A10 — Parallel stage-1 metadata refresh");
  std::printf("workload: %d stations x %d channels x %d days = %zu files, "
              "all changed between Open() and Refresh()\n\n",
              config.stations, config.channels, config.days, files->size());

  // Open every configuration against the *same* repository state, then bump
  // all mtimes once: each database refreshes over an identical change set,
  // so the catalogs (mtime column included) must come out bit-identical.
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<Database>> dbs;
  for (size_t workers : worker_counts) {
    DatabaseOptions opts;
    opts.stage1_threads = workers;
    dbs.push_back(MustOpen(dir, opts));
    dbs.back()->FlushBuffers();  // Open()'s scan left the headers resident
  }
  BumpMtimes(*files, 60);

  std::printf("%-8s %10s %10s %12s %13s %9s\n", "workers", "refresh",
              "sim I/O", "serial sim", "critical path", "speedup");
  for (size_t i = 0; i < worker_counts.size(); ++i) {
    const size_t workers = worker_counts[i];
    Database* db = dbs[i].get();
    auto r = db->Refresh();
    if (!r.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    const double serial_s = static_cast<double>(r->serial_sim_nanos) / 1e9;
    const double parallel_s = static_cast<double>(r->parallel_sim_nanos) / 1e9;
    const double speedup = parallel_s > 0 ? serial_s / parallel_s : 1.0;
    const double total_s =
        static_cast<double>(r->scan_nanos + r->sim_io_nanos) / 1e9;

    std::printf("%-8zu %9.4fs %9.4fs %11.4fs %12.4fs %8.2fx\n", workers,
                total_s, static_cast<double>(r->sim_io_nanos) / 1e9, serial_s,
                parallel_s, speedup);
    std::printf(
        "{\"bench\":\"refresh\",\"workers\":%zu,\"files\":%zu,"
        "\"files_scanned\":%zu,\"files_reused\":%zu,\"sim_io_nanos\":%llu,"
        "\"serial_sim_s\":%.6f,\"parallel_sim_s\":%.6f,\"speedup\":%.3f,"
        "\"catalog_hash\":\"%016llx\"}\n",
        workers, files->size(), r->files_scanned, r->files_reused,
        static_cast<unsigned long long>(r->sim_io_nanos), serial_s, parallel_s,
        speedup, static_cast<unsigned long long>(CatalogHash(db)));
  }

  std::printf(
      "\nreading the table: \"sim I/O\" is what the refresh *charged* the\n"
      "simulated clock — the serial sum, identical at every worker count, so\n"
      "ingestion-strategy experiments don't drift with the host's cores. The\n"
      "critical path is what a medium with that much overlap would have\n"
      "stalled; its ratio to the serial sum is the headroom parallel\n"
      "metadata scans unlock.\n");
  return 0;
}
