#ifndef DEX_BENCH_BENCH_COMMON_H_
#define DEX_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/database.h"
#include "io/file_io.h"
#include "mseed/generator.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dex::bench {

/// Env-driven observability for benchmarks. Declare one at the top of main():
/// with `DEX_TRACE_OUT=<file>` set, span tracing is enabled and a Chrome
/// trace-event JSON is written on scope exit; with `DEX_METRICS_OUT=<file>`
/// set, the metrics registry is dumped as flat text on scope exit. Neither
/// variable set = zero effect on the benchmark.
class ObservabilityScope {
 public:
  ObservabilityScope() {
    if (const char* v = std::getenv("DEX_TRACE_OUT")) {
      trace_out_ = v;
      obs::Tracer::Global().set_enabled(true);
    }
    if (const char* v = std::getenv("DEX_METRICS_OUT")) metrics_out_ = v;
  }

  ~ObservabilityScope() {
    if (!trace_out_.empty()) {
      const auto spans = obs::Tracer::Global().Drain();
      const Status st = obs::WriteChromeTrace(trace_out_, spans);
      std::fprintf(stderr, "trace: %zu span(s) -> %s%s\n", spans.size(),
                   trace_out_.c_str(),
                   st.ok() ? "" : (" (" + st.ToString() + ")").c_str());
    }
    if (!metrics_out_.empty()) {
      const Status st = WriteStringToFile(
          metrics_out_, obs::MetricsRegistry::Global().ToText());
      std::fprintf(stderr, "metrics -> %s%s\n", metrics_out_.c_str(),
                   st.ok() ? "" : (" (" + st.ToString() + ")").c_str());
    }
  }

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

 private:
  std::string trace_out_;
  std::string metrics_out_;
};

/// Benchmark workload scale; override with environment variables
/// DEX_BENCH_STATIONS / DEX_BENCH_CHANNELS / DEX_BENCH_DAYS / DEX_BENCH_RATE.
struct BenchConfig {
  int stations = 6;
  int channels = 3;
  int days = 8;
  double sample_rate_hz = 1.0;
  int records_per_file = 4;
  uint64_t seed = 42;

  static BenchConfig FromEnv() {
    BenchConfig c;
    if (const char* v = std::getenv("DEX_BENCH_STATIONS")) c.stations = std::atoi(v);
    if (const char* v = std::getenv("DEX_BENCH_CHANNELS")) c.channels = std::atoi(v);
    if (const char* v = std::getenv("DEX_BENCH_DAYS")) c.days = std::atoi(v);
    if (const char* v = std::getenv("DEX_BENCH_RATE")) c.sample_rate_hz = std::atof(v);
    return c;
  }

  mseed::GeneratorOptions ToGeneratorOptions() const {
    mseed::GeneratorOptions gen;
    gen.seed = seed;
    gen.num_stations = stations;
    gen.channels_per_station = channels;
    gen.num_days = days;
    gen.records_per_file = records_per_file;
    gen.sample_rate_hz = sample_rate_hz;
    gen.gap_probability = 0.01;
    gen.start_day = "2010-01-01";
    return gen;
  }

  std::string RepoDir() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "/tmp/dex_bench_repo_s%d_c%d_d%d_r%g_%llu",
                  stations, channels, days, sample_rate_hz,
                  static_cast<unsigned long long>(seed));
    return buf;
  }
};

/// Bumped whenever the on-disk record format changes, so stale bench repos
/// regenerate instead of failing to parse.
inline constexpr const char* kRepoStampVersion = "format-v2";

/// Generates the repository unless an identical one already exists on disk
/// (bench binaries share repos across runs).
inline std::string EnsureRepo(const BenchConfig& config) {
  const std::string dir = config.RepoDir();
  const std::string stamp = dir + "/.complete";
  std::string stamp_content;
  if (FileExists(stamp) &&
      ReadFileToString(stamp, &stamp_content).ok() &&
      stamp_content == kRepoStampVersion) {
    return dir;
  }
  (void)RemoveDirRecursive(dir);
  auto repo = mseed::GenerateRepository(dir, config.ToGeneratorOptions());
  if (!repo.ok()) {
    std::fprintf(stderr, "repository generation failed: %s\n",
                 repo.status().ToString().c_str());
    std::exit(1);
  }
  (void)WriteStringToFile(stamp, kRepoStampVersion);
  return dir;
}

/// The paper's Query 1 (Figure 2) phrased against the synthetic repository:
/// short-term average for one station/channel, one day of records, a
/// two-second sample window (samples are 1 Hz by default, so the strict
/// bounds select the single 22:15:01 sample of each matching record).
inline std::string Query1(const std::string& day = "2010-01-05") {
  return "SELECT AVG(D.sample_value) "
         "FROM F JOIN R ON F.uri = R.uri "
         "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
         "WHERE F.station = 'ISK' AND F.channel = 'BHE' "
         "AND R.start_time > '" + day + "T00:00:00.000' " +
         "AND R.start_time < '" + day + "T23:59:59.999' " +
         "AND D.sample_time > '" + day + "T22:15:00.000' " +
         "AND D.sample_time < '" + day + "T22:15:02.000';";
}

/// The paper's Query 2: "the same FROM clause as Query 1, but retrieves a
/// piece of waveform from all channels at a given station" — no channel
/// restriction, wider sample window for visualization.
inline std::string Query2(const std::string& day = "2010-01-05") {
  return "SELECT D.sample_time, D.sample_value "
         "FROM F JOIN R ON F.uri = R.uri "
         "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id "
         "WHERE F.station = 'ISK' "
         "AND R.start_time > '" + day + "T00:00:00.000' " +
         "AND R.start_time < '" + day + "T23:59:59.999' " +
         "AND D.sample_time > '" + day + "T22:00:00.000' " +
         "AND D.sample_time < '" + day + "T23:00:00.000';";
}

/// One timed query execution: measured CPU seconds + simulated I/O seconds.
struct Timing {
  double cpu_seconds = 0;
  double sim_io_seconds = 0;
  QueryStats stats;
  double total() const { return cpu_seconds + sim_io_seconds; }
};

inline Timing TimeQuery(Database* db, const std::string& sql) {
  Timing t;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = db->Query(sql);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n%s\n", r.status().ToString().c_str(),
                 sql.c_str());
    std::exit(1);
  }
  t.cpu_seconds = std::chrono::duration<double>(t1 - t0).count();
  t.sim_io_seconds = static_cast<double>(r->stats.sim_io_nanos) / 1e9;
  t.stats = r->stats;
  return t;
}

/// Averages `runs` identical executions (the paper reports the average of
/// three identical runs).
inline Timing TimeQueryAvg(Database* db, const std::string& sql, int runs = 3) {
  Timing sum;
  for (int i = 0; i < runs; ++i) {
    const Timing t = TimeQuery(db, sql);
    sum.cpu_seconds += t.cpu_seconds;
    sum.sim_io_seconds += t.sim_io_seconds;
    sum.stats = t.stats;
  }
  sum.cpu_seconds /= runs;
  sum.sim_io_seconds /= runs;
  return sum;
}

inline std::unique_ptr<Database> MustOpen(const std::string& dir,
                                          const DatabaseOptions& options) {
  auto db = Database::Open(dir, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*db);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace dex::bench

#endif  // DEX_BENCH_BENCH_COMMON_H_
