// A12 — zone-map pruning + vectorized kernels: what skipping decode work
// the predicate already excluded buys on selective scans.
//
// Two databases over the same repository answer the same outlier-hunt
// queries:
//   volcano — zone maps off, SIMD kernels off: every mount decodes every
//             record in full and the per-batch scalar expression
//             interpreter filters the rows;
//   pruned  — record/frame zone maps on, vectorized kernels on: the first
//             pass harvests zones as a decode side effect, later passes
//             skip records/frames whose [min,max] cannot match and filter
//             the residual with the branchless kernels.
//
// Pruning saves *decode CPU only*: the mount still charges the whole-file
// simulated read, so the two systems must agree bit-for-bit on result rows
// AND on charged simulated I/O — only measured CPU seconds may move.
//
// Self-gating: exits non-zero unless (1) every threshold's result hash and
// charged sim I/O match between the two systems, (2) every selective
// threshold clears the >= 2x CPU speedup gate, (3) the pruned system
// actually skipped records. CI re-asserts the same from the JSON rows.

#include "bench/bench_common.h"
#include "common/fnv.h"

using namespace dex;
using namespace dex::bench;

namespace {

const char* kWarmup =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri;";

std::string OutlierHunt(double threshold) {
  return "SELECT F.station, COUNT(*) AS n, MIN(D.sample_value) AS lo, "
         "MAX(D.sample_value) AS hi "
         "FROM F JOIN D ON F.uri = D.uri "
         "WHERE D.sample_value > " + std::to_string(threshold) + " " +
         "GROUP BY F.station ORDER BY F.station;";
}

uint64_t TableHash(const Table& table) {
  return Fnv1aString(table.ToString(1u << 20));
}

struct QueryRun {
  Timing timing;
  uint64_t hash = 0;
};

QueryRun RunHashed(Database* db, const std::string& sql, int runs = 3) {
  QueryRun run;
  run.timing = TimeQueryAvg(db, sql, runs);
  auto r = db->Query(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  run.hash = TableHash(*r->table);
  return run;
}

}  // namespace

int main() {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A12 — Zone-map pruning + vectorized kernels vs volcano");

  DatabaseOptions volcano;
  volcano.collect_zone_maps = false;
  volcano.two_stage.pruning.record_level = false;
  volcano.two_stage.pruning.frame_level = false;
  volcano.two_stage.pruning.use_simd_kernels = false;
  auto db_volcano = MustOpen(dir, volcano);

  DatabaseOptions pruned;  // defaults: record/frame pruning + kernels on
  auto db_pruned = MustOpen(dir, pruned);

  // First pass on both systems: identical decode work, but the pruned
  // system harvests record/frame zones as a side effect of the mounts.
  const Timing warm_volcano = TimeQuery(db_volcano.get(), kWarmup);
  const Timing warm_pruned = TimeQuery(db_pruned.get(), kWarmup);
  const double overhead_pct =
      100.0 * (warm_pruned.cpu_seconds / warm_volcano.cpu_seconds - 1.0);
  std::printf("harvest pass: volcano %.4fs cpu, pruned %.4fs cpu "
              "(zone harvest overhead %+.1f%%)\n",
              warm_volcano.cpu_seconds, warm_pruned.cpu_seconds, overhead_pct);
  std::printf(
      "{\"bench\":\"zonemap\",\"row\":\"harvest\",\"volcano_cpu_s\":%.6f,"
      "\"pruned_cpu_s\":%.6f,\"overhead_pct\":%.2f}\n",
      warm_volcano.cpu_seconds, warm_pruned.cpu_seconds, overhead_pct);

  // Selective thresholds (gated >= 2x) plus one unselective control
  // (reported, not gated: a scan that keeps everything cannot prune).
  struct Case {
    double threshold;
    bool gated;
  };
  const Case cases[] = {
      {2000.0, true},      // seismic events only
      {8000.0, true},      // event peaks only
      {1000000.0, true},   // impossible: pure zone-map elimination
      {-1000000.0, false}, // control: keeps every sample
  };

  std::printf("\n%-22s %12s %12s %8s %10s %10s\n", "threshold", "volcano(s)",
              "pruned(s)", "speedup", "rec-skip", "frm-skip");
  bool pass = true;
  double min_gated_speedup = 1e9;
  uint64_t total_records_skipped = 0;
  for (const Case& c : cases) {
    const std::string sql = OutlierHunt(c.threshold);
    const QueryRun volcano_run = RunHashed(db_volcano.get(), sql);
    const QueryRun pruned_run = RunHashed(db_pruned.get(), sql);
    const double speedup =
        volcano_run.timing.cpu_seconds / pruned_run.timing.cpu_seconds;
    const uint64_t rec_skip =
        pruned_run.timing.stats.records_skipped_zonemap;
    const uint64_t frm_skip = pruned_run.timing.stats.frames_skipped_zonemap;
    const bool hashes_equal = volcano_run.hash == pruned_run.hash;
    const bool sim_io_equal = volcano_run.timing.stats.sim_io_nanos ==
                              pruned_run.timing.stats.sim_io_nanos;
    if (!hashes_equal || !sim_io_equal) pass = false;
    if (c.gated) {
      min_gated_speedup = std::min(min_gated_speedup, speedup);
      if (speedup < 2.0) pass = false;
      total_records_skipped += rec_skip;
    }
    std::printf("value > %-14.0f %12.4f %12.4f %7.2fx %10llu %10llu%s%s\n",
                c.threshold, volcano_run.timing.cpu_seconds,
                pruned_run.timing.cpu_seconds, speedup,
                static_cast<unsigned long long>(rec_skip),
                static_cast<unsigned long long>(frm_skip),
                hashes_equal ? "" : "  RESULT MISMATCH",
                sim_io_equal ? "" : "  SIM-I/O DRIFT");
    std::printf(
        "{\"bench\":\"zonemap\",\"row\":\"selective_scan\",\"threshold\":%.0f,"
        "\"gated\":%s,\"volcano_cpu_s\":%.6f,\"pruned_cpu_s\":%.6f,"
        "\"speedup\":%.3f,\"volcano_hash\":\"%016llx\","
        "\"pruned_hash\":\"%016llx\",\"sim_io_equal\":%s,"
        "\"records_skipped\":%llu,\"frames_skipped\":%llu}\n",
        c.threshold, c.gated ? "true" : "false",
        volcano_run.timing.cpu_seconds, pruned_run.timing.cpu_seconds, speedup,
        static_cast<unsigned long long>(volcano_run.hash),
        static_cast<unsigned long long>(pruned_run.hash),
        sim_io_equal ? "true" : "false",
        static_cast<unsigned long long>(rec_skip),
        static_cast<unsigned long long>(frm_skip));
  }
  if (total_records_skipped == 0) pass = false;

  std::printf(
      "{\"bench\":\"zonemap\",\"row\":\"zonemap_gate\",\"pass\":%s,"
      "\"min_gated_speedup\":%.3f,\"records_skipped\":%llu}\n",
      pass ? "true" : "false", min_gated_speedup,
      static_cast<unsigned long long>(total_records_skipped));
  std::printf(
      "\nreading the table: the zones harvested by the first pass let later\n"
      "selective scans drop records and Steim frames before decode; the\n"
      "sim-I/O ledger stays put (whole files are still read), only the CPU\n"
      "column moves. The gate holds the selective rows to >= 2x.\n");
  if (!pass) {
    std::fprintf(stderr, "zonemap gate FAILED\n");
    return 1;
  }
  return 0;
}
