// Reproduces the paper's Table 1, "Dataset and sizes":
//
//     records per table            size
//     F      R        D           mSEED  MonetDB  +keys  ALi
//     5,000  175,765  660,259,608 1.3GB  13GB     9GB    10MB
//
// Our repository is synthetic and smaller (scale with DEX_BENCH_* env vars),
// so absolute numbers differ; the reproduced *shape* is the ratio structure:
// the loaded database is several times larger than the compressed repository
// (decompression + explicit timestamp materialization), indexes add the same
// order again, and the ALi footprint (metadata only) is orders of magnitude
// smaller than everything else.

#include "bench/bench_common.h"
#include "common/string_utils.h"

using namespace dex;
using namespace dex::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("Table 1 — Dataset and sizes  (paper: Kargin, SIGMOD'13 PhD)");
  std::printf("workload: %d stations x %d channels x %d days @ %g Hz\n",
              config.stations, config.channels, config.days,
              config.sample_rate_hz);

  // Ei: eager load with PK/FK indexes.
  DatabaseOptions eager;
  eager.mode = IngestionMode::kEager;
  auto ei = MustOpen(dir, eager);
  const OpenStats& es = ei->open_stats();

  // ALi: metadata only.
  auto ali = MustOpen(dir, DatabaseOptions{});
  const OpenStats& as = ali->open_stats();

  auto r_rows = ei->catalog()->GetTable("R");
  auto d_rows = ei->catalog()->GetTable("D");

  std::printf("\n-- records per table --\n");
  std::printf("%-8s %-12s %-16s\n", "F", "R", "D");
  std::printf("%-8s %-12s %-16s\n", FormatCount(es.num_files).c_str(),
              FormatCount(r_rows.ok() ? (*r_rows)->num_rows() : 0).c_str(),
              FormatCount(d_rows.ok() ? (*d_rows)->num_rows() : 0).c_str());

  std::printf("\n-- size --\n");
  std::printf("%-12s %-12s %-12s %-12s\n", "mSEED", "dex(loaded)", "+keys", "ALi");
  std::printf("%-12s %-12s %-12s %-12s\n", FormatBytes(es.repo_bytes).c_str(),
              FormatBytes(es.db_bytes).c_str(),
              FormatBytes(es.index_bytes).c_str(),
              FormatBytes(as.metadata_bytes).c_str());

  std::printf("\n-- shape checks vs the paper --\n");
  const double load_ratio =
      static_cast<double>(es.db_bytes) / static_cast<double>(es.repo_bytes);
  const double keys_ratio =
      static_cast<double>(es.index_bytes) / static_cast<double>(es.db_bytes);
  const double ali_ratio =
      static_cast<double>(es.db_bytes) / static_cast<double>(as.metadata_bytes);
  std::printf("loaded/mSEED          = %6.2fx   (paper: 13GB/1.3GB = 10.0x)\n",
              load_ratio);
  std::printf("keys/loaded           = %6.2fx   (paper:  9GB/13GB  = 0.69x)\n",
              keys_ratio);
  std::printf("loaded/ALi-metadata   = %6.0fx   (paper: 13GB/10MB  = 1300x)\n",
              ali_ratio);
  std::printf("\nALi total footprint (metadata + untouched repo) vs Ei "
              "(repo + loaded + keys):\n  %s vs %s\n",
              FormatBytes(as.metadata_bytes + es.repo_bytes).c_str(),
              FormatBytes(es.repo_bytes + es.db_bytes + es.index_bytes).c_str());
  return 0;
}
