// A11 — sharded scatter/gather execution: what partitioning the repository
// across N storage nodes buys, and what the interconnect costs.
//
// The 64-file workload (4 stations x 4 channels x 4 days) runs a
// per-station aggregate that mounts every file, swept over
// shards {1,4,8} x workers {1,4,8}. Each shard models one storage node
// with a serial disk behind its own network link, so the *critical path*
// (slowest shard's scan + mount + gather time) shrinks with the shard
// count while the *charged* simulated time — and the results, and the
// quarantine set — stay bit-identical at any worker count and any
// physical pool size. Two scenario legs exercise the fault model: a
// lossy-interconnect replay (same seed twice → identical nanos) and a
// dead shard (deterministic partial results with files_skipped_shard).
//
// Self-gating: exits non-zero unless (1) sharded rows are worker-invariant
// in result hash, quarantine hash, and charged sim nanos, (2) 4 shards
// deliver >= 2x the 1-shard stage1+stage2 critical path, (3) the lossy
// replay is bit-identical, (4) the dead-shard runs agree with each other.
// CI re-asserts the same invariants from the JSON rows.

#include <map>
#include <tuple>

#include "bench/bench_common.h"
#include "common/fnv.h"
#include "shard/sharded_repository.h"

using namespace dex;
using namespace dex::bench;

namespace {

/// Every file participates: per-station aggregate over the full D join.
const char* kScatterQuery =
    "SELECT F.station, AVG(D.sample_value), COUNT(*) "
    "FROM F JOIN D ON F.uri = D.uri "
    "GROUP BY F.station ORDER BY F.station;";

uint64_t TableHash(const Table& table) {
  return Fnv1aString(table.ToString(1u << 20));
}

/// The quarantine set as the determinism witness: registry count + the
/// QUARANTINE metadata table rendering.
uint64_t QuarantineHash(Database* db) {
  std::string dump = std::to_string(db->registry()->num_quarantined());
  auto t = db->catalog()->GetTable("QUARANTINE");
  if (t.ok()) dump += (*t)->ToString(1u << 20);
  return Fnv1aString(dump);
}

struct RunRow {
  int shards = 1;
  size_t workers = 1;
  uint64_t result_hash = 0;
  uint64_t quarantine_hash = 0;
  uint64_t sim_io_nanos = 0;        // charged: must be worker-invariant
  uint64_t net_sim_nanos = 0;       // interconnect share of the charge
  uint64_t critical_path_nanos = 0; // stage-1 + stage-2 over the shards
  size_t files_skipped_shard = 0;
};

RunRow RunOnce(const std::string& dir, int shards, size_t workers,
               double loss_rate = 0.0, uint64_t seed = 0,
               int kill_shard = -1) {
  DatabaseOptions opts;
  opts.shard.num_shards = shards;
  opts.shard.policy = ShardedRepository::Policy::kStationRange;
  opts.shard.net.fault_seed = seed;
  opts.shard.net.transient_loss_rate = loss_rate;
  opts.two_stage.num_threads = workers;
  opts.stage1_threads = workers;
  auto db = MustOpen(dir, opts);
  db->FlushBuffers();  // Open()'s header scan left the files resident
  if (kill_shard >= 0) {
    const Status st = db->shards()->KillShard(kill_shard);
    if (!st.ok()) {
      std::fprintf(stderr, "kill shard failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  const Timing t = TimeQuery(db.get(), kScatterQuery);
  const TwoStageStats& ts = t.stats.two_stage;
  const OpenStats& open = db->open_stats();

  RunRow row;
  row.shards = shards;
  row.workers = workers;
  row.result_hash = 0;  // filled by caller (needs the table)
  row.quarantine_hash = QuarantineHash(db.get());
  row.sim_io_nanos = t.stats.sim_io_nanos;
  row.net_sim_nanos = ts.net_sim_nanos;
  row.files_skipped_shard = ts.files_skipped_shard;
  // Stage-2 critical path: the sharded executor reports the slowest shard;
  // the unsharded serial baseline (1 worker) reports nothing, so its
  // critical path *is* what the single node charged.
  const uint64_t stage2 =
      ts.parallel_sim_nanos > 0 ? ts.parallel_sim_nanos : t.stats.sim_io_nanos;
  row.critical_path_nanos = open.scan_parallel_sim_nanos + stage2;

  // Re-run for the result hash (cached second run — same table either way).
  auto r = db->Query(kScatterQuery);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  row.result_hash = TableHash(*r->table);
  return row;
}

void PrintJson(const RunRow& row, size_t files, const char* scenario) {
  std::printf(
      "{\"bench\":\"shard\",\"scenario\":\"%s\",\"shards\":%d,"
      "\"workers\":%zu,\"files\":%zu,\"result_hash\":\"%016llx\","
      "\"quarantine_hash\":\"%016llx\",\"sim_io_nanos\":%llu,"
      "\"net_sim_nanos\":%llu,\"critical_path_nanos\":%llu,"
      "\"files_skipped_shard\":%zu}\n",
      scenario, row.shards, row.workers, files,
      static_cast<unsigned long long>(row.result_hash),
      static_cast<unsigned long long>(row.quarantine_hash),
      static_cast<unsigned long long>(row.sim_io_nanos),
      static_cast<unsigned long long>(row.net_sim_nanos),
      static_cast<unsigned long long>(row.critical_path_nanos),
      row.files_skipped_shard);
}

}  // namespace

int main() {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  BenchConfig config = BenchConfig::FromEnv();
  if (std::getenv("DEX_BENCH_STATIONS") == nullptr &&
      std::getenv("DEX_BENCH_CHANNELS") == nullptr &&
      std::getenv("DEX_BENCH_DAYS") == nullptr) {
    config.stations = 4;
    config.channels = 4;
    config.days = 4;
  }
  const std::string dir = EnsureRepo(config);
  const size_t files = static_cast<size_t>(config.stations) * config.channels *
                       config.days;

  PrintHeader("A11 — Sharded scatter/gather execution");
  std::printf("workload: %d stations x %d channels x %d days = %zu files, "
              "per-station aggregate mounting every file\n\n",
              config.stations, config.channels, config.days, files);

  int failures = 0;
  std::map<int, RunRow> first_by_shards;
  std::map<std::pair<int, size_t>, RunRow> rows;

  std::printf("%-7s %-8s %12s %12s %15s %9s\n", "shards", "workers",
              "charged sim", "net sim", "critical path", "speedup");
  for (int shards : {1, 4, 8}) {
    for (size_t workers : {size_t{1}, size_t{4}, size_t{8}}) {
      const RunRow row = RunOnce(dir, shards, workers);
      rows[{shards, workers}] = row;
      if (first_by_shards.find(shards) == first_by_shards.end()) {
        first_by_shards.emplace(shards, row);
      }
      const RunRow& base = rows[{1, size_t{1}}];
      const double speedup =
          row.critical_path_nanos > 0
              ? static_cast<double>(base.critical_path_nanos) /
                    static_cast<double>(row.critical_path_nanos)
              : 1.0;
      std::printf("%-7d %-8zu %11.4fs %11.4fs %14.4fs %8.2fx\n", shards,
                  workers, row.sim_io_nanos / 1e9, row.net_sim_nanos / 1e9,
                  row.critical_path_nanos / 1e9, speedup);
      PrintJson(row, files, "sweep");

      // Gate 1: sharded execution is worker-invariant in everything but
      // wall time.
      if (shards > 1) {
        const RunRow& first = first_by_shards[shards];
        if (row.result_hash != first.result_hash ||
            row.quarantine_hash != first.quarantine_hash ||
            row.sim_io_nanos != first.sim_io_nanos ||
            row.critical_path_nanos != first.critical_path_nanos) {
          std::fprintf(stderr,
                       "FAIL: %d-shard run at %zu workers diverged from the "
                       "1-worker run\n",
                       shards, workers);
          ++failures;
        }
      }
    }
  }

  // Gate 2: four shards at least halve the single-node critical path.
  const double speedup4 =
      static_cast<double>(rows[{1, size_t{1}}].critical_path_nanos) /
      static_cast<double>(rows[{4, size_t{1}}].critical_path_nanos);
  std::printf("\n4-shard critical-path speedup over 1 shard: %.2fx\n",
              speedup4);
  if (speedup4 < 2.0) {
    std::fprintf(stderr, "FAIL: expected >= 2x at 4 shards, got %.2fx\n",
                 speedup4);
    ++failures;
  }

  // Scenario: lossy interconnect, replayed. Same seed, different worker
  // counts — the fault schedule, results, and charged time must replay
  // bit-identically.
  const RunRow replay_a = RunOnce(dir, 4, 1, /*loss_rate=*/0.05, /*seed=*/7);
  const RunRow replay_b = RunOnce(dir, 4, 8, /*loss_rate=*/0.05, /*seed=*/7);
  PrintJson(replay_a, files, "replay");
  PrintJson(replay_b, files, "replay");
  if (replay_a.result_hash != replay_b.result_hash ||
      replay_a.sim_io_nanos != replay_b.sim_io_nanos ||
      replay_a.net_sim_nanos != replay_b.net_sim_nanos) {
    std::fprintf(stderr, "FAIL: lossy replay diverged across worker counts\n");
    ++failures;
  }
  if (replay_a.net_sim_nanos <= rows[{4, size_t{1}}].net_sim_nanos) {
    std::fprintf(stderr, "FAIL: losses did not show up in the net charge\n");
    ++failures;
  }

  // Scenario: a dead shard. One station range drops out; the partial
  // result and its accounting must not depend on the worker count.
  const RunRow dead_a = RunOnce(dir, 4, 1, 0.0, 0, /*kill_shard=*/1);
  const RunRow dead_b = RunOnce(dir, 4, 8, 0.0, 0, /*kill_shard=*/1);
  PrintJson(dead_a, files, "dead_shard");
  PrintJson(dead_b, files, "dead_shard");
  if (dead_a.files_skipped_shard == 0 ||
      dead_a.files_skipped_shard != dead_b.files_skipped_shard ||
      dead_a.result_hash != dead_b.result_hash ||
      dead_a.sim_io_nanos != dead_b.sim_io_nanos) {
    std::fprintf(stderr, "FAIL: dead-shard degradation not deterministic\n");
    ++failures;
  }
  if (dead_a.result_hash == rows[{4, size_t{1}}].result_hash) {
    std::fprintf(stderr, "FAIL: dead shard did not change the result\n");
    ++failures;
  }

  std::printf(
      "\nreading the table: \"charged sim\" is what each query added to the\n"
      "simulated clock — for a fixed shard count it is identical at every\n"
      "worker count (workers only shorten wall time). \"critical path\" is\n"
      "the slowest shard's stage-1 scan + stage-2 mount + gather time: the\n"
      "latency a real N-node deployment would see, shrinking with N at the\n"
      "price of the interconnect charge in \"net sim\". 8 shards repeat the\n"
      "4-shard numbers: station-range partitioning cannot split 4 stations\n"
      "across more than 4 nodes — partition granularity caps scale-out.\n");

  if (failures > 0) {
    std::fprintf(stderr, "\n%d invariant(s) failed\n", failures);
    return 1;
  }
  std::printf("\nall sharding invariants held\n");
  return 0;
}
