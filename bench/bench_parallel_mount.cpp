// A9 — parallel stage-2 ingestion: what worker lanes buy a cold query.
//
// The files of interest of a cold scan mount as parallel tasks; the
// simulated stall time is the critical path over the worker lanes, not the
// serial sum. We sweep 1/2/4/8 workers over the same repository and report
// both the human-readable table and one machine-readable JSON row per
// configuration.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

int main() {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  BenchConfig config = BenchConfig::FromEnv();
  // Default to the 64-file workload (4 x 4 x 4) unless the environment
  // asked for a specific scale.
  if (std::getenv("DEX_BENCH_STATIONS") == nullptr &&
      std::getenv("DEX_BENCH_CHANNELS") == nullptr &&
      std::getenv("DEX_BENCH_DAYS") == nullptr) {
    config.stations = 4;
    config.channels = 4;
    config.days = 4;
  }
  const std::string dir = EnsureRepo(config);
  const size_t num_files =
      static_cast<size_t>(config.stations) * config.channels * config.days;

  PrintHeader("A9 — Parallel stage-2 ingestion");
  std::printf("workload: %d stations x %d channels x %d days = %zu files\n\n",
              config.stations, config.channels, config.days, num_files);

  const std::string scan_all = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";

  std::printf("%-8s %10s %10s %12s %12s %9s\n", "workers", "cold query",
              "sim I/O", "serial sim", "critical path", "speedup");
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    DatabaseOptions opts;
    opts.two_stage.num_threads = workers;
    auto db = MustOpen(dir, opts);
    db->FlushBuffers();  // Open()'s metadata scan left the files resident
    const Timing t = TimeQuery(db.get(), scan_all);

    const TwoStageStats& ts = t.stats.two_stage;
    // workers == 1 takes the legacy inline path: its serial cost is the
    // query's whole simulated I/O and the "critical path" equals it.
    const double serial_s =
        workers == 1 ? t.sim_io_seconds
                     : static_cast<double>(ts.serial_sim_nanos) / 1e9;
    const double parallel_s =
        workers == 1 ? t.sim_io_seconds
                     : static_cast<double>(ts.parallel_sim_nanos) / 1e9;
    const double speedup = parallel_s > 0 ? serial_s / parallel_s : 1.0;

    std::printf("%-8zu %9.4fs %9.4fs %11.4fs %12.4fs %8.2fx\n", workers,
                t.total(), t.sim_io_seconds, serial_s, parallel_s, speedup);
    std::printf(
        "{\"bench\":\"parallel_mount\",\"workers\":%zu,\"files\":%zu,"
        "\"mount_tasks\":%zu,\"query_s\":%.6f,\"sim_io_s\":%.6f,"
        "\"serial_sim_s\":%.6f,\"parallel_sim_s\":%.6f,\"speedup\":%.3f}\n",
        workers, num_files, ts.mount_tasks, t.total(), t.sim_io_seconds,
        serial_s, parallel_s, speedup);
  }

  std::printf(
      "\nreading the table: the critical path is the longest worker lane\n"
      "under deterministic list scheduling, so the speedup is a property of\n"
      "the simulated medium, not of how many real cores this machine has.\n"
      "Mount tasks are near-uniform here, so k workers approach a k-fold\n"
      "reduction until per-file overheads dominate.\n");
  return 0;
}
