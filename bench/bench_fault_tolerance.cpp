// A8 — the price of robustness: query latency and result completeness
// under injected I/O faults.
//
// A real repository sits on flaky media; the question for ALi is what a
// given fault rate costs a query (retry backoff charged as simulated I/O)
// and what it costs the answer (rows lost to quarantined files). We sweep
// the transient fault rate with the default kSalvage policy, then fail a
// handful of files permanently and watch quarantine amortize the damage.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A8 — Fault-tolerant lazy ingestion");
  std::printf("workload: %d stations x %d channels x %d days @ %g Hz\n\n",
              config.stations, config.channels, config.days,
              config.sample_rate_hz);

  const std::string scan_all = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri";

  // Baseline row count on a fault-free medium.
  uint64_t full_rows = 0;
  {
    auto db = MustOpen(dir, {});
    db->FlushBuffers();
    const Timing t = TimeQuery(db.get(), scan_all);
    full_rows = static_cast<uint64_t>(t.stats.result_rows > 0
                                          ? t.stats.mount.samples_decoded
                                          : 0);
  }

  std::printf("-- transient faults (kSalvage, retry/backoff) --\n");
  std::printf("%-12s %10s %10s %10s %10s %12s\n", "fault rate", "cold query",
              "sim I/O", "retries", "failed", "completeness");
  const double rates[] = {0.0, 0.001, 0.01, 0.05};
  for (double rate : rates) {
    DatabaseOptions opts;
    opts.disk.faults.seed = 42;
    opts.disk.faults.transient_error_rate = rate;
    auto db = MustOpen(dir, opts);
    db->FlushBuffers();
    const Timing t = TimeQuery(db.get(), scan_all);
    const double completeness =
        full_rows == 0 ? 1.0
                       : static_cast<double>(t.stats.mount.samples_decoded) /
                             static_cast<double>(full_rows);
    std::printf("%11.1f%% %9.4fs %9.4fs %10llu %10llu %11.2f%%\n", rate * 100,
                t.total(), t.sim_io_seconds,
                static_cast<unsigned long long>(t.stats.read_retries),
                static_cast<unsigned long long>(t.stats.files_failed),
                completeness * 100);
  }

  std::printf(
      "\n-- permanent failures (quarantine + graceful degradation) --\n");
  {
    auto db = MustOpen(dir, {});
    db->FlushBuffers();
    const Timing healthy = TimeQuery(db.get(), scan_all);

    // Three files' sectors die under the database.
    const std::vector<std::string> uris = db->registry()->AllUris();
    const size_t victims = uris.size() < 3 ? uris.size() : 3;
    for (size_t i = 0; i < victims; ++i) {
      auto entry = db->registry()->Get(uris[i]);
      if (entry.ok()) db->disk()->fault_injector()->FailObject(entry->object);
    }
    db->FlushBuffers();

    // First query after the failure eats the retries and quarantines.
    const Timing first = TimeQuery(db.get(), scan_all);
    // Subsequent queries skip quarantined files during planning.
    db->FlushBuffers();
    const Timing second = TimeQuery(db.get(), scan_all);

    std::printf("%-28s %10s %10s %10s %12s\n", "state", "cold query", "retries",
                "failed", "quarantined");
    std::printf("%-28s %9.4fs %10llu %10llu %12llu\n", "healthy",
                healthy.total(),
                static_cast<unsigned long long>(healthy.stats.read_retries),
                static_cast<unsigned long long>(healthy.stats.files_failed),
                0ull);
    std::printf("%-28s %9.4fs %10llu %10llu %12llu\n",
                "first query after failure", first.total(),
                static_cast<unsigned long long>(first.stats.read_retries),
                static_cast<unsigned long long>(first.stats.files_failed),
                static_cast<unsigned long long>(
                    first.stats.two_stage.files_quarantined +
                    first.stats.files_failed));
    std::printf("%-28s %9.4fs %10llu %10llu %12llu\n",
                "steady state (quarantined)", second.total(),
                static_cast<unsigned long long>(second.stats.read_retries),
                static_cast<unsigned long long>(second.stats.files_failed),
                static_cast<unsigned long long>(
                    second.stats.two_stage.files_quarantined));
  }

  std::printf(
      "\nreading the table: transient faults cost only retries — backoff\n"
      "shows up as simulated I/O, the result stays bit-identical to the\n"
      "fault-free run. Permanent failures cost one burst of retries on the\n"
      "first affected query; quarantine then removes the bad files from\n"
      "files-of-interest planning, so steady-state latency returns to the\n"
      "healthy baseline minus the quarantined files' share of the scan.\n");
  return 0;
}
