// A11 — concurrent serving: what admission control and priority scheduling
// buy interactive queries when a bulk ingest runs in the same database.
//
// Two scripted workloads over the same repository, replayed with the
// deterministic runner (burst admission, virtual list-scheduled latency —
// bit-identical at any worker count):
//
//   idle  — 8 interactive explorer sessions, each issuing a metadata lookup
//           and a small mount per round; no competing work.
//   hog   — the same 8 sessions, plus one background ingest session that
//           bulk-mounts the disjoint half of the repository each round.
//
// The figure of merit is the interactive p50/p99 virtual latency in `hog`
// relative to `idle`: the admission gate (the hog's session cap is 1) plus
// background priority keep the degradation far below the hog's own service
// time. One JSON row per scenario for trend tracking.
//
// `--stress` mode is the CI determinism gate: the 9-session contended
// workload runs twice on fresh 4-worker databases (plus once on 1 worker and
// once threaded over a real SessionManager, which is what TSan watches) and
// the run fails unless fingerprints — per-query result hashes, shed
// decisions, epochs, charged sim I/O — are bit-identical.

#include <cstring>

#include "bench/bench_common.h"
#include "serve/script.h"

using namespace dex;
using namespace dex::bench;
using dex::serve::RunScriptDeterministic;
using dex::serve::RunScriptThreaded;
using dex::serve::ScriptOp;
using dex::serve::ScriptResult;
using dex::serve::ServeScript;
using dex::serve::SessionOptions;

namespace {

constexpr int kRounds = 4;
constexpr int kExplorers = 8;

/// Per-round work of one explorer: one metadata lookup, one bounded mount.
std::string ExplorerSql(int explorer) {
  // Different stations per explorer so cache effects stay heterogeneous.
  // These are the first four stations of the generated 8-station repo; the
  // hog owns the other four, so explorers always pay for their own mounts.
  const char* stations[] = {"ISK", "ANK", "IZM", "ATH"};
  return std::string("SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
                     "WHERE F.station = '") +
         stations[explorer % 4] + "'";
}

/// The ingest hog: bulk-mount the half of the repository the explorers never
/// touch. Keeping the two working sets disjoint matters in the serial drain:
/// whoever mounts a file first leaves it resident in the sim buffer pool, so
/// a whole-repo hog would warm the explorers' files and *hide* the very
/// interference this benchmark measures. Disjoint data means the only thing
/// the hog can cost the explorers is lane occupancy — which is exactly what
/// the admission gate is supposed to bound.
const char* kHogSql =
    "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri "
    "WHERE F.station = 'SOF' OR F.station = 'BUC' OR F.station = 'VIE' "
    "OR F.station = 'AMS'";

ServeScript MakeScript(bool with_hog) {
  ServeScript script;
  script.serve.max_inflight = 4;
  script.serve.queue_depth = 16;

  for (int e = 0; e < kExplorers; ++e) {
    SessionOptions s;
    s.name = "explorer" + std::to_string(e);
    s.priority = ThreadPool::kPriorityInteractive;
    s.max_inflight = 2;
    script.sessions.push_back(s);
  }
  size_t hog_session = 0;
  if (with_hog) {
    SessionOptions hog;
    hog.name = "ingest";
    hog.priority = ThreadPool::kPriorityBackground;
    hog.max_inflight = 1;  // the gate's defense: one slot, ever
    hog_session = script.sessions.size();
    script.sessions.push_back(hog);
  }

  for (int round = 0; round < kRounds; ++round) {
    if (with_hog) {
      script.ops.push_back({ScriptOp::Kind::kQuery, hog_session, kHogSql});
    }
    for (int e = 0; e < kExplorers; ++e) {
      script.ops.push_back({ScriptOp::Kind::kQuery, static_cast<size_t>(e),
                            "SELECT COUNT(*) FROM F WHERE F.station = 'ISK'"});
      script.ops.push_back(
          {ScriptOp::Kind::kQuery, static_cast<size_t>(e), ExplorerSql(e)});
    }
    script.ops.push_back({ScriptOp::Kind::kDrain, 0, ""});
  }
  return script;
}

struct ScenarioRow {
  ScriptResult result;
  uint64_t makespan_nanos = 0;
};

ScenarioRow RunScenario(const std::string& dir, bool with_hog) {
  DatabaseOptions opts;
  opts.two_stage.num_threads = 4;  // pin the logical time model (host-free)
  opts.stage1_threads = 4;
  // No tuple cache: explorers repeat the same station query every round, and
  // a cache hit would turn rounds 1..3 into zero-I/O no-ops for both
  // scenarios, collapsing the latency distribution we are comparing.
  opts.cache.policy = CachePolicy::kNone;
  auto db = MustOpen(dir, opts);
  db->FlushBuffers();  // Open()'s header scan left the files resident
  auto r = RunScriptDeterministic(db.get(), MakeScript(with_hog));
  if (!r.ok()) {
    std::fprintf(stderr, "script failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  ScenarioRow row;
  row.result = std::move(*r);
  for (const auto& o : row.result.outcomes) {
    if (o.virtual_end_nanos > row.makespan_nanos) {
      row.makespan_nanos = o.virtual_end_nanos;
    }
  }
  return row;
}

void EmitRow(const char* scenario, const ScenarioRow& row) {
  const ScriptResult& r = row.result;
  const double makespan_s = static_cast<double>(row.makespan_nanos) / 1e9;
  const double qps =
      makespan_s > 0 ? static_cast<double>(r.admitted) / makespan_s : 0.0;
  std::printf("%-6s %9llu %8llu %6llu %11.4fs %11.1f %10.4fms %10.4fms\n",
              scenario, static_cast<unsigned long long>(r.admitted),
              static_cast<unsigned long long>(r.queued),
              static_cast<unsigned long long>(r.shed), makespan_s, qps,
              static_cast<double>(r.p50_interactive_nanos) / 1e6,
              static_cast<double>(r.p99_interactive_nanos) / 1e6);
  std::printf(
      "{\"bench\":\"concurrency\",\"scenario\":\"%s\",\"admitted\":%llu,"
      "\"queued\":%llu,\"shed\":%llu,\"makespan_sim_s\":%.6f,"
      "\"throughput_qps_sim\":%.3f,\"p50_interactive_ms\":%.6f,"
      "\"p99_interactive_ms\":%.6f,\"fingerprint\":\"%016llx\"}\n",
      scenario, static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.queued),
      static_cast<unsigned long long>(r.shed), makespan_s, qps,
      static_cast<double>(r.p50_interactive_nanos) / 1e6,
      static_cast<double>(r.p99_interactive_nanos) / 1e6,
      static_cast<unsigned long long>(r.fingerprint));
}

/// CI gate: the contended workload must replay bit-identically — twice on a
/// 4-thread pool, once on a single-thread pool — and the threaded replay
/// (real SessionManager, one thread per session; the TSan subject) must
/// complete with every admitted query matching the deterministic results.
///
/// Only the *physical* pool size varies. The logical time model — the lane
/// count sim charges are list-scheduled onto (`two_stage.num_threads`) — is
/// part of the workload and stays pinned: latency is allowed to depend on
/// how much overlap you *model*, never on how many OS threads you *have*.
int RunStress(const std::string& dir) {
  const ServeScript script = MakeScript(/*with_hog=*/true);
  ScriptResult runs[3];
  const size_t pool_sizes[3] = {4, 4, 1};
  for (int i = 0; i < 3; ++i) {
    DatabaseOptions opts;
    opts.pool_threads = pool_sizes[i];
    opts.two_stage.num_threads = 4;  // logical lanes: fixed
    opts.stage1_threads = 4;
    auto db = MustOpen(dir, opts);
    db->FlushBuffers();
    auto r = RunScriptDeterministic(db.get(), script);
    if (!r.ok()) {
      std::fprintf(stderr, "stress run %d failed: %s\n", i,
                   r.status().ToString().c_str());
      return 1;
    }
    runs[i] = std::move(*r);
    std::printf("stress run %d: workers=%zu fingerprint=%016llx shed=%llu "
                "sim-identical\n",
                i, pool_sizes[i],
                static_cast<unsigned long long>(runs[i].fingerprint),
                static_cast<unsigned long long>(runs[i].shed));
  }
  if (runs[0].fingerprint != runs[1].fingerprint ||
      runs[0].fingerprint != runs[2].fingerprint) {
    std::fprintf(stderr,
                 "FAIL: fingerprints diverge across runs/worker counts\n");
    // Pinpoint the first diverging outcome for the CI log.
    for (int other : {1, 2}) {
      const auto& a = runs[0].outcomes;
      const auto& b = runs[other].outcomes;
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (a[i].result_hash != b[i].result_hash ||
            a[i].sim_io_nanos != b[i].sim_io_nanos ||
            a[i].epoch != b[i].epoch || a[i].shed != b[i].shed ||
            a[i].status != b[i].status) {
          std::fprintf(
              stderr,
              "  run0 vs run%d, op %zu: hash %016llx/%016llx rows %llu/%llu "
              "sim %llu/%llu epoch %llu/%llu shed %d/%d\n",
              other, a[i].op_index,
              static_cast<unsigned long long>(a[i].result_hash),
              static_cast<unsigned long long>(b[i].result_hash),
              static_cast<unsigned long long>(a[i].result_rows),
              static_cast<unsigned long long>(b[i].result_rows),
              static_cast<unsigned long long>(a[i].sim_io_nanos),
              static_cast<unsigned long long>(b[i].sim_io_nanos),
              static_cast<unsigned long long>(a[i].epoch),
              static_cast<unsigned long long>(b[i].epoch), a[i].shed,
              b[i].shed);
          break;
        }
      }
    }
    return 1;
  }

  auto db = MustOpen(dir, {});
  db->FlushBuffers();
  auto threaded = RunScriptThreaded(db.get(), script);
  if (!threaded.ok()) {
    std::fprintf(stderr, "threaded stress failed: %s\n",
                 threaded.status().ToString().c_str());
    return 1;
  }
  // Real timing decides who sheds; everyone admitted must agree with the
  // deterministic replay on status and result bits.
  size_t compared = 0;
  for (const auto& o : threaded->outcomes) {
    if (o.shed || o.status != StatusCode::kOk) continue;
    for (const auto& d : runs[0].outcomes) {
      if (d.op_index != o.op_index) continue;
      if (!d.shed && (d.result_hash != o.result_hash ||
                      d.result_rows != o.result_rows || d.epoch != o.epoch)) {
        std::fprintf(stderr, "FAIL: op %zu diverges between threaded and "
                             "deterministic replay\n", o.op_index);
        return 1;
      }
      ++compared;
      break;
    }
  }
  std::printf("threaded stress: %llu admitted, %llu shed, %zu results "
              "cross-checked against the deterministic replay\n",
              static_cast<unsigned long long>(threaded->admitted),
              static_cast<unsigned long long>(threaded->shed), compared);
  std::printf("stress: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ObservabilityScope obs_scope;  // DEX_TRACE_OUT / DEX_METRICS_OUT
  BenchConfig config = BenchConfig::FromEnv();
  if (std::getenv("DEX_BENCH_STATIONS") == nullptr &&
      std::getenv("DEX_BENCH_CHANNELS") == nullptr &&
      std::getenv("DEX_BENCH_DAYS") == nullptr) {
    // 8 stations x 2 channels x 4 days = 64 files; explorers read the first
    // four stations, the ingest hog the other four (see kHogSql).
    config.stations = 8;
    config.channels = 2;
    config.days = 4;
  }
  const std::string dir = EnsureRepo(config);

  if (argc > 1 && std::strcmp(argv[1], "--stress") == 0) {
    return RunStress(dir);
  }

  PrintHeader("A11 — Concurrent serving: interactive latency vs ingest hog");
  std::printf("workload: %d explorer sessions x %d rounds "
              "(1 metadata + 1 bounded mount each), gate 4-wide, queue 16\n\n",
              kExplorers, kRounds);
  std::printf("%-6s %9s %8s %6s %12s %11s %11s %11s\n", "scen", "admitted",
              "queued", "shed", "makespan", "sim qps", "p50 inter", "p99 inter");

  const ScenarioRow idle = RunScenario(dir, /*with_hog=*/false);
  EmitRow("idle", idle);
  const ScenarioRow hog = RunScenario(dir, /*with_hog=*/true);
  EmitRow("hog", hog);

  const double p99_ratio =
      idle.result.p99_interactive_nanos > 0
          ? static_cast<double>(hog.result.p99_interactive_nanos) /
                static_cast<double>(idle.result.p99_interactive_nanos)
          : 0.0;
  std::printf(
      "\nreading the table: latencies are virtual — each drain group's\n"
      "measured per-query sim times list-scheduled onto the gate's 4 lanes,\n"
      "so the numbers are bit-identical on any host. The hog's session cap\n"
      "of 1 keeps it to one lane: interactive p99 degrades %.2fx (the gate's\n"
      "contract is < 2x) instead of inheriting the hog's full service time.\n",
      p99_ratio);
  return p99_ratio < 2.0 ? 0 : 1;
}
