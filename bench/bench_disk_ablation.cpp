// A7 — storage-medium sensitivity of the Figure 3 result.
//
// The paper's testbed was a 7200 rpm hard disk; a fair question is how much
// of ALi's cold-run advantage survives on faster media. The simulated disk
// makes the sweep trivial: we re-run Query 1/Query 2 cold under disk
// parameter sets from archival HDD to NVMe-class, keeping data identical.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

namespace {

struct Medium {
  const char* label;
  double seek_millis;
  double read_mb_per_sec;
  double write_mb_per_sec;
};

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("A7 — Cold-run Ei vs ALi across storage media");
  std::printf("workload: %d stations x %d channels x %d days @ %g Hz\n\n",
              config.stations, config.channels, config.days,
              config.sample_rate_hz);

  const Medium media[] = {
      {"archival HDD (12ms, 80MB/s)", 12.0, 80.0, 70.0},
      {"7200rpm HDD (8ms, 120MB/s)", 8.0, 120.0, 100.0},
      {"SATA SSD (0.1ms, 500MB/s)", 0.1, 500.0, 450.0},
      {"NVMe SSD (0.02ms, 3GB/s)", 0.02, 3000.0, 2500.0},
  };

  std::printf("%-30s %10s %10s %8s %12s\n", "medium", "Ei cold", "ALi cold",
              "speedup", "Ei open");
  for (const Medium& m : media) {
    DatabaseOptions eager;
    eager.mode = IngestionMode::kEager;
    eager.disk.seek_millis = m.seek_millis;
    eager.disk.read_mb_per_sec = m.read_mb_per_sec;
    eager.disk.write_mb_per_sec = m.write_mb_per_sec;
    DatabaseOptions lazy;
    lazy.disk = eager.disk;

    auto ei = MustOpen(dir, eager);
    const double ei_open = ei->open_stats().TotalSeconds();
    auto ali = MustOpen(dir, lazy);

    ei->FlushBuffers();
    const double ei_cold = TimeQuery(ei.get(), Query1()).total();
    ali->FlushBuffers();
    const double ali_cold = TimeQuery(ali.get(), Query1()).total();
    std::printf("%-30s %9.3fs %9.4fs %7.0fx %11.3fs\n", m.label, ei_cold,
                ali_cold, ei_cold / ali_cold, ei_open);
  }
  std::printf(
      "\nreading the table: the *ratio* persists across media — both sides'\n"
      "I/O scales with the medium, and Ei's cold run must always fault the\n"
      "whole materialized database back in while ALi touches metadata plus\n"
      "the files of interest. What shrinks on fast media is the absolute\n"
      "gap (seconds to sub-second), until CPU work (decode vs join)\n"
      "dominates. The up-front ingestion asymmetry (Ei open) also persists\n"
      "on every medium.\n");
  return 0;
}
