// A5 — Generalization (paper §5): the cost structure of different file
// formats behind the same FormatAdapter seam.
//
// The same repository content is materialized twice — as binary
// Steim1-compressed mSEED and as plain-text CSV time series — and both are
// opened and queried identically. The comparison shows why self-describing
// binary formats with compact headers matter for ALi: metadata scans are
// cheap when headers are separable, and mounting costs decompression vs
// text parsing.

#include "bench/bench_common.h"
#include "common/string_utils.h"
#include "csvf/csv_format.h"

using namespace dex;
using namespace dex::bench;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  config.days = std::min(config.days, 4);  // text format is bulky; cap scale
  const std::string mseed_dir = EnsureRepo(config);
  const std::string csv_dir = mseed_dir + "_csv";
  if (!FileExists(csv_dir + "/.complete")) {
    (void)RemoveDirRecursive(csv_dir);
    auto st = csvf::ConvertMseedRepository(mseed_dir, csv_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "conversion failed: %s\n", st.ToString().c_str());
      return 1;
    }
    (void)WriteStringToFile(csv_dir + "/.complete", "ok");
  }

  PrintHeader("A5 — Format generalization: mSEED (binary) vs tscsv (text)");

  struct FormatRun {
    const char* label;
    std::string dir;
    std::shared_ptr<FormatAdapter> adapter;
  };
  FormatRun runs[] = {
      {"mseed", mseed_dir, std::make_shared<MseedAdapter>()},
      {"tscsv", csv_dir, std::make_shared<CsvAdapter>()},
  };

  std::printf("%-8s %12s %12s %12s %12s %12s\n", "format", "repo size",
              "open (ALi)", "Query1 hot", "stationscan", "mount MB/s");
  for (FormatRun& run : runs) {
    DatabaseOptions opts;
    opts.format = run.adapter;
    const auto t0 = std::chrono::steady_clock::now();
    auto db = MustOpen(run.dir, opts);
    const double open_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() +
        db->open_stats().sim_io_nanos / 1e9;
    (void)TimeQuery(db.get(), Query1("2010-01-02"));  // warm
    const Timing q1 = TimeQueryAvg(db.get(), Query1("2010-01-02"), 3);
    const std::string scan_sql =
        "SELECT AVG(D.sample_value) FROM F JOIN D ON F.uri = D.uri "
        "WHERE F.station = 'ISK';";
    const Timing scan = TimeQueryAvg(db.get(), scan_sql, 2);
    const double mount_mb_s =
        scan.stats.mount.bytes_read / 1e6 /
        std::max(1e-9, scan.cpu_seconds);
    std::printf("%-8s %12s %12.3f %12.4f %12.4f %12.1f\n", run.label,
                FormatBytes(db->open_stats().repo_bytes).c_str(), open_s,
                q1.total(), scan.total(), mount_mb_s);
  }
  std::printf(
      "\nreading the table: the text format costs more everywhere — the\n"
      "repository is larger (no compression), the metadata scan must read\n"
      "and tokenize whole files (mSEED parses fixed 64-byte headers), and\n"
      "mounting pays strtol per sample instead of Steim1 frame decoding.\n"
      "The kernel is identical in both runs; only the FormatAdapter differs\n"
      "— the paper's 'generalized medium for the scientific developer'.\n");
  return 0;
}
