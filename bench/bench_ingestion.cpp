// Reproduces two quantitative claims from the paper's text:
//
//  C1 (§1/§6): "up-front ingestion time is reduced by orders of magnitude"
//      — Ei's eager load+index time vs ALi's metadata-only load, swept over
//      repository size (data-to-insight time).
//  C2 (§4): "building the primary and foreign key indexes take four times
//      longer than actual loading"
//      — the load-vs-index split of the Ei open.
//
// Reported time = measured CPU + simulated disk time.

#include "bench/bench_common.h"
#include "common/string_utils.h"

using namespace dex;
using namespace dex::bench;

namespace {

struct OpenCost {
  double scan_s, load_s, index_s, sim_s;
  double total() const { return scan_s + load_s + index_s + sim_s; }
};

OpenCost MeasureOpen(const std::string& dir, IngestionMode mode) {
  DatabaseOptions opts;
  opts.mode = mode;
  auto db = MustOpen(dir, opts);
  const OpenStats& s = db->open_stats();
  return {s.metadata_scan_nanos / 1e9, s.load_nanos / 1e9, s.index_nanos / 1e9,
          s.sim_io_nanos / 1e9};
}

}  // namespace

int main() {
  PrintHeader("C1 — Up-front ingestion: Ei vs ALi (data-to-insight)");
  std::printf("%-24s %10s %10s %8s %12s %12s %10s\n", "repository", "Ei open(s)",
              "ALi open(s)", "time x", "Ei ingested", "ALi ingested", "bytes x");

  BenchConfig base = BenchConfig::FromEnv();
  for (int days : {2, 4, base.days}) {
    BenchConfig config = base;
    config.days = days;
    const std::string dir = EnsureRepo(config);
    DatabaseOptions eager;
    eager.mode = IngestionMode::kEager;
    auto ei_db = MustOpen(dir, eager);
    auto ali_db = MustOpen(dir, DatabaseOptions{});
    const OpenStats& es = ei_db->open_stats();
    const OpenStats& as = ali_db->open_stats();
    const double ei_s = es.TotalSeconds();
    const double ali_s = as.TotalSeconds();
    const uint64_t ei_bytes = es.db_bytes + es.index_bytes;
    const uint64_t ali_bytes = as.metadata_bytes;
    char label[64];
    std::snprintf(label, sizeof(label), "%d files (%d days)",
                  config.stations * config.channels * days, days);
    std::printf("%-24s %10.3f %10.3f %7.0fx %12s %12s %9.0fx\n", label, ei_s,
                ali_s, ei_s / ali_s, FormatBytes(ei_bytes).c_str(),
                FormatBytes(ali_bytes).c_str(),
                static_cast<double>(ei_bytes) / static_cast<double>(ali_bytes));
  }
  std::printf(
      "\nshape check (paper Table 1: 13GB+9GB ingested eagerly vs 10MB of\n"
      "metadata = 3 orders of magnitude): the *ingested volume* drops by\n"
      "orders of magnitude; wall time follows sizes minus the per-file seek\n"
      "floor that both modes share on a spinning disk.\n");

  PrintHeader("C2 — Ei load vs index build split");
  {
    const std::string dir = EnsureRepo(base);
    const OpenCost ei = MeasureOpen(dir, IngestionMode::kEager);
    // Attribute simulated I/O to the phase that caused it: the load writes
    // the tables, the index build re-reads keys and writes index pages.
    std::printf("metadata scan : %8.3f s\n", ei.scan_s);
    std::printf("actual load   : %8.3f s (CPU)\n", ei.load_s);
    std::printf("index build   : %8.3f s (CPU)\n", ei.index_s);
    std::printf("simulated I/O : %8.3f s (load writes + index reads/writes)\n",
                ei.sim_s);
    std::printf("index/load CPU ratio = %.2fx (paper: ~4x; our hash index is\n"
                "  a flat sorted array, cheaper than MonetDB's structures)\n",
                ei.index_s / ei.load_s);
    std::printf("indexes do not pay off for a short query sequence: see\n"
                "  bench_figure3 hot runs vs this one-time cost.\n");
  }
  return 0;
}
