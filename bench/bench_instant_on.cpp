// A6 — "Instant-on" metadata snapshots (after the author's companion paper,
// Lazy ETL / Instant-On Scientific Data Warehouses, BIRTE 2012).
//
// ALi already reduces Open() to a metadata scan; the snapshot removes even
// that on subsequent sessions: files whose size/mtime match the snapshot are
// not re-parsed. The bench compares three opens of the same repository:
// eager (Ei), lazy with a full metadata scan, and lazy from a snapshot —
// then shows an incremental open after a day of new data arrives.

#include "bench/bench_common.h"
#include "common/string_utils.h"
#include "mseed/generator.h"
#include "mseed/writer.h"

using namespace dex;
using namespace dex::bench;

namespace {

double OpenSeconds(const std::string& dir, const DatabaseOptions& opts,
                   OpenStats* stats_out = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  auto db = MustOpen(dir, opts);
  const double cpu =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (stats_out != nullptr) *stats_out = db->open_stats();
  return cpu + db->open_stats().sim_io_nanos / 1e9;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);
  const std::string snap = dir + "/.dex_meta.snap";
  (void)RemoveDirRecursive(snap);

  PrintHeader("A6 — Instant-on: open-time with metadata snapshots");

  DatabaseOptions eager;
  eager.mode = IngestionMode::kEager;
  const double ei_s = OpenSeconds(dir, eager);

  const double ali_scan_s = OpenSeconds(dir, DatabaseOptions{});

  DatabaseOptions with_snapshot;
  with_snapshot.metadata_snapshot_path = snap;
  const double ali_first_s = OpenSeconds(dir, with_snapshot);  // writes snap
  OpenStats snap_stats;
  const double ali_snap_s = OpenSeconds(dir, with_snapshot, &snap_stats);

  std::printf("%-34s %12s\n", "open mode", "time (s)");
  std::printf("%-34s %12.4f\n", "Ei (load everything + indexes)", ei_s);
  std::printf("%-34s %12.4f\n", "ALi, full metadata scan", ali_scan_s);
  std::printf("%-34s %12.4f\n", "ALi, scan + write snapshot", ali_first_s);
  std::printf("%-34s %12.4f   (%zu/%zu files reused)\n",
              "ALi, from snapshot", ali_snap_s,
              snap_stats.snapshot_files_reused, snap_stats.num_files);

  // A day of new data arrives; the incremental open parses only the new files.
  int added = 0;
  for (const std::string& station : mseed::GeneratorStationCodes(config.stations)) {
    mseed::RecordData rec;
    rec.network = "OR";
    rec.station = station;
    rec.channel = "BHE";
    rec.location = "00";
    rec.start_time_ms = 1262304000000LL + 400LL * 86400000LL;
    rec.sample_rate_hz = config.sample_rate_hz;
    rec.samples = mseed::SynthesizeWaveform(99 + added, 5000, false);
    if (mseed::WriteFile(dir + "/" + station + "/OR." + station + ".BHE.400.mseed",
                         {rec})
            .ok()) {
      ++added;
    }
  }
  OpenStats incr_stats;
  const double ali_incr_s = OpenSeconds(dir, with_snapshot, &incr_stats);
  std::printf("%-34s %12.4f   (%d new files parsed)\n",
              "ALi, snapshot + new day's data", ali_incr_s, added);

  std::printf("\nshape check: data-to-insight time falls in three steps —\n"
              "eager load  >>  metadata scan  >>  snapshot reuse — and new\n"
              "data costs only its own parse, never a rescan of the world.\n");

  // Leave the repo as the other benches expect it (drop the added files).
  for (const std::string& station : mseed::GeneratorStationCodes(config.stations)) {
    (void)RemoveDirRecursive(dir + "/" + station + "/OR." + station +
                             ".BHE.400.mseed");
  }
  (void)RemoveDirRecursive(snap);

  // -- B: warm restart with the persistent columnar cache -------------------
  //
  // The snapshot makes *metadata* instant-on; the persistent cache extends
  // that to actual data. A cold session pays the full metadata scan plus one
  // mount per file of interest; a restarted session reuses the snapshot and
  // recovers validated columnar cache entries, answering the same query with
  // zero mounts. Emits JSON rows and self-gates: warm must be >= 5x faster
  // than cold on the 64-file corpus.
  PrintHeader("B — Warm restart: persistent columnar cache (64-file corpus)");

  BenchConfig c64 = config;
  c64.stations = 4;
  c64.channels = 4;
  c64.days = 4;              // 4 x 4 x 4 = 64 files
  c64.sample_rate_hz = 0.05; // seek-bound corpus: restart cost is per-file
                             // seeks, which is exactly what the cache removes
  const std::string dir64 = EnsureRepo(c64);
  const std::string cache_dir = dir64 + ".cache";   // outside the repo root
  const std::string snap64 = dir64 + ".meta.snap";  // ditto
  (void)RemoveDirRecursive(cache_dir);
  (void)RemoveDirRecursive(snap64);

  DatabaseOptions tiered;
  tiered.mode = IngestionMode::kLazy;
  tiered.cache.policy = CachePolicy::kLru;
  tiered.cache_dir = cache_dir;
  tiered.metadata_snapshot_path = snap64;

  const std::string broad = "SELECT COUNT(*) FROM F JOIN D ON F.uri = D.uri;";

  struct SessionCost {
    double open_s = 0;
    double query_s = 0;
    OpenStats open_stats;
    Timing query;
    double total() const { return open_s + query_s; }
  };
  auto session = [&](const char* label) {
    SessionCost s;
    const auto t0 = std::chrono::steady_clock::now();
    auto db = MustOpen(dir64, tiered);
    s.open_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() +
        db->open_stats().sim_io_nanos / 1e9;
    s.open_stats = db->open_stats();
    s.query = TimeQuery(db.get(), broad);
    s.query_s = s.query.total();
    std::printf("%-34s %12.4f   (open %.4f + query %.4f, %llu mounts)\n",
                label, s.total(), s.open_s, s.query_s,
                static_cast<unsigned long long>(s.query.stats.mount.mounts));
    return s;
  };

  const SessionCost cold = session("cold: scan + mount everything");
  const SessionCost warm = session("warm: snapshot + cache recovery");

  const double speedup = warm.total() > 0 ? cold.total() / warm.total() : 0;
  const size_t files = cold.open_stats.num_files;
  std::printf("\nwarm restart speedup: %.1fx (gate: >= 5x)\n", speedup);

  std::printf(
      "{\"bench\": \"instant_on\", \"row\": \"cold\", \"files\": %zu, "
      "\"open_s\": %.6f, \"query_s\": %.6f, \"total_s\": %.6f, "
      "\"mounts\": %llu, \"cache_entries_recovered\": %llu}\n",
      files, cold.open_s, cold.query_s, cold.total(),
      static_cast<unsigned long long>(cold.query.stats.mount.mounts),
      static_cast<unsigned long long>(cold.open_stats.cache_entries_recovered));
  std::printf(
      "{\"bench\": \"instant_on\", \"row\": \"warm\", \"files\": %zu, "
      "\"open_s\": %.6f, \"query_s\": %.6f, \"total_s\": %.6f, "
      "\"mounts\": %llu, \"cache_entries_recovered\": %llu}\n",
      files, warm.open_s, warm.query_s, warm.total(),
      static_cast<unsigned long long>(warm.query.stats.mount.mounts),
      static_cast<unsigned long long>(warm.open_stats.cache_entries_recovered));
  std::printf(
      "{\"bench\": \"instant_on\", \"row\": \"warm_restart_gate\", "
      "\"speedup\": %.2f, \"gate\": 5.0, \"pass\": %s}\n",
      speedup, speedup >= 5.0 ? "true" : "false");

  bool failed = false;
  if (cold.query.stats.mount.mounts != files) {
    std::fprintf(stderr, "FAIL: cold session mounted %llu of %zu files\n",
                 static_cast<unsigned long long>(cold.query.stats.mount.mounts),
                 files);
    failed = true;
  }
  if (warm.query.stats.mount.mounts != 0 ||
      warm.open_stats.cache_entries_recovered != files) {
    std::fprintf(stderr,
                 "FAIL: warm session re-mounted (%llu mounts, %llu recovered)\n",
                 static_cast<unsigned long long>(warm.query.stats.mount.mounts),
                 static_cast<unsigned long long>(
                     warm.open_stats.cache_entries_recovered));
    failed = true;
  }
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: warm restart only %.1fx faster than cold\n",
                 speedup);
    failed = true;
  }

  (void)RemoveDirRecursive(cache_dir);
  (void)RemoveDirRecursive(snap64);
  return failed ? 1 : 0;
}
