// A6 — "Instant-on" metadata snapshots (after the author's companion paper,
// Lazy ETL / Instant-On Scientific Data Warehouses, BIRTE 2012).
//
// ALi already reduces Open() to a metadata scan; the snapshot removes even
// that on subsequent sessions: files whose size/mtime match the snapshot are
// not re-parsed. The bench compares three opens of the same repository:
// eager (Ei), lazy with a full metadata scan, and lazy from a snapshot —
// then shows an incremental open after a day of new data arrives.

#include "bench/bench_common.h"
#include "common/string_utils.h"
#include "mseed/generator.h"
#include "mseed/writer.h"

using namespace dex;
using namespace dex::bench;

namespace {

double OpenSeconds(const std::string& dir, const DatabaseOptions& opts,
                   OpenStats* stats_out = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  auto db = MustOpen(dir, opts);
  const double cpu =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (stats_out != nullptr) *stats_out = db->open_stats();
  return cpu + db->open_stats().sim_io_nanos / 1e9;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);
  const std::string snap = dir + "/.dex_meta.snap";
  (void)RemoveDirRecursive(snap);

  PrintHeader("A6 — Instant-on: open-time with metadata snapshots");

  DatabaseOptions eager;
  eager.mode = IngestionMode::kEager;
  const double ei_s = OpenSeconds(dir, eager);

  const double ali_scan_s = OpenSeconds(dir, DatabaseOptions{});

  DatabaseOptions with_snapshot;
  with_snapshot.metadata_snapshot_path = snap;
  const double ali_first_s = OpenSeconds(dir, with_snapshot);  // writes snap
  OpenStats snap_stats;
  const double ali_snap_s = OpenSeconds(dir, with_snapshot, &snap_stats);

  std::printf("%-34s %12s\n", "open mode", "time (s)");
  std::printf("%-34s %12.4f\n", "Ei (load everything + indexes)", ei_s);
  std::printf("%-34s %12.4f\n", "ALi, full metadata scan", ali_scan_s);
  std::printf("%-34s %12.4f\n", "ALi, scan + write snapshot", ali_first_s);
  std::printf("%-34s %12.4f   (%zu/%zu files reused)\n",
              "ALi, from snapshot", ali_snap_s,
              snap_stats.snapshot_files_reused, snap_stats.num_files);

  // A day of new data arrives; the incremental open parses only the new files.
  int added = 0;
  for (const std::string& station : mseed::GeneratorStationCodes(config.stations)) {
    mseed::RecordData rec;
    rec.network = "OR";
    rec.station = station;
    rec.channel = "BHE";
    rec.location = "00";
    rec.start_time_ms = 1262304000000LL + 400LL * 86400000LL;
    rec.sample_rate_hz = config.sample_rate_hz;
    rec.samples = mseed::SynthesizeWaveform(99 + added, 5000, false);
    if (mseed::WriteFile(dir + "/" + station + "/OR." + station + ".BHE.400.mseed",
                         {rec})
            .ok()) {
      ++added;
    }
  }
  OpenStats incr_stats;
  const double ali_incr_s = OpenSeconds(dir, with_snapshot, &incr_stats);
  std::printf("%-34s %12.4f   (%d new files parsed)\n",
              "ALi, snapshot + new day's data", ali_incr_s, added);

  std::printf("\nshape check: data-to-insight time falls in three steps —\n"
              "eager load  >>  metadata scan  >>  snapshot reuse — and new\n"
              "data costs only its own parse, never a rescan of the world.\n");

  // Leave the repo as the other benches expect it (drop the added files).
  for (const std::string& station : mseed::GeneratorStationCodes(config.stations)) {
    (void)RemoveDirRecursive(dir + "/" + station + "/OR." + station +
                             ".BHE.400.mseed");
  }
  (void)RemoveDirRecursive(snap);
  return 0;
}
