// Reproduces the paper's Figure 3, "Querying 5000 files": execution time of
// Query 1 and Query 2, cold and hot, for eager ingestion (Ei) vs automated
// lazy ingestion (ALi), on a log scale.
//
// Cold = buffer pool flushed (the paper restarts the server); hot = same
// query re-run with warm buffers. Reported time = measured CPU + simulated
// disk I/O (see DESIGN.md §2). The paper's shape:
//   - cold: ALi beats Ei by a wide margin for both queries (Ei must fault
//     the loaded columns and FK indexes back into memory);
//   - hot: same ballpark; ALi slightly ahead on the highly selective
//     Query 1, and behind on Query 2 whose data of interest is much larger.

#include "bench/bench_common.h"

using namespace dex;
using namespace dex::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const std::string dir = EnsureRepo(config);

  PrintHeader("Figure 3 — Querying the repository (cold/hot, Ei vs ALi)");
  std::printf("workload: %d stations x %d channels x %d days @ %g Hz\n\n",
              config.stations, config.channels, config.days,
              config.sample_rate_hz);

  DatabaseOptions eager;
  eager.mode = IngestionMode::kEager;
  auto ei = MustOpen(dir, eager);
  auto ali = MustOpen(dir, DatabaseOptions{});  // paper default: no cache

  struct Row {
    const char* label;
    double ei_cold, ali_cold, ei_hot, ali_hot;
  };
  std::vector<Row> rows;

  for (const auto& [label, sql] :
       {std::pair<const char*, std::string>{"Query 1", Query1()},
        std::pair<const char*, std::string>{"Query 2", Query2()}}) {
    Row row{label, 0, 0, 0, 0};
    // COLD runs: flush all buffers first (server restart).
    ei->FlushBuffers();
    row.ei_cold = TimeQuery(ei.get(), sql).total();
    ali->FlushBuffers();
    row.ali_cold = TimeQuery(ali.get(), sql).total();
    // HOT runs: average of repeated executions with warm buffers (the
    // paper: "average execution times of three identical runs").
    row.ei_hot = TimeQueryAvg(ei.get(), sql, 3).total();
    row.ali_hot = TimeQueryAvg(ali.get(), sql, 3).total();
    rows.push_back(row);
  }

  std::printf("%-10s %12s %12s %12s %12s   (seconds)\n", "", "Ei COLD",
              "ALi COLD", "Ei HOT", "ALi HOT");
  for (const Row& r : rows) {
    std::printf("%-10s %12.4f %12.4f %12.4f %12.4f\n", r.label, r.ei_cold,
                r.ali_cold, r.ei_hot, r.ali_hot);
  }

  std::printf("\n-- shape checks vs the paper --\n");
  for (const Row& r : rows) {
    std::printf("%s cold: ALi %.1fx faster than Ei (paper: order(s) of magnitude)\n",
                r.label, r.ei_cold / r.ali_cold);
  }
  std::printf("Query 1 hot: ALi/Ei = %.2f (paper: slightly below 1)\n",
              rows[0].ali_hot / rows[0].ei_hot);
  std::printf("Query 2 hot: ALi/Ei = %.2f (paper: above 1 — larger data of "
              "interest; see bench_selectivity for the crossover)\n",
              rows[1].ali_hot / rows[1].ei_hot);
  return 0;
}
