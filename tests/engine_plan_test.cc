#include "engine/logical_plan.h"

#include <gtest/gtest.h>

#include "io/sim_disk.h"

namespace dex {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : disk_(), catalog_(&disk_) {
    auto f_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "F"},
                {"station", DataType::kString, "F"}}));
    auto d_schema = std::make_shared<Schema>(
        Schema({{"uri", DataType::kString, "D"},
                {"value", DataType::kDouble, "D"}}));
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("F", f_schema),
                              TableKind::kMetadata)
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(std::make_shared<Table>("D", d_schema),
                              TableKind::kActual)
                    .ok());
  }
  SimDisk disk_;
  Catalog catalog_;
};

TEST_F(PlanTest, ScanResolvesSchemaFromCatalog) {
  PlanPtr p = MakeScan("F");
  ASSERT_TRUE(AnalyzePlan(p, catalog_).ok());
  ASSERT_NE(p->output_schema, nullptr);
  EXPECT_EQ(p->output_schema->num_fields(), 2u);
}

TEST_F(PlanTest, ScanUnknownTableFails) {
  PlanPtr p = MakeScan("Z");
  EXPECT_TRUE(AnalyzePlan(p, catalog_).IsNotFound());
}

TEST_F(PlanTest, FilterKeepsChildSchema) {
  PlanPtr p = MakeFilter(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("station"),
                    Expr::Lit(Value::String("ISK"))),
      MakeScan("F"));
  ASSERT_TRUE(AnalyzePlan(p, catalog_).ok());
  EXPECT_EQ(p->output_schema, p->children[0]->output_schema);
}

TEST_F(PlanTest, FilterRequiresBooleanPredicate) {
  PlanPtr p = MakeFilter(Expr::Lit(Value::Int64(1)), MakeScan("F"));
  EXPECT_FALSE(AnalyzePlan(p, catalog_).ok());
}

TEST_F(PlanTest, ProjectComputesOutputTypes) {
  PlanPtr p = MakeProject(
      {Expr::ColumnRef("value"),
       Expr::Arith(ArithOp::kMul, Expr::ColumnRef("value"),
                   Expr::Lit(Value::Int64(2)))},
      {"v", "v2"}, MakeScan("D"));
  ASSERT_TRUE(AnalyzePlan(p, catalog_).ok());
  EXPECT_EQ(p->output_schema->field(0).name, "v");
  EXPECT_EQ(p->output_schema->field(1).type, DataType::kDouble);
}

TEST_F(PlanTest, JoinConcatenatesSchemas) {
  PlanPtr p = MakeJoin(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("F.uri"),
                    Expr::ColumnRef("D.uri")),
      MakeScan("F"), MakeScan("D"));
  ASSERT_TRUE(AnalyzePlan(p, catalog_).ok());
  EXPECT_EQ(p->output_schema->num_fields(), 4u);
  EXPECT_TRUE(p->output_schema->FieldIndex("F.uri").ok());
  EXPECT_TRUE(p->output_schema->FieldIndex("D.uri").ok());
}

TEST_F(PlanTest, AggregateSchemaHasGroupsThenAggs) {
  PlanPtr p = MakeAggregate(
      {Expr::ColumnRef("station")},
      {{AggFunc::kAvg, Expr::ColumnRef("station"), "a"}}, MakeScan("F"));
  // AVG of a string must fail... actually binding succeeds; output type for
  // AVG is double regardless. Use COUNT for the string case.
  PlanPtr q = MakeAggregate({Expr::ColumnRef("station")},
                            {{AggFunc::kCount, nullptr, "n"}}, MakeScan("F"));
  ASSERT_TRUE(AnalyzePlan(q, catalog_).ok());
  ASSERT_EQ(q->output_schema->num_fields(), 2u);
  EXPECT_EQ(q->output_schema->field(0).name, "station");
  EXPECT_EQ(q->output_schema->field(1).name, "n");
  EXPECT_EQ(q->output_schema->field(1).type, DataType::kInt64);
  (void)p;
}

TEST_F(PlanTest, AggregateOutputTypes) {
  PlanPtr p = MakeAggregate(
      {},
      {{AggFunc::kSum, Expr::ColumnRef("value"), "s"},
       {AggFunc::kAvg, Expr::ColumnRef("value"), "a"},
       {AggFunc::kMin, Expr::ColumnRef("uri"), "lo"},
       {AggFunc::kCount, nullptr, "n"}},
      MakeScan("D"));
  ASSERT_TRUE(AnalyzePlan(p, catalog_).ok());
  EXPECT_EQ(p->output_schema->field(0).type, DataType::kDouble);   // SUM(dbl)
  EXPECT_EQ(p->output_schema->field(1).type, DataType::kDouble);   // AVG
  EXPECT_EQ(p->output_schema->field(2).type, DataType::kString);   // MIN(str)
  EXPECT_EQ(p->output_schema->field(3).type, DataType::kInt64);    // COUNT
}

TEST_F(PlanTest, UnionRequiresCompatibleChildren) {
  PlanPtr ok = MakeUnion({MakeScan("D"), MakeScan("D")});
  EXPECT_TRUE(AnalyzePlan(ok, catalog_).ok());
  PlanPtr bad = MakeUnion({MakeScan("D"), MakeScan("F")});
  EXPECT_FALSE(AnalyzePlan(bad, catalog_).ok());
}

TEST_F(PlanTest, StageBreakIsTransparent) {
  PlanPtr p = MakeStageBreak(MakeScan("F"));
  ASSERT_TRUE(AnalyzePlan(p, catalog_).ok());
  EXPECT_EQ(p->output_schema, p->children[0]->output_schema);
}

TEST_F(PlanTest, MountAndCacheScanUseTableSchema) {
  PlanPtr m = MakeMount("D", "/repo/f1.mseed");
  PlanPtr c = MakeCacheScan("D", "/repo/f1.mseed");
  ASSERT_TRUE(AnalyzePlan(m, catalog_).ok());
  ASSERT_TRUE(AnalyzePlan(c, catalog_).ok());
  EXPECT_EQ(m->output_schema->num_fields(), 2u);
  EXPECT_EQ(c->output_schema->num_fields(), 2u);
}

TEST_F(PlanTest, ResultScanNeedsSchema) {
  PlanPtr ok = MakeResultScan("qf", std::make_shared<Schema>());
  EXPECT_TRUE(AnalyzePlan(ok, catalog_).ok());
  PlanPtr bad = MakeResultScan("qf", nullptr);
  EXPECT_FALSE(AnalyzePlan(bad, catalog_).ok());
}

TEST_F(PlanTest, ClonePlanIsDeep) {
  PlanPtr p = MakeFilter(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("station"),
                    Expr::Lit(Value::String("ISK"))),
      MakeScan("F"));
  PlanPtr q = ClonePlan(p);
  ASSERT_NE(q, p);
  ASSERT_NE(q->children[0], p->children[0]);
  EXPECT_EQ(q->children[0]->table_name, "F");
  // Mutating the clone leaves the original intact.
  q->children[0]->table_name = "D";
  EXPECT_EQ(p->children[0]->table_name, "F");
}

TEST_F(PlanTest, CollectTableNamesVisitsAllLeaves) {
  PlanPtr p = MakeJoin(Expr::Lit(Value::Bool(true)), MakeScan("F"),
                       MakeUnion({MakeMount("D", "u1"), MakeCacheScan("D", "u2")}));
  std::vector<std::string> names;
  CollectTableNames(p, &names);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "F");
  EXPECT_EQ(names[1], "D");
  EXPECT_EQ(names[2], "D");
}

TEST_F(PlanTest, ToStringShowsStructure) {
  PlanPtr p = MakeAggregate(
      {}, {{AggFunc::kAvg, Expr::ColumnRef("value"), "a"}},
      MakeFilter(Expr::Compare(CompareOp::kGt, Expr::ColumnRef("value"),
                               Expr::Lit(Value::Int64(0))),
                 MakeScan("D")));
  const std::string s = p->ToString();
  EXPECT_NE(s.find("Aggregate[AVG(value)]"), std::string::npos);
  EXPECT_NE(s.find("Filter[(value > 0)]"), std::string::npos);
  EXPECT_NE(s.find("Scan(D)"), std::string::npos);
}

TEST_F(PlanTest, ToStringShowsFusedMountSelection) {
  PlanPtr m = MakeMount("D", "u1");
  m->predicate = Expr::Compare(CompareOp::kGt, Expr::ColumnRef("value"),
                               Expr::Lit(Value::Int64(0)));
  EXPECT_NE(m->ToString().find("σ[(value > 0)]"), std::string::npos);
}

}  // namespace
}  // namespace dex
